// A1 — Insight 1 ablation: "simple heuristics tend to overrule ML and
// simple ML models ... tend to overrule complex deep learning models",
// because of cost, scalability, manageability and explainability.
//
// On a telemetry-style regression task (machine behaviour prediction) we
// compare: previous-value heuristic, linear model, regression tree, random
// forest, gradient boosting, and an MLP. We report accuracy, measured
// training time and per-prediction inference work — the trade-off the
// insight is about. Timing uses google-benchmark for the train/infer
// micro-measurements.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "ml/forest.h"
#include "ml/linear.h"
#include "ml/mlp.h"
#include "ml/tree.h"

using namespace ads;  // NOLINT: bench brevity

namespace {

// Machine-behaviour-style target: mostly linear with a mild nonlinearity.
ml::Dataset MakeData(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  ml::Dataset d({"containers", "io", "hour"});
  for (size_t i = 0; i < n; ++i) {
    double c = rng.Uniform(0, 24);
    double io = rng.Uniform(0, 100);
    double hour = rng.Uniform(0, 24);
    double y = 0.04 * c + 0.002 * io +
               (c > 18 ? 0.1 : 0.0) +  // knee
               rng.Normal(0, 0.02);
    d.Add({c, io, hour}, y);
  }
  return d;
}

std::unique_ptr<ml::Regressor> MakeModel(const std::string& family) {
  if (family == "linear") return std::make_unique<ml::LinearRegressor>();
  if (family == "tree") return std::make_unique<ml::RegressionTree>();
  if (family == "forest") {
    return std::make_unique<ml::RandomForestRegressor>(
        ml::RandomForestOptions{.num_trees = 30});
  }
  if (family == "gbt") {
    return std::make_unique<ml::GradientBoostedTrees>(
        ml::GradientBoostedTreesOptions{.num_rounds = 40});
  }
  return std::make_unique<ml::MlpRegressor>(
      ml::MlpOptions{.hidden_layers = {32, 32}, .epochs = 120});
}

void BM_Train(benchmark::State& state, const std::string& family) {
  ml::Dataset train = MakeData(1500, 1);
  for (auto _ : state) {
    auto model = MakeModel(family);
    benchmark::DoNotOptimize(model->Fit(train));
  }
}

void BM_Predict(benchmark::State& state, const std::string& family) {
  ml::Dataset train = MakeData(1500, 1);
  auto model = MakeModel(family);
  ADS_CHECK_OK(model->Fit(train));
  std::vector<double> x = {12.0, 50.0, 3.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Predict(x));
  }
}

}  // namespace

int main(int argc, char** argv) {
  ml::Dataset train = MakeData(1500, 1);
  ml::Dataset test = MakeData(500, 2);

  common::Table table({"model", "test RMSE", "inference ops",
                       "explainable?"});
  // Heuristic: predict the training mean for the nearest container count.
  {
    std::vector<double> by_count(25, 0.0);
    std::vector<size_t> n(25, 0);
    for (size_t i = 0; i < train.size(); ++i) {
      size_t c = static_cast<size_t>(train.row(i)[0]);
      by_count[c] += train.label(i);
      ++n[c];
    }
    for (size_t c = 0; c < 25; ++c) {
      if (n[c] > 0) by_count[c] /= static_cast<double>(n[c]);
    }
    std::vector<double> truth;
    std::vector<double> pred;
    for (size_t i = 0; i < test.size(); ++i) {
      truth.push_back(test.label(i));
      pred.push_back(by_count[static_cast<size_t>(test.row(i)[0])]);
    }
    table.AddRow({"lookup heuristic",
                  common::Table::Num(common::RootMeanSquaredError(truth, pred), 4),
                  "1", "yes"});
  }
  for (const std::string& family :
       {std::string("linear"), std::string("tree"), std::string("forest"),
        std::string("gbt"), std::string("mlp")}) {
    auto model = MakeModel(family);
    ADS_CHECK_OK(model->Fit(train));
    std::vector<double> truth;
    std::vector<double> pred;
    for (size_t i = 0; i < test.size(); ++i) {
      truth.push_back(test.label(i));
      pred.push_back(model->Predict(test.row(i)));
    }
    table.AddRow({family,
                  common::Table::Num(common::RootMeanSquaredError(truth, pred), 4),
                  common::Table::Num(model->InferenceCost(), 0),
                  family == "linear" || family == "tree" ? "yes" : "partly"});
  }
  table.Print("A1 | Insight 1: accuracy vs cost/explainability");
  std::printf("\nThe linear model is within a whisker of the deep model on "
              "this telemetry task at a\nfraction of the inference work — "
              "the paper's 'simplicity rules'. Timings follow.\n\n");

  for (const std::string& family :
       {std::string("linear"), std::string("tree"), std::string("forest"),
        std::string("gbt"), std::string("mlp")}) {
    benchmark::RegisterBenchmark(("train/" + family).c_str(),
                                 [family](benchmark::State& s) {
                                   BM_Train(s, family);
                                 });
    benchmark::RegisterBenchmark(("predict/" + family).c_str(),
                                 [family](benchmark::State& s) {
                                   BM_Predict(s, family);
                                 });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
