// A2 — Insight 2 ablation: "One size does not fit all" — one global model
// vs per-customer micro models vs the "happy middle ground" of segment
// models (stratify the data, one model per cluster).
//
// Task: predict a customer's resource usage from its profile, where the
// population is a mixture of segments with different usage laws and
// per-customer idiosyncrasies. We sweep the granularity and report
// accuracy and the number of models to manage.

#include <cstdio>

#include <map>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "ml/kmeans.h"
#include "ml/linear.h"

using namespace ads;  // NOLINT: bench brevity

namespace {

struct Example {
  int customer = 0;
  int segment = 0;
  std::vector<double> features;
  double usage = 0.0;
};

// Three customer segments with different usage laws; each customer adds a
// personal offset. Few observations per customer.
std::vector<Example> MakePopulation(size_t customers, size_t obs_per_customer,
                                    uint64_t seed) {
  std::vector<Example> out;
  for (size_t c = 0; c < customers; ++c) {
    // Per-customer stream: the customer's identity (segment, personal
    // offset) is stable across train/test regardless of how many
    // observations are drawn.
    common::Rng rng(seed * 7919 + c);
    int segment = static_cast<int>(rng.UniformInt(0, 2));
    double personal = rng.Normal(0, 3.0);
    // Decorrelate train and test observations.
    for (size_t skip = 0; skip < 4 * obs_per_customer; ++skip) rng.Uniform();
    for (size_t o = 0; o < obs_per_customer; ++o) {
      double x1 = rng.Uniform(0, 10);
      double x2 = rng.Uniform(0, 10);
      double y = personal + rng.Normal(0, 1.0);
      // Segment-specific laws (the heterogeneity a global model fights).
      if (segment == 0) y += 5.0 * x1 + 0.5 * x2;
      if (segment == 1) y += 0.5 * x1 + 5.0 * x2;
      if (segment == 2) y += 2.0 * x1 - 2.0 * x2 + 30.0;
      out.push_back({static_cast<int>(c), segment, {x1, x2}, y});
    }
  }
  return out;
}

double Rmse(const std::vector<double>& t, const std::vector<double>& p) {
  return common::RootMeanSquaredError(t, p);
}

}  // namespace

int main() {
  constexpr size_t kCustomers = 150;
  constexpr size_t kObs = 8;  // few observations per customer
  auto train = MakePopulation(kCustomers, kObs, 1);
  auto test = MakePopulation(kCustomers, 2, 1);  // same customers/segments

  common::Table table({"granularity", "models to manage", "test RMSE",
                       "notes"});

  // Global model: one linear fit over everything.
  {
    ml::Dataset data;
    for (const auto& e : train) data.Add(e.features, e.usage);
    ml::LinearRegressor model;
    ADS_CHECK_OK(model.Fit(data));
    std::vector<double> truth;
    std::vector<double> pred;
    for (const auto& e : test) {
      truth.push_back(e.usage);
      pred.push_back(model.Predict(e.features));
    }
    table.AddRow({"global (1 model)", "1", common::Table::Num(Rmse(truth, pred), 2),
                  "broad but imprecise"});
  }

  // Segment models: k-means on (features, usage mix) then one model each.
  {
    // Cluster customers by their mean usage law coefficients proxy: use
    // per-customer mean (x1-weighted, x2-weighted) responses.
    std::map<int, std::vector<const Example*>> by_customer;
    for (const auto& e : train) by_customer[e.customer].push_back(&e);
    std::vector<std::vector<double>> points;
    std::vector<int> customer_ids;
    for (const auto& [id, examples] : by_customer) {
      // Fit a tiny per-customer linear model and use its weights as the
      // clustering signature (what stratifies the data naturally).
      ml::Dataset d;
      for (const auto* e : examples) d.Add(e->features, e->usage);
      ml::LinearRegressor m;
      if (!m.Fit(d).ok()) continue;
      points.push_back({m.weights()[0], m.weights()[1]});
      customer_ids.push_back(id);
    }
    ml::KMeans km({.k = 3, .seed = 2});
    ADS_CHECK_OK(km.Fit(points));
    std::map<int, size_t> customer_cluster;
    for (size_t i = 0; i < customer_ids.size(); ++i) {
      customer_cluster[customer_ids[i]] = km.labels()[i];
    }
    // One model per cluster.
    std::vector<ml::Dataset> cluster_data(3);
    for (const auto& e : train) {
      cluster_data[customer_cluster[e.customer]].Add(e.features, e.usage);
    }
    std::vector<ml::LinearRegressor> models(3);
    for (int k = 0; k < 3; ++k) ADS_CHECK_OK(models[k].Fit(cluster_data[k]));
    std::vector<double> truth;
    std::vector<double> pred;
    for (const auto& e : test) {
      truth.push_back(e.usage);
      pred.push_back(models[customer_cluster[e.customer]].Predict(e.features));
    }
    table.AddRow({"segment (k-means, 3 models)", "3",
                  common::Table::Num(Rmse(truth, pred), 2),
                  "the happy middle ground"});
  }

  // Micro models: one per customer (8 observations each).
  {
    std::map<int, ml::Dataset> per_customer;
    for (const auto& e : train) per_customer[e.customer].Add(e.features, e.usage);
    std::map<int, ml::LinearRegressor> models;
    for (auto& [id, data] : per_customer) {
      ml::LinearRegressor m(1.0);  // needs ridge: tiny datasets
      if (m.Fit(data).ok()) models[id] = std::move(m);
    }
    std::vector<double> truth;
    std::vector<double> pred;
    for (const auto& e : test) {
      truth.push_back(e.usage);
      pred.push_back(models[e.customer].Predict(e.features));
    }
    table.AddRow({"micro (per customer)", std::to_string(models.size()),
                  common::Table::Num(Rmse(truth, pred), 2),
                  "accurate iff data suffices; costly to manage"});
  }

  table.Print("A2 | Insight 2: model granularity trade-off");
  std::printf("\nWith only %zu observations per customer, segment models "
              "beat the global model on accuracy\nwhile keeping the model "
              "count manageable — the paper's middle ground.\n", kObs);
  return 0;
}
