// A3 — Insight 3 ablation: "Feedback loop is indispensable". A deployed
// model faces concept drift; we compare a static deployment against the
// full loop (monitoring -> rollback -> retrain) on cumulative serving
// error.
//
// Scenario: a cardinality-style regression model serves predictions while
// the underlying data distribution shifts mid-stream. The feedback loop's
// monitor alarms, rolls back to the previous (more general) version, and
// requests a retrain that then deploys.

#include <cstdio>

#include "autonomy/feedback.h"
#include "common/rng.h"
#include "common/table.h"
#include "ml/linear.h"
#include "ml/registry.h"

using namespace ads;  // NOLINT: bench brevity

namespace {

// World: y = slope * x; slope drifts from 2.0 to 5.0 at t = kDriftAt.
constexpr int kSteps = 600;
constexpr int kDriftAt = 250;

double TrueSlope(int t) { return t < kDriftAt ? 2.0 : 5.0; }

ml::LinearRegressor FitOnWindow(const std::vector<std::pair<double, double>>&
                                    window) {
  ml::Dataset d;
  for (const auto& [x, y] : window) d.Add({x}, y);
  ml::LinearRegressor m;
  ADS_CHECK_OK(m.Fit(d));
  return m;
}

}  // namespace

int main() {
  common::Rng rng(3);

  // Pre-drift training data -> v1 (trained on a broad window, slope ~2)
  // and v2 (overfit to a recent quirk: slope 1.6 — the "improved" model
  // that will regress hard after the drift).
  std::vector<std::pair<double, double>> early;
  for (int i = 0; i < 100; ++i) {
    double x = rng.Uniform(1, 10);
    early.emplace_back(x, 2.0 * x + rng.Normal(0, 0.5));
  }
  ml::LinearRegressor v1 = FitOnWindow(early);
  ml::LinearRegressor v2;
  v2.SetCoefficients(0.5, {1.6});

  // Static deployment: v2 forever.
  // Feedback deployment: registry with v1 -> v2 deployed, loop active.
  ml::ModelRegistry registry;
  registry.Register("m", v1.Serialize());
  registry.Register("m", v2.Serialize());
  ADS_CHECK_OK(registry.Deploy("m", 1));
  ADS_CHECK_OK(registry.Deploy("m", 2));
  autonomy::FeedbackLoop loop(
      &registry,
      {.detector = {.baseline_window = 30, .recent_window = 10,
                    .degradation_factor = 2.5, .min_absolute_error = 0.2}});

  double static_error = 0.0;
  double loop_error = 0.0;
  size_t retrains = 0;
  std::vector<std::pair<double, double>> recent;
  common::Table timeline({"step", "event"});

  for (int t = 0; t < kSteps; ++t) {
    double x = rng.Uniform(1, 10);
    double y = TrueSlope(t) * x + rng.Normal(0, 0.5);
    recent.emplace_back(x, y);
    if (recent.size() > 60) recent.erase(recent.begin());

    static_error += std::abs(v2.Predict({x}) - y);

    auto serving = registry.DeployedModel("m");
    ADS_CHECK_OK(serving.status());
    double pred = (*serving)->Predict({x});
    loop_error += std::abs(pred - y);
    autonomy::FeedbackAction action = loop.ReportObservation("m", y, pred);
    if (action == autonomy::FeedbackAction::kRolledBack) {
      timeline.AddRow({std::to_string(t), "drift alarm -> rolled back to v" +
                                              std::to_string(
                                                  registry.DeployedVersion("m"))});
      recent.clear();  // retrain on data observed after the alarm only
    }
    // Retrain worker: when requested and enough fresh data, retrain+deploy.
    if (loop.RetrainPending("m") && recent.size() >= 40) {
      ml::LinearRegressor fresh = FitOnWindow(recent);
      uint32_t v = registry.Register("m", fresh.Serialize());
      ADS_CHECK_OK(registry.Deploy("m", v));
      loop.NotifyRetrained("m");
      ++retrains;
      timeline.AddRow({std::to_string(t),
                       "retrained on fresh window -> deployed v" +
                           std::to_string(v)});
    }
  }
  timeline.Print("A3 | feedback-loop timeline (drift injected at step " +
                 std::to_string(kDriftAt) + ")");

  common::Table table({"deployment", "cumulative |error|", "rollbacks",
                       "retrains"});
  table.AddRow({"static model (no loop)", common::Table::Num(static_error, 0),
                "0", "0"});
  table.AddRow({"monitor + rollback + retrain",
                common::Table::Num(loop_error, 0),
                std::to_string(loop.rollbacks()), std::to_string(retrains)});
  table.Print("A3 | Insight 3: the feedback loop vs a static deployment");
  std::printf("\nPaper: well-tested solutions still need monitoring and a "
              "fast rollback to avoid regression.\nMeasured: the loop cuts "
              "cumulative serving error by %.0f%% across the drift.\n",
              (1.0 - loop_error / static_error) * 100.0);
  return 0;
}
