// E10 — §4.2 (Phoebe [52]): the learned checkpoint optimizer "free[d] the
// temporary storage on hotspots by more than 70% and restart[ed] failed
// jobs 68% faster on average with minimal impact on performance".
//
// We train the per-stage predictors on history, choose LP-based cuts for a
// held-out batch under several global persisted-bytes budgets, and
// measure: temp storage freed on the hottest machine, restart time after a
// failure, and job makespan impact.

#include <cstdio>

#include "common/table.h"
#include "engine/executor.h"
#include "engine/optimizer.h"
#include "learned/checkpoint.h"
#include "workload/query_gen.h"

using namespace ads;  // NOLINT: bench brevity

int main() {
  workload::QueryGenerator gen({.num_templates = 20,
                                .recurring_fraction = 1.0,
                                .shared_fragment_fraction = 0.6,
                                .seed = 43});
  engine::Optimizer optimizer(&gen.catalog());
  engine::CostModel cost_model;
  engine::JobSimulator simulator;

  auto run_batch = [&](int count) {
    std::vector<engine::StageGraph> graphs;
    for (int i = 0; i < count; ++i) {
      auto job = gen.NextJob();
      auto plan = optimizer.Optimize(*job.plan, engine::RuleConfig::Default());
      graphs.push_back(engine::CompileToStages(*plan, cost_model,
                                               engine::CardSource::kTrue));
    }
    return graphs;
  };

  // Train stage predictors on history.
  auto history = run_batch(120);
  std::vector<learned::StageObservation> observations;
  for (const auto& g : history) {
    for (const engine::Stage& s : g.stages) {
      observations.push_back({learned::StageFeatures(g, s), s.work,
                              s.output_bytes});
    }
  }
  learned::StagePredictor predictor;
  ADS_CHECK_OK(predictor.Train(observations));

  // Held-out jobs.
  auto jobs = run_batch(40);
  std::vector<const engine::StageGraph*> graph_ptrs;
  for (const auto& g : jobs) graph_ptrs.push_back(&g);

  // Baselines (no checkpoints).
  // Accelerated failure rate: simulated jobs run tens of seconds, so the
  // rate is scaled so that a realistic share (~1/4) of runs see a failure.
  constexpr double kFailuresPerHour = 30.0;
  double temp_base = 0.0;
  double restart_base = 0.0;
  double makespan_base = 0.0;
  double failure_runtime_base = 0.0;
  for (size_t j = 0; j < jobs.size(); ++j) {
    uint64_t seed = 100 + j;
    engine::JobRun base = simulator.Execute(jobs[j], seed);
    temp_base += base.PeakTempOnBusiestMachine();
    makespan_base += base.makespan;
    restart_base += simulator.RestartTime(jobs[j], seed);
    failure_runtime_base += simulator.ExpectedRuntimeWithFailures(
        jobs[j], seed, kFailuresPerHour);
  }

  common::Table table({"persist budget", "jobs cut", "hotspot temp",
                       "restart time", "makespan",
                       "E[runtime] w/ failures"});
  table.AddRow({"none (baseline)", "0", "-0.0%", "-0.0%", "+0.0%", "+0.0%"});
  for (double budget : {5e8, 4e9, 5e10}) {
    learned::CheckpointOptimizer chooser(
        {.budget_bytes = budget});
    auto choices = chooser.Choose(graph_ptrs, &predictor);
    ADS_CHECK_OK(choices.status());
    std::map<size_t, const learned::CheckpointChoice*> by_job;
    for (const auto& c : *choices) by_job[c.job_index] = &c;

    double temp = 0.0;
    double restart = 0.0;
    double makespan = 0.0;
    double failure_runtime = 0.0;
    for (size_t j = 0; j < jobs.size(); ++j) {
      std::set<int> cut;
      if (by_job.count(j) > 0) cut = by_job[j]->stages;
      uint64_t seed = 100 + j;
      engine::JobRun run = simulator.Execute(jobs[j], seed, cut);
      temp += run.PeakTempOnBusiestMachine();
      makespan += run.makespan;
      restart += simulator.RestartTime(jobs[j], seed, cut);
      failure_runtime += simulator.ExpectedRuntimeWithFailures(
          jobs[j], seed, kFailuresPerHour, cut);
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f GB", budget / 1e9);
    table.AddRow({label, std::to_string(choices->size()),
                  common::Table::Pct(temp / temp_base - 1.0),
                  common::Table::Pct(restart / restart_base - 1.0),
                  common::Table::Pct(makespan / makespan_base - 1.0),
                  common::Table::Pct(
                      failure_runtime / failure_runtime_base - 1.0)});
  }
  table.Print("E10 | Phoebe LP cuts vs persisted-bytes budget (40 held-out "
              "jobs, predicted stage stats)");
  std::printf("\nPaper: >70%% hotspot temp storage freed, 68%% faster "
              "restarts, minimal performance impact.\nMeasured above: the "
              "generous-budget row is the paper's operating point; tighter "
              "budgets trade both gains down.\n");
  return 0;
}
