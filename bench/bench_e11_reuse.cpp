// E11 — §4.2 (CloudViews [21, 22, 43]): signature-based computation reuse.
// Deployed on Cosmos it gave "34% improvement on the accumulative job
// latency, and 37% reduced total processing time".
//
// We observe one day of jobs, select materialized views under a storage
// budget, then replay the next day with view rewrites and report
// cumulative latency and total processing time.

#include <cstdio>

#include "common/table.h"
#include "engine/executor.h"
#include "engine/optimizer.h"
#include "learned/reuse.h"
#include "workload/query_gen.h"

using namespace ads;  // NOLINT: bench brevity

int main() {
  workload::QueryGenerator gen({.num_templates = 30,
                                .recurring_fraction = 0.85,
                                .shared_fragment_fraction = 0.9,
                                .num_shared_fragments = 5,
                                .seed = 47});
  engine::Optimizer optimizer(&gen.catalog());
  engine::CostModel cost_model;
  engine::JobSimulator simulator;

  // Day 1: observe.
  learned::ReuseManager reuse;
  for (int i = 0; i < 400; ++i) {
    auto job = gen.NextJob();
    reuse.ObserveJob(job.job_id, *job.plan, cost_model);
  }
  auto views = reuse.SelectViews(/*budget_bytes=*/3e10);
  auto candidates = reuse.Candidates(2);
  // The paper's extension: containment views serve recurring filter
  // templates whose literals vary run to run.
  auto cviews = reuse.SelectContainmentViews(/*budget_bytes=*/3e10);

  // Day 2: replay with and without reuse on identical jobs/seeds.
  double latency_before = 0.0;
  double latency_after = 0.0;
  double latency_containment = 0.0;
  double compute_before = 0.0;
  double compute_after = 0.0;
  double compute_containment = 0.0;
  size_t rewrites = 0;
  size_t c_exact = 0;
  size_t c_contained = 0;
  constexpr int kJobs = 400;
  // Containment rewriting gets BOTH view kinds (exact first, then umbrella).
  std::vector<learned::MaterializedView> all_views = views;
  all_views.insert(all_views.end(), cviews.begin(), cviews.end());
  for (int i = 0; i < kJobs; ++i) {
    auto job = gen.NextJob();
    uint64_t seed = 5000 + static_cast<uint64_t>(i);

    auto plan = optimizer.Optimize(*job.plan, engine::RuleConfig::Default());
    auto stages = engine::CompileToStages(*plan, cost_model,
                                          engine::CardSource::kTrue);
    auto run = simulator.Execute(stages, seed);
    latency_before += run.makespan;
    compute_before += run.total_compute;

    auto rewritten = learned::ReuseManager::Rewrite(*job.plan, views, &rewrites);
    engine::AnnotateTrueCardinality(*rewritten);
    auto plan_v = optimizer.Optimize(*rewritten, engine::RuleConfig::Default());
    auto stages_v = engine::CompileToStages(*plan_v, cost_model,
                                            engine::CardSource::kTrue);
    auto run_v = simulator.Execute(stages_v, seed);
    latency_after += run_v.makespan;
    compute_after += run_v.total_compute;

    auto rewritten_c = learned::ReuseManager::RewriteWithContainment(
        *job.plan, all_views, &c_exact, &c_contained);
    engine::AnnotateTrueCardinality(*rewritten_c);
    auto plan_c =
        optimizer.Optimize(*rewritten_c, engine::RuleConfig::Default());
    auto stages_c = engine::CompileToStages(*plan_c, cost_model,
                                            engine::CardSource::kTrue);
    auto run_c = simulator.Execute(stages_c, seed);
    latency_containment += run_c.makespan;
    compute_containment += run_c.total_compute;
  }

  common::Table setup({"view selection", "value"});
  setup.AddRow({"candidate shared subexpressions",
                std::to_string(candidates.size())});
  setup.AddRow({"views materialized", std::to_string(views.size())});
  setup.AddRow({"jobs rewritten next day",
                std::to_string(rewrites) + " rewrites in " +
                    std::to_string(kJobs) + " jobs"});
  setup.Print("E11 | CloudViews selection");

  common::Table table({"metric", "paper", "no reuse", "with views",
                       "measured change"});
  table.AddRow({"cumulative job latency (s)", "-34%",
                common::Table::Num(latency_before, 0),
                common::Table::Num(latency_after, 0),
                common::Table::Pct(latency_after / latency_before - 1.0)});
  table.AddRow({"total processing time (slot-s)", "-37%",
                common::Table::Num(compute_before, 0),
                common::Table::Num(compute_after, 0),
                common::Table::Pct(compute_after / compute_before - 1.0)});
  table.Print("E11 | computation reuse on the next day's workload");

  common::Table ext({"extension: + containment views", "value"});
  ext.AddRow({"umbrella views materialized", std::to_string(cviews.size())});
  ext.AddRow({"rewrites (exact / contained)",
              std::to_string(c_exact) + " / " + std::to_string(c_contained)});
  ext.AddRow({"cumulative latency change",
              common::Table::Pct(latency_containment / latency_before - 1.0)});
  ext.AddRow({"processing time change",
              common::Table::Pct(compute_containment / compute_before - 1.0)});
  ext.Print("E11 | semantically-contained reuse (the paper's extension)");
  return 0;
}
