// E12 — §4.2 (Pipemizer [14]): optimizing recurrent query pipelines by
// "collecting pipeline-aware statistics and pushing common subexpressions
// across consumer jobs to their producer job".
//
// We generate recurring pipelines whose consumer jobs share subexpressions
// and measure pipeline cost before/after pushing.

#include <cstdio>

#include "common/table.h"
#include "common/rng.h"
#include "learned/job_scheduling.h"
#include "learned/pipeline_opt.h"
#include "workload/pipeline_gen.h"
#include "workload/query_gen.h"

using namespace ads;  // NOLINT: bench brevity

int main() {
  workload::QueryGenerator gen({.num_templates = 12,
                                .recurring_fraction = 1.0,
                                .shared_fragment_fraction = 0.9,
                                .num_shared_fragments = 2,
                                .seed = 53});
  workload::PipelineGenerator pipeline_gen(gen.num_templates(),
                                           {.pipelined_fraction = 0.7,
                                            .min_pipeline_jobs = 3,
                                            .max_pipeline_jobs = 6,
                                            .seed = 54});
  engine::CostModel cost_model;
  learned::PipelineOptimizer optimizer;

  workload::DailyWorkload day = pipeline_gen.GenerateDay(120);
  double total_before = 0.0;
  double total_after = 0.0;
  size_t pushed = 0;
  size_t improved = 0;
  common::Table per_pipeline({"pipeline", "jobs", "pushed", "cost change"});
  for (const auto& pipeline : day.pipelines) {
    std::vector<workload::JobInstance> jobs;
    std::vector<const engine::PlanNode*> plans;
    for (size_t tmpl : pipeline.job_templates) {
      jobs.push_back(gen.InstantiateTemplate(tmpl));
      plans.push_back(jobs.back().plan.get());
    }
    auto result = optimizer.Optimize(plans, cost_model);
    // Apply only when pushing pays (the production deployment rule).
    double after = std::min(result.cost_after, result.cost_before);
    total_before += result.cost_before;
    total_after += after;
    pushed += result.subexpressions_pushed;
    if (after < result.cost_before) ++improved;
    if (per_pipeline.ToText().size() < 1200) {  // first few rows only
      per_pipeline.AddRow({std::to_string(pipeline.id),
                           std::to_string(pipeline.size()),
                           std::to_string(result.subexpressions_pushed),
                           common::Table::Pct(after / result.cost_before - 1.0)});
    }
  }
  per_pipeline.Print("E12 | sample of optimized pipelines");

  common::Table table({"metric", "value"});
  table.AddRow({"pipelines optimized", std::to_string(day.pipelines.size())});
  table.AddRow({"pipelines improved", std::to_string(improved)});
  table.AddRow({"subexpressions pushed to producers", std::to_string(pushed)});
  table.AddRow({"total pipeline cost change",
                common::Table::Pct(total_after / total_before - 1.0)});
  table.Print("E12 | Pipemizer on one day of recurring pipelines");
  std::printf("\nPaper: pushing common subexpressions to producer jobs "
              "optimizes recurrent pipelines.\nMeasured: %.1f%% cost "
              "reduction across the day's pipelines.\n",
              (1.0 - total_after / total_before) * 100.0);

  // Companion result ([8]): the mined inter-job dependencies also improve
  // cluster scheduling of the same pipelines.
  common::Rng rng(99);
  std::vector<learned::ScheduledJob> sched_jobs;
  for (const auto& pipeline : day.pipelines) {
    int base = static_cast<int>(sched_jobs.size());
    for (size_t j = 0; j < pipeline.size(); ++j) {
      learned::ScheduledJob job;
      job.pipeline = pipeline.id;
      job.duration = rng.Uniform(30.0, 300.0);
      for (const auto& [from, to] : pipeline.edges) {
        if (to == static_cast<int>(j)) job.deps.push_back(base + from);
      }
      sched_jobs.push_back(std::move(job));
    }
  }
  for (size_t s = 0; s < day.standalone_templates.size(); ++s) {
    sched_jobs.push_back({.pipeline = -1,
                          .duration = rng.Uniform(30.0, 300.0),
                          .deps = {}});
  }
  common::Table sched({"scheduling policy", "mean pipeline completion (s)",
                       "makespan (s)"});
  for (auto policy : {learned::SchedulingPolicy::kFifo,
                      learned::SchedulingPolicy::kShortestFirst,
                      learned::SchedulingPolicy::kShortestPipelineFirst,
                      learned::SchedulingPolicy::kCriticalPath}) {
    auto out = learned::SchedulePipelines(sched_jobs, 12, policy);
    ADS_CHECK_OK(out.status());
    sched.AddRow({learned::SchedulingPolicyName(policy),
                  common::Table::Num(out->mean_pipeline_completion, 0),
                  common::Table::Num(out->makespan, 0)});
  }
  sched.Print("E12 | dependency-aware job scheduling over the same day");
  return 0;
}
