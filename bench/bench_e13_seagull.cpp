// E13 — §4.3 (Seagull [40]): automated backup scheduling. "The system
// identifies low load windows with 99% accuracy"; and per Insight 1, "a
// simple heuristic that predicts the load of a server based on that of the
// previous day was already sufficient to generate 96% accuracy" for
// servers with stable patterns.

#include <cstdio>

#include "common/table.h"
#include "service/seagull.h"
#include "workload/usage_gen.h"

using namespace ads;  // NOLINT: bench brevity

int main() {
  auto traces = workload::GenerateServerLoads(
      2000, {.hours = 24 * 21, .stable_fraction = 0.98, .noise = 0.05,
             .anomaly_probability_per_day = 0.05, .seed = 59});

  common::Table table({"method", "paper", "window accuracy",
                       "mean load vs optimal"});
  struct Row {
    service::BackupMethod method;
    const char* paper;
  };
  for (const Row& row : {Row{service::BackupMethod::kHourOfDayMean, "99%"},
                         Row{service::BackupMethod::kWeightedHourOfDayMean,
                             "-"},
                         Row{service::BackupMethod::kPreviousDay, "96%"}}) {
    auto eval = service::EvaluateBackupScheduling(traces, row.method);
    ADS_CHECK_OK(eval.status());
    table.AddRow({service::BackupMethodName(row.method), row.paper,
                  common::Table::Pct(eval->accuracy),
                  common::Table::Num(eval->mean_load_ratio, 2) + "x"});
  }
  table.Print("E13 | low-load backup window detection (" +
              std::to_string(traces.size()) + " servers)");
  std::printf("\nPaper shape: the per-server model reaches ~99%%; the "
              "previous-day heuristic is already ~96%% —\nsimplicity rules, "
              "and the ML margin comes from robustness to one-off "
              "anomalies.\n");
  return 0;
}
