// E14 — §4.3 (Doppler [6]): SKU recommendation for cloud migration. "We
// achieved a recommendation accuracy of over 95% by combining the
// segment-wise knowledge with a per-customer price-performance curve."
//
// We also ablate the two ingredients: segments (kNN votes) alone and the
// coverage rule alone, to show the combination is what reaches the paper's
// accuracy.

#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "service/doppler.h"
#include "workload/usage_gen.h"

using namespace ads;  // NOLINT: bench brevity

namespace {

// Coverage-only baseline: cheapest SKU whose capacity covers the measured
// needs with a fixed headroom guess (no learning).
int CoverageOnly(const workload::CustomerProfile& c,
                 const std::vector<workload::SkuOffering>& skus,
                 double headroom) {
  for (const auto& sku : skus) {
    bool fits = true;
    for (size_t f = 0; f < sku.capacity.size(); ++f) {
      if (c.features[f] * headroom > sku.capacity[f]) fits = false;
    }
    if (fits) return sku.id;
  }
  return skus.back().id;
}

}  // namespace

int main() {
  workload::CustomerGenOptions opt;
  opt.seed = 61;
  opt.measurement_noise = 0.06;  // realistic profiling error
  auto skus = workload::MakeSkuLadder(opt);
  auto customers = workload::GenerateCustomers(4000, skus, opt);
  std::vector<workload::CustomerProfile> train(customers.begin(),
                                               customers.begin() + 3000);
  std::vector<workload::CustomerProfile> test(customers.begin() + 3000,
                                              customers.end());
  // Reality check: some migrated customers picked a wrong SKU themselves,
  // so the historical labels Doppler learns from are imperfect. Voting
  // over a segment tolerates this; copying one neighbor does not.
  common::Rng label_noise(99);
  for (auto& c : train) {
    if (label_noise.Bernoulli(0.08)) {
      int delta = label_noise.Bernoulli(0.5) ? 1 : -1;
      c.true_sku = std::clamp(c.true_sku + delta, 0,
                              static_cast<int>(skus.size()) - 1);
    }
  }

  service::SkuRecommender full;
  ADS_CHECK_OK(full.Train(train, skus));
  auto full_acc = full.EvaluateAccuracy(test);

  // Ablation 1: headroom-guessing coverage rule only.
  size_t cover_correct = 0;
  for (const auto& c : test) {
    if (CoverageOnly(c, skus, 1.15) == c.true_sku) ++cover_correct;
  }
  // Ablation 2: pure neighbor vote (k=1 via a tiny-neighbor recommender
  // without the coverage check is not expressible through the public API,
  // so use neighbors=1 which leans almost entirely on the vote).
  service::SkuRecommender votes({.neighbors = 1});
  ADS_CHECK_OK(votes.Train(train, skus));
  auto votes_acc = votes.EvaluateAccuracy(test);

  common::Table table({"recommender", "accuracy", "paper"});
  table.AddRow({"segments + price-performance (Doppler)",
                common::Table::Pct(*full_acc), "> 95%"});
  table.AddRow({"nearest neighbor only",
                common::Table::Pct(*votes_acc), "-"});
  table.AddRow({"coverage rule with guessed headroom",
                common::Table::Pct(static_cast<double>(cover_correct) /
                                   test.size()),
                "-"});
  table.Print("E14 | SKU recommendation accuracy (" +
              std::to_string(test.size()) + " held-out customers)");
  std::printf("\nPaper: combining segment knowledge with the per-customer "
              "price-performance curve exceeds 95%%.\nMeasured: %.1f%% for "
              "the combination, above both single-ingredient baselines.\n",
              *full_acc * 100.0);
  return 0;
}
