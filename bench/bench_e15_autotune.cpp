// E15 — §4.3 (Spark auto-tuning on the AutoToken substrate [45]): "We
// start with a global model trained using data from multiple benchmark
// queries. While the global model may not be highly accurate, it serves as
// a reasonable starting point and is fine-tuned for each application as
// more observational data becomes available."
//
// We pool benchmark data from sibling Spark applications, train the global
// prior, and tune NEW applications with and without it, reporting the
// convergence curves. AutoToken's peak-parallelism predictor supplies the
// resource side.

#include <cstdio>

#include "common/table.h"
#include "service/autotoken.h"
#include "service/autotuner.h"
#include "workload/response_surface.h"

using namespace ads;  // NOLINT: bench brevity

int main() {
  constexpr uint64_t kFamily = 67;
  common::Rng rng(71);

  // Benchmark pool from 10 existing applications.
  std::vector<std::pair<std::vector<double>, double>> pool;
  for (uint64_t app = 0; app < 10; ++app) {
    auto sibling = workload::MakeSparkSurfaceInFamily(kFamily, 100 + app);
    for (int i = 0; i < 50; ++i) {
      std::vector<double> config;
      for (const auto& k : sibling.knobs()) {
        config.push_back(rng.Uniform(k.min_value, k.max_value));
      }
      pool.emplace_back(service::IterativeTuner::Normalize(sibling, config),
                        sibling.MeasureThroughput(config, rng));
    }
  }
  service::IterativeTuner tuner;
  ADS_CHECK_OK(tuner.TrainGlobalPrior(pool));

  // Tune 8 new applications, 15-run budget each.
  constexpr size_t kBudget = 15;
  std::vector<double> curve_prior(kBudget, 0.0);
  std::vector<double> curve_scratch(kBudget, 0.0);
  double default_sum = 0.0;
  double optimum_sum = 0.0;
  constexpr int kApps = 8;
  for (int app = 0; app < kApps; ++app) {
    auto target = workload::MakeSparkSurfaceInFamily(
        kFamily, 900 + static_cast<uint64_t>(app));
    default_sum += target.TrueThroughput(target.DefaultConfig());
    optimum_sum += target.peak_throughput();
    common::Rng r1(200 + static_cast<uint64_t>(app));
    common::Rng r2(200 + static_cast<uint64_t>(app));
    auto with_prior = tuner.Tune(target, kBudget, r1, true);
    auto scratch = tuner.Tune(target, kBudget, r2, false);
    ADS_CHECK_OK(with_prior.status());
    ADS_CHECK_OK(scratch.status());
    for (size_t i = 0; i < kBudget; ++i) {
      curve_prior[i] += with_prior->incumbent_curve[i];
      curve_scratch[i] += scratch->incumbent_curve[i];
    }
  }

  common::Table curve({"benchmark runs", "from scratch", "global prior",
                       "(mean best-found throughput)"});
  for (size_t i : {size_t(0), size_t(1), size_t(3), size_t(7), size_t(14)}) {
    curve.AddRow({std::to_string(i + 1),
                  common::Table::Num(curve_scratch[i] / kApps, 0),
                  common::Table::Num(curve_prior[i] / kApps, 0), ""});
  }
  curve.AddRow({"(defaults)", common::Table::Num(default_sum / kApps, 0),
                common::Table::Num(default_sum / kApps, 0), ""});
  curve.AddRow({"(optimum)", common::Table::Num(optimum_sum / kApps, 0),
                common::Table::Num(optimum_sum / kApps, 0), ""});
  curve.Print("E15 | tuning convergence with vs without the global prior");
  std::printf("\nPaper: the global model is a reasonable starting point, "
              "then per-app fine-tuning takes over.\nMeasured: after 2 runs "
              "the prior-seeded tuner is at %.0f vs %.0f from scratch; both "
              "converge with more observations.\n",
              curve_prior[1] / kApps, curve_scratch[1] / kApps);

  // AutoToken: the resource predictor that feeds admission.
  service::AutoToken autotoken({.min_samples = 5});
  common::Rng ar(73);
  for (int i = 0; i < 40; ++i) {
    double gb = ar.Uniform(1, 200);
    autotoken.Observe(1, {gb}, 2.5 * gb + ar.Normal(0, 2.0));
  }
  ADS_CHECK_OK(autotoken.Train());
  auto peak = autotoken.PredictPeak(1, {120.0});
  std::printf("\nAutoToken: predicted peak parallelism for a 120 GB run of "
              "the recurring job: %.0f tokens (truth ~%.0f, margin 1.1x).\n",
              *peak, 2.5 * 120.0);
  return 0;
}
