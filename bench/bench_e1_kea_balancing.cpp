// E1 — §4.1 (KEA [53]): model-driven tuning of scheduler configuration.
//
// KEA learned machine-behaviour models from telemetry and fed them into an
// optimizer that set per-SKU "maximum running containers" to balance load
// across Cosmos machine generations. We reproduce the loop: run with
// default caps, learn cpu-per-container per SKU, solve the cap LP, re-run,
// and report hotspot count and tail latency.

#include <cstdio>

#include "common/simplex.h"
#include "common/table.h"
#include "infra/scheduler.h"
#include "ml/linear.h"
#include "telemetry/store.h"

using namespace ads;  // NOLINT: bench brevity

namespace {

struct DayResult {
  int hotspots = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  uint64_t completed = 0;
};

infra::Cluster MakeFleet() {
  infra::SkuSpec gen3{.name = "gen3", .default_max_containers = 24,
                      .cpu_per_container = 0.08, .util_knee = 0.65,
                      .slowdown_per_util = 3.5};
  infra::SkuSpec gen4{.name = "gen4", .default_max_containers = 24,
                      .cpu_per_container = 0.05, .util_knee = 0.75,
                      .slowdown_per_util = 2.5};
  infra::SkuSpec gen5{.name = "gen5", .default_max_containers = 24,
                      .cpu_per_container = 0.03, .util_knee = 0.8,
                      .slowdown_per_util = 2.0};
  infra::Cluster cluster;
  cluster.AddMachines(gen3, 6, 2);
  cluster.AddMachines(gen4, 6, 2);
  cluster.AddMachines(gen5, 6, 2);
  return cluster;
}

DayResult RunDay(infra::Cluster& cluster, const infra::SchedulerConfig& config,
                 telemetry::TelemetryStore* telemetry, uint64_t seed) {
  common::EventQueue queue;
  infra::ClusterScheduler scheduler(&cluster, &queue, telemetry, seed);
  scheduler.SetConfig(config);
  common::Rng rng(seed);
  for (int i = 0; i < 6200; ++i) {
    double when = rng.Uniform(0.0, common::Hours(4));
    queue.ScheduleAt(when, [&scheduler, &rng, i](common::SimTime) {
      scheduler.Submit({.id = static_cast<uint64_t>(i),
                        .base_duration = rng.Uniform(400.0, 900.0)});
    });
  }
  for (double t = 0.0; t < common::Hours(6); t += 60.0) {
    queue.ScheduleAt(t, [&scheduler](common::SimTime) {
      scheduler.SampleTelemetry();
    });
  }
  queue.RunAll();
  return {scheduler.HotspotCount(0.9), scheduler.task_latency().Quantile(0.5),
          scheduler.task_latency().Quantile(0.95),
          scheduler.completed_tasks()};
}

}  // namespace

int main() {
  // Day 1: defaults, with telemetry.
  infra::Cluster fleet1 = MakeFleet();
  telemetry::TelemetryStore telemetry;
  DayResult before = RunDay(fleet1, infra::SchedulerConfig{}, &telemetry, 1);

  // Learn per-SKU behaviour and solve for caps: max total capacity subject
  // to predicted utilization at the knee per SKU (a small LP per SKU,
  // mirroring KEA's optimizer stage).
  infra::SchedulerConfig tuned;
  common::Table models({"sku", "learned cpu/container", "tuned cap"});
  for (const std::string& sku_name :
       {std::string("gen3"), std::string("gen4"), std::string("gen5")}) {
    ml::Dataset data;
    for (const auto& series :
         telemetry.Select("system.cpu.utilization", {{"sku", sku_name}})) {
      auto containers =
          telemetry.QueryAll("container.running.count", series.labels);
      for (size_t i = 0; i < series.points.size() && i < containers.size();
           ++i) {
        // Fit on the unsaturated region only: clamped (saturated) samples
        // flatten the slope and would under-protect the machines.
        if (series.points[i].value >= 0.95) continue;
        data.Add({containers[i].value}, series.points[i].value);
      }
    }
    ml::LinearRegressor model;
    if (!model.Fit(data).ok() || model.weights()[0] <= 0.0) continue;
    double knee = sku_name == "gen3" ? 0.65 : (sku_name == "gen4" ? 0.75 : 0.8);
    common::LinearProgram lp;
    lp.objective = {1.0};
    lp.constraints.push_back(
        {{model.weights()[0]}, common::ConstraintSense::kLessEqual,
         knee - model.intercept()});
    auto sol = common::SolveLp(lp);
    if (sol.ok() && sol->status == common::LpStatus::kOptimal) {
      int cap = std::max(1, static_cast<int>(sol->x[0]));
      tuned.max_containers_per_sku[sku_name] = cap;
      models.AddRow({sku_name, common::Table::Num(model.weights()[0], 4),
                     std::to_string(cap)});
    }
  }
  models.Print("E1 | learned behaviour models -> per-SKU caps (LP)");

  // Day 2: tuned caps on a fresh identical fleet and identical traffic.
  infra::Cluster fleet2 = MakeFleet();
  DayResult after = RunDay(fleet2, tuned, nullptr, 1);

  common::Table table({"config", "hotspot machines", "P50 latency (s)",
                       "P95 latency (s)", "tasks done"});
  table.AddRow({"default caps", std::to_string(before.hotspots),
                common::Table::Num(before.p50, 0),
                common::Table::Num(before.p95, 0),
                std::to_string(before.completed)});
  table.AddRow({"KEA-tuned caps", std::to_string(after.hotspots),
                common::Table::Num(after.p50, 0),
                common::Table::Num(after.p95, 0),
                std::to_string(after.completed)});
  table.Print("E1 | workload balancing via tuned scheduler configuration");
  std::printf("\nPaper: KEA's model-driven tuning balanced load across SKUs.\n"
              "Measured: hotspots %d -> %d, P95 %.0fs -> %.0fs.\n",
              before.hotspots, after.hotspots, before.p95, after.p95);
  return 0;
}
