// E2 — §4.1 (Azure Synapse Spark): "we developed a simulator to mimic the
// cluster initialization process and derived the optimal policy for
// sending requests, reducing its tail latency".
//
// We run the cluster-initialization simulator under every request policy
// and report the latency distribution; the derived policy is the one with
// the lowest P99.

#include <cstdio>

#include "common/table.h"
#include "infra/pool_sim.h"

using namespace ads;  // NOLINT: bench brevity

int main() {
  infra::PoolSimOptions options;
  options.vms_per_cluster = 8;
  options.hedge_extras = 2;
  options.retry_timeout = 60.0;
  infra::PoolInitSimulator simulator(options);

  common::Table table({"request policy", "P50 (s)", "P95 (s)", "P99 (s)",
                       "requests issued"});
  constexpr int kTrials = 20000;
  for (auto policy : {infra::RequestPolicy::kSerial,
                      infra::RequestPolicy::kParallel,
                      infra::RequestPolicy::kHedged,
                      infra::RequestPolicy::kRetryOnTimeout}) {
    auto report = simulator.Simulate(policy, kTrials, 1);
    ADS_CHECK_OK(report.status());
    table.AddRow({infra::RequestPolicyName(policy),
                  common::Table::Num(report->p50, 1),
                  common::Table::Num(report->p95, 1),
                  common::Table::Num(report->p99, 1),
                  common::Table::Num(report->mean_requests_issued, 1)});
  }
  table.Print("E2 | cluster-initialization request policies (" +
              std::to_string(kTrials) + " initializations)");

  auto best = simulator.DeriveBestPolicy(kTrials, 1);
  ADS_CHECK_OK(best.status());
  auto parallel = simulator.Simulate(infra::RequestPolicy::kParallel,
                                     kTrials, 1);
  std::printf("\nPaper: the simulator-derived policy reduces tail latency.\n"
              "Measured: best policy '%s' cuts P99 from %.1fs (parallel "
              "baseline) to %.1fs (-%.0f%%),\nat %.2fx request overhead.\n",
              infra::RequestPolicyName(best->policy), parallel->p99, best->p99,
              (1.0 - best->p99 / parallel->p99) * 100.0,
              best->mean_requests_issued / 8.0);
  return 0;
}
