// E3 — §4.1 (MLOS [9]): "by using ML to predict the throughput and latency
// of benchmark workloads on VMs with various kernel parameters ... we
// refined the parameters of the Azure VM that runs Redis workloads".
//
// We tune the six-knob Redis-like response surface with the MLOS-style
// iterative tuner and report throughput/latency of default vs tuned vs the
// hidden optimum.

#include <cstdio>

#include "common/table.h"
#include "service/autotuner.h"
#include "workload/response_surface.h"

using namespace ads;  // NOLINT: bench brevity

int main() {
  workload::ResponseSurface redis = workload::MakeRedisSurface(31);
  service::IterativeTuner tuner;
  common::Rng rng(7);

  common::Table curve({"benchmark runs", "best-found throughput (ops/s)",
                       "% of optimum"});
  auto result = tuner.Tune(redis, 60, rng, /*use_prior=*/false);
  ADS_CHECK_OK(result.status());
  for (size_t i : {size_t(1), size_t(5), size_t(10), size_t(20), size_t(40),
                   size_t(59)}) {
    if (i >= result->incumbent_curve.size()) continue;
    curve.AddRow({std::to_string(i + 1),
                  common::Table::Num(result->incumbent_curve[i], 0),
                  common::Table::Pct(result->incumbent_curve[i] /
                                     redis.peak_throughput())});
  }
  curve.Print("E3 | MLOS-style tuning convergence on the Redis surface");

  double default_tp = redis.TrueThroughput(redis.DefaultConfig());
  common::Table table({"configuration", "throughput (ops/s)", "latency (ms)"});
  table.AddRow({"shipped defaults", common::Table::Num(default_tp, 0),
                common::Table::Num(redis.TrueLatency(redis.DefaultConfig()), 3)});
  table.AddRow({"MLOS-tuned", common::Table::Num(result->best_true_throughput, 0),
                common::Table::Num(1000.0 / result->best_true_throughput, 3)});
  table.AddRow({"hidden optimum", common::Table::Num(redis.peak_throughput(), 0),
                common::Table::Num(1000.0 / redis.peak_throughput(), 3)});
  table.Print("E3 | tuned VM/kernel parameters for the Redis workload");
  std::printf("\nPaper: data-driven tuning refined the Redis VM parameters.\n"
              "Measured: +%.0f%% throughput over defaults in %zu benchmark "
              "runs (%.0f%% of the true optimum).\n",
              (result->best_true_throughput / default_tp - 1.0) * 100.0,
              result->evaluations,
              result->best_true_throughput / redis.peak_throughput() * 100.0);
  return 0;
}
