// E4 — §4.1 (Moneyball [41]): "77% of Azure SQL Database Serverless usage
// is predictable", and ML forecasts drive proactive pause/resume.
//
// We measure the predictable share of the synthetic fleet per archetype
// and compare the proactive policy against reactive and always-on.

#include <cstdio>

#include "common/table.h"
#include "service/moneyball.h"
#include "workload/usage_gen.h"

using namespace ads;  // NOLINT: bench brevity

int main() {
  auto traces = workload::GenerateUsageTraces(600, {.hours = 24 * 28,
                                                    .seed = 3});
  service::ServerlessManager manager;

  // Predictability, overall and per archetype.
  size_t per_pattern_total[5] = {0, 0, 0, 0, 0};
  size_t per_pattern_predictable[5] = {0, 0, 0, 0, 0};
  size_t predictable = 0;
  for (const auto& t : traces) {
    ++per_pattern_total[static_cast<size_t>(t.pattern)];
    if (manager.IsPredictable(t)) {
      ++predictable;
      ++per_pattern_predictable[static_cast<size_t>(t.pattern)];
    }
  }
  common::Table pred({"archetype", "databases", "predictable"});
  for (int p = 0; p < 5; ++p) {
    if (per_pattern_total[p] == 0) continue;
    pred.AddRow({workload::UsagePatternName(
                     static_cast<workload::UsagePattern>(p)),
                 std::to_string(per_pattern_total[p]),
                 common::Table::Pct(
                     static_cast<double>(per_pattern_predictable[p]) /
                     static_cast<double>(per_pattern_total[p]))});
  }
  pred.Print("E4 | predictability by usage archetype");
  double fraction = static_cast<double>(predictable) /
                    static_cast<double>(traces.size());

  common::Table table({"policy", "billed hours", "cold starts/active hr"});
  for (auto policy : {service::PausePolicy::kAlwaysOn,
                      service::PausePolicy::kReactive,
                      service::PausePolicy::kPredictive}) {
    auto out = manager.SimulateFleet(traces, policy);
    ADS_CHECK_OK(out.status());
    table.AddRow({service::PausePolicyName(policy),
                  common::Table::Pct(out->billed_fraction),
                  common::Table::Num(out->cold_start_rate, 4)});
  }
  table.Print("E4 | proactive pause/resume vs baselines");
  std::printf("\nPaper: 77%% of serverless usage is predictable; forecasts "
              "pause/resume databases proactively.\nMeasured: %.1f%% "
              "predictable; the predictive policy cuts cold starts while "
              "also billing fewer hours than reactive.\n",
              fraction * 100.0);
  return 0;
}
