// E5 — §4.1: "proactive cluster provisioning based on expected user
// cluster creation demand to reduce wait time for cluster initialization
// on Azure Synapse Spark, optimizing both COGS and performance".
//
// Cluster-creation requests follow a diurnal pattern. We compare: cold
// (reactive) provisioning, a static warm pool, and a forecast-driven pool
// whose target follows predicted demand hour by hour.

#include <cstdio>

#include "common/table.h"
#include "common/thread_pool.h"
#include "infra/provisioner.h"
#include "ml/forecast.h"
#include "workload/arrival.h"

using namespace ads;  // NOLINT: bench brevity

namespace {

struct Outcome {
  double p50 = 0.0;
  double p95 = 0.0;
  double idle_cost = 0.0;
  uint64_t served = 0;
};

Outcome Run(const std::vector<double>& arrivals,
            const std::vector<double>& hourly_forecast, int static_target,
            bool predictive) {
  common::EventQueue queue;
  infra::ClusterProvisioner prov(&queue, 5);
  if (!predictive) prov.SetWarmPoolTarget(static_target);
  if (predictive) {
    // Re-target the pool each hour from the demand forecast (clusters
    // needed in the next hour, with one spare).
    for (size_t h = 0; h < hourly_forecast.size(); ++h) {
      double when = static_cast<double>(h) * 3600.0;
      int target = static_cast<int>(hourly_forecast[h] + 1.0);
      queue.ScheduleAt(when, [&prov, target](common::SimTime) {
        prov.SetWarmPoolTarget(target);
      });
    }
  }
  for (double t : arrivals) {
    queue.ScheduleAt(t, [&prov](common::SimTime) {
      prov.RequestCluster([](double) {});
    });
  }
  queue.RunUntil(common::Days(7) + common::Hours(2));
  return {prov.wait_times().Quantile(0.5), prov.wait_times().Quantile(0.95),
          prov.WarmIdleCost(), prov.requests_served()};
}

}  // namespace

int main() {
  workload::ArrivalOptions arrival_opts{.peak_rate_per_hour = 10,
                                        .trough_fraction = 0.1,
                                        .seed = 11};
  workload::ArrivalProcess arrivals(arrival_opts);
  auto times = arrivals.Sample(common::Days(7));

  // Forecast hourly demand with a seasonal-naive model trained on the
  // previous week (here: the process's known hourly rates as history).
  workload::ArrivalProcess history_proc(arrival_opts);
  auto history = history_proc.HourlyRates(common::Days(7));
  ml::SeasonalNaiveForecaster forecaster(24);
  ADS_CHECK_OK(forecaster.Fit(history));
  std::vector<double> forecast;
  for (size_t h = 0; h < 7 * 24; ++h) {
    forecast.push_back(forecaster.Forecast(h + 1));
  }

  common::Table table({"strategy", "P50 wait", "P95 wait", "idle COGS ($)",
                       "served"});
  // The three what-if scenarios are independent week-long simulations;
  // fan them out across the shared pool.
  auto& pool = common::ThreadPool::Global();
  auto cold_f =
      pool.Submit([&]() { return Run(times, forecast, 0, false); });
  auto fixed_f =
      pool.Submit([&]() { return Run(times, forecast, 8, false); });
  auto predictive_f =
      pool.Submit([&]() { return Run(times, forecast, 0, true); });
  Outcome cold = cold_f.get();
  Outcome fixed = fixed_f.get();
  Outcome predictive = predictive_f.get();
  table.AddRow({"reactive (cold start)", common::Table::Num(cold.p50, 0) + " s",
                common::Table::Num(cold.p95, 0) + " s",
                common::Table::Num(cold.idle_cost, 0),
                std::to_string(cold.served)});
  table.AddRow({"static warm pool (8)", common::Table::Num(fixed.p50, 0) + " s",
                common::Table::Num(fixed.p95, 0) + " s",
                common::Table::Num(fixed.idle_cost, 0),
                std::to_string(fixed.served)});
  table.AddRow({"forecast-driven pool",
                common::Table::Num(predictive.p50, 0) + " s",
                common::Table::Num(predictive.p95, 0) + " s",
                common::Table::Num(predictive.idle_cost, 0),
                std::to_string(predictive.served)});
  table.Print("E5 | proactive cluster provisioning over one week");
  std::printf("\nPaper: proactive provisioning reduces wait time while "
              "optimizing COGS.\nMeasured: forecast-driven pool keeps "
              "near-warm waits (P50 %.0fs vs %.0fs cold) at %.0f%% of the "
              "static pool's idle cost.\n",
              predictive.p50, cold.p50,
              predictive.idle_cost / std::max(1.0, fixed.idle_cost) * 100.0);
  return 0;
}
