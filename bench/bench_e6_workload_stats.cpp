// E6 — §4.2 (workload facts): "over 60% of jobs are recurring", "nearly
// 40% of daily jobs share common subexpressions with at least one other
// job", "70% of daily SCOPE jobs have inter-job dependencies".
//
// The generator is calibrated to production-like structure; the Peregrine
// analyzer must DETECT these properties from the trace alone.

#include <cstdio>

#include "common/table.h"
#include "learned/workload_analysis.h"
#include "workload/pipeline_gen.h"
#include "workload/query_gen.h"

using namespace ads;  // NOLINT: bench brevity

int main() {
  workload::QueryGenerator gen({.num_tables = 10,
                                .num_templates = 60,
                                .recurring_fraction = 0.63,
                                .shared_fragment_fraction = 0.78,
                                .seed = 17});
  learned::WorkloadAnalyzer analyzer;
  for (int i = 0; i < 3000; ++i) {
    auto job = gen.NextJob();
    analyzer.ObserveJob(job.job_id, *job.plan, 10.0);
  }

  workload::PipelineGenerator pipelines(gen.num_templates(),
                                        {.pipelined_fraction = 0.70,
                                         .seed = 18});
  workload::DailyWorkload day = pipelines.GenerateDay(1000);

  common::Table table({"workload property", "paper", "measured"});
  table.AddRow({"recurring jobs", "> 60%",
                common::Table::Pct(analyzer.RecurringJobFraction())});
  table.AddRow({"jobs sharing a subexpression", "~ 40%",
                common::Table::Pct(analyzer.SharedSubexpressionFraction())});
  table.AddRow({"jobs with inter-job dependencies", "70%",
                common::Table::Pct(day.PipelinedFraction())});
  table.Print("E6 | production workload structure (paper vs detected)");

  auto templates = analyzer.Templates();
  common::Table top({"template rank", "occurrences", "mean runtime fc (s)"});
  for (size_t i = 0; i < templates.size() && i < 5; ++i) {
    top.AddRow({std::to_string(i + 1),
                std::to_string(templates[i].occurrences),
                common::Table::Num(templates[i].mean_runtime(), 1)});
  }
  top.Print("E6 | hottest recurring templates (Zipf popularity)");
  std::printf("\nThese recurrence/sharing/dependency levels are the raw "
              "material every learned component below feeds on.\n");
  return 0;
}
