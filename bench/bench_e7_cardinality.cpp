// E7 — §4.2 (learned cardinality [49]): per-template micromodels,
// "retaining only those that would actually improve performance", with the
// optimizer falling back to default cardinalities elsewhere.
//
// We train on a history stream, then measure q-errors on a held-out stream
// with and without the micromodel provider, plus the end-to-end effect on
// plan runtimes.

#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "engine/executor.h"
#include "engine/optimizer.h"
#include "learned/card_models.h"
#include "learned/workload_analysis.h"
#include "workload/query_gen.h"

using namespace ads;  // NOLINT: bench brevity

int main() {
  workload::QueryGenerator gen({.num_templates = 30,
                                .recurring_fraction = 0.9,
                                .seed = 23});
  engine::Optimizer default_opt(&gen.catalog());
  engine::CostModel cost_model;
  engine::JobSimulator simulator;

  // History: run and observe.
  learned::WorkloadAnalyzer analyzer;
  for (int i = 0; i < 800; ++i) {
    auto job = gen.NextJob();
    auto plan = default_opt.Optimize(*job.plan, engine::RuleConfig::Default());
    analyzer.ObserveJob(job.job_id, *plan, 1.0);
  }
  learned::CardinalityModelStore store;
  ADS_CHECK_OK(store.Train(analyzer.node_observations()));

  engine::Optimizer learned_opt(&gen.catalog());
  learned_opt.SetCardinalityProvider(&store);

  // Held-out evaluation.
  common::QuantileSketch q_default;
  common::QuantileSketch q_learned;
  double runtime_default = 0.0;
  double runtime_learned = 0.0;
  for (int i = 0; i < 300; ++i) {
    auto job = gen.NextJob();
    uint64_t seed = 9000 + static_cast<uint64_t>(i);
    auto plan_d = default_opt.Optimize(*job.plan, engine::RuleConfig::Default());
    auto plan_l = learned_opt.Optimize(*job.plan, engine::RuleConfig::Default());
    plan_d->Visit([&](const engine::PlanNode& n) {
      q_default.Add(common::QError(n.true_card, n.est_card));
    });
    plan_l->Visit([&](const engine::PlanNode& n) {
      q_learned.Add(common::QError(n.true_card, n.est_card));
    });
    auto stages_d = engine::CompileToStages(*plan_d, cost_model,
                                            engine::CardSource::kTrue);
    auto stages_l = engine::CompileToStages(*plan_l, cost_model,
                                            engine::CardSource::kTrue);
    runtime_default += simulator.Execute(stages_d, seed).makespan;
    runtime_learned += simulator.Execute(stages_l, seed).makespan;
  }

  common::Table models({"metric", "value"});
  models.AddRow({"candidate node templates",
                 std::to_string(store.candidate_templates())});
  models.AddRow({"micromodels retained", std::to_string(store.retained_models())});
  models.AddRow({"discarded by retention filter",
                 std::to_string(store.discarded_models())});
  models.Print("E7 | micromodel training and retention");

  common::Table table({"estimator", "median q-error", "P90 q-error",
                       "P99 q-error", "held-out runtime (s)"});
  table.AddRow({"default (uniformity+AVI)",
                common::Table::Num(q_default.Quantile(0.5), 2),
                common::Table::Num(q_default.Quantile(0.9), 2),
                common::Table::Num(q_default.Quantile(0.99), 1),
                common::Table::Num(runtime_default, 0)});
  table.AddRow({"with per-template micromodels",
                common::Table::Num(q_learned.Quantile(0.5), 2),
                common::Table::Num(q_learned.Quantile(0.9), 2),
                common::Table::Num(q_learned.Quantile(0.99), 1),
                common::Table::Num(runtime_learned, 0)});
  table.Print("E7 | cardinality estimation quality and end-to-end effect");
  std::printf("\nPaper: micromodels give more precise cardinalities for "
              "recurring subexpressions,\ndefault estimates elsewhere. "
              "Measured: P90 q-error %.1f -> %.1f; runtime %+.1f%%.\n",
              q_default.Quantile(0.9), q_learned.Quantile(0.9),
              (runtime_learned / runtime_default - 1.0) * 100.0);
  return 0;
}
