// E8 — §4.2 (learned cost models [46]): per-template cost micromodels plus
// "a meta ensemble model that corrects and combines predictions from
// individual models to increase coverage".
//
// Target: predicted job EXECUTION TIME (what admission and scheduling
// consume). Baselines, in the spirit of the paper's learning/retrofitting
// study:
//   (a) the analytical cost model on estimated cards, RETROFITTED to time
//       with a calibration fit on history (the best a classical optimizer
//       cost model can do), and
//   (b) the learned micromodels + meta ensemble trained on observed
//       runtimes.

#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "engine/executor.h"
#include "engine/optimizer.h"
#include "learned/cost_models.h"
#include "ml/linear.h"
#include "workload/query_gen.h"

using namespace ads;  // NOLINT: bench brevity

int main() {
  workload::QueryGenerator gen({.num_templates = 25,
                                .recurring_fraction = 0.8,
                                .seed = 29});
  engine::Optimizer optimizer(&gen.catalog());
  engine::CostModel cost_model;
  engine::JobSimulator simulator;

  // History: observed runtimes + calibration data for the retrofit.
  learned::LearnedCostModel learned;
  ml::Dataset calibration;  // log est-cost -> log runtime
  for (int i = 0; i < 700; ++i) {
    auto job = gen.NextJob();
    auto plan = optimizer.Optimize(*job.plan, engine::RuleConfig::Default());
    auto stages = engine::CompileToStages(*plan, cost_model,
                                          engine::CardSource::kTrue);
    double runtime =
        simulator.Execute(stages, 7000 + static_cast<uint64_t>(i)).makespan;
    learned.ObserveTarget(*plan, runtime);
    calibration.Add(
        {std::log1p(cost_model.PlanCost(*plan, engine::CardSource::kEstimated))},
        std::log1p(runtime));
  }
  ADS_CHECK_OK(learned.Train());
  ml::LinearRegressor retrofit;
  ADS_CHECK_OK(retrofit.Fit(calibration));

  common::RunningMoments err_retrofit;
  common::RunningMoments err_learned;
  size_t covered = 0;
  constexpr int kEval = 300;
  for (int i = 0; i < kEval; ++i) {
    auto job = gen.NextJob();
    auto plan = optimizer.Optimize(*job.plan, engine::RuleConfig::Default());
    auto stages = engine::CompileToStages(*plan, cost_model,
                                          engine::CardSource::kTrue);
    double runtime =
        simulator.Execute(stages, 90000 + static_cast<uint64_t>(i)).makespan;
    double retrofit_pred = retrofit.Predict(
        {std::log1p(cost_model.PlanCost(*plan, engine::CardSource::kEstimated))});
    auto pred = learned.Cost(*plan);
    if (pred.has_value()) ++covered;
    err_retrofit.Add(std::abs(retrofit_pred - std::log1p(runtime)));
    if (pred.has_value()) {
      err_learned.Add(std::abs(std::log1p(*pred) - std::log1p(runtime)));
    }
  }

  common::Table table({"runtime predictor", "coverage",
                       "mean |log error| vs measured runtime"});
  table.AddRow({"analytical cost, retrofitted to time", "100%",
                common::Table::Num(err_retrofit.mean(), 3)});
  table.AddRow({"micromodels + meta ensemble",
                common::Table::Pct(static_cast<double>(covered) / kEval),
                common::Table::Num(err_learned.mean(), 3)});
  table.Print("E8 | learned cost models on held-out jobs");

  common::Table detail({"detail", "value"});
  detail.AddRow({"per-template micromodels trained",
                 std::to_string(learned.micromodel_count())});
  detail.AddRow({"ensemble picks micromodel",
                 common::Table::Pct(learned.MicromodelHitRate())});
  detail.Print("E8 | ensemble composition");
  std::printf("\nPaper: learned cost micromodels are more accurate than the "
              "engine's cost model, and the meta\nensemble keeps coverage "
              "complete. Measured: log-error %.3f (learned) vs %.3f "
              "(retrofitted analytical).\n",
              err_learned.mean(), err_retrofit.mean());
  return 0;
}
