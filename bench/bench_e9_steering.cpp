// E9 — §4.2 (steered query optimization [25, 35, 51]): rule-hint steering
// applied "in small incremental steps for better interpretability and
// debuggability", with a bandit to limit experimentation cost and "a
// validation model guarding against regression".
//
// Each recurring template gets a per-template bandit over the default
// config and its one-rule flips. We report the fleet-level latency change
// and the guard's interventions.

#include <cstdio>

#include "common/table.h"
#include "engine/executor.h"
#include "engine/optimizer.h"
#include "learned/steering.h"
#include "workload/query_gen.h"

using namespace ads;  // NOLINT: bench brevity

int main() {
  workload::QueryGenerator gen({.num_templates = 16,
                                .recurring_fraction = 1.0,
                                .seed = 37});
  engine::Optimizer optimizer(&gen.catalog());
  engine::CostModel cost_model;
  engine::JobSimulator simulator;
  learned::SteeringController steering(
      {.epsilon = 0.5, .epsilon_decay = 0.9995, .min_trials = 3});
  common::Rng rng(41);

  constexpr int kDays = 100;
  double fleet_default = 0.0;
  double fleet_steered = 0.0;
  std::vector<double> tmpl_default(gen.num_templates(), 0.0);
  std::vector<double> tmpl_steered(gen.num_templates(), 0.0);

  for (int day = 0; day < kDays; ++day) {
    for (size_t t = 0; t < gen.num_templates(); ++t) {
      auto job = gen.InstantiateTemplate(t);
      uint64_t sig = job.plan->TemplateSignature();
      uint64_t seed = static_cast<uint64_t>(day) * 1000 + t;

      engine::RuleConfig config = steering.ChooseConfig(sig, rng);
      auto plan = optimizer.Optimize(*job.plan, config);
      auto stages = engine::CompileToStages(*plan, cost_model,
                                            engine::CardSource::kTrue);
      double runtime = simulator.Execute(stages, seed).makespan;
      steering.ObserveRuntime(sig, config, runtime);
      tmpl_steered[t] += runtime;
      fleet_steered += runtime;

      auto dplan = optimizer.Optimize(*job.plan, engine::RuleConfig::Default());
      auto dstages = engine::CompileToStages(*dplan, cost_model,
                                             engine::CardSource::kTrue);
      double druntime = simulator.Execute(dstages, seed).makespan;
      tmpl_default[t] += druntime;
      fleet_default += druntime;
    }
  }

  // Final exploitation-only pass: what did steering actually learn?
  double final_default = 0.0;
  double final_steered = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    for (size_t t = 0; t < gen.num_templates(); ++t) {
      auto job = gen.InstantiateTemplate(t);
      uint64_t sig = job.plan->TemplateSignature();
      uint64_t seed = 777000 + static_cast<uint64_t>(rep) * 100 + t;
      auto best = steering.BestConfig(sig);
      auto plan = optimizer.Optimize(*job.plan, best);
      auto stages = engine::CompileToStages(*plan, cost_model,
                                            engine::CardSource::kTrue);
      final_steered += simulator.Execute(stages, seed).makespan;
      auto dplan = optimizer.Optimize(*job.plan, engine::RuleConfig::Default());
      auto dstages = engine::CompileToStages(*dplan, cost_model,
                                             engine::CardSource::kTrue);
      final_default += simulator.Execute(dstages, seed).makespan;
    }
  }

  common::Table table({"phase", "default (s)", "steered (s)", "change"});
  table.AddRow({"learning period (incl. exploration)",
                common::Table::Num(fleet_default, 0),
                common::Table::Num(fleet_steered, 0),
                common::Table::Pct(fleet_steered / fleet_default - 1.0)});
  table.AddRow({"after convergence (exploit only)",
                common::Table::Num(final_default, 0),
                common::Table::Num(final_steered, 0),
                common::Table::Pct(final_steered / final_default - 1.0)});
  table.Print("E9 | optimizer steering with a regression guard");

  common::Table guard({"steering telemetry", "value"});
  guard.AddRow({"templates steered away from default",
                std::to_string(steering.templates_steered())});
  guard.AddRow({"arms blacklisted by the validation guard",
                std::to_string(steering.regressions_prevented())});
  guard.AddRow({"max rule flips per decision", "1 (by construction)"});
  guard.Print("E9 | interpretability and safety");
  std::printf("\nPaper: steering improves plans while the validation model "
              "prevents regressions.\nMeasured: %+.1f%% after convergence; "
              "%zu harmful configurations condemned during learning.\n",
              (final_steered / final_default - 1.0) * 100.0,
              steering.regressions_prevented());
  return 0;
}
