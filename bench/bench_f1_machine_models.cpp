// F1 — Figure 1 (§4.1): "Models to predict machine behavior".
//
// The paper's figure shows simple linear models predicting machine
// behaviour: CPU utilization vs number of running containers, and task
// execution time vs CPU utilization. We drive the cluster simulator,
// collect the same telemetry, fit linear models per SKU, and report the
// fits (series: x -> predicted vs observed). The paper's point — that
// linear models capture these relationships well — corresponds to high R^2.

#include <cstdio>

#include "common/event_queue.h"
#include "common/stats.h"
#include "common/table.h"
#include "infra/scheduler.h"
#include "ml/linear.h"
#include "telemetry/store.h"

using namespace ads;  // NOLINT: bench brevity

int main() {
  infra::SkuSpec sku{.name = "gen4", .default_max_containers = 24,
                     .cpu_per_container = 0.05, .util_knee = 0.7,
                     .slowdown_per_util = 2.5};
  infra::Cluster cluster;
  cluster.AddMachines(sku, 12, /*racks=*/3);

  common::EventQueue queue;
  telemetry::TelemetryStore telemetry;
  infra::ClusterScheduler scheduler(&cluster, &queue, &telemetry, 1);
  common::Rng rng(2);
  for (int i = 0; i < 6000; ++i) {
    double when = rng.Uniform(0.0, common::Hours(6));
    queue.ScheduleAt(when, [&](common::SimTime) {
      scheduler.Submit({.id = static_cast<uint64_t>(i),
                        .base_duration = 600.0});
    });
  }
  for (double t = 0.0; t < common::Hours(7); t += 30.0) {
    queue.ScheduleAt(t, [&](common::SimTime) { scheduler.SampleTelemetry(); });
  }
  queue.RunAll();

  // Model 1: CPU utilization ~ running containers.
  ml::Dataset cpu_data;
  for (const auto& series :
       telemetry.Select("system.cpu.utilization", {})) {
    auto containers =
        telemetry.QueryAll("container.running.count", series.labels);
    for (size_t i = 0; i < series.points.size() && i < containers.size();
         ++i) {
      cpu_data.Add({containers[i].value}, series.points[i].value);
    }
  }
  ml::LinearRegressor cpu_model;
  ADS_CHECK_OK(cpu_model.Fit(cpu_data));
  std::vector<double> cpu_truth;
  std::vector<double> cpu_pred;
  for (size_t i = 0; i < cpu_data.size(); ++i) {
    cpu_truth.push_back(cpu_data.label(i));
    cpu_pred.push_back(cpu_model.Predict(cpu_data.row(i)));
  }

  // Model 2: task execution time ~ utilization at task start — the
  // dilation curve (both series are emitted at completion, so the i-th
  // points describe the same task).
  ml::Dataset time_data;
  for (const auto& series : telemetry.Select("task.execution.time", {})) {
    auto start_util =
        telemetry.QueryAll("task.start.utilization", series.labels);
    for (size_t i = 0; i < series.points.size() && i < start_util.size();
         ++i) {
      time_data.Add({start_util[i].value}, series.points[i].value);
    }
  }
  ml::LinearRegressor time_model;
  ADS_CHECK_OK(time_model.Fit(time_data));
  std::vector<double> t_truth;
  std::vector<double> t_pred;
  for (size_t i = 0; i < time_data.size(); ++i) {
    t_truth.push_back(time_data.label(i));
    t_pred.push_back(time_model.Predict(time_data.row(i)));
  }

  common::Table table({"model (linear)", "samples", "slope", "R^2"});
  table.AddRow({"cpu_util ~ containers", std::to_string(cpu_data.size()),
                common::Table::Num(cpu_model.weights()[0], 4),
                common::Table::Num(common::RSquared(cpu_truth, cpu_pred), 3)});
  table.AddRow({"task_time ~ cpu_util", std::to_string(time_data.size()),
                common::Table::Num(time_model.weights()[0], 1),
                common::Table::Num(common::RSquared(t_truth, t_pred), 3)});
  table.Print("F1 | Figure 1: linear models of machine behaviour");

  // The figure's series: containers -> predicted vs mean observed util.
  common::Table series({"containers", "observed mean cpu", "linear model"});
  common::RunningMoments by_count[25];
  for (size_t i = 0; i < cpu_data.size(); ++i) {
    int c = static_cast<int>(cpu_data.row(i)[0]);
    if (c >= 0 && c < 25) by_count[c].Add(cpu_data.label(i));
  }
  for (int c = 0; c <= 24; c += 4) {
    if (by_count[c].count() == 0) continue;
    series.AddRow({std::to_string(c),
                   common::Table::Num(by_count[c].mean(), 3),
                   common::Table::Num(cpu_model.Predict({double(c)}), 3)});
  }
  series.Print("F1 | series: CPU utilization vs running containers");
  std::printf("\nPaper: machine behaviour is predictable with simple linear "
              "models.\nMeasured: R^2 %.3f / %.3f for the two relationships.\n",
              common::RSquared(cpu_truth, cpu_pred),
              common::RSquared(t_truth, t_pred));
  return 0;
}
