// F2 — Figure 2 (§4.1): the Pareto curve between QoS and cost.
//
// The paper's figure sketches the operator's trade-off: better QoS (here:
// fewer cold starts on a serverless fleet) costs more (billed hours), and
// ML-driven policies shift the curve toward the origin. We sweep the
// aggressiveness of the reactive policy (idle hours before pausing) and of
// the predictive policy (forecast threshold) to trace both curves.

#include <cstdio>
#include <vector>

#include "common/table.h"
#include "common/thread_pool.h"
#include "service/moneyball.h"
#include "workload/usage_gen.h"

using namespace ads;  // NOLINT: bench brevity

int main() {
  auto traces = workload::GenerateUsageTraces(250, {.hours = 24 * 28,
                                                    .seed = 13});

  common::Table table({"policy family", "knob", "cost (billed hrs)",
                       "QoS loss (cold starts/active hr)"});

  // Every sweep point is an independent fleet simulation over the same
  // read-only traces; fan the whole sweep out across the shared pool and
  // emit rows in sweep order.
  const std::vector<size_t> idle_sweep = {1, 2, 4, 8, 16};
  const std::vector<double> threshold_sweep = {1.0, 3.0, 5.0, 10.0, 20.0};
  std::vector<std::vector<std::string>> rows(idle_sweep.size() +
                                             threshold_sweep.size());
  common::parallel_for(0, rows.size(), 1, [&](size_t cb, size_t ce) {
    for (size_t i = cb; i < ce; ++i) {
      if (i < idle_sweep.size()) {
        // Reactive curve: sweep idle-hours-to-pause.
        size_t idle_hours = idle_sweep[i];
        service::ServerlessManager manager(
            {.idle_hours_to_pause = idle_hours});
        auto out =
            manager.SimulateFleet(traces, service::PausePolicy::kReactive);
        ADS_CHECK_OK(out.status());
        rows[i] = {"reactive",
                   "pause after " + std::to_string(idle_hours) + "h",
                   common::Table::Pct(out->billed_fraction),
                   common::Table::Num(out->cold_start_rate, 4)};
      } else {
        // Predictive curve: sweep the idle threshold the forecast is
        // compared to (low threshold = conservative, stays on more).
        double threshold = threshold_sweep[i - idle_sweep.size()];
        service::ServerlessManager manager({.idle_threshold = threshold});
        auto out =
            manager.SimulateFleet(traces, service::PausePolicy::kPredictive);
        ADS_CHECK_OK(out.status());
        rows[i] = {"predictive (ML)",
                   "idle if forecast < " + common::Table::Num(threshold, 0),
                   common::Table::Pct(out->billed_fraction),
                   common::Table::Num(out->cold_start_rate, 4)};
      }
    }
  });
  for (const auto& row : rows) table.AddRow(row);
  // Anchors.
  {
    service::ServerlessManager manager;
    auto on = manager.SimulateFleet(traces, service::PausePolicy::kAlwaysOn);
    table.AddRow({"always-on", "-", common::Table::Pct(on->billed_fraction),
                  common::Table::Num(on->cold_start_rate, 4)});
  }
  table.Print("F2 | Figure 2: QoS-vs-cost Pareto curves");
  std::printf(
      "\nPaper: proactive ML policies globally optimize the Pareto curve.\n"
      "Measured: at matched cost the predictive rows sit below the\n"
      "reactive rows on QoS loss (fewer cold starts for the same bill).\n");
  return 0;
}
