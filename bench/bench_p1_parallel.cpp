// P1 — the parallel runtime itself: serial vs. shared-thread-pool wall
// time for the two widest hot loops, random-forest training (KEA/Moneyball
// style model refresh) and Monte-Carlo pool-init simulation (§4.1). The
// paper's premise is that continuous re-tuning is only viable when the
// training/simulation loop is cheap; this bench measures how much the
// shared pool buys on the current hardware.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "infra/pool_sim.h"
#include "ml/dataset.h"
#include "ml/forest.h"

using namespace ads;  // NOLINT: bench brevity

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

ml::Dataset MakeTrainingData(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  ml::Dataset data({"cpu", "mem", "qps", "age", "skew"});
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> x = {rng.Uniform(0, 100), rng.Uniform(0, 64),
                             rng.Uniform(0, 5000), rng.Uniform(0, 365),
                             rng.Uniform(0, 1)};
    double y = 0.3 * x[0] + 0.1 * x[1] * x[4] + std::sqrt(x[2]) +
               rng.Normal(0.0, 2.0);
    data.Add(x, y);
  }
  return data;
}

double TimeForestFit(const ml::Dataset& data, common::ThreadPool* pool,
                     std::string* digest) {
  ml::RandomForestOptions opts{.num_trees = 100, .max_depth = 10, .seed = 7};
  opts.pool = pool;
  ml::RandomForestRegressor forest(opts);
  auto start = std::chrono::steady_clock::now();
  ADS_CHECK_OK(forest.Fit(data));
  double elapsed = SecondsSince(start);
  *digest = std::to_string(forest.Predict({50, 32, 2500, 100, 0.5}));
  return elapsed;
}

double TimePoolSim(int trials, common::ThreadPool* pool, double* p99) {
  infra::PoolSimOptions opts;
  opts.pool = pool;
  infra::PoolInitSimulator sim(opts);
  auto start = std::chrono::steady_clock::now();
  auto report = sim.Simulate(infra::RequestPolicy::kHedged, trials, 42);
  ADS_CHECK_OK(report.status());
  *p99 = report->p99;
  return SecondsSince(start);
}

}  // namespace

int main() {
  common::ThreadPool& global = common::ThreadPool::Global();
  common::ThreadPool& serial = common::ThreadPool::Serial();
  std::printf("P1 | shared thread pool: %zu workers (ADS_THREADS to "
              "override)\n\n",
              global.worker_count());

  common::Table table(
      {"hot loop", "serial (s)", "parallel (s)", "speedup", "identical"});

  // Random-forest training: 100 trees, the ISSUE's acceptance workload.
  ml::Dataset data = MakeTrainingData(4000, 3);
  std::string serial_digest;
  std::string parallel_digest;
  double forest_serial = TimeForestFit(data, &serial, &serial_digest);
  double forest_parallel = TimeForestFit(data, &global, &parallel_digest);
  table.AddRow({"forest fit (100 trees)", common::Table::Num(forest_serial, 3),
                common::Table::Num(forest_parallel, 3),
                common::Table::Num(forest_serial / forest_parallel, 2) + "x",
                serial_digest == parallel_digest ? "yes" : "NO"});

  // Pool-init Monte Carlo: same seed, serial vs shared pool. Block
  // seeding makes the two reports identical, not merely close.
  int trials = 200000;
  double p99_serial = 0.0;
  double p99_parallel = 0.0;
  double sim_serial = TimePoolSim(trials, &serial, &p99_serial);
  double sim_parallel = TimePoolSim(trials, &global, &p99_parallel);
  table.AddRow({"pool sim (200k trials)", common::Table::Num(sim_serial, 3),
                common::Table::Num(sim_parallel, 3),
                common::Table::Num(sim_serial / sim_parallel, 2) + "x",
                p99_serial == p99_parallel ? "yes" : "NO"});

  table.Print("P1 | serial vs parallel wall time");
  std::printf(
      "\nForest training is bit-identical serial vs parallel (per-tree\n"
      "seeds derive from the run seed); pool-sim reports are identical\n"
      "for any worker count (per-block seeds). Speedup scales with\n"
      "cores; on a 1-core host both columns match to within noise.\n");
  return 0;
}
