// P2 — chaos: the fault-injection and resilience layer end to end.
//
// Three experiments, all fully deterministic (fixed seeds, simulated
// time only — two runs print identical output):
//
//   1. Engine: event-driven multi-failure execution of a stage DAG.
//      Makespan and recovery cost vs. failure rate, bare vs. protected
//      (checkpoint cut + speculative re-execution). Protection turns the
//      steep makespan growth sub-linear: lost work is bounded by the
//      checkpoint cut and stragglers are clipped by backups.
//
//   2. Infra: machine failures/drains through the event queue against the
//      cluster scheduler. Every submitted task completes; restarts and
//      tail latency quantify the recovery cost.
//
//   3. Serving: the deployed -> previous -> heuristic fallback chain under
//      injected model faults. Every request is answered; the breaker
//      trips, rolls the registry back, and recovers via its probe.

// Pass --trace-out=PATH to additionally dump one traced engine-chaos run
// and one traced infra-chaos run as Chrome trace_event JSON (open in
// chrome://tracing or ui.perfetto.dev). Tracing runs on separate seeded
// tracers and never perturbs the benchmark numbers above it.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "autonomy/loop.h"
#include "autonomy/serving.h"
#include "common/event_queue.h"
#include "common/fault_injection.h"
#include "common/table.h"
#include "engine/executor.h"
#include "engine/stage_graph.h"
#include "infra/chaos.h"
#include "infra/scheduler.h"
#include "ml/linear.h"
#include "ml/registry.h"
#include "serve/virtual_server.h"
#include "telemetry/span.h"
#include "telemetry/span_analysis.h"

using namespace ads;  // NOLINT: bench brevity

namespace {

// A two-join analytics job shape: two scan->shuffle legs feeding joins
// that feed a final aggregation. Wide early levels, narrow late levels —
// the shape where checkpointing the last cut pays off.
engine::StageGraph MakeJob() {
  engine::StageGraph g;
  auto add = [&g](std::vector<int> inputs, const std::string& label,
                  double work, double out_bytes) {
    engine::Stage s;
    s.id = static_cast<int>(g.stages.size());
    s.inputs = std::move(inputs);
    s.label = label;
    s.work = work;
    s.output_rows = out_bytes / 100.0;
    s.output_bytes = out_bytes;
    g.stages.push_back(std::move(s));
    return s.id;
  };
  int s0 = add({}, "scan_facts", 400.0, 4.0e8);
  int s1 = add({}, "scan_dim_a", 150.0, 1.5e8);
  int s2 = add({}, "scan_dim_b", 150.0, 1.5e8);
  int j1 = add({s0, s1}, "join_a", 250.0, 2.5e8);
  int j2 = add({j1, s2}, "join_b", 200.0, 2.0e8);
  int agg = add({j2}, "partial_agg", 120.0, 4.0e7);
  g.final_stage = add({agg}, "final_agg", 60.0, 1.0e6);
  return g;
}

void RunEngineChaos() {
  engine::StageGraph g = MakeJob();
  engine::JobSimulator sim;
  const double base = sim.Execute(g, 1).makespan;
  // Protected config: every shuffle output is written durably, so a dead
  // machine never forces lineage recomputation of a completed stage.
  std::set<int> cut;
  for (const engine::Stage& s : g.stages) {
    if (s.id != g.final_stage) cut.insert(s.id);
  }

  common::Table table({"failures/hour", "bare makespan", "protected",
                       "bare waste (slot-s)", "protected waste",
                       "recomputes bare/prot"});
  const int kSeeds = 48;
  for (double per_makespan : {0.0, 1.0, 2.0, 4.0, 8.0}) {
    engine::FaultOptions bare;
    bare.failures_per_hour = 3600.0 / base * per_makespan;
    bare.recovery_seconds = base / 5.0;
    bare.straggler_prob = 0.05;
    bare.straggler_mult = 4.0;
    engine::FaultOptions guarded = bare;
    guarded.speculation = true;
    guarded.speculation_trigger = 1.5;

    double mk_bare = 0.0, mk_prot = 0.0, waste_bare = 0.0, waste_prot = 0.0;
    int rec_bare = 0, rec_prot = 0;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      engine::ChaosRun b = sim.ExecuteWithFaults(g, seed, bare);
      engine::ChaosRun p = sim.ExecuteWithFaults(g, seed, guarded, cut);
      mk_bare += b.makespan;
      mk_prot += p.makespan;
      waste_bare += b.wasted_compute;
      waste_prot += p.wasted_compute;
      rec_bare += b.recomputed_stages;
      rec_prot += p.recomputed_stages;
    }
    table.AddRow({common::Table::Num(per_makespan, 1) + " per job",
                  common::Table::Num(mk_bare / kSeeds, 1),
                  common::Table::Num(mk_prot / kSeeds, 1),
                  common::Table::Num(waste_bare / kSeeds, 0),
                  common::Table::Num(waste_prot / kSeeds, 0),
                  std::to_string(rec_bare) + " / " + std::to_string(rec_prot)});
  }
  std::printf("failure-free makespan: %.1f s; checkpoint cut: %zu stages\n",
              base, cut.size());
  table.Print("P2.1 | engine: makespan under machine failures "
              "(checkpoints + speculation)");
}

void RunInfraChaos() {
  common::Table table({"MTBF (s)", "completed", "restarted", "failures",
                       "drains", "p50 latency", "p99 latency"});
  for (double mtbf : {0.0, 600.0, 300.0, 150.0}) {
    infra::Cluster cluster;
    infra::SkuSpec sku;
    sku.name = "gen4";
    sku.default_max_containers = 8;
    sku.cpu_per_container = 0.1;
    sku.temp_storage_gb = 50.0;
    cluster.AddMachines(sku, 8);
    common::EventQueue queue;
    infra::ClusterScheduler sched(&cluster, &queue, nullptr, 1);
    infra::MachineChaos chaos(&cluster, &queue, &sched, 17);
    infra::ChaosOptions copts;
    copts.mtbf_seconds = mtbf;
    copts.mttr_seconds = 90.0;
    copts.drain_fraction = 0.25;
    copts.drain_lead_seconds = 45.0;
    copts.horizon_seconds = 4000.0;
    chaos.Start(copts);
    for (uint64_t i = 0; i < 600; ++i) {
      queue.ScheduleAt(static_cast<double>(i) * 5.0,
                       [&sched, i](common::SimTime) {
                         sched.Submit({.id = i,
                                       .base_duration = 30.0,
                                       .temp_storage_gb = 1.0});
                       });
    }
    queue.RunAll();
    table.AddRow({mtbf <= 0.0 ? "off" : common::Table::Num(mtbf, 0),
                  std::to_string(sched.completed_tasks()),
                  std::to_string(sched.restarted_tasks()),
                  std::to_string(chaos.failures_injected()),
                  std::to_string(chaos.drains_injected()),
                  common::Table::Num(sched.task_latency().Quantile(0.5), 1),
                  common::Table::Num(sched.task_latency().Quantile(0.99), 1)});
  }
  table.Print("P2.2 | infra: scheduler under machine failures and drains "
              "(600 tasks, 8 machines)");
}

std::string BlobWithSlope(double slope) {
  ml::LinearRegressor m;
  m.SetCoefficients(0.0, {slope});
  return m.Serialize();
}

void RunServingChaos() {
  common::Table table({"deployed fault rate", "served", "deployed",
                       "previous", "heuristic", "breaker trips", "rollbacks"});
  for (double rate : {0.0, 0.05, 0.3, 0.8}) {
    ml::ModelRegistry registry;
    registry.Register("latency", BlobWithSlope(2.0));
    registry.Register("latency", BlobWithSlope(3.0));
    ADS_CHECK_OK(registry.Deploy("latency", 1));
    ADS_CHECK_OK(registry.Deploy("latency", 2));
    common::FaultInjector injector(23);
    injector.Configure("serving.deployed", {.probability = rate});
    autonomy::ServingOptions options;
    options.breaker.failure_threshold = 3;
    options.breaker.cooldown_seconds = 30.0;
    autonomy::ResilientModelServer server(
        &registry, "latency",
        [](const std::vector<double>& f) { return f.empty() ? 0.0 : f[0]; },
        options, &injector);
    const int kRequests = 2000;
    uint64_t served = 0;
    for (int i = 0; i < kRequests; ++i) {
      auto r = server.Predict({1.0}, static_cast<double>(i));
      (void)r;
      ++served;  // Predict never fails: the chain always answers
    }
    using Tier = autonomy::ResilientModelServer::Tier;
    table.AddRow({common::Table::Pct(rate), std::to_string(served),
                  std::to_string(server.served_by_tier(Tier::kDeployed)),
                  std::to_string(server.served_by_tier(Tier::kPrevious)),
                  std::to_string(server.served_by_tier(Tier::kHeuristic)),
                  std::to_string(server.breaker().trips()),
                  std::to_string(server.rollbacks())});
  }
  table.Print("P2.3 | serving: fallback chain under injected model faults "
              "(2000 requests each)");
}

// --flight: machine chaos overlaid on an active canary. The closed
// autonomy loop drives a drift -> retrain -> canary episode under a
// VirtualServer; the moment the canary opens, the deployed serving tier
// starts failing at the configured rate (the "machine under the canary
// dies" scenario). The fallback chain keeps answering, the breaker
// opens, the health gate aborts the flight, and the loop lands back on
// the last good model. Deterministic: seeded injector, virtual time.
void RunFlightChaos() {
  common::Table table({"canary fault rate", "outcome", "aborts", "promotes",
                       "breaker trips", "availability",
                       "last-good recovery (s)"});
  for (double rate : {0.0, 0.6, 1.0}) {
    ml::ModelRegistry registry;
    registry.Register("m", BlobWithSlope(2.0));
    ADS_CHECK_OK(registry.Deploy("m", 1));
    common::FaultInjector injector(31);
    autonomy::ServingOptions sopts;
    sopts.breaker.failure_threshold = 3;
    sopts.breaker.cooldown_seconds = 0.5;
    autonomy::ResilientModelServer backend(
        &registry, "m", [](const std::vector<double>&) { return -1.0; },
        sopts, &injector);

    autonomy::AutonomyLoopOptions lopts;
    lopts.detector.baseline_window = 20;
    lopts.detector.recent_window = 20;
    lopts.retrain_buffer_capacity = 40;
    lopts.min_retrain_samples = 40;
    lopts.retrain_duration_seconds = 0.05;
    lopts.shadow_min_samples = 10;
    lopts.flight.min_samples_per_arm = 30;  // keeps the canary open a while
    lopts.canary_tenant_fraction = 0.5;
    lopts.probation_seconds = 0.4;
    lopts.cooldown_seconds = 0.2;
    autonomy::AutonomyLoop loop(
        &registry, "m",
        [](const ml::Dataset& data) -> common::Result<std::string> {
          std::vector<size_t> recent;
          for (size_t i = data.size() - data.size() / 4; i < data.size(); ++i)
            recent.push_back(i);
          ml::LinearRegressor m;
          common::Status fitted = m.Fit(data.Filter(recent));
          if (!fitted.ok()) return fitted;
          return m.Serialize();
        },
        lopts);

    serve::VirtualOptions vopts;
    vopts.core.batcher.max_batch_size = 4;
    vopts.core.batcher.max_linger_seconds = 0.005;
    serve::VirtualServer server(vopts);
    server.RegisterBackend("m", &backend);
    server.SetRouter(&loop);

    const size_t kN = 400;
    std::vector<std::string> tenants(kN);
    std::vector<double> xs(kN, 0.0), arrivals(kN, 0.0);
    bool chaos_armed = false;
    double chaos_armed_at = 0.0, recovered_at = 0.0;
    server.SetResponseCallback([&](const serve::Response& response) {
      if (response.outcome != serve::Outcome::kServed) return;
      const uint64_t id = response.id;
      const double now = arrivals[id] + response.latency_seconds;
      autonomy::LoopSample sample;
      sample.tenant = tenants[id];
      sample.features = {xs[id]};
      sample.prediction = response.value;
      sample.served_version = response.model_version;
      sample.truth = (id < 30 ? 2.0 : 5.0) * xs[id];
      loop.OnSample(sample, now);
      // The machine under the canary dies the moment the flight opens.
      if (!chaos_armed && loop.state() == autonomy::LoopState::kCanary &&
          rate > 0.0) {
        injector.Configure("serving.deployed", {.probability = rate});
        chaos_armed = true;
        chaos_armed_at = now;
      }
      // Health gate: the loop sees the breaker state with every sample.
      autonomy::HealthSnapshot health;
      health.breaker_open =
          backend.breaker().state() == common::CircuitBreaker::State::kOpen;
      loop.ReportHealth(health, now);
      // Recovery: the flight is gone and the last good model serves again.
      if (chaos_armed && recovered_at == 0.0 &&
          loop.state() == autonomy::LoopState::kSteady &&
          registry.DeployedVersion("m") == 1) {
        recovered_at = now;
        injector.Configure("serving.deployed", {});  // machine comes back
      }
    });
    for (uint64_t id = 0; id < kN; ++id) {
      serve::Request request;
      request.id = id;
      request.model = "m";
      request.tenant = "t" + std::to_string(id % 8);
      request.features = {1.0 + static_cast<double>(id % 4)};
      arrivals[id] = 0.01 * static_cast<double>(id + 1);
      tenants[id] = request.tenant;
      xs[id] = request.features[0];
      server.SubmitAt(arrivals[id], std::move(request));
    }
    serve::VirtualReport report = server.Run();
    ADS_CHECK(report.counters.accepted == report.counters.Finished())
        << "request accounting broke under flight chaos";
    const double availability =
        static_cast<double>(report.counters.served) /
        static_cast<double>(report.counters.accepted);
    autonomy::LoopStats stats = loop.stats();
    const bool aborted = stats.aborts > 0;
    // With chaos the episode aborts; once the machine recovers the
    // latched drift alarm retries and the later episode promotes.
    const std::string outcome =
        !aborted ? "promoted"
                 : (stats.promotes > 0 ? "abort, then promote" : "aborted");
    table.AddRow(
        {common::Table::Pct(rate), outcome,
         std::to_string(stats.aborts), std::to_string(stats.promotes),
         std::to_string(backend.breaker().trips()),
         common::Table::Pct(availability),
         aborted ? common::Table::Num(recovered_at - chaos_armed_at, 3)
                 : "n/a"});
  }
  table.Print("P2.4 | flight chaos: machine death under an active canary "
              "(400 requests, virtual time)");
}

// One traced engine-chaos run plus one traced infra-chaos run, merged
// into a single Chrome trace (distinct tracer seeds keep span ids
// disjoint; every root span gets its own track).
void WriteChromeTrace(const std::string& path) {
  telemetry::Tracer engine_tracer(1);
  engine::StageGraph g = MakeJob();
  engine::JobSimulator sim;
  const double base = sim.Execute(g, 1).makespan;
  engine::FaultOptions faults;
  faults.failures_per_hour = 3600.0 / base * 2.0;
  faults.recovery_seconds = base / 5.0;
  faults.straggler_prob = 0.05;
  faults.straggler_mult = 4.0;
  faults.speculation = true;
  sim.ExecuteWithFaults(g, 7, faults, {}, &engine_tracer);

  telemetry::Tracer infra_tracer(2);
  infra::Cluster cluster;
  infra::SkuSpec sku;
  sku.name = "gen4";
  sku.default_max_containers = 8;
  sku.cpu_per_container = 0.1;
  sku.temp_storage_gb = 50.0;
  cluster.AddMachines(sku, 8);
  common::EventQueue queue;
  infra::ClusterScheduler sched(&cluster, &queue, nullptr, 1);
  sched.SetTracer(&infra_tracer);
  infra::MachineChaos chaos(&cluster, &queue, &sched, 17);
  chaos.SetTracer(&infra_tracer);
  infra::ChaosOptions copts;
  copts.mtbf_seconds = 300.0;
  copts.mttr_seconds = 90.0;
  copts.horizon_seconds = 1000.0;
  chaos.Start(copts);
  for (uint64_t i = 0; i < 150; ++i) {
    queue.ScheduleAt(static_cast<double>(i) * 5.0, [&sched, i](common::SimTime) {
      sched.Submit({.id = i, .base_duration = 30.0, .temp_storage_gb = 1.0});
    });
  }
  queue.RunAll();

  std::vector<telemetry::Span> spans = engine_tracer.Snapshot();
  std::vector<telemetry::Span> infra_spans = infra_tracer.Snapshot();
  spans.insert(spans.end(), infra_spans.begin(), infra_spans.end());
  std::string json = telemetry::ChromeTraceJson(spans);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ADS_CHECK(f != nullptr) << "cannot open trace output: " << path;
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote chrome trace: %s (%zu spans)\n", path.c_str(),
              spans.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  bool flight = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--flight") flight = true;
    const std::string flag = "--trace-out=";
    if (arg.rfind(flag, 0) == 0) trace_out = arg.substr(flag.size());
  }
  std::printf("P2 | chaos bench: deterministic fault injection across "
              "engine, infra and serving\n\n");
  RunEngineChaos();
  std::printf("\n");
  RunInfraChaos();
  std::printf("\n");
  RunServingChaos();
  if (flight) {
    std::printf("\n");
    RunFlightChaos();
  }
  if (!trace_out.empty()) WriteChromeTrace(trace_out);
  return 0;
}
