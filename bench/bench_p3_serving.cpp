// P3 — serving: the concurrent prediction-serving runtime, measured in
// virtual time. Every experiment drives the same ServingCore (admission
// control, load shedding, rate limiting, micro-batching) through the
// deterministic event-loop server, so two runs — at any ADS_THREADS —
// print byte-identical output. The threaded runtime shares the core and
// is covered by tests/serve/runtime_test.cc.
//
//   1. Micro-batching: throughput and tail latency vs. offered load with
//      batching off and on. Amortizing the fixed dispatch overhead turns
//      a saturated backend into a keeping-up one.
//
//   2. Load shedding: the same overload with an unbounded queue (latency
//      grows without bound) vs. a bounded queue plus per-request
//      deadlines (p99 stays flat, losses are explicit and accounted).
//
//   3. Faults: injected deployed-model failures under batched serving.
//      The fallback chain answers every request; the breaker trips and
//      the tier mix shifts instead of availability dropping.
//
//   4. Fleet: the sharded tier (VirtualFleet) at 1/4/16 shards with
//      per-shard load held constant, hedging off vs. on — the tail
//      collapse hedged requests buy — plus a rolling drain across 4
//      shards with availability and reroute accounting.
//
// Output: human tables on stdout; machine-readable JSON via --out=PATH
// (default BENCH_p3.json). `--smoke` runs the same experiments at 1/10
// the request volume and caps the fleet sweep at 4 shards (CI).

#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autonomy/serving.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/table.h"
#include "fleet/virtual_fleet.h"
#include "ml/linear.h"
#include "ml/registry.h"
#include "serve/virtual_server.h"

using namespace ads;  // NOLINT: bench brevity

namespace {

size_t g_scale = 10;  // --smoke drops this to 1
bool g_smoke = false;

/// Ordered so the JSON diffs cleanly run to run.
std::vector<std::pair<std::string, double>> g_metrics;

void Metric(const std::string& name, double value) {
  g_metrics.emplace_back(name, value);
}

std::string BlobWithSlope(double slope) {
  ml::LinearRegressor m;
  m.SetCoefficients(0.0, {slope});
  return m.Serialize();
}

/// Registry + resilient fallback chain for one model name.
struct Backend {
  ml::ModelRegistry registry;
  std::unique_ptr<autonomy::ResilientModelServer> server;

  explicit Backend(common::FaultInjector* injector = nullptr) {
    registry.Register("latency", BlobWithSlope(2.0));
    registry.Register("latency", BlobWithSlope(3.0));
    ADS_CHECK_OK(registry.Deploy("latency", 1));
    ADS_CHECK_OK(registry.Deploy("latency", 2));
    autonomy::ServingOptions options;
    options.breaker.failure_threshold = 3;
    options.breaker.cooldown_seconds = 5.0;
    server = std::make_unique<autonomy::ResilientModelServer>(
        &registry, "latency",
        [](const std::vector<double>& f) { return f.empty() ? 0.0 : f[0]; },
        options, injector);
  }
};

serve::Request Req(uint64_t id, double deadline =
                                    std::numeric_limits<double>::infinity()) {
  serve::Request r;
  r.id = id;
  r.model = "latency";
  r.tenant = "t0";
  r.features = {1.0 + 0.1 * static_cast<double>(id % 7)};
  r.deadline = deadline;
  return r;
}

/// Uniform arrivals at `rate` rps; relative deadline <= 0 means none.
serve::VirtualReport Drive(const serve::VirtualOptions& options, size_t count,
                           double rate, double relative_deadline = 0.0,
                           common::FaultInjector* injector = nullptr,
                           serve::VirtualServer::Callback callback = nullptr) {
  Backend backend(injector);
  serve::VirtualServer server(options);
  server.RegisterBackend("latency", backend.server.get());
  if (callback) server.SetResponseCallback(std::move(callback));
  for (size_t i = 0; i < count; ++i) {
    double t = static_cast<double>(i) / rate;
    double deadline = relative_deadline > 0.0
                          ? t + relative_deadline
                          : std::numeric_limits<double>::infinity();
    server.SubmitAt(t, Req(i, deadline));
  }
  return server.Run();
}

void RunBatching() {
  common::Table table({"offered rps", "batching", "throughput rps",
                       "mean batch", "p50 (ms)", "p99 (ms)", "served"});
  const size_t kRequests = 200 * g_scale;
  for (double rate : {400.0, 1000.0, 2000.0, 3000.0}) {
    for (bool batching : {false, true}) {
      serve::VirtualOptions options;
      options.core.batching = batching;
      options.core.batcher = {.max_batch_size = 16,
                              .max_linger_seconds = 0.004};
      options.core.queue_capacity = std::numeric_limits<size_t>::max();
      options.workers = 2;
      serve::VirtualReport r = Drive(options, kRequests, rate);
      table.AddRow({common::Table::Num(rate, 0), batching ? "on" : "off",
                    common::Table::Num(r.throughput_rps, 0),
                    common::Table::Num(r.mean_batch_size, 2),
                    common::Table::Num(r.latency.p50 * 1e3, 2),
                    common::Table::Num(r.latency.p99 * 1e3, 2),
                    std::to_string(r.counters.served)});
    }
  }
  std::printf("service model: 2 ms dispatch overhead + 0.5 ms per request, "
              "2 workers, %zu requests per cell\n", kRequests);
  table.Print("P3.1 | micro-batching: throughput and tail latency vs. "
              "offered load");
}

void RunShedding() {
  common::Table table({"admission", "served", "shed", "rejected", "p50 (ms)",
                       "p99 (ms)", "max queue"});
  const size_t kRequests = 200 * g_scale;
  const double kRate = 800.0;  // ~2x a single unbatched worker's capacity
  for (bool shedding : {false, true}) {
    serve::VirtualOptions options;
    options.core.batching = false;
    options.core.queue_capacity =
        shedding ? 32 : std::numeric_limits<size_t>::max();
    options.workers = 1;
    double deadline = shedding ? 0.05 : 0.0;
    serve::VirtualReport r = Drive(options, kRequests, kRate, deadline);
    const serve::Counters& c = r.counters;
    table.AddRow({shedding ? "cap 32 + 50ms deadline" : "unbounded",
                  std::to_string(c.served),
                  std::to_string(c.shed_capacity + c.shed_deadline),
                  std::to_string(c.Rejected()),
                  common::Table::Num(r.latency.p50 * 1e3, 1),
                  common::Table::Num(r.latency.p99 * 1e3, 1),
                  std::to_string(r.max_queue_depth)});
    ADS_CHECK(c.accepted == c.Finished());  // lossless drain
  }
  std::printf("offered %.0f rps against ~400 rps capacity (1 worker, "
              "batching off), %zu requests\n", kRate, kRequests);
  table.Print("P3.2 | load shedding: bounded queue + deadlines cap p99 "
              "where FIFO latency diverges");
}

void RunFaults() {
  common::Table table({"deployed fault rate", "served", "deployed",
                       "previous", "heuristic", "p99 (ms)"});
  const size_t kRequests = 100 * g_scale;
  for (double rate : {0.0, 0.05, 0.3, 0.8}) {
    common::FaultInjector injector(23);
    injector.Configure("serving.deployed", {.probability = rate});
    serve::VirtualOptions options;
    options.core.batcher = {.max_batch_size = 8, .max_linger_seconds = 0.002};
    std::map<autonomy::ResilientModelServer::Tier, uint64_t> tiers;
    serve::VirtualReport r =
        Drive(options, kRequests, 500.0, 0.0, &injector,
              [&tiers](const serve::Response& response) {
                if (response.outcome == serve::Outcome::kServed) {
                  ++tiers[response.tier];
                }
              });
    using Tier = autonomy::ResilientModelServer::Tier;
    table.AddRow({common::Table::Pct(rate),
                  std::to_string(r.counters.served),
                  std::to_string(tiers[Tier::kDeployed]),
                  std::to_string(tiers[Tier::kPrevious]),
                  std::to_string(tiers[Tier::kHeuristic]),
                  common::Table::Num(r.latency.p99 * 1e3, 2)});
    ADS_CHECK(r.counters.served == kRequests);  // availability holds
  }
  table.Print("P3.3 | faults: fallback tier mix under injected deployed-"
              "model failures (availability stays 100%)");
}

// --------------------------------------------------------------------
// P3.4: the sharded fleet.
// --------------------------------------------------------------------

/// One fleet run: `shards` shards x 2 replicas, per-shard load held
/// constant (weak scaling), 5% of dispatches stalling 16x. Hedging, when
/// on, duplicates a request once it outlives ~p90 of observed latency.
fleet::VirtualFleetReport DriveFleet(size_t shards, bool hedge,
                                     bool rolling_drain) {
  Backend backend;
  fleet::VirtualFleetOptions options;
  options.shards = shards;
  options.replicas_per_shard = 2;
  options.workers_per_replica = 2;
  options.seed = 19;
  options.core.batching = false;
  options.slow_probability = 0.05;
  options.slow_multiplier = 16.0;
  options.hedge.enabled = hedge;
  options.hedge.quantile = 0.9;
  options.hedge.delay_factor = 1.5;
  options.hedge.min_samples = 16;
  options.hedge.initial_delay_seconds = 0.010;
  if (rolling_drain) {
    // Micro-batching with a linger keeps queues standing so each drain
    // has live work to reroute.
    options.core.batching = true;
    options.core.batcher = {.max_batch_size = 8, .max_linger_seconds = 0.010};
  }
  fleet::VirtualFleet fleet(options);
  fleet.RegisterBackend("latency", backend.server.get());
  // 200 rps/shard keeps the hot shard (consistent-hash placement is not
  // perfectly even) well under capacity: queueing delay would otherwise
  // leak into the hedge quantile and push the delay toward the straggler
  // latency itself, blunting the hedges it is meant to time.
  const size_t kRequests = 120 * g_scale * shards;
  const double rate = 200.0 * static_cast<double>(shards);
  const size_t tenants = 16 * shards;
  for (size_t i = 0; i < kRequests; ++i) {
    serve::Request r = Req(i);
    r.tenant = "tenant-" + std::to_string(i % tenants);
    fleet.SubmitAt(static_cast<double>(i) / rate, std::move(r));
  }
  if (rolling_drain) {
    const double horizon = static_cast<double>(kRequests) / rate;
    fleet.ScheduleRollingDrain(0.2 * horizon,
                               (0.6 * horizon) / static_cast<double>(shards));
  }
  return fleet.Run();
}

void RunFleet() {
  common::Table table({"shards", "hedging", "p50 (ms)", "p99 (ms)",
                       "throughput rps", "hedges fired", "hedge wins",
                       "served"});
  const size_t kMaxShards = g_smoke ? 4 : 16;
  for (size_t shards = 1; shards <= kMaxShards; shards *= 4) {
    double p99_off = 0.0;
    for (bool hedge : {false, true}) {
      fleet::VirtualFleetReport r = DriveFleet(shards, hedge, false);
      ADS_CHECK(r.availability == 1.0) << "fleet bench lost work";
      table.AddRow({std::to_string(shards), hedge ? "on" : "off",
                    common::Table::Num(r.latency.p50 * 1e3, 2),
                    common::Table::Num(r.latency.p99 * 1e3, 2),
                    common::Table::Num(r.throughput_rps, 0),
                    std::to_string(r.fleet.hedges_fired),
                    std::to_string(r.fleet.hedge_wins),
                    std::to_string(r.fleet.served)});
      const std::string prefix =
          "fleet_shards" + std::to_string(shards) + (hedge ? "_hedged" : "");
      Metric(prefix + "_p50_seconds", r.latency.p50);
      Metric(prefix + "_p99_seconds", r.latency.p99);
      Metric(prefix + "_throughput_rps", r.throughput_rps);
      Metric(prefix + "_hedges_fired",
             static_cast<double>(r.fleet.hedges_fired));
      if (hedge) {
        // The headline claim: with a replica group to hedge into, the
        // duplicate beats the straggler and the p99 collapses.
        if (shards >= 4) {
          ADS_CHECK(r.latency.p99 < p99_off)
              << "hedging failed to cut p99 at " << shards << " shards";
        }
        ADS_CHECK(r.fleet.hedges_fired ==
                  r.fleet.hedge_wins + r.fleet.primary_wins +
                      r.fleet.hedges_failed);
        ADS_CHECK(r.fleet.hedges_fired == r.fleet.hedges_cancelled);
      } else {
        p99_off = r.latency.p99;
      }
    }
  }
  std::printf("2 replicas x 2 workers per shard, 5%% of dispatches stall "
              "16x, per-shard load constant (200 rps, %zu requests per "
              "shard)\n", 120 * g_scale);
  table.Print("P3.4 | sharded fleet: hedged requests collapse the "
              "straggler tail (first completion wins)");

  // Rolling drain: one shard down at a time across a 4-shard fleet.
  fleet::VirtualFleetReport drain = DriveFleet(4, false, true);
  ADS_CHECK(drain.availability == 1.0)
      << "rolling drain must not lose accepted work";
  ADS_CHECK(drain.fleet.rerouted_out == drain.fleet.rerouted_in);
  common::Table drain_table({"availability", "served", "drain diverts",
                             "queued reroutes", "p99 (ms)"});
  drain_table.AddRow({common::Table::Pct(drain.availability),
                      std::to_string(drain.fleet.served),
                      std::to_string(drain.fleet.drain_diverts),
                      std::to_string(drain.fleet.rerouted_out),
                      common::Table::Num(drain.latency.p99 * 1e3, 2)});
  std::printf("\n4 shards drained and rejoined one at a time under the "
              "same load (micro-batching on)\n");
  drain_table.Print("P3.4b | rolling drain: zero-downtime deploys with "
                    "exact reroute accounting");
  Metric("fleet_drain_availability", drain.availability);
  Metric("fleet_drain_diverts",
         static_cast<double>(drain.fleet.drain_diverts));
  Metric("fleet_drain_queued_reroutes",
         static_cast<double>(drain.fleet.rerouted_out));
  Metric("fleet_drain_p99_seconds", drain.latency.p99);
}

void WriteJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ADS_CHECK(f != nullptr) << "cannot open metrics output: " << path;
  std::fprintf(f, "{\n  \"bench\": \"bench_p3_serving\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", g_smoke ? "true" : "false");
  std::fprintf(f, "  \"metrics\": {\n");
  for (size_t i = 0; i < g_metrics.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.17g%s\n", g_metrics[i].first.c_str(),
                 g_metrics[i].second, i + 1 < g_metrics.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote metrics: %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_p3.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      g_scale = 1;
      g_smoke = true;
    }
    const std::string flag = "--out=";
    if (arg.rfind(flag, 0) == 0) out = arg.substr(flag.size());
  }
  std::printf("P3 | serving bench: SLO-aware prediction serving in "
              "deterministic virtual time%s\n\n",
              g_smoke ? " (smoke)" : "");
  RunBatching();
  std::printf("\n");
  RunShedding();
  std::printf("\n");
  RunFaults();
  std::printf("\n");
  RunFleet();
  WriteJson(out);
  return 0;
}
