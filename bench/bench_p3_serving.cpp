// P3 — serving: the concurrent prediction-serving runtime, measured in
// virtual time. Every experiment drives the same ServingCore (admission
// control, load shedding, rate limiting, micro-batching) through the
// deterministic event-loop server, so two runs — at any ADS_THREADS —
// print byte-identical output. The threaded runtime shares the core and
// is covered by tests/serve/runtime_test.cc.
//
//   1. Micro-batching: throughput and tail latency vs. offered load with
//      batching off and on. Amortizing the fixed dispatch overhead turns
//      a saturated backend into a keeping-up one.
//
//   2. Load shedding: the same overload with an unbounded queue (latency
//      grows without bound) vs. a bounded queue plus per-request
//      deadlines (p99 stays flat, losses are explicit and accounted).
//
//   3. Faults: injected deployed-model failures under batched serving.
//      The fallback chain answers every request; the breaker trips and
//      the tier mix shifts instead of availability dropping.
//
// `--smoke` runs the same experiments at 1/10 the request volume (CI).

#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "autonomy/serving.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/table.h"
#include "ml/linear.h"
#include "ml/registry.h"
#include "serve/virtual_server.h"

using namespace ads;  // NOLINT: bench brevity

namespace {

size_t g_scale = 10;  // --smoke drops this to 1

std::string BlobWithSlope(double slope) {
  ml::LinearRegressor m;
  m.SetCoefficients(0.0, {slope});
  return m.Serialize();
}

/// Registry + resilient fallback chain for one model name.
struct Backend {
  ml::ModelRegistry registry;
  std::unique_ptr<autonomy::ResilientModelServer> server;

  explicit Backend(common::FaultInjector* injector = nullptr) {
    registry.Register("latency", BlobWithSlope(2.0));
    registry.Register("latency", BlobWithSlope(3.0));
    ADS_CHECK_OK(registry.Deploy("latency", 1));
    ADS_CHECK_OK(registry.Deploy("latency", 2));
    autonomy::ServingOptions options;
    options.breaker.failure_threshold = 3;
    options.breaker.cooldown_seconds = 5.0;
    server = std::make_unique<autonomy::ResilientModelServer>(
        &registry, "latency",
        [](const std::vector<double>& f) { return f.empty() ? 0.0 : f[0]; },
        options, injector);
  }
};

serve::Request Req(uint64_t id, double deadline =
                                    std::numeric_limits<double>::infinity()) {
  serve::Request r;
  r.id = id;
  r.model = "latency";
  r.tenant = "t0";
  r.features = {1.0 + 0.1 * static_cast<double>(id % 7)};
  r.deadline = deadline;
  return r;
}

/// Uniform arrivals at `rate` rps; relative deadline <= 0 means none.
serve::VirtualReport Drive(const serve::VirtualOptions& options, size_t count,
                           double rate, double relative_deadline = 0.0,
                           common::FaultInjector* injector = nullptr,
                           serve::VirtualServer::Callback callback = nullptr) {
  Backend backend(injector);
  serve::VirtualServer server(options);
  server.RegisterBackend("latency", backend.server.get());
  if (callback) server.SetResponseCallback(std::move(callback));
  for (size_t i = 0; i < count; ++i) {
    double t = static_cast<double>(i) / rate;
    double deadline = relative_deadline > 0.0
                          ? t + relative_deadline
                          : std::numeric_limits<double>::infinity();
    server.SubmitAt(t, Req(i, deadline));
  }
  return server.Run();
}

void RunBatching() {
  common::Table table({"offered rps", "batching", "throughput rps",
                       "mean batch", "p50 (ms)", "p99 (ms)", "served"});
  const size_t kRequests = 200 * g_scale;
  for (double rate : {400.0, 1000.0, 2000.0, 3000.0}) {
    for (bool batching : {false, true}) {
      serve::VirtualOptions options;
      options.core.batching = batching;
      options.core.batcher = {.max_batch_size = 16,
                              .max_linger_seconds = 0.004};
      options.core.queue_capacity = std::numeric_limits<size_t>::max();
      options.workers = 2;
      serve::VirtualReport r = Drive(options, kRequests, rate);
      table.AddRow({common::Table::Num(rate, 0), batching ? "on" : "off",
                    common::Table::Num(r.throughput_rps, 0),
                    common::Table::Num(r.mean_batch_size, 2),
                    common::Table::Num(r.latency.p50 * 1e3, 2),
                    common::Table::Num(r.latency.p99 * 1e3, 2),
                    std::to_string(r.counters.served)});
    }
  }
  std::printf("service model: 2 ms dispatch overhead + 0.5 ms per request, "
              "2 workers, %zu requests per cell\n", kRequests);
  table.Print("P3.1 | micro-batching: throughput and tail latency vs. "
              "offered load");
}

void RunShedding() {
  common::Table table({"admission", "served", "shed", "rejected", "p50 (ms)",
                       "p99 (ms)", "max queue"});
  const size_t kRequests = 200 * g_scale;
  const double kRate = 800.0;  // ~2x a single unbatched worker's capacity
  for (bool shedding : {false, true}) {
    serve::VirtualOptions options;
    options.core.batching = false;
    options.core.queue_capacity =
        shedding ? 32 : std::numeric_limits<size_t>::max();
    options.workers = 1;
    double deadline = shedding ? 0.05 : 0.0;
    serve::VirtualReport r = Drive(options, kRequests, kRate, deadline);
    const serve::Counters& c = r.counters;
    table.AddRow({shedding ? "cap 32 + 50ms deadline" : "unbounded",
                  std::to_string(c.served),
                  std::to_string(c.shed_capacity + c.shed_deadline),
                  std::to_string(c.Rejected()),
                  common::Table::Num(r.latency.p50 * 1e3, 1),
                  common::Table::Num(r.latency.p99 * 1e3, 1),
                  std::to_string(r.max_queue_depth)});
    ADS_CHECK(c.accepted == c.Finished());  // lossless drain
  }
  std::printf("offered %.0f rps against ~400 rps capacity (1 worker, "
              "batching off), %zu requests\n", kRate, kRequests);
  table.Print("P3.2 | load shedding: bounded queue + deadlines cap p99 "
              "where FIFO latency diverges");
}

void RunFaults() {
  common::Table table({"deployed fault rate", "served", "deployed",
                       "previous", "heuristic", "p99 (ms)"});
  const size_t kRequests = 100 * g_scale;
  for (double rate : {0.0, 0.05, 0.3, 0.8}) {
    common::FaultInjector injector(23);
    injector.Configure("serving.deployed", {.probability = rate});
    serve::VirtualOptions options;
    options.core.batcher = {.max_batch_size = 8, .max_linger_seconds = 0.002};
    std::map<autonomy::ResilientModelServer::Tier, uint64_t> tiers;
    serve::VirtualReport r =
        Drive(options, kRequests, 500.0, 0.0, &injector,
              [&tiers](const serve::Response& response) {
                if (response.outcome == serve::Outcome::kServed) {
                  ++tiers[response.tier];
                }
              });
    using Tier = autonomy::ResilientModelServer::Tier;
    table.AddRow({common::Table::Pct(rate),
                  std::to_string(r.counters.served),
                  std::to_string(tiers[Tier::kDeployed]),
                  std::to_string(tiers[Tier::kPrevious]),
                  std::to_string(tiers[Tier::kHeuristic]),
                  common::Table::Num(r.latency.p99 * 1e3, 2)});
    ADS_CHECK(r.counters.served == kRequests);  // availability holds
  }
  table.Print("P3.3 | faults: fallback tier mix under injected deployed-"
              "model failures (availability stays 100%)");
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_scale = 1;
  }
  std::printf("P3 | serving bench: SLO-aware prediction serving in "
              "deterministic virtual time%s\n\n",
              g_scale == 1 ? " (smoke)" : "");
  RunBatching();
  std::printf("\n");
  RunShedding();
  std::printf("\n");
  RunFaults();
  return 0;
}
