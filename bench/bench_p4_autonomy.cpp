// P4 — the closed autonomy loop under live traffic: how fast drift turns
// into a safely promoted model, how fast a regressing promotion is rolled
// back, and what flighting costs the serving tier while it happens.
//
// Two experiments:
//
//   1. Virtual time (deterministic, byte-identical run to run): the
//      golden-trace promote and rollback scenarios at bench scale —
//      a VirtualServer with the AutonomyLoop attached as version router,
//      every served response fed back as a loop sample. Reports
//      promote latency (drift alarm -> deployed pointer swapped),
//      rollback latency (regression onset -> previous version restored),
//      and serving availability while the flights were active.
//
//   2. Threaded (wall clock): a ServingRuntime and the loop's retraining
//      share one ThreadPool; a drift mid-run triggers a deliberately
//      heavy retrain. Reports serving p99 with and without the retrain
//      competing for the pool — the "retraining must not violate serving
//      SLOs" number.
//
// Output: human tables on stdout; machine-readable JSON via --out=PATH
// (default BENCH_p4.json). `--smoke` shrinks the threaded experiment for
// CI runners.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "autonomy/loop.h"
#include "autonomy/serving.h"
#include "common/logging.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "ml/dataset.h"
#include "ml/forest.h"
#include "ml/linear.h"
#include "ml/registry.h"
#include "serve/runtime.h"
#include "serve/types.h"
#include "serve/virtual_server.h"
#include "telemetry/span.h"

using namespace ads;  // NOLINT: bench brevity

namespace {

bool g_smoke = false;

/// Ordered so the JSON diffs cleanly run to run.
std::vector<std::pair<std::string, double>> g_metrics;

void Metric(const std::string& name, double value) {
  g_metrics.emplace_back(name, value);
}

std::string BlobWithSlope(double slope) {
  ml::LinearRegressor m;
  m.SetCoefficients(0.0, {slope});
  return m.Serialize();
}

/// Fits the most recent quarter of the retrain buffer — the
/// pure-new-regime tail at alarm time.
common::Result<std::string> RecencyTrainer(const ml::Dataset& data) {
  std::vector<size_t> recent;
  for (size_t i = data.size() - data.size() / 4; i < data.size(); ++i)
    recent.push_back(i);
  ml::LinearRegressor m;
  common::Status fitted = m.Fit(data.Filter(recent));
  if (!fitted.ok()) return fitted;
  return m.Serialize();
}

autonomy::AutonomyLoopOptions LoopOptions() {
  autonomy::AutonomyLoopOptions options;
  options.detector.baseline_window = 20;
  options.detector.recent_window = 20;
  options.retrain_buffer_capacity = 40;
  options.min_retrain_samples = 40;
  options.retrain_duration_seconds = 0.05;
  options.shadow_min_samples = 10;
  options.flight.min_samples_per_arm = 10;
  options.canary_tenant_fraction = 0.5;
  options.cooldown_seconds = 0.2;
  return options;
}

// --------------------------------------------------------------------
// P4.1 | virtual-time promote and rollback scenarios.
// --------------------------------------------------------------------

struct FlightRun {
  serve::VirtualReport report;
  autonomy::LoopStats stats;
  std::vector<telemetry::Span> spans;
  uint32_t deployed = 0;
};

FlightRun RunVirtualScenario(size_t n, double (*slope_at)(uint64_t),
                             double probation_seconds) {
  ml::ModelRegistry registry;
  registry.Register("m", BlobWithSlope(2.0));
  ADS_CHECK_OK(registry.Deploy("m", 1));
  autonomy::ResilientModelServer backend(
      &registry, "m", [](const std::vector<double>&) { return -1.0; });
  autonomy::AutonomyLoopOptions options = LoopOptions();
  options.probation_seconds = probation_seconds;
  autonomy::AutonomyLoop loop(&registry, "m", RecencyTrainer, options);
  telemetry::Tracer tracer(29);
  loop.SetTracer(&tracer);

  serve::VirtualOptions vopts;
  vopts.core.batcher.max_batch_size = 4;
  vopts.core.batcher.max_linger_seconds = 0.005;
  serve::VirtualServer server(vopts);
  server.RegisterBackend("m", &backend);
  server.SetRouter(&loop);

  std::vector<std::string> tenants(n);
  std::vector<double> xs(n, 0.0), arrivals(n, 0.0);
  server.SetResponseCallback([&](const serve::Response& response) {
    if (response.outcome != serve::Outcome::kServed) return;
    const uint64_t id = response.id;
    autonomy::LoopSample sample;
    sample.tenant = tenants[id];
    sample.features = {xs[id]};
    sample.prediction = response.value;
    sample.served_version = response.model_version;
    sample.truth = slope_at(id) * xs[id];
    loop.OnSample(sample, arrivals[id] + response.latency_seconds);
  });
  for (uint64_t id = 0; id < n; ++id) {
    serve::Request request;
    request.id = id;
    request.model = "m";
    request.tenant = "t" + std::to_string(id % 8);
    request.features = {1.0 + static_cast<double>(id % 4)};
    arrivals[id] = 0.01 * static_cast<double>(id + 1);
    tenants[id] = request.tenant;
    xs[id] = request.features[0];
    server.SubmitAt(arrivals[id], std::move(request));
  }
  FlightRun run;
  run.report = server.Run();
  run.stats = loop.stats();
  run.deployed = registry.DeployedVersion("m");
  run.spans = tracer.Snapshot();
  return run;
}

double SpanStart(const std::vector<telemetry::Span>& spans,
                 const std::string& kind) {
  for (const telemetry::Span& span : spans) {
    if (span.kind == kind) return span.start;
  }
  return -1.0;
}

double PromoteSlopes(uint64_t id) { return id < 30 ? 2.0 : 5.0; }

double RollbackSlopes(uint64_t id) {
  if (id < 30) return 2.0;
  if (id < 190) return 5.0;
  return 2.0;
}

void RunVirtualFlights() {
  // Promote: drift onset at request 30 (t=0.31), one full episode.
  FlightRun promote = RunVirtualScenario(250, PromoteSlopes, 0.4);
  ADS_CHECK(promote.stats.promotes == 1 && promote.deployed == 2)
      << "promote scenario drifted";
  const double drift_alarm = SpanStart(promote.spans, "episode");
  const double promoted_at = SpanStart(promote.spans, "promote");
  const double promote_latency = promoted_at - drift_alarm;
  const double promote_avail =
      static_cast<double>(promote.report.counters.served) /
      static_cast<double>(promote.report.counters.accepted);

  // Rollback: the world reverts at request 190 (t=1.91) inside the
  // promoted model's probation window.
  FlightRun rollback = RunVirtualScenario(320, RollbackSlopes, 3.0);
  ADS_CHECK(rollback.stats.rollbacks == 1 && rollback.deployed == 1)
      << "rollback scenario drifted";
  const double reversion_onset = 0.01 * (190 + 1);
  const double rolled_back_at = SpanStart(rollback.spans, "rollback");
  const double rollback_latency = rolled_back_at - reversion_onset;
  const double rollback_avail =
      static_cast<double>(rollback.report.counters.served) /
      static_cast<double>(rollback.report.counters.accepted);

  common::Table table({"scenario", "episodes", "outcome", "latency (s)",
                       "availability", "deployed after"});
  table.AddRow({"drift -> promote", std::to_string(promote.stats.episodes),
                "promoted", common::Table::Num(promote_latency, 3),
                common::Table::Pct(promote_avail),
                "v" + std::to_string(promote.deployed)});
  table.AddRow({"regression -> rollback",
                std::to_string(rollback.stats.episodes), "rolled-back",
                common::Table::Num(rollback_latency, 3),
                common::Table::Pct(rollback_avail),
                "v" + std::to_string(rollback.deployed)});
  table.Print("P4.1 | virtual-time flights: drift to promote, regression "
              "to rollback (dt=10ms arrivals)");

  Metric("promote_latency_seconds", promote_latency);
  Metric("rollback_latency_seconds", rollback_latency);
  Metric("availability_promote_flight", promote_avail);
  Metric("availability_rollback_flight", rollback_avail);
}

// --------------------------------------------------------------------
// P4.2 | threaded serving p99 while retraining shares the pool.
// --------------------------------------------------------------------

/// A trainer that actually costs compute: fits a random forest on the
/// buffer replicated many times, then distils it back to the linear blob
/// the serving scenario expects. The forest fit is what contends with
/// serving for pool workers.
common::Result<std::string> HeavyTrainer(const ml::Dataset& data) {
  ml::Dataset big;
  const size_t reps = g_smoke ? 50 : 400;
  for (size_t r = 0; r < reps; ++r) {
    for (size_t i = 0; i < data.size(); ++i) {
      big.Add(std::vector<double>(data.row(i)), data.label(i));
    }
  }
  ml::RandomForestRegressor forest(
      ml::RandomForestOptions{.num_trees = g_smoke ? 8u : 16u, .max_depth = 8});
  common::Status fitted = forest.Fit(big);
  if (!fitted.ok()) return fitted;
  return RecencyTrainer(data);
}

struct ThreadedRun {
  serve::ServingStats stats;
  autonomy::LoopStats loop_stats;
  double p99 = 0.0;
};

ThreadedRun RunThreadedServing(bool with_drift) {
  ml::ModelRegistry registry;
  registry.Register("m", BlobWithSlope(2.0));
  ADS_CHECK_OK(registry.Deploy("m", 1));
  autonomy::ResilientModelServer backend(
      &registry, "m", [](const std::vector<double>&) { return -1.0; });

  common::ThreadPool pool(4);
  autonomy::AutonomyLoopOptions options = LoopOptions();
  options.retrain_duration_seconds = 0.0;
  autonomy::AutonomyLoop loop(&registry, "m", HeavyTrainer, options, &pool);

  serve::CoreOptions copts;
  copts.queue_capacity = 4096;
  copts.batcher.max_batch_size = 8;
  copts.batcher.max_linger_seconds = 0.0005;
  serve::ServingRuntime runtime(copts, &pool);
  runtime.RegisterBackend("m", &backend);
  runtime.SetRouter(&loop);
  runtime.Start();

  const uint64_t kRequests = g_smoke ? 4000 : 20000;
  const uint64_t drift_at = kRequests / 4;
  std::atomic<uint64_t> done{0};
  for (uint64_t id = 0; id < kRequests; ++id) {
    serve::Request request;
    request.id = id;
    request.model = "m";
    request.tenant = "t" + std::to_string(id % 8);
    const double x = 1.0 + static_cast<double>(id % 4);
    request.features = {x};
    const double slope = (with_drift && id >= drift_at) ? 5.0 : 2.0;
    common::Status admitted = runtime.Submit(
        std::move(request),
        [&loop, &runtime, &done, x, slope,
         tenant = "t" + std::to_string(id % 8)](
            const serve::Response& response) {
          if (response.outcome == serve::Outcome::kServed) {
            autonomy::LoopSample sample;
            sample.tenant = tenant;
            sample.features = {x};
            sample.prediction = response.value;
            sample.served_version = response.model_version;
            sample.truth = slope * x;
            loop.OnSample(sample, runtime.Now());
          }
          done.fetch_add(1, std::memory_order_relaxed);
        });
    (void)admitted;  // rejections fire the callback inline and are counted
    // Light pacing keeps the queue shallow so p99 reflects service-time
    // contention (the retrain sharing the pool), not backlog depth.
    if (id % 64 == 63) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  runtime.Shutdown();
  ADS_CHECK(done.load() == kRequests) << "lost responses";

  ThreadedRun run;
  run.stats = runtime.Stats();
  run.loop_stats = loop.stats();
  run.p99 = run.stats.latency.p99;
  return run;
}

void RunThreadedFlight() {
  ThreadedRun steady = RunThreadedServing(/*with_drift=*/false);
  ThreadedRun flighted = RunThreadedServing(/*with_drift=*/true);

  common::Table table({"run", "served", "episodes", "promotes", "p99 (ms)",
                       "availability"});
  auto avail = [](const ThreadedRun& run) {
    return static_cast<double>(run.stats.counters.served) /
           static_cast<double>(run.stats.counters.accepted);
  };
  table.AddRow({"steady (no retrain)",
                std::to_string(steady.stats.counters.served),
                std::to_string(steady.loop_stats.episodes),
                std::to_string(steady.loop_stats.promotes),
                common::Table::Num(steady.p99 * 1e3, 3),
                common::Table::Pct(avail(steady))});
  table.AddRow({"drift + pool retrain",
                std::to_string(flighted.stats.counters.served),
                std::to_string(flighted.loop_stats.episodes),
                std::to_string(flighted.loop_stats.promotes),
                common::Table::Num(flighted.p99 * 1e3, 3),
                common::Table::Pct(avail(flighted))});
  table.Print("P4.2 | threaded runtime: serving p99 while retraining "
              "shares the thread pool");

  Metric("p99_steady_seconds", steady.p99);
  Metric("p99_during_flight_seconds", flighted.p99);
  Metric("availability_threaded_steady", avail(steady));
  Metric("availability_threaded_flight", avail(flighted));
  Metric("threaded_flight_promotes",
         static_cast<double>(flighted.loop_stats.promotes));
}

void WriteJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ADS_CHECK(f != nullptr) << "cannot open metrics output: " << path;
  std::fprintf(f, "{\n  \"bench\": \"bench_p4_autonomy\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", g_smoke ? "true" : "false");
  std::fprintf(f, "  \"metrics\": {\n");
  for (size_t i = 0; i < g_metrics.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.17g%s\n", g_metrics[i].first.c_str(),
                 g_metrics[i].second, i + 1 < g_metrics.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote metrics: %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_p4.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") g_smoke = true;
    const std::string flag = "--out=";
    if (arg.rfind(flag, 0) == 0) out = arg.substr(flag.size());
  }
  std::printf("P4 | autonomy bench: closed loop drift -> retrain -> "
              "flight -> promote/rollback\n\n");
  RunVirtualFlights();
  std::printf("\n");
  RunThreadedFlight();
  WriteJson(out);
  return 0;
}
