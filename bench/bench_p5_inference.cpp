// P5 — batched inference kernels: scalar Predict loops vs. the
// cache-friendly PredictBatch kernels vs. PredictBatch fanned out over the
// shared thread pool, for every model family, plus serving p99 under load
// through the threaded runtime (which now serves one PredictBatch call per
// dispatched micro-batch).
//
// Before timing anything the bench ADS_CHECKs that the batched path is
// bit-identical to the scalar path — the property the serving stack and
// the golden traces rely on. A wrong-but-fast kernel fails loudly here.
//
// Output:
//   - human-readable tables on stdout;
//   - machine-readable metrics as JSON (--out=PATH, default BENCH_p5.json);
//   - optional self-gate: --baseline=PATH loads a checked-in JSON and fails
//     (exit 1) if any *_speedup metric listed there regressed by more than
//     2x, or fell below an absolute `min_ratio.<metric>` floor the baseline
//     declares. Only speedup RATIOS are gated — absolute rows/sec depend on
//     the machine, ratios are portable across CI hardware.
//
// `--smoke` shrinks training sets, batch sizes and repetitions for CI.
// `--simd=off|sse|avx2` forces the dispatch tier (clamped to what the CPU
// supports); the active tier is reported in the table and the JSON.

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autonomy/serving.h"
#include "common/logging.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "ml/dataset.h"
#include "ml/forest.h"
#include "ml/linear.h"
#include "ml/mlp.h"
#include "ml/model.h"
#include "ml/registry.h"
#include "ml/tree.h"
#include "serve/runtime.h"

using namespace ads;  // NOLINT: bench brevity

namespace {

bool g_smoke = false;

/// Ordered so the JSON diffs cleanly run to run.
std::vector<std::pair<std::string, double>> g_metrics;

void Metric(const std::string& name, double value) {
  g_metrics.emplace_back(name, value);
}

double Seconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Best-of-reps wall time for `fn`, after one untimed warmup call.
double BestSeconds(int reps, const std::function<void()>& fn) {
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) best = std::min(best, Seconds(fn));
  return best;
}

constexpr size_t kDims = 8;

ml::Dataset MakeTrainingData(size_t n) {
  common::Rng rng(17);
  ml::Dataset data;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> x(kDims);
    for (double& v : x) v = rng.Uniform(-3.0, 3.0);
    double label =
        x[0] - 0.7 * x[1] * x[1] + 0.4 * x[2] * x[3] + rng.Normal(0.0, 0.25);
    data.Add(std::move(x), label);
  }
  return data;
}

common::Matrix MakeQueries(size_t rows) {
  common::Rng rng(99);
  common::Matrix queries(rows, kDims);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t j = 0; j < kDims; ++j) queries.At(r, j) = rng.Uniform(-4.0, 4.0);
  }
  return queries;
}

std::vector<std::pair<std::string, std::unique_ptr<ml::Regressor>>>
FitModels(const ml::Dataset& data) {
  std::vector<std::pair<std::string, std::unique_ptr<ml::Regressor>>> models;
  models.emplace_back("linear", std::make_unique<ml::LinearRegressor>());
  models.emplace_back(
      "tree", std::make_unique<ml::RegressionTree>(ml::RegressionTreeOptions{
                  .max_depth = 10, .min_samples_leaf = 2}));
  models.emplace_back(
      "forest", std::make_unique<ml::RandomForestRegressor>(
                    ml::RandomForestOptions{
                        .num_trees = g_smoke ? 24u : 40u, .max_depth = 8}));
  models.emplace_back(
      "gbt", std::make_unique<ml::GradientBoostedTrees>(
                 ml::GradientBoostedTreesOptions{
                     .num_rounds = g_smoke ? 40u : 60u, .max_depth = 4}));
  models.emplace_back(
      "mlp", std::make_unique<ml::MlpRegressor>(ml::MlpOptions{
                 .hidden_layers = {32, 32}, .epochs = g_smoke ? 10 : 20}));
  for (auto& [name, model] : models) ADS_CHECK_OK(model->Fit(data));
  return models;
}

/// The bit-identical contract, enforced before any timing: a fast kernel
/// that drifts from scalar Predict must never produce a benchmark number.
void CheckEquivalence(const ml::Regressor& model, const common::Matrix& queries,
                      const std::string& name) {
  std::vector<double> batched;
  model.PredictBatch(queries, &batched);
  std::vector<double> threaded;
  ml::PredictBatchParallel(model, queries, common::ThreadPool::Global(),
                           &threaded);
  for (size_t r = 0; r < queries.rows(); ++r) {
    double scalar = model.Predict(queries.Row(r));
    ADS_CHECK(std::memcmp(&batched[r], &scalar, sizeof(double)) == 0)
        << name << ": batched kernel diverged from scalar at row " << r;
    ADS_CHECK(std::memcmp(&threaded[r], &scalar, sizeof(double)) == 0)
        << name << ": threaded kernel diverged from scalar at row " << r;
  }
}

void RunKernelThroughput() {
  const size_t train_n = g_smoke ? 800 : 1500;
  const size_t rows_target = g_smoke ? 16384 : 131072;
  const int reps = g_smoke ? 3 : 5;
  const std::vector<size_t> batches =
      g_smoke ? std::vector<size_t>{64, 256, 1024}
              : std::vector<size_t>{64, 256, 1024, 4096};

  ml::Dataset data = MakeTrainingData(train_n);
  auto models = FitModels(data);
  common::ThreadPool& pool = common::ThreadPool::Global();

  const char* simd = common::SimdLevelName(common::ActiveSimdLevel());
  common::Table table({"model", "batch", "simd", "scalar Mrows/s",
                       "batched Mrows/s", "threaded Mrows/s", "batched x",
                       "threaded x"});
  for (const auto& [name, model] : models) {
    for (size_t batch : batches) {
      common::Matrix queries = MakeQueries(batch);
      CheckEquivalence(*model, queries, name);
      const size_t iters = std::max<size_t>(1, rows_target / batch);
      const double rows = static_cast<double>(iters * batch);

      std::vector<double> row_buf(kDims);
      std::vector<double> out(batch);
      double scalar_s = BestSeconds(reps, [&]() {
        for (size_t it = 0; it < iters; ++it) {
          for (size_t r = 0; r < batch; ++r) {
            const double* x = queries.RowPtr(r);
            row_buf.assign(x, x + kDims);
            out[r] = model->Predict(row_buf);
          }
        }
      });
      double batched_s = BestSeconds(reps, [&]() {
        for (size_t it = 0; it < iters; ++it) model->PredictBatch(queries, &out);
      });
      double threaded_s = BestSeconds(reps, [&]() {
        for (size_t it = 0; it < iters; ++it) {
          ml::PredictBatchParallel(*model, queries, pool, &out);
        }
      });

      const double scalar_rps = rows / scalar_s;
      const double batched_rps = rows / batched_s;
      const double threaded_rps = rows / threaded_s;
      const std::string key = name + ".b" + std::to_string(batch);
      Metric(key + ".scalar_rps", scalar_rps);
      Metric(key + ".batched_rps", batched_rps);
      Metric(key + ".threaded_rps", threaded_rps);
      Metric(key + ".batched_speedup", batched_rps / scalar_rps);
      Metric(key + ".threaded_speedup", threaded_rps / scalar_rps);
      table.AddRow({name, std::to_string(batch), simd,
                    common::Table::Num(scalar_rps / 1e6, 2),
                    common::Table::Num(batched_rps / 1e6, 2),
                    common::Table::Num(threaded_rps / 1e6, 2),
                    common::Table::Num(batched_rps / scalar_rps, 2),
                    common::Table::Num(threaded_rps / scalar_rps, 2)});
    }
  }
  std::printf("%zu-dim features, best of %d reps, ~%zu rows per measurement, "
              "threaded = PredictBatchParallel on the global pool\n",
              kDims, reps, rows_target);
  table.Print("P5.1 | inference kernels: scalar vs. batched vs. "
              "batched+threaded rows/sec");
}

void RunServingTail() {
  // Load the threaded serving runtime with a forest backend: every
  // micro-batch is served by one PredictBatch call. Requests are submitted
  // as fast as the runtime accepts them (unbounded queue, no deadlines),
  // so the measured p99 includes queueing — "under load" by construction.
  const size_t requests = g_smoke ? 2000 : 20000;
  ml::Dataset data = MakeTrainingData(g_smoke ? 600 : 1200);
  ml::RandomForestRegressor forest(
      ml::RandomForestOptions{.num_trees = g_smoke ? 24u : 40u, .max_depth = 8});
  ADS_CHECK_OK(forest.Fit(data));

  ml::ModelRegistry registry;
  registry.Register("forest", forest.Serialize());
  ADS_CHECK_OK(registry.Deploy("forest", 1));
  autonomy::ResilientModelServer backend(
      &registry, "forest",
      [](const std::vector<double>& f) { return f.empty() ? 0.0 : f[0]; });

  serve::CoreOptions core;
  core.queue_capacity = std::numeric_limits<size_t>::max();
  core.batcher = {.max_batch_size = 64, .max_linger_seconds = 0.0005};
  serve::ServingRuntime runtime(core, &common::ThreadPool::Global());
  runtime.RegisterBackend("forest", &backend);
  runtime.Start();

  common::Rng rng(7);
  double wall = Seconds([&]() {
    for (size_t i = 0; i < requests; ++i) {
      serve::Request request;
      request.id = i;
      request.model = "forest";
      request.tenant = "bench";
      request.features.resize(kDims);
      for (double& v : request.features) v = rng.Uniform(-4.0, 4.0);
      ADS_CHECK_OK(runtime.Submit(std::move(request), nullptr));
    }
    runtime.Shutdown();
  });
  serve::ServingStats stats = runtime.Stats();
  ADS_CHECK(stats.counters.served == requests) << "lossy drain";

  const double rps = static_cast<double>(requests) / wall;
  Metric("serving.forest.throughput_rps", rps);
  Metric("serving.forest.p50_ms", stats.latency.p50 * 1e3);
  Metric("serving.forest.p99_ms", stats.latency.p99 * 1e3);
  Metric("serving.forest.mean_batch", stats.batch_size.mean());
  common::Table table(
      {"requests", "throughput rps", "mean batch", "p50 (ms)", "p99 (ms)"});
  table.AddRow({std::to_string(requests), common::Table::Num(rps, 0),
                common::Table::Num(stats.batch_size.mean(), 1),
                common::Table::Num(stats.latency.p50 * 1e3, 2),
                common::Table::Num(stats.latency.p99 * 1e3, 2)});
  table.Print("P5.2 | serving under load: threaded runtime, one "
              "PredictBatch per micro-batch (latency includes queueing)");
}

void WriteJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ADS_CHECK(f != nullptr) << "cannot write " << path;
  std::fprintf(f, "{\n  \"bench\": \"bench_p5_inference\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", g_smoke ? "true" : "false");
  std::fprintf(f, "  \"simd\": \"%s\",\n",
               common::SimdLevelName(common::ActiveSimdLevel()));
  std::fprintf(f, "  \"metrics\": {\n");
  for (size_t i = 0; i < g_metrics.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.17g%s\n", g_metrics[i].first.c_str(),
                 g_metrics[i].second, i + 1 < g_metrics.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote %zu metrics to %s\n", g_metrics.size(), path.c_str());
}

/// Minimal scan for "key": number pairs — enough for the flat metric JSON
/// this bench writes; no external parser dependencies.
std::vector<std::pair<std::string, double>> ParseMetrics(
    const std::string& text) {
  std::vector<std::pair<std::string, double>> metrics;
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '"') {
      ++i;
      continue;
    }
    size_t close = text.find('"', i + 1);
    if (close == std::string::npos) break;
    std::string key = text.substr(i + 1, close - i - 1);
    i = close + 1;
    while (i < text.size() && (text[i] == ' ' || text[i] == ':')) ++i;
    if (i < text.size() &&
        (std::isdigit(static_cast<unsigned char>(text[i])) ||
         text[i] == '-' || text[i] == '+')) {
      metrics.emplace_back(key, std::strtod(text.c_str() + i, nullptr));
    }
  }
  return metrics;
}

/// Gate: every *_speedup metric named in the baseline must be at least
/// half its baseline value, AND at least any absolute `min_ratio.<metric>`
/// floor the baseline declares. The relative check catches regressions
/// against the last re-baseline; the floors encode the gains this bench
/// exists to protect (e.g. mlp batched >= 2x) so a quiet re-baseline can
/// never ratchet them away. Returns the number of violations.
int CheckAgainstBaseline(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  ADS_CHECK(f != nullptr) << "cannot read baseline " << path;
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  const auto baseline_metrics = ParseMetrics(text);
  constexpr char kFloorPrefix[] = "min_ratio.";
  constexpr size_t kFloorPrefixLen = sizeof(kFloorPrefix) - 1;
  auto floor_for = [&](const std::string& key) {
    for (const auto& [name, value] : baseline_metrics) {
      if (name.size() == kFloorPrefixLen + key.size() &&
          name.compare(0, kFloorPrefixLen, kFloorPrefix) == 0 &&
          name.compare(kFloorPrefixLen, key.size(), key) == 0) {
        return value;
      }
    }
    return 0.0;
  };
  auto current_for = [&](const std::string& key) {
    for (const auto& [name, value] : g_metrics) {
      if (name == key) return value;
    }
    return -1.0;
  };

  int failures = 0;
  std::printf("\nP5 gate | current speedup >= baseline / 2 and >= floor\n");
  for (const auto& [key, expected] : ParseMetrics(text)) {
    if (key.size() < 8 || key.substr(key.size() - 8) != "_speedup") continue;
    if (key.compare(0, kFloorPrefixLen, kFloorPrefix) == 0) continue;
    const double current = current_for(key);
    if (current < 0.0) {
      std::printf("  MISSING %-38s baseline %.2f\n", key.c_str(), expected);
      ++failures;
      continue;
    }
    const double floor = floor_for(key);
    const bool ok = current >= expected / 2.0 && current >= floor;
    if (floor > 0.0) {
      std::printf("  %-7s %-38s current %.2fx vs baseline %.2fx, floor %.2fx\n",
                  ok ? "ok" : "REGRESS", key.c_str(), current, expected, floor);
    } else {
      std::printf("  %-7s %-38s current %.2fx vs baseline %.2fx\n",
                  ok ? "ok" : "REGRESS", key.c_str(), current, expected);
    }
    if (!ok) ++failures;
  }
  // A floor whose metric the baseline forgot to list must still bind.
  for (const auto& [key, floor] : baseline_metrics) {
    if (key.compare(0, kFloorPrefixLen, kFloorPrefix) != 0) continue;
    const std::string metric = key.substr(kFloorPrefixLen);
    bool listed = false;
    for (const auto& [name, value] : baseline_metrics) {
      (void)value;
      if (name == metric) {
        listed = true;
        break;
      }
    }
    if (listed) continue;  // already checked above
    const double current = current_for(metric);
    const bool ok = current >= floor;
    std::printf("  %-7s %-38s current %.2fx vs floor %.2fx\n",
                ok ? "ok" : "REGRESS", metric.c_str(), current, floor);
    if (!ok) ++failures;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_p5.json";
  std::string baseline;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
    if (std::strncmp(argv[i], "--baseline=", 11) == 0) baseline = argv[i] + 11;
    if (std::strncmp(argv[i], "--simd=", 7) == 0) {
      // Same spelling and clamping as the ADS_SIMD env override.
      common::SetSimdLevel(common::ResolveSimdLevel(argv[i] + 7,
                                                    common::DetectCpuLevel()));
    }
  }
  std::printf("P5 | batched inference bench%s, simd=%s\n\n",
              g_smoke ? " (smoke)" : "",
              common::SimdLevelName(common::ActiveSimdLevel()));
  RunKernelThroughput();
  std::printf("\n");
  RunServingTail();
  WriteJson(out);
  if (!baseline.empty()) {
    int failures = CheckAgainstBaseline(baseline);
    if (failures > 0) {
      std::printf("P5 gate FAILED: %d metric(s) regressed more than 2x or "
                  "fell below a floor\n",
                  failures);
      return 1;
    }
    std::printf("P5 gate passed\n");
  }
  return 0;
}
