// P6 — the scenario pack as a macro-benchmark, plus blueprint knob
// optimization on top of it.
//
// Phase 1 runs every named scenario (diurnal surge, flash crowd, regional
// outage, noisy neighbor, slow-burn drift) end to end through the full
// stack — VirtualFleet shards/replicas/hedging/diverts over ServingCore
// admission and ResilientModelServer backends, with the AutonomyLoop
// riding the drift scenario — in virtual time under the default
// blueprint, and reports each scenario's machine-readable ScenarioReport
// (SLO attainment, availability, shed rate, tail percentiles, cost
// proxy).
//
// Phase 2 turns the knobs: BlueprintOptimizer searches the blueprint
// space (placement, pools, queues, batching, hedging, rate limits, shed
// priorities, breaker, diverts) per scenario against its cost/QoS
// objective and reports the best blueprint found, whether it Pareto-
// dominates the default, and the size of the cost/QoS frontier. Phase 3
// reports the cross-scenario robust blueprint.
//
// Every number here is a deterministic function of the scenario seeds:
// reruns — at any ADS_THREADS — are byte-identical, which CI enforces by
// diffing two runs at ADS_THREADS=1 and 4.
//
// Output: human tables on stdout; machine-readable JSON via --out=PATH
// (default BENCH_p6.json). `--smoke` shrinks traffic volume and search
// budget for CI runners.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/table.h"
#include "scenario/optimizer.h"
#include "scenario/scenario.h"

using namespace ads;  // NOLINT: bench brevity

namespace {

bool g_smoke = false;

/// Ordered so the JSON diffs cleanly run to run.
std::vector<std::pair<std::string, double>> g_metrics;

void Metric(const std::string& name, double value) {
  g_metrics.emplace_back(name, value);
}

void EmitReport(const std::string& prefix,
                const scenario::ScenarioReport& report) {
  for (const auto& [name, value] : report.Metrics()) {
    Metric(prefix + "." + name, value);
  }
}

// --------------------------------------------------------------------
// P6.1 | the scenario pack under the default blueprint.
// --------------------------------------------------------------------

std::vector<scenario::ScenarioReport> RunPack(
    const std::vector<scenario::ScenarioSpec>& pack) {
  const scenario::Blueprint defaults = scenario::DefaultBlueprint();
  std::vector<scenario::ScenarioReport> reports;
  common::Table table({"scenario", "served", "avail", "shed", "SLO att.",
                       "p50 (ms)", "p99 (ms)", ">2xSLO", "MAE", "SLO"});
  for (const scenario::ScenarioSpec& spec : pack) {
    scenario::ScenarioReport r = scenario::RunScenario(spec, defaults);
    table.AddRow({spec.name, std::to_string(r.fleet.served),
                  common::Table::Pct(r.availability),
                  common::Table::Pct(r.shed_rate),
                  common::Table::Pct(r.slo_attainment),
                  common::Table::Num(r.latency.p50 * 1e3, 1),
                  common::Table::Num(r.latency.p99 * 1e3, 1),
                  std::to_string(r.tail_over_2x_slo),
                  common::Table::Num(r.mean_abs_error, 3),
                  r.slo_met ? "ok" : "MISS"});
    EmitReport(spec.name, r);
    reports.push_back(std::move(r));
  }
  table.Print("P6.1 | scenario pack under the default blueprint (" +
              defaults.Key() + ")");
  return reports;
}

// --------------------------------------------------------------------
// P6.2 | per-scenario blueprint optimization.
// --------------------------------------------------------------------

std::vector<scenario::OptimizationResult> RunOptimizer(
    const std::vector<scenario::ScenarioSpec>& pack,
    scenario::BlueprintOptimizer* optimizer) {
  std::vector<scenario::OptimizationResult> results;
  common::Table table({"scenario", "evals", "default score", "best score",
                       "cost x", "qos_loss x", "dominates", "frontier",
                       "best blueprint"});
  size_t dominated = 0;
  for (const scenario::ScenarioSpec& spec : pack) {
    scenario::OptimizationResult r = optimizer->Optimize(spec);
    const auto& base = r.baseline.report;
    const auto& best = r.best.report;
    table.AddRow(
        {spec.name, std::to_string(r.evaluations),
         common::Table::Num(base.score, 1), common::Table::Num(best.score, 1),
         common::Table::Num(best.cost / base.cost, 3),
         common::Table::Num(best.qos_loss / std::max(base.qos_loss, 1e-12), 3),
         r.best_dominates_baseline ? "yes" : "no",
         std::to_string(r.frontier.size()), r.best.blueprint.Key()});
    if (r.best_dominates_baseline) ++dominated;
    Metric(spec.name + ".opt_evaluations",
           static_cast<double>(r.evaluations));
    Metric(spec.name + ".opt_frontier_size",
           static_cast<double>(r.frontier.size()));
    Metric(spec.name + ".opt_dominates_default",
           r.best_dominates_baseline ? 1.0 : 0.0);
    EmitReport(spec.name + ".opt_best", best);
    results.push_back(std::move(r));
  }
  table.Print("P6.2 | blueprint optimization per scenario (seeded local "
              "search + Pareto frontier)");
  // The headline claim: tuning the existing knobs strictly beats the
  // default somewhere — if this ever regresses to zero the optimizer (or
  // a scenario) has gone soft.
  ADS_CHECK(dominated > 0)
      << "no scenario's optimized blueprint dominates the default";
  Metric("scenarios_where_optimizer_dominates",
         static_cast<double>(dominated));
  return results;
}

// --------------------------------------------------------------------
// P6.3 | cross-scenario robust blueprint.
// --------------------------------------------------------------------

void RunRobust(const std::vector<scenario::ScenarioSpec>& pack,
               const std::vector<scenario::OptimizationResult>& results,
               scenario::BlueprintOptimizer* optimizer) {
  double worst_ratio = 0.0;
  scenario::EvaluatedBlueprint robust =
      optimizer->OptimizeRobust(pack, results, &worst_ratio);
  std::printf(
      "P6.3 | robust blueprint (best worst-case score ratio vs default "
      "across all scenarios)\n  blueprint: %s\n  worst-case ratio: %.3f "
      "(on %s)\n",
      robust.blueprint.Key().c_str(), worst_ratio,
      robust.report.scenario.c_str());
  Metric("robust_worst_case_ratio", worst_ratio);
  Metric("robust_cores", static_cast<double>(robust.blueprint.Cores()));
}

void WriteJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ADS_CHECK(f != nullptr) << "cannot open metrics output: " << path;
  std::fprintf(f, "{\n  \"bench\": \"bench_p6_scenarios\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", g_smoke ? "true" : "false");
  std::fprintf(f, "  \"metrics\": {\n");
  for (size_t i = 0; i < g_metrics.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.17g%s\n", g_metrics[i].first.c_str(),
                 g_metrics[i].second, i + 1 < g_metrics.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote metrics: %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_p6.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") g_smoke = true;
    const std::string flag = "--out=";
    if (arg.rfind(flag, 0) == 0) out = arg.substr(flag.size());
  }
  std::printf("P6 | scenario-pack macro-benchmark + blueprint knob "
              "optimizer\n\n");
  // Full scale doubles traffic volume rather than quadrupling it: the
  // optimizer re-runs every scenario dozens of times, so scenario length
  // multiplies the whole search. 2x volume + budget 48 keeps the full
  // run in CI around 2-3 minutes while preserving the same phenomena.
  const std::vector<scenario::ScenarioSpec> pack =
      scenario::StandardScenarios(g_smoke ? 1 : 2);
  RunPack(pack);
  std::printf("\n");
  scenario::OptimizerOptions oopts;
  oopts.eval_budget = g_smoke ? 28 : 48;
  oopts.restarts = g_smoke ? 1 : 2;
  scenario::BlueprintOptimizer optimizer(oopts);
  const std::vector<scenario::OptimizationResult> results =
      RunOptimizer(pack, &optimizer);
  std::printf("\n");
  RunRobust(pack, results, &optimizer);
  WriteJson(out);
  return 0;
}
