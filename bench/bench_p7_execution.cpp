// P7 — real query execution: the vectorized columnar executor vs the
// row-at-a-time reference executor on the TPC-H-shaped templates, at a
// scale factor where the working set exceeds L2 (the regime the columnar
// layout is for), plus estimated-vs-actual cardinality grounding from the
// measured OperatorStats.
//
// Before timing anything the bench ADS_CHECKs that the vectorized answer
// is bit-identical to the reference answer on every template — a wrong-
// but-fast executor fails loudly here.
//
// Output:
//   - a deterministic answer table on stdout (query, rows, checksum):
//     byte-identical across runs and across ADS_THREADS, which CI diffs
//     at ADS_THREADS=1 vs 4;
//   - timing and cardinality tables (suppressed under --smoke so the
//     deterministic stdout stays diffable);
//   - machine-readable metrics as JSON (--out=PATH, default
//     BENCH_p7.json).
//
// `--smoke` shrinks the scale factor and repetitions for CI.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "engine/exec_real.h"
#include "engine/optimizer.h"
#include "engine/plan.h"
#include "engine/reference_exec.h"
#include "engine/rules.h"
#include "engine/table.h"
#include "workload/tpch_gen.h"

using namespace ads;  // NOLINT: bench brevity

namespace {

bool g_smoke = false;

/// Ordered so the JSON diffs cleanly run to run.
std::vector<std::pair<std::string, double>> g_metrics;

void Metric(const std::string& name, double value) {
  g_metrics.emplace_back(name, value);
}

double Seconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Best-of-reps wall time for `fn`, after one untimed warmup call.
double BestSeconds(int reps, const std::function<void()>& fn) {
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) best = std::min(best, Seconds(fn));
  return best;
}

double StoreBytes(const engine::TableStore& store, const std::string& name) {
  const engine::ColumnTable* t = store.FindTable(name);
  return static_cast<double>(t->num_rows() * t->num_columns() * 8);
}

void WriteJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ADS_CHECK(f != nullptr) << "cannot write " << path;
  std::fprintf(f, "{\n  \"bench\": \"bench_p7_execution\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", g_smoke ? "true" : "false");
  std::fprintf(f, "  \"metrics\": {\n");
  for (size_t i = 0; i < g_metrics.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.17g%s\n", g_metrics[i].first.c_str(),
                 g_metrics[i].second, i + 1 < g_metrics.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %zu metrics to %s\n", g_metrics.size(), path.c_str());
}

void Run() {
  workload::TpchGenOptions opts;
  // Full scale: lineitem ~60k rows x 8 columns x 8B ~ 3.8 MB — past L2 on
  // the CI machines, so the scan-dominated operators run out of L3/DRAM.
  opts.scale_factor = g_smoke ? 0.05 : 1.0;
  opts.seed = 42;
  workload::TpchGenerator gen(opts);

  const double lineitem_bytes = StoreBytes(gen.store(), "lineitem");
  Metric("lineitem_bytes", lineitem_bytes);
  Metric("orders_bytes", StoreBytes(gen.store(), "orders"));
  Metric("customer_bytes", StoreBytes(gen.store(), "customer"));

  engine::Optimizer optimizer(&gen.catalog());
  engine::RealExecutor vectorized(&gen.store());
  engine::ReferenceExecutor reference(&gen.store());

  const int reps = g_smoke ? 1 : 5;

  std::printf("answers (deterministic: diffed across ADS_THREADS by CI)\n");
  std::printf("%-22s %10s %20s\n", "query", "rows", "checksum");

  struct Timing {
    std::string name;
    double ref_s = 0.0;
    double vec_s = 0.0;
    double est_card = 0.0;
    double actual = 0.0;
    double max_q_error = 0.0;
  };
  std::vector<Timing> timings;

  for (const std::string& name : gen.QueryNames()) {
    auto logical = gen.MakeQuery(name);
    ADS_CHECK(logical.ok()) << logical.status();
    auto plan = optimizer.Optimize(*logical.value(),
                                   engine::RuleConfig::Default());
    ADS_CHECK(plan != nullptr);

    // Correctness gate before any timing.
    auto vec = vectorized.Execute(*plan);
    ADS_CHECK(vec.ok()) << name << ": " << vec.status();
    auto ref = reference.Execute(*plan);
    ADS_CHECK(ref.ok()) << name << ": " << ref.status();
    ADS_CHECK(vec->table.BitwiseEquals(ref.value()))
        << name << ": vectorized answer diverged from reference";

    std::printf("%-22s %10zu %20llu\n", name.c_str(),
                vec->table.num_rows(),
                static_cast<unsigned long long>(vec->table.Checksum()));

    Timing t;
    t.name = name;
    t.ref_s = BestSeconds(reps, [&] {
      auto r = reference.Execute(*plan);
      ADS_CHECK(r.ok());
    });
    t.vec_s = BestSeconds(reps, [&] {
      auto r = vectorized.Execute(*plan);
      ADS_CHECK(r.ok());
    });
    // Estimated-vs-actual from the measured operator stats: the root's
    // estimate vs its real output, and the worst per-operator q-error.
    const engine::OperatorStats& root = vec->operators.back();
    t.est_card = root.est_card;
    t.actual = static_cast<double>(root.rows_out);
    for (const engine::OperatorStats& op : vec->operators) {
      const double est = std::max(1.0, op.est_card);
      const double act = std::max(1.0, static_cast<double>(op.rows_out));
      t.max_q_error = std::max(t.max_q_error, std::max(est / act, act / est));
    }

    Metric(name + ".rows_out", t.actual);
    Metric(name + ".reference_seconds", t.ref_s);
    Metric(name + ".vectorized_seconds", t.vec_s);
    Metric(name + ".speedup", t.ref_s / t.vec_s);
    Metric(name + ".root_est_card", t.est_card);
    Metric(name + ".max_q_error", t.max_q_error);
    timings.push_back(t);
  }

  if (!g_smoke) {
    std::printf("\ntimings (best of %d, %zu pool workers, lineitem %.1f MB)\n",
                reps, common::ThreadPool::Global().worker_count(),
                lineitem_bytes / 1048576.0);
    std::printf("%-22s %12s %12s %9s %12s %12s %9s\n", "query", "ref_ms",
                "vec_ms", "speedup", "est_rows", "actual", "max_qerr");
    for (const Timing& t : timings) {
      std::printf("%-22s %12.3f %12.3f %8.1fx %12.0f %12.0f %9.1f\n",
                  t.name.c_str(), t.ref_s * 1e3, t.vec_s * 1e3,
                  t.ref_s / t.vec_s, t.est_card, t.actual, t.max_q_error);
    }
    // The headline claim: columnar + vectorized beats tuple-at-a-time on
    // the join+aggregate templates once the data outruns L2.
    double join_agg_speedup = std::numeric_limits<double>::infinity();
    for (const Timing& t : timings) {
      if (t.name == "q3_shipping_priority" ||
          t.name == "q5_volume_by_nation" ||
          t.name == "q10_returned_items") {
        join_agg_speedup = std::min(join_agg_speedup, t.ref_s / t.vec_s);
      }
    }
    Metric("join_agg_min_speedup", join_agg_speedup);
    std::printf("\njoin+aggregate min speedup: %.1fx (target >= 2x)\n",
                join_agg_speedup);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_p7.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
  }
  std::printf("P7 | real execution bench%s\n\n", g_smoke ? " (smoke)" : "");
  Run();
  WriteJson(out);
  return 0;
}
