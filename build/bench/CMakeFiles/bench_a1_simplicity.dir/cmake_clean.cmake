file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_simplicity.dir/bench_a1_simplicity.cpp.o"
  "CMakeFiles/bench_a1_simplicity.dir/bench_a1_simplicity.cpp.o.d"
  "bench_a1_simplicity"
  "bench_a1_simplicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_simplicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
