# Empty dependencies file for bench_a1_simplicity.
# This may be replaced when dependencies are built.
