file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_granularity.dir/bench_a2_granularity.cpp.o"
  "CMakeFiles/bench_a2_granularity.dir/bench_a2_granularity.cpp.o.d"
  "bench_a2_granularity"
  "bench_a2_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
