# Empty dependencies file for bench_a2_granularity.
# This may be replaced when dependencies are built.
