file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_feedback.dir/bench_a3_feedback.cpp.o"
  "CMakeFiles/bench_a3_feedback.dir/bench_a3_feedback.cpp.o.d"
  "bench_a3_feedback"
  "bench_a3_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
