# Empty dependencies file for bench_a3_feedback.
# This may be replaced when dependencies are built.
