# Empty dependencies file for bench_e10_checkpoint.
# This may be replaced when dependencies are built.
