file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_reuse.dir/bench_e11_reuse.cpp.o"
  "CMakeFiles/bench_e11_reuse.dir/bench_e11_reuse.cpp.o.d"
  "bench_e11_reuse"
  "bench_e11_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
