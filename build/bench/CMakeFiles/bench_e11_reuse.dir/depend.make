# Empty dependencies file for bench_e11_reuse.
# This may be replaced when dependencies are built.
