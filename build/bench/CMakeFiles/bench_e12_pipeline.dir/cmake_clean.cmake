file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_pipeline.dir/bench_e12_pipeline.cpp.o"
  "CMakeFiles/bench_e12_pipeline.dir/bench_e12_pipeline.cpp.o.d"
  "bench_e12_pipeline"
  "bench_e12_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
