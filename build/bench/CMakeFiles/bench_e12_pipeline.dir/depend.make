# Empty dependencies file for bench_e12_pipeline.
# This may be replaced when dependencies are built.
