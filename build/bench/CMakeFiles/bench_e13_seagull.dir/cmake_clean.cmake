file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_seagull.dir/bench_e13_seagull.cpp.o"
  "CMakeFiles/bench_e13_seagull.dir/bench_e13_seagull.cpp.o.d"
  "bench_e13_seagull"
  "bench_e13_seagull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_seagull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
