# Empty dependencies file for bench_e13_seagull.
# This may be replaced when dependencies are built.
