
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e14_doppler.cpp" "bench/CMakeFiles/bench_e14_doppler.dir/bench_e14_doppler.cpp.o" "gcc" "bench/CMakeFiles/bench_e14_doppler.dir/bench_e14_doppler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/learned/CMakeFiles/ads_learned.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/ads_service.dir/DependInfo.cmake"
  "/root/repo/build/src/infra/CMakeFiles/ads_infra.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ads_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/ads_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/autonomy/CMakeFiles/ads_autonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ads_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ads_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ads_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
