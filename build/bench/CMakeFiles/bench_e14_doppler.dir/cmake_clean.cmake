file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_doppler.dir/bench_e14_doppler.cpp.o"
  "CMakeFiles/bench_e14_doppler.dir/bench_e14_doppler.cpp.o.d"
  "bench_e14_doppler"
  "bench_e14_doppler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_doppler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
