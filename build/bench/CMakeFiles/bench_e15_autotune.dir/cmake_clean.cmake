file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_autotune.dir/bench_e15_autotune.cpp.o"
  "CMakeFiles/bench_e15_autotune.dir/bench_e15_autotune.cpp.o.d"
  "bench_e15_autotune"
  "bench_e15_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
