# Empty dependencies file for bench_e15_autotune.
# This may be replaced when dependencies are built.
