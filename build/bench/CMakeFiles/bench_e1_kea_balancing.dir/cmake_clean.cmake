file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_kea_balancing.dir/bench_e1_kea_balancing.cpp.o"
  "CMakeFiles/bench_e1_kea_balancing.dir/bench_e1_kea_balancing.cpp.o.d"
  "bench_e1_kea_balancing"
  "bench_e1_kea_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_kea_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
