# Empty compiler generated dependencies file for bench_e1_kea_balancing.
# This may be replaced when dependencies are built.
