file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_pool_policy.dir/bench_e2_pool_policy.cpp.o"
  "CMakeFiles/bench_e2_pool_policy.dir/bench_e2_pool_policy.cpp.o.d"
  "bench_e2_pool_policy"
  "bench_e2_pool_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_pool_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
