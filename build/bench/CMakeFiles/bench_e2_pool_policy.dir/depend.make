# Empty dependencies file for bench_e2_pool_policy.
# This may be replaced when dependencies are built.
