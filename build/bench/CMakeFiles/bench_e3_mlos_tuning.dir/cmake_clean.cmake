file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_mlos_tuning.dir/bench_e3_mlos_tuning.cpp.o"
  "CMakeFiles/bench_e3_mlos_tuning.dir/bench_e3_mlos_tuning.cpp.o.d"
  "bench_e3_mlos_tuning"
  "bench_e3_mlos_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_mlos_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
