# Empty dependencies file for bench_e3_mlos_tuning.
# This may be replaced when dependencies are built.
