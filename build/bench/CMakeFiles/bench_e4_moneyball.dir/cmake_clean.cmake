file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_moneyball.dir/bench_e4_moneyball.cpp.o"
  "CMakeFiles/bench_e4_moneyball.dir/bench_e4_moneyball.cpp.o.d"
  "bench_e4_moneyball"
  "bench_e4_moneyball.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_moneyball.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
