# Empty dependencies file for bench_e4_moneyball.
# This may be replaced when dependencies are built.
