file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_workload_stats.dir/bench_e6_workload_stats.cpp.o"
  "CMakeFiles/bench_e6_workload_stats.dir/bench_e6_workload_stats.cpp.o.d"
  "bench_e6_workload_stats"
  "bench_e6_workload_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_workload_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
