# Empty compiler generated dependencies file for bench_e6_workload_stats.
# This may be replaced when dependencies are built.
