file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_cardinality.dir/bench_e7_cardinality.cpp.o"
  "CMakeFiles/bench_e7_cardinality.dir/bench_e7_cardinality.cpp.o.d"
  "bench_e7_cardinality"
  "bench_e7_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
