# Empty dependencies file for bench_e7_cardinality.
# This may be replaced when dependencies are built.
