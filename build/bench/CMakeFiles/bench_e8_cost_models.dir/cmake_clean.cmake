file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_cost_models.dir/bench_e8_cost_models.cpp.o"
  "CMakeFiles/bench_e8_cost_models.dir/bench_e8_cost_models.cpp.o.d"
  "bench_e8_cost_models"
  "bench_e8_cost_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_cost_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
