# Empty dependencies file for bench_e8_cost_models.
# This may be replaced when dependencies are built.
