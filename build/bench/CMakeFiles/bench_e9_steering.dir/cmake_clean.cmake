file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_steering.dir/bench_e9_steering.cpp.o"
  "CMakeFiles/bench_e9_steering.dir/bench_e9_steering.cpp.o.d"
  "bench_e9_steering"
  "bench_e9_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
