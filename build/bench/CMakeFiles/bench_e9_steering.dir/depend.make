# Empty dependencies file for bench_e9_steering.
# This may be replaced when dependencies are built.
