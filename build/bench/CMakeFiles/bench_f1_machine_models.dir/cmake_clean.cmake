file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_machine_models.dir/bench_f1_machine_models.cpp.o"
  "CMakeFiles/bench_f1_machine_models.dir/bench_f1_machine_models.cpp.o.d"
  "bench_f1_machine_models"
  "bench_f1_machine_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_machine_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
