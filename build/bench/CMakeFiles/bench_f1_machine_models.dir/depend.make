# Empty dependencies file for bench_f1_machine_models.
# This may be replaced when dependencies are built.
