file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_pareto.dir/bench_f2_pareto.cpp.o"
  "CMakeFiles/bench_f2_pareto.dir/bench_f2_pareto.cpp.o.d"
  "bench_f2_pareto"
  "bench_f2_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
