# Empty dependencies file for bench_f2_pareto.
# This may be replaced when dependencies are built.
