file(REMOVE_RECURSE
  "CMakeFiles/autonomous_fleet.dir/autonomous_fleet.cpp.o"
  "CMakeFiles/autonomous_fleet.dir/autonomous_fleet.cpp.o.d"
  "autonomous_fleet"
  "autonomous_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonomous_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
