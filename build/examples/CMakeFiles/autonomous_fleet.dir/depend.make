# Empty dependencies file for autonomous_fleet.
# This may be replaced when dependencies are built.
