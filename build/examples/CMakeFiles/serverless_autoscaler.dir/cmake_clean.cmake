file(REMOVE_RECURSE
  "CMakeFiles/serverless_autoscaler.dir/serverless_autoscaler.cpp.o"
  "CMakeFiles/serverless_autoscaler.dir/serverless_autoscaler.cpp.o.d"
  "serverless_autoscaler"
  "serverless_autoscaler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_autoscaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
