# Empty dependencies file for serverless_autoscaler.
# This may be replaced when dependencies are built.
