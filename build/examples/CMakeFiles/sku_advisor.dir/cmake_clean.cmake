file(REMOVE_RECURSE
  "CMakeFiles/sku_advisor.dir/sku_advisor.cpp.o"
  "CMakeFiles/sku_advisor.dir/sku_advisor.cpp.o.d"
  "sku_advisor"
  "sku_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sku_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
