# Empty compiler generated dependencies file for sku_advisor.
# This may be replaced when dependencies are built.
