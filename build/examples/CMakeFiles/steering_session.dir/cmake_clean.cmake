file(REMOVE_RECURSE
  "CMakeFiles/steering_session.dir/steering_session.cpp.o"
  "CMakeFiles/steering_session.dir/steering_session.cpp.o.d"
  "steering_session"
  "steering_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steering_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
