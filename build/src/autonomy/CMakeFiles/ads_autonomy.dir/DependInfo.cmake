
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autonomy/feedback.cc" "src/autonomy/CMakeFiles/ads_autonomy.dir/feedback.cc.o" "gcc" "src/autonomy/CMakeFiles/ads_autonomy.dir/feedback.cc.o.d"
  "/root/repo/src/autonomy/flight.cc" "src/autonomy/CMakeFiles/ads_autonomy.dir/flight.cc.o" "gcc" "src/autonomy/CMakeFiles/ads_autonomy.dir/flight.cc.o.d"
  "/root/repo/src/autonomy/monitor.cc" "src/autonomy/CMakeFiles/ads_autonomy.dir/monitor.cc.o" "gcc" "src/autonomy/CMakeFiles/ads_autonomy.dir/monitor.cc.o.d"
  "/root/repo/src/autonomy/rai.cc" "src/autonomy/CMakeFiles/ads_autonomy.dir/rai.cc.o" "gcc" "src/autonomy/CMakeFiles/ads_autonomy.dir/rai.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ads_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ads_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
