file(REMOVE_RECURSE
  "CMakeFiles/ads_autonomy.dir/feedback.cc.o"
  "CMakeFiles/ads_autonomy.dir/feedback.cc.o.d"
  "CMakeFiles/ads_autonomy.dir/flight.cc.o"
  "CMakeFiles/ads_autonomy.dir/flight.cc.o.d"
  "CMakeFiles/ads_autonomy.dir/monitor.cc.o"
  "CMakeFiles/ads_autonomy.dir/monitor.cc.o.d"
  "CMakeFiles/ads_autonomy.dir/rai.cc.o"
  "CMakeFiles/ads_autonomy.dir/rai.cc.o.d"
  "libads_autonomy.a"
  "libads_autonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_autonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
