file(REMOVE_RECURSE
  "libads_autonomy.a"
)
