# Empty dependencies file for ads_autonomy.
# This may be replaced when dependencies are built.
