file(REMOVE_RECURSE
  "CMakeFiles/ads_common.dir/event_queue.cc.o"
  "CMakeFiles/ads_common.dir/event_queue.cc.o.d"
  "CMakeFiles/ads_common.dir/logging.cc.o"
  "CMakeFiles/ads_common.dir/logging.cc.o.d"
  "CMakeFiles/ads_common.dir/matrix.cc.o"
  "CMakeFiles/ads_common.dir/matrix.cc.o.d"
  "CMakeFiles/ads_common.dir/rng.cc.o"
  "CMakeFiles/ads_common.dir/rng.cc.o.d"
  "CMakeFiles/ads_common.dir/simplex.cc.o"
  "CMakeFiles/ads_common.dir/simplex.cc.o.d"
  "CMakeFiles/ads_common.dir/stats.cc.o"
  "CMakeFiles/ads_common.dir/stats.cc.o.d"
  "CMakeFiles/ads_common.dir/status.cc.o"
  "CMakeFiles/ads_common.dir/status.cc.o.d"
  "CMakeFiles/ads_common.dir/table.cc.o"
  "CMakeFiles/ads_common.dir/table.cc.o.d"
  "libads_common.a"
  "libads_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
