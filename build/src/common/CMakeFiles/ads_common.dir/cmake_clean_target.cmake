file(REMOVE_RECURSE
  "libads_common.a"
)
