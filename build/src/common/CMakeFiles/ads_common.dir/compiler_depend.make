# Empty compiler generated dependencies file for ads_common.
# This may be replaced when dependencies are built.
