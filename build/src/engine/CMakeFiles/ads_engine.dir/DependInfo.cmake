
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/cardinality.cc" "src/engine/CMakeFiles/ads_engine.dir/cardinality.cc.o" "gcc" "src/engine/CMakeFiles/ads_engine.dir/cardinality.cc.o.d"
  "/root/repo/src/engine/catalog.cc" "src/engine/CMakeFiles/ads_engine.dir/catalog.cc.o" "gcc" "src/engine/CMakeFiles/ads_engine.dir/catalog.cc.o.d"
  "/root/repo/src/engine/cost.cc" "src/engine/CMakeFiles/ads_engine.dir/cost.cc.o" "gcc" "src/engine/CMakeFiles/ads_engine.dir/cost.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/ads_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/ads_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/expr.cc" "src/engine/CMakeFiles/ads_engine.dir/expr.cc.o" "gcc" "src/engine/CMakeFiles/ads_engine.dir/expr.cc.o.d"
  "/root/repo/src/engine/optimizer.cc" "src/engine/CMakeFiles/ads_engine.dir/optimizer.cc.o" "gcc" "src/engine/CMakeFiles/ads_engine.dir/optimizer.cc.o.d"
  "/root/repo/src/engine/plan.cc" "src/engine/CMakeFiles/ads_engine.dir/plan.cc.o" "gcc" "src/engine/CMakeFiles/ads_engine.dir/plan.cc.o.d"
  "/root/repo/src/engine/plan_io.cc" "src/engine/CMakeFiles/ads_engine.dir/plan_io.cc.o" "gcc" "src/engine/CMakeFiles/ads_engine.dir/plan_io.cc.o.d"
  "/root/repo/src/engine/rules.cc" "src/engine/CMakeFiles/ads_engine.dir/rules.cc.o" "gcc" "src/engine/CMakeFiles/ads_engine.dir/rules.cc.o.d"
  "/root/repo/src/engine/stage_graph.cc" "src/engine/CMakeFiles/ads_engine.dir/stage_graph.cc.o" "gcc" "src/engine/CMakeFiles/ads_engine.dir/stage_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ads_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
