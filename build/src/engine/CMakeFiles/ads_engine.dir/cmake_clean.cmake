file(REMOVE_RECURSE
  "CMakeFiles/ads_engine.dir/cardinality.cc.o"
  "CMakeFiles/ads_engine.dir/cardinality.cc.o.d"
  "CMakeFiles/ads_engine.dir/catalog.cc.o"
  "CMakeFiles/ads_engine.dir/catalog.cc.o.d"
  "CMakeFiles/ads_engine.dir/cost.cc.o"
  "CMakeFiles/ads_engine.dir/cost.cc.o.d"
  "CMakeFiles/ads_engine.dir/executor.cc.o"
  "CMakeFiles/ads_engine.dir/executor.cc.o.d"
  "CMakeFiles/ads_engine.dir/expr.cc.o"
  "CMakeFiles/ads_engine.dir/expr.cc.o.d"
  "CMakeFiles/ads_engine.dir/optimizer.cc.o"
  "CMakeFiles/ads_engine.dir/optimizer.cc.o.d"
  "CMakeFiles/ads_engine.dir/plan.cc.o"
  "CMakeFiles/ads_engine.dir/plan.cc.o.d"
  "CMakeFiles/ads_engine.dir/plan_io.cc.o"
  "CMakeFiles/ads_engine.dir/plan_io.cc.o.d"
  "CMakeFiles/ads_engine.dir/rules.cc.o"
  "CMakeFiles/ads_engine.dir/rules.cc.o.d"
  "CMakeFiles/ads_engine.dir/stage_graph.cc.o"
  "CMakeFiles/ads_engine.dir/stage_graph.cc.o.d"
  "libads_engine.a"
  "libads_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
