file(REMOVE_RECURSE
  "libads_engine.a"
)
