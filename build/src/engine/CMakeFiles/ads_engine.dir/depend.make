# Empty dependencies file for ads_engine.
# This may be replaced when dependencies are built.
