
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/infra/autoscaler.cc" "src/infra/CMakeFiles/ads_infra.dir/autoscaler.cc.o" "gcc" "src/infra/CMakeFiles/ads_infra.dir/autoscaler.cc.o.d"
  "/root/repo/src/infra/cluster.cc" "src/infra/CMakeFiles/ads_infra.dir/cluster.cc.o" "gcc" "src/infra/CMakeFiles/ads_infra.dir/cluster.cc.o.d"
  "/root/repo/src/infra/pool_sim.cc" "src/infra/CMakeFiles/ads_infra.dir/pool_sim.cc.o" "gcc" "src/infra/CMakeFiles/ads_infra.dir/pool_sim.cc.o.d"
  "/root/repo/src/infra/power.cc" "src/infra/CMakeFiles/ads_infra.dir/power.cc.o" "gcc" "src/infra/CMakeFiles/ads_infra.dir/power.cc.o.d"
  "/root/repo/src/infra/provisioner.cc" "src/infra/CMakeFiles/ads_infra.dir/provisioner.cc.o" "gcc" "src/infra/CMakeFiles/ads_infra.dir/provisioner.cc.o.d"
  "/root/repo/src/infra/scheduler.cc" "src/infra/CMakeFiles/ads_infra.dir/scheduler.cc.o" "gcc" "src/infra/CMakeFiles/ads_infra.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ads_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ads_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ads_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
