file(REMOVE_RECURSE
  "CMakeFiles/ads_infra.dir/autoscaler.cc.o"
  "CMakeFiles/ads_infra.dir/autoscaler.cc.o.d"
  "CMakeFiles/ads_infra.dir/cluster.cc.o"
  "CMakeFiles/ads_infra.dir/cluster.cc.o.d"
  "CMakeFiles/ads_infra.dir/pool_sim.cc.o"
  "CMakeFiles/ads_infra.dir/pool_sim.cc.o.d"
  "CMakeFiles/ads_infra.dir/power.cc.o"
  "CMakeFiles/ads_infra.dir/power.cc.o.d"
  "CMakeFiles/ads_infra.dir/provisioner.cc.o"
  "CMakeFiles/ads_infra.dir/provisioner.cc.o.d"
  "CMakeFiles/ads_infra.dir/scheduler.cc.o"
  "CMakeFiles/ads_infra.dir/scheduler.cc.o.d"
  "libads_infra.a"
  "libads_infra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_infra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
