file(REMOVE_RECURSE
  "libads_infra.a"
)
