# Empty dependencies file for ads_infra.
# This may be replaced when dependencies are built.
