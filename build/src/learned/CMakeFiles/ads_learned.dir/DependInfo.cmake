
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/learned/card_models.cc" "src/learned/CMakeFiles/ads_learned.dir/card_models.cc.o" "gcc" "src/learned/CMakeFiles/ads_learned.dir/card_models.cc.o.d"
  "/root/repo/src/learned/checkpoint.cc" "src/learned/CMakeFiles/ads_learned.dir/checkpoint.cc.o" "gcc" "src/learned/CMakeFiles/ads_learned.dir/checkpoint.cc.o.d"
  "/root/repo/src/learned/cost_models.cc" "src/learned/CMakeFiles/ads_learned.dir/cost_models.cc.o" "gcc" "src/learned/CMakeFiles/ads_learned.dir/cost_models.cc.o.d"
  "/root/repo/src/learned/job_scheduling.cc" "src/learned/CMakeFiles/ads_learned.dir/job_scheduling.cc.o" "gcc" "src/learned/CMakeFiles/ads_learned.dir/job_scheduling.cc.o.d"
  "/root/repo/src/learned/pipeline_opt.cc" "src/learned/CMakeFiles/ads_learned.dir/pipeline_opt.cc.o" "gcc" "src/learned/CMakeFiles/ads_learned.dir/pipeline_opt.cc.o.d"
  "/root/repo/src/learned/reuse.cc" "src/learned/CMakeFiles/ads_learned.dir/reuse.cc.o" "gcc" "src/learned/CMakeFiles/ads_learned.dir/reuse.cc.o.d"
  "/root/repo/src/learned/steering.cc" "src/learned/CMakeFiles/ads_learned.dir/steering.cc.o" "gcc" "src/learned/CMakeFiles/ads_learned.dir/steering.cc.o.d"
  "/root/repo/src/learned/workload_analysis.cc" "src/learned/CMakeFiles/ads_learned.dir/workload_analysis.cc.o" "gcc" "src/learned/CMakeFiles/ads_learned.dir/workload_analysis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ads_common.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/ads_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ads_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
