file(REMOVE_RECURSE
  "CMakeFiles/ads_learned.dir/card_models.cc.o"
  "CMakeFiles/ads_learned.dir/card_models.cc.o.d"
  "CMakeFiles/ads_learned.dir/checkpoint.cc.o"
  "CMakeFiles/ads_learned.dir/checkpoint.cc.o.d"
  "CMakeFiles/ads_learned.dir/cost_models.cc.o"
  "CMakeFiles/ads_learned.dir/cost_models.cc.o.d"
  "CMakeFiles/ads_learned.dir/job_scheduling.cc.o"
  "CMakeFiles/ads_learned.dir/job_scheduling.cc.o.d"
  "CMakeFiles/ads_learned.dir/pipeline_opt.cc.o"
  "CMakeFiles/ads_learned.dir/pipeline_opt.cc.o.d"
  "CMakeFiles/ads_learned.dir/reuse.cc.o"
  "CMakeFiles/ads_learned.dir/reuse.cc.o.d"
  "CMakeFiles/ads_learned.dir/steering.cc.o"
  "CMakeFiles/ads_learned.dir/steering.cc.o.d"
  "CMakeFiles/ads_learned.dir/workload_analysis.cc.o"
  "CMakeFiles/ads_learned.dir/workload_analysis.cc.o.d"
  "libads_learned.a"
  "libads_learned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_learned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
