file(REMOVE_RECURSE
  "libads_learned.a"
)
