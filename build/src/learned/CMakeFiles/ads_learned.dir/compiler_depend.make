# Empty compiler generated dependencies file for ads_learned.
# This may be replaced when dependencies are built.
