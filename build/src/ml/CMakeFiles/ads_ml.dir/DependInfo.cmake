
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/algorithm_store.cc" "src/ml/CMakeFiles/ads_ml.dir/algorithm_store.cc.o" "gcc" "src/ml/CMakeFiles/ads_ml.dir/algorithm_store.cc.o.d"
  "/root/repo/src/ml/bandit.cc" "src/ml/CMakeFiles/ads_ml.dir/bandit.cc.o" "gcc" "src/ml/CMakeFiles/ads_ml.dir/bandit.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/ads_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/ads_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/drift.cc" "src/ml/CMakeFiles/ads_ml.dir/drift.cc.o" "gcc" "src/ml/CMakeFiles/ads_ml.dir/drift.cc.o.d"
  "/root/repo/src/ml/forecast.cc" "src/ml/CMakeFiles/ads_ml.dir/forecast.cc.o" "gcc" "src/ml/CMakeFiles/ads_ml.dir/forecast.cc.o.d"
  "/root/repo/src/ml/forest.cc" "src/ml/CMakeFiles/ads_ml.dir/forest.cc.o" "gcc" "src/ml/CMakeFiles/ads_ml.dir/forest.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/ml/CMakeFiles/ads_ml.dir/kmeans.cc.o" "gcc" "src/ml/CMakeFiles/ads_ml.dir/kmeans.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/ads_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/ads_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/linear.cc" "src/ml/CMakeFiles/ads_ml.dir/linear.cc.o" "gcc" "src/ml/CMakeFiles/ads_ml.dir/linear.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/ads_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/ads_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/ads_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/ads_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/model.cc" "src/ml/CMakeFiles/ads_ml.dir/model.cc.o" "gcc" "src/ml/CMakeFiles/ads_ml.dir/model.cc.o.d"
  "/root/repo/src/ml/registry.cc" "src/ml/CMakeFiles/ads_ml.dir/registry.cc.o" "gcc" "src/ml/CMakeFiles/ads_ml.dir/registry.cc.o.d"
  "/root/repo/src/ml/tree.cc" "src/ml/CMakeFiles/ads_ml.dir/tree.cc.o" "gcc" "src/ml/CMakeFiles/ads_ml.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ads_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
