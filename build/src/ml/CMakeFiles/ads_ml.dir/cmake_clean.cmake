file(REMOVE_RECURSE
  "CMakeFiles/ads_ml.dir/algorithm_store.cc.o"
  "CMakeFiles/ads_ml.dir/algorithm_store.cc.o.d"
  "CMakeFiles/ads_ml.dir/bandit.cc.o"
  "CMakeFiles/ads_ml.dir/bandit.cc.o.d"
  "CMakeFiles/ads_ml.dir/dataset.cc.o"
  "CMakeFiles/ads_ml.dir/dataset.cc.o.d"
  "CMakeFiles/ads_ml.dir/drift.cc.o"
  "CMakeFiles/ads_ml.dir/drift.cc.o.d"
  "CMakeFiles/ads_ml.dir/forecast.cc.o"
  "CMakeFiles/ads_ml.dir/forecast.cc.o.d"
  "CMakeFiles/ads_ml.dir/forest.cc.o"
  "CMakeFiles/ads_ml.dir/forest.cc.o.d"
  "CMakeFiles/ads_ml.dir/kmeans.cc.o"
  "CMakeFiles/ads_ml.dir/kmeans.cc.o.d"
  "CMakeFiles/ads_ml.dir/knn.cc.o"
  "CMakeFiles/ads_ml.dir/knn.cc.o.d"
  "CMakeFiles/ads_ml.dir/linear.cc.o"
  "CMakeFiles/ads_ml.dir/linear.cc.o.d"
  "CMakeFiles/ads_ml.dir/metrics.cc.o"
  "CMakeFiles/ads_ml.dir/metrics.cc.o.d"
  "CMakeFiles/ads_ml.dir/mlp.cc.o"
  "CMakeFiles/ads_ml.dir/mlp.cc.o.d"
  "CMakeFiles/ads_ml.dir/model.cc.o"
  "CMakeFiles/ads_ml.dir/model.cc.o.d"
  "CMakeFiles/ads_ml.dir/registry.cc.o"
  "CMakeFiles/ads_ml.dir/registry.cc.o.d"
  "CMakeFiles/ads_ml.dir/tree.cc.o"
  "CMakeFiles/ads_ml.dir/tree.cc.o.d"
  "libads_ml.a"
  "libads_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
