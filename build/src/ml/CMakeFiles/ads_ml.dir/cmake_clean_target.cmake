file(REMOVE_RECURSE
  "libads_ml.a"
)
