# Empty dependencies file for ads_ml.
# This may be replaced when dependencies are built.
