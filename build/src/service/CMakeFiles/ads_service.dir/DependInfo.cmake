
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/service/autotoken.cc" "src/service/CMakeFiles/ads_service.dir/autotoken.cc.o" "gcc" "src/service/CMakeFiles/ads_service.dir/autotoken.cc.o.d"
  "/root/repo/src/service/autotuner.cc" "src/service/CMakeFiles/ads_service.dir/autotuner.cc.o" "gcc" "src/service/CMakeFiles/ads_service.dir/autotuner.cc.o.d"
  "/root/repo/src/service/doppler.cc" "src/service/CMakeFiles/ads_service.dir/doppler.cc.o" "gcc" "src/service/CMakeFiles/ads_service.dir/doppler.cc.o.d"
  "/root/repo/src/service/moneyball.cc" "src/service/CMakeFiles/ads_service.dir/moneyball.cc.o" "gcc" "src/service/CMakeFiles/ads_service.dir/moneyball.cc.o.d"
  "/root/repo/src/service/seagull.cc" "src/service/CMakeFiles/ads_service.dir/seagull.cc.o" "gcc" "src/service/CMakeFiles/ads_service.dir/seagull.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ads_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ads_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ads_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/ads_engine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
