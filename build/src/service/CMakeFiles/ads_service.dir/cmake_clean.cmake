file(REMOVE_RECURSE
  "CMakeFiles/ads_service.dir/autotoken.cc.o"
  "CMakeFiles/ads_service.dir/autotoken.cc.o.d"
  "CMakeFiles/ads_service.dir/autotuner.cc.o"
  "CMakeFiles/ads_service.dir/autotuner.cc.o.d"
  "CMakeFiles/ads_service.dir/doppler.cc.o"
  "CMakeFiles/ads_service.dir/doppler.cc.o.d"
  "CMakeFiles/ads_service.dir/moneyball.cc.o"
  "CMakeFiles/ads_service.dir/moneyball.cc.o.d"
  "CMakeFiles/ads_service.dir/seagull.cc.o"
  "CMakeFiles/ads_service.dir/seagull.cc.o.d"
  "libads_service.a"
  "libads_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
