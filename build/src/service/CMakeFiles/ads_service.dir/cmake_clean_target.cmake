file(REMOVE_RECURSE
  "libads_service.a"
)
