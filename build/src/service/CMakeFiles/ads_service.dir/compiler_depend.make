# Empty compiler generated dependencies file for ads_service.
# This may be replaced when dependencies are built.
