
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/metric.cc" "src/telemetry/CMakeFiles/ads_telemetry.dir/metric.cc.o" "gcc" "src/telemetry/CMakeFiles/ads_telemetry.dir/metric.cc.o.d"
  "/root/repo/src/telemetry/semantic.cc" "src/telemetry/CMakeFiles/ads_telemetry.dir/semantic.cc.o" "gcc" "src/telemetry/CMakeFiles/ads_telemetry.dir/semantic.cc.o.d"
  "/root/repo/src/telemetry/store.cc" "src/telemetry/CMakeFiles/ads_telemetry.dir/store.cc.o" "gcc" "src/telemetry/CMakeFiles/ads_telemetry.dir/store.cc.o.d"
  "/root/repo/src/telemetry/trace.cc" "src/telemetry/CMakeFiles/ads_telemetry.dir/trace.cc.o" "gcc" "src/telemetry/CMakeFiles/ads_telemetry.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ads_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
