file(REMOVE_RECURSE
  "CMakeFiles/ads_telemetry.dir/metric.cc.o"
  "CMakeFiles/ads_telemetry.dir/metric.cc.o.d"
  "CMakeFiles/ads_telemetry.dir/semantic.cc.o"
  "CMakeFiles/ads_telemetry.dir/semantic.cc.o.d"
  "CMakeFiles/ads_telemetry.dir/store.cc.o"
  "CMakeFiles/ads_telemetry.dir/store.cc.o.d"
  "CMakeFiles/ads_telemetry.dir/trace.cc.o"
  "CMakeFiles/ads_telemetry.dir/trace.cc.o.d"
  "libads_telemetry.a"
  "libads_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
