file(REMOVE_RECURSE
  "libads_telemetry.a"
)
