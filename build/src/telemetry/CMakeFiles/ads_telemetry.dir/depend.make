# Empty dependencies file for ads_telemetry.
# This may be replaced when dependencies are built.
