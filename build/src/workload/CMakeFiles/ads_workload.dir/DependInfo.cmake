
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrival.cc" "src/workload/CMakeFiles/ads_workload.dir/arrival.cc.o" "gcc" "src/workload/CMakeFiles/ads_workload.dir/arrival.cc.o.d"
  "/root/repo/src/workload/pipeline_gen.cc" "src/workload/CMakeFiles/ads_workload.dir/pipeline_gen.cc.o" "gcc" "src/workload/CMakeFiles/ads_workload.dir/pipeline_gen.cc.o.d"
  "/root/repo/src/workload/query_gen.cc" "src/workload/CMakeFiles/ads_workload.dir/query_gen.cc.o" "gcc" "src/workload/CMakeFiles/ads_workload.dir/query_gen.cc.o.d"
  "/root/repo/src/workload/response_surface.cc" "src/workload/CMakeFiles/ads_workload.dir/response_surface.cc.o" "gcc" "src/workload/CMakeFiles/ads_workload.dir/response_surface.cc.o.d"
  "/root/repo/src/workload/usage_gen.cc" "src/workload/CMakeFiles/ads_workload.dir/usage_gen.cc.o" "gcc" "src/workload/CMakeFiles/ads_workload.dir/usage_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ads_common.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/ads_engine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
