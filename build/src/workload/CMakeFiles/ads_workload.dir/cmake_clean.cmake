file(REMOVE_RECURSE
  "CMakeFiles/ads_workload.dir/arrival.cc.o"
  "CMakeFiles/ads_workload.dir/arrival.cc.o.d"
  "CMakeFiles/ads_workload.dir/pipeline_gen.cc.o"
  "CMakeFiles/ads_workload.dir/pipeline_gen.cc.o.d"
  "CMakeFiles/ads_workload.dir/query_gen.cc.o"
  "CMakeFiles/ads_workload.dir/query_gen.cc.o.d"
  "CMakeFiles/ads_workload.dir/response_surface.cc.o"
  "CMakeFiles/ads_workload.dir/response_surface.cc.o.d"
  "CMakeFiles/ads_workload.dir/usage_gen.cc.o"
  "CMakeFiles/ads_workload.dir/usage_gen.cc.o.d"
  "libads_workload.a"
  "libads_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
