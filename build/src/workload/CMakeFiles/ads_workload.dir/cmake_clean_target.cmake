file(REMOVE_RECURSE
  "libads_workload.a"
)
