# Empty dependencies file for ads_workload.
# This may be replaced when dependencies are built.
