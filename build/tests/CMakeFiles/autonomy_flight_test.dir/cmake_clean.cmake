file(REMOVE_RECURSE
  "CMakeFiles/autonomy_flight_test.dir/autonomy/flight_test.cc.o"
  "CMakeFiles/autonomy_flight_test.dir/autonomy/flight_test.cc.o.d"
  "autonomy_flight_test"
  "autonomy_flight_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonomy_flight_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
