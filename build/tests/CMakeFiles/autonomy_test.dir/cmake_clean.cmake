file(REMOVE_RECURSE
  "CMakeFiles/autonomy_test.dir/autonomy/autonomy_test.cc.o"
  "CMakeFiles/autonomy_test.dir/autonomy/autonomy_test.cc.o.d"
  "autonomy_test"
  "autonomy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonomy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
