# Empty compiler generated dependencies file for autonomy_test.
# This may be replaced when dependencies are built.
