file(REMOVE_RECURSE
  "CMakeFiles/common_event_queue_test.dir/common/event_queue_test.cc.o"
  "CMakeFiles/common_event_queue_test.dir/common/event_queue_test.cc.o.d"
  "common_event_queue_test"
  "common_event_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_event_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
