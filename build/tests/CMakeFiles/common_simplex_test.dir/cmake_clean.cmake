file(REMOVE_RECURSE
  "CMakeFiles/common_simplex_test.dir/common/simplex_test.cc.o"
  "CMakeFiles/common_simplex_test.dir/common/simplex_test.cc.o.d"
  "common_simplex_test"
  "common_simplex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_simplex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
