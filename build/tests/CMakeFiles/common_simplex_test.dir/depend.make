# Empty dependencies file for common_simplex_test.
# This may be replaced when dependencies are built.
