file(REMOVE_RECURSE
  "CMakeFiles/engine_cardinality_cost_test.dir/engine/cardinality_cost_test.cc.o"
  "CMakeFiles/engine_cardinality_cost_test.dir/engine/cardinality_cost_test.cc.o.d"
  "engine_cardinality_cost_test"
  "engine_cardinality_cost_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_cardinality_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
