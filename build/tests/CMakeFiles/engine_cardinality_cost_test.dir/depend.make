# Empty dependencies file for engine_cardinality_cost_test.
# This may be replaced when dependencies are built.
