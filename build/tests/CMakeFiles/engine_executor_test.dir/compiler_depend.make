# Empty compiler generated dependencies file for engine_executor_test.
# This may be replaced when dependencies are built.
