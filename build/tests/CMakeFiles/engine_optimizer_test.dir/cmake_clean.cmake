file(REMOVE_RECURSE
  "CMakeFiles/engine_optimizer_test.dir/engine/optimizer_test.cc.o"
  "CMakeFiles/engine_optimizer_test.dir/engine/optimizer_test.cc.o.d"
  "engine_optimizer_test"
  "engine_optimizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
