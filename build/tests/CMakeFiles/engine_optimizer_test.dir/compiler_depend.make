# Empty compiler generated dependencies file for engine_optimizer_test.
# This may be replaced when dependencies are built.
