file(REMOVE_RECURSE
  "CMakeFiles/engine_rules_test.dir/engine/rules_test.cc.o"
  "CMakeFiles/engine_rules_test.dir/engine/rules_test.cc.o.d"
  "engine_rules_test"
  "engine_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
