# Empty dependencies file for engine_rules_test.
# This may be replaced when dependencies are built.
