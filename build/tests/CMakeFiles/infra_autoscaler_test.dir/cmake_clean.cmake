file(REMOVE_RECURSE
  "CMakeFiles/infra_autoscaler_test.dir/infra/autoscaler_test.cc.o"
  "CMakeFiles/infra_autoscaler_test.dir/infra/autoscaler_test.cc.o.d"
  "infra_autoscaler_test"
  "infra_autoscaler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infra_autoscaler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
