# Empty dependencies file for infra_autoscaler_test.
# This may be replaced when dependencies are built.
