file(REMOVE_RECURSE
  "CMakeFiles/infra_machine_test.dir/infra/machine_test.cc.o"
  "CMakeFiles/infra_machine_test.dir/infra/machine_test.cc.o.d"
  "infra_machine_test"
  "infra_machine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infra_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
