# Empty dependencies file for infra_machine_test.
# This may be replaced when dependencies are built.
