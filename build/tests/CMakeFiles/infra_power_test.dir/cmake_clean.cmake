file(REMOVE_RECURSE
  "CMakeFiles/infra_power_test.dir/infra/power_test.cc.o"
  "CMakeFiles/infra_power_test.dir/infra/power_test.cc.o.d"
  "infra_power_test"
  "infra_power_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infra_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
