# Empty dependencies file for infra_power_test.
# This may be replaced when dependencies are built.
