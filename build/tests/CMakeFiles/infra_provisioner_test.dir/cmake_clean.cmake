file(REMOVE_RECURSE
  "CMakeFiles/infra_provisioner_test.dir/infra/provisioner_test.cc.o"
  "CMakeFiles/infra_provisioner_test.dir/infra/provisioner_test.cc.o.d"
  "infra_provisioner_test"
  "infra_provisioner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infra_provisioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
