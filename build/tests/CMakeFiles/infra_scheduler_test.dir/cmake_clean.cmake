file(REMOVE_RECURSE
  "CMakeFiles/infra_scheduler_test.dir/infra/scheduler_test.cc.o"
  "CMakeFiles/infra_scheduler_test.dir/infra/scheduler_test.cc.o.d"
  "infra_scheduler_test"
  "infra_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infra_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
