# Empty dependencies file for infra_scheduler_test.
# This may be replaced when dependencies are built.
