file(REMOVE_RECURSE
  "CMakeFiles/learned_card_models_test.dir/learned/card_models_test.cc.o"
  "CMakeFiles/learned_card_models_test.dir/learned/card_models_test.cc.o.d"
  "learned_card_models_test"
  "learned_card_models_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_card_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
