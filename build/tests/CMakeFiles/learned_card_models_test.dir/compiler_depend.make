# Empty compiler generated dependencies file for learned_card_models_test.
# This may be replaced when dependencies are built.
