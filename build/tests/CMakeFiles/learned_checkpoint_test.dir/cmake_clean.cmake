file(REMOVE_RECURSE
  "CMakeFiles/learned_checkpoint_test.dir/learned/checkpoint_test.cc.o"
  "CMakeFiles/learned_checkpoint_test.dir/learned/checkpoint_test.cc.o.d"
  "learned_checkpoint_test"
  "learned_checkpoint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
