# Empty dependencies file for learned_checkpoint_test.
# This may be replaced when dependencies are built.
