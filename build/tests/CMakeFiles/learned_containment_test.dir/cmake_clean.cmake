file(REMOVE_RECURSE
  "CMakeFiles/learned_containment_test.dir/learned/containment_test.cc.o"
  "CMakeFiles/learned_containment_test.dir/learned/containment_test.cc.o.d"
  "learned_containment_test"
  "learned_containment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_containment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
