# Empty dependencies file for learned_containment_test.
# This may be replaced when dependencies are built.
