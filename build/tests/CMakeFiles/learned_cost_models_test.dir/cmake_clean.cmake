file(REMOVE_RECURSE
  "CMakeFiles/learned_cost_models_test.dir/learned/cost_models_test.cc.o"
  "CMakeFiles/learned_cost_models_test.dir/learned/cost_models_test.cc.o.d"
  "learned_cost_models_test"
  "learned_cost_models_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_cost_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
