# Empty dependencies file for learned_cost_models_test.
# This may be replaced when dependencies are built.
