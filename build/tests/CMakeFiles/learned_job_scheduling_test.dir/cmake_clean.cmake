file(REMOVE_RECURSE
  "CMakeFiles/learned_job_scheduling_test.dir/learned/job_scheduling_test.cc.o"
  "CMakeFiles/learned_job_scheduling_test.dir/learned/job_scheduling_test.cc.o.d"
  "learned_job_scheduling_test"
  "learned_job_scheduling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_job_scheduling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
