# Empty compiler generated dependencies file for learned_job_scheduling_test.
# This may be replaced when dependencies are built.
