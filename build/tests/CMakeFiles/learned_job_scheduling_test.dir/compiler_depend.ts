# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for learned_job_scheduling_test.
