file(REMOVE_RECURSE
  "CMakeFiles/learned_reuse_test.dir/learned/reuse_test.cc.o"
  "CMakeFiles/learned_reuse_test.dir/learned/reuse_test.cc.o.d"
  "learned_reuse_test"
  "learned_reuse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_reuse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
