# Empty compiler generated dependencies file for learned_reuse_test.
# This may be replaced when dependencies are built.
