file(REMOVE_RECURSE
  "CMakeFiles/learned_steering_test.dir/learned/steering_test.cc.o"
  "CMakeFiles/learned_steering_test.dir/learned/steering_test.cc.o.d"
  "learned_steering_test"
  "learned_steering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_steering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
