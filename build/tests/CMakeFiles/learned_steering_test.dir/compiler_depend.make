# Empty compiler generated dependencies file for learned_steering_test.
# This may be replaced when dependencies are built.
