file(REMOVE_RECURSE
  "CMakeFiles/learned_workload_analysis_test.dir/learned/workload_analysis_test.cc.o"
  "CMakeFiles/learned_workload_analysis_test.dir/learned/workload_analysis_test.cc.o.d"
  "learned_workload_analysis_test"
  "learned_workload_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_workload_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
