# Empty dependencies file for learned_workload_analysis_test.
# This may be replaced when dependencies are built.
