file(REMOVE_RECURSE
  "CMakeFiles/ml_algorithm_store_test.dir/ml/algorithm_store_test.cc.o"
  "CMakeFiles/ml_algorithm_store_test.dir/ml/algorithm_store_test.cc.o.d"
  "ml_algorithm_store_test"
  "ml_algorithm_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_algorithm_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
