# Empty compiler generated dependencies file for ml_algorithm_store_test.
# This may be replaced when dependencies are built.
