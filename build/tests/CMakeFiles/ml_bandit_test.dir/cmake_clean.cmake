file(REMOVE_RECURSE
  "CMakeFiles/ml_bandit_test.dir/ml/bandit_test.cc.o"
  "CMakeFiles/ml_bandit_test.dir/ml/bandit_test.cc.o.d"
  "ml_bandit_test"
  "ml_bandit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_bandit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
