# Empty compiler generated dependencies file for ml_bandit_test.
# This may be replaced when dependencies are built.
