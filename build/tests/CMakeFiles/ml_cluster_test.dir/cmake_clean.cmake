file(REMOVE_RECURSE
  "CMakeFiles/ml_cluster_test.dir/ml/cluster_test.cc.o"
  "CMakeFiles/ml_cluster_test.dir/ml/cluster_test.cc.o.d"
  "ml_cluster_test"
  "ml_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
