file(REMOVE_RECURSE
  "CMakeFiles/ml_drift_test.dir/ml/drift_test.cc.o"
  "CMakeFiles/ml_drift_test.dir/ml/drift_test.cc.o.d"
  "ml_drift_test"
  "ml_drift_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_drift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
