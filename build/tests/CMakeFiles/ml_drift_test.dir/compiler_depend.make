# Empty compiler generated dependencies file for ml_drift_test.
# This may be replaced when dependencies are built.
