file(REMOVE_RECURSE
  "CMakeFiles/ml_forecast_test.dir/ml/forecast_test.cc.o"
  "CMakeFiles/ml_forecast_test.dir/ml/forecast_test.cc.o.d"
  "ml_forecast_test"
  "ml_forecast_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_forecast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
