# Empty dependencies file for ml_forecast_test.
# This may be replaced when dependencies are built.
