file(REMOVE_RECURSE
  "CMakeFiles/ml_linear_test.dir/ml/linear_test.cc.o"
  "CMakeFiles/ml_linear_test.dir/ml/linear_test.cc.o.d"
  "ml_linear_test"
  "ml_linear_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_linear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
