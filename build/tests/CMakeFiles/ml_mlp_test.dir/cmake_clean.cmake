file(REMOVE_RECURSE
  "CMakeFiles/ml_mlp_test.dir/ml/mlp_test.cc.o"
  "CMakeFiles/ml_mlp_test.dir/ml/mlp_test.cc.o.d"
  "ml_mlp_test"
  "ml_mlp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_mlp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
