# Empty dependencies file for ml_mlp_test.
# This may be replaced when dependencies are built.
