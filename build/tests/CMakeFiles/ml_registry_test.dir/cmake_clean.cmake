file(REMOVE_RECURSE
  "CMakeFiles/ml_registry_test.dir/ml/registry_test.cc.o"
  "CMakeFiles/ml_registry_test.dir/ml/registry_test.cc.o.d"
  "ml_registry_test"
  "ml_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
