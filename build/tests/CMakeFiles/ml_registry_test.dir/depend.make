# Empty dependencies file for ml_registry_test.
# This may be replaced when dependencies are built.
