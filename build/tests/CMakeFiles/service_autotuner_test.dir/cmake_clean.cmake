file(REMOVE_RECURSE
  "CMakeFiles/service_autotuner_test.dir/service/autotuner_test.cc.o"
  "CMakeFiles/service_autotuner_test.dir/service/autotuner_test.cc.o.d"
  "service_autotuner_test"
  "service_autotuner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_autotuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
