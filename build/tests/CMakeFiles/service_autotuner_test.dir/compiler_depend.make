# Empty compiler generated dependencies file for service_autotuner_test.
# This may be replaced when dependencies are built.
