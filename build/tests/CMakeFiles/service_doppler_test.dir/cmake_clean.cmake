file(REMOVE_RECURSE
  "CMakeFiles/service_doppler_test.dir/service/doppler_test.cc.o"
  "CMakeFiles/service_doppler_test.dir/service/doppler_test.cc.o.d"
  "service_doppler_test"
  "service_doppler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_doppler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
