# Empty compiler generated dependencies file for service_doppler_test.
# This may be replaced when dependencies are built.
