file(REMOVE_RECURSE
  "CMakeFiles/service_moneyball_test.dir/service/moneyball_test.cc.o"
  "CMakeFiles/service_moneyball_test.dir/service/moneyball_test.cc.o.d"
  "service_moneyball_test"
  "service_moneyball_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_moneyball_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
