# Empty dependencies file for service_moneyball_test.
# This may be replaced when dependencies are built.
