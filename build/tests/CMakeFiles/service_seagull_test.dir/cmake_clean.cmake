file(REMOVE_RECURSE
  "CMakeFiles/service_seagull_test.dir/service/seagull_test.cc.o"
  "CMakeFiles/service_seagull_test.dir/service/seagull_test.cc.o.d"
  "service_seagull_test"
  "service_seagull_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_seagull_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
