# Empty dependencies file for service_seagull_test.
# This may be replaced when dependencies are built.
