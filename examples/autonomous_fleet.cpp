// The full autonomy loop on a live engine (Insight 3 + Direction 4):
//
//   train -> register -> deploy -> serve -> monitor -> drift ->
//   rollback -> retrain -> redeploy
//
// A runtime-prediction model (used for admission control) serves through
// the model registry. Mid-stream, the tenant's data grows 5x (concept
// drift): the monitor alarms, the feedback loop rolls back and requests a
// retrain, a worker retrains on fresh observations and redeploys. A cost
// guardrail (Responsible AI) vetoes decisions that would over-allocate.
//
// Run: ./build/examples/autonomous_fleet

#include <cstdio>

#include "autonomy/feedback.h"
#include "autonomy/rai.h"
#include "common/table.h"
#include "engine/executor.h"
#include "engine/optimizer.h"
#include "learned/cost_models.h"
#include "ml/forest.h"
#include "ml/registry.h"
#include "workload/query_gen.h"

using namespace ads;  // NOLINT: example brevity

namespace {

// Trains a GBT runtime predictor on (generic plan features -> makespan).
ml::GradientBoostedTrees TrainPredictor(
    const std::vector<std::pair<std::vector<double>, double>>& samples) {
  ml::Dataset data;
  for (const auto& [features, runtime] : samples) data.Add(features, runtime);
  ml::GradientBoostedTrees model({.num_rounds = 30, .max_depth = 3});
  ADS_CHECK_OK(model.Fit(data));
  return model;
}

}  // namespace

int main() {
  workload::QueryGenerator gen({.num_templates = 12,
                                .recurring_fraction = 1.0,
                                .seed = 77});
  engine::Optimizer optimizer(&gen.catalog());
  engine::CostModel cost_model;
  engine::JobSimulator fast_cluster;   // before drift
  engine::ExecutorOptions slow;        // after drift: a 5x slower tenant
  slow.seconds_per_work = 5.0;
  engine::JobSimulator slow_cluster(slow);

  auto run_job = [&](int i, bool drifted)
      -> std::pair<std::vector<double>, double> {
    auto job = gen.NextJob();
    auto plan = optimizer.Optimize(*job.plan, engine::RuleConfig::Default());
    auto stages = engine::CompileToStages(*plan, cost_model,
                                          engine::CardSource::kTrue);
    double runtime = (drifted ? slow_cluster : fast_cluster)
                         .Execute(stages, 1000 + static_cast<uint64_t>(i))
                         .makespan;
    return {learned::GenericPlanFeatures(*plan), runtime};
  };

  // --- Train and deploy v1. ---------------------------------------------
  std::vector<std::pair<std::vector<double>, double>> history;
  for (int i = 0; i < 200; ++i) history.push_back(run_job(i, false));
  ml::ModelRegistry registry;
  registry.Register("runtime", TrainPredictor(history).Serialize(),
                    {{"training_jobs", 200}});
  ADS_CHECK_OK(registry.Deploy("runtime", 1));

  autonomy::FeedbackLoop loop(
      &registry, {.detector = {.baseline_window = 40, .recent_window = 15,
                               .degradation_factor = 2.5,
                               .min_absolute_error = 1.0}});
  autonomy::CostGuardrail guardrail(/*max_cost=*/5000.0,
                                    /*min_benefit_per_cost=*/0.0);

  // --- Serve 600 jobs; drift (5x data growth) hits at job 300. -----------
  common::Table timeline({"job", "event"});
  std::vector<std::pair<std::vector<double>, double>> fresh;
  size_t guardrail_vetoes = 0;
  for (int i = 0; i < 600; ++i) {
    bool drifted = i >= 300;
    auto [features, runtime] = run_job(1000 + i, drifted);
    auto model = registry.DeployedModel("runtime");
    ADS_CHECK_OK(model.status());
    double predicted = (*model)->Predict(features);
    // RAI guardrail: a prediction that would reserve an absurd slice of
    // the cluster is vetoed and falls back to a conservative default.
    if (!guardrail.Approve(predicted, runtime)) ++guardrail_vetoes;

    fresh.emplace_back(features, runtime);
    if (fresh.size() > 150) fresh.erase(fresh.begin());
    auto action = loop.ReportObservation("runtime", runtime, predicted);
    if (action == autonomy::FeedbackAction::kRolledBack) {
      timeline.AddRow({std::to_string(i), "drift alarm -> rolled back"});
      fresh.clear();
    } else if (action == autonomy::FeedbackAction::kRetrainRequested) {
      timeline.AddRow({std::to_string(i), "drift alarm -> retrain requested"});
      fresh.clear();
    }
    if (loop.RetrainPending("runtime") && fresh.size() >= 100) {
      uint32_t v = registry.Register(
          "runtime", TrainPredictor(fresh).Serialize(),
          {{"training_jobs", static_cast<double>(fresh.size())}});
      ADS_CHECK_OK(registry.Deploy("runtime", v));
      loop.NotifyRetrained("runtime");
      timeline.AddRow({std::to_string(i),
                       "retrained on fresh jobs -> deployed v" +
                           std::to_string(v)});
    }
  }
  timeline.Print("Autonomy timeline (data grows 5x at job 300)");

  common::Table summary({"metric", "value"});
  summary.AddRow({"deployed version at the end",
                  "v" + std::to_string(registry.DeployedVersion("runtime"))});
  summary.AddRow({"rollbacks", std::to_string(loop.rollbacks())});
  summary.AddRow({"retrain requests", std::to_string(loop.retrain_requests())});
  summary.AddRow({"guardrail vetoes", std::to_string(guardrail_vetoes)});
  summary.Print("Closed-loop summary");
  std::printf("\nEvery stage of the paper's Insight 3 ran end to end:\n"
              "monitoring spotted the change, rollback reacted fast, and the\n"
              "retrain restored accuracy on the drifted workload.\n");
  return 0;
}
