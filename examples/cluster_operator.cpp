// Infrastructure-layer walkthrough: the cloud operator's day.
//
// 1. KEA-style tuning: learn machine-behaviour models from telemetry and
//    use the LP to set per-SKU container caps that avoid hotspots.
// 2. Proactive provisioning: forecast cluster-creation demand and keep a
//    warm pool, cutting user wait times at bounded idle cost.
//
// Run: ./build/examples/cluster_operator

#include <cstdio>

#include "common/simplex.h"
#include "common/table.h"
#include "infra/provisioner.h"
#include "infra/scheduler.h"
#include "ml/linear.h"
#include "telemetry/store.h"
#include "workload/arrival.h"

using namespace ads;  // NOLINT: example brevity

namespace {

// Runs one day of container traffic against the cluster with a config;
// returns (hotspots, P95 latency).
std::pair<int, double> RunDay(infra::Cluster& cluster,
                              const infra::SchedulerConfig& config,
                              telemetry::TelemetryStore* telemetry,
                              uint64_t seed) {
  common::EventQueue queue;
  infra::ClusterScheduler scheduler(&cluster, &queue, telemetry, seed);
  scheduler.SetConfig(config);
  common::Rng rng(seed);
  // Heavy steady stream for 4 simulated hours — enough demand that badly
  // set per-SKU caps push machines past their slowdown knee.
  for (int i = 0; i < 7000; ++i) {
    double when = rng.Uniform(0.0, common::Hours(4));
    queue.ScheduleAt(when, [&scheduler, &rng, i](common::SimTime) {
      scheduler.Submit({.id = static_cast<uint64_t>(i),
                        .base_duration = rng.Uniform(500.0, 1000.0)});
    });
  }
  for (double t = 0; t < common::Hours(5); t += 60.0) {
    queue.ScheduleAt(t, [&scheduler](common::SimTime) {
      scheduler.SampleTelemetry();
    });
  }
  queue.RunAll();
  return {scheduler.HotspotCount(0.9),
          scheduler.task_latency().Quantile(0.95)};
}

}  // namespace

int main() {
  // Two machine generations with different behaviour curves.
  infra::SkuSpec gen4{.name = "gen4", .default_max_containers = 20,
                      .cpu_per_container = 0.06, .util_knee = 0.7,
                      .slowdown_per_util = 3.0};
  infra::SkuSpec gen5{.name = "gen5", .default_max_containers = 20,
                      .cpu_per_container = 0.03, .util_knee = 0.8,
                      .slowdown_per_util = 2.0};
  infra::Cluster cluster;
  cluster.AddMachines(gen4, 8, /*racks=*/2);
  cluster.AddMachines(gen5, 8, /*racks=*/2);

  // --- Day 1: default caps; record telemetry. ---------------------------
  telemetry::TelemetryStore telemetry;
  auto [hotspots_before, p95_before] =
      RunDay(cluster, infra::SchedulerConfig{}, &telemetry, 1);

  // --- Learn cpu-vs-containers per SKU from the telemetry (Figure 1). ---
  common::Table models({"sku", "cpu per container (learned)", "R^2-ish fit"});
  infra::SchedulerConfig tuned;
  for (const std::string& sku : {std::string("gen4"), std::string("gen5")}) {
    ml::Dataset data;
    for (const auto& series :
         telemetry.Select("system.cpu.utilization", {{"sku", sku}})) {
      auto containers = telemetry.QueryAll("container.running.count",
                                           series.labels);
      for (size_t i = 0; i < series.points.size() && i < containers.size();
           ++i) {
        data.Add({containers[i].value}, series.points[i].value);
      }
    }
    ml::LinearRegressor model;
    if (!model.Fit(data).ok()) continue;
    double slope = model.weights()[0];
    models.AddRow({sku, common::Table::Num(slope, 4),
                   std::to_string(data.size()) + " samples"});
    // Solve: max containers subject to predicted util <= knee (per machine).
    // One-variable LP per SKU (kept as an LP to mirror the production
    // pipeline, where many coupled constraints enter).
    common::LinearProgram lp;
    lp.objective = {1.0};
    double knee = sku == "gen4" ? 0.7 : 0.8;
    lp.constraints.push_back({{std::max(1e-6, slope)},
                              common::ConstraintSense::kLessEqual, knee});
    auto sol = common::SolveLp(lp);
    if (sol.ok() && sol->status == common::LpStatus::kOptimal) {
      tuned.max_containers_per_sku[sku] =
          std::max(1, static_cast<int>(sol->x[0]));
    }
  }
  models.Print("Learned machine-behaviour models (paper Figure 1)");

  // --- Day 2: tuned caps. ----------------------------------------------
  infra::Cluster cluster2;
  cluster2.AddMachines(gen4, 8, 2);
  cluster2.AddMachines(gen5, 8, 2);
  auto [hotspots_after, p95_after] = RunDay(cluster2, tuned, nullptr, 1);

  common::Table balance({"config", "hotspot machines", "P95 task latency"});
  balance.AddRow({"default caps", std::to_string(hotspots_before),
                  common::Table::Num(p95_before, 1) + " s"});
  balance.AddRow({"model-tuned caps", std::to_string(hotspots_after),
                  common::Table::Num(p95_after, 1) + " s"});
  balance.Print("KEA-style workload balancing");

  // --- Proactive provisioning. ------------------------------------------
  common::EventQueue queue;
  infra::ClusterProvisioner reactive(&queue, 3);
  infra::ClusterProvisioner proactive(&queue, 3);
  workload::ArrivalProcess arrivals({.peak_rate_per_hour = 6, .seed = 9});
  auto times = arrivals.Sample(common::Days(1));
  proactive.SetWarmPoolTarget(2);
  for (double t : times) {
    queue.ScheduleAt(t, [&](common::SimTime) {
      reactive.RequestCluster([](double) {});
      proactive.RequestCluster([](double) {});
    });
  }
  queue.RunUntil(common::Days(1) + common::Hours(2));

  common::Table pool({"provisioning", "median wait", "P95 wait",
                      "idle cost ($)"});
  pool.AddRow({"reactive (cold)",
               common::Table::Num(reactive.wait_times().Quantile(0.5), 0) + " s",
               common::Table::Num(reactive.wait_times().Quantile(0.95), 0) + " s",
               common::Table::Num(reactive.WarmIdleCost(), 2)});
  pool.AddRow({"proactive (warm pool)",
               common::Table::Num(proactive.wait_times().Quantile(0.5), 0) + " s",
               common::Table::Num(proactive.wait_times().Quantile(0.95), 0) + " s",
               common::Table::Num(proactive.WarmIdleCost(), 2)});
  pool.Print("Cluster provisioning: wait time vs COGS");
  return 0;
}
