// Quickstart: the full autonomous-data-services loop on one page.
//
// 1. Generate a recurring workload against a synthetic catalog.
// 2. Run it through the engine with the DEFAULT components and record
//    workload traces (Peregrine-style analysis).
// 3. Train learned components from the traces: cardinality micromodels
//    and materialized-view selection.
// 4. Re-run the same workload with the learned components attached and
//    compare.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart

#include <cstdio>

#include "common/table.h"
#include "engine/executor.h"
#include "engine/optimizer.h"
#include "learned/card_models.h"
#include "learned/reuse.h"
#include "learned/workload_analysis.h"
#include "workload/query_gen.h"

using namespace ads;  // NOLINT: example brevity

int main() {
  // --- 1. A workload with the paper's recurrence structure. ------------
  workload::QueryGenerator gen({.num_tables = 8,
                                .num_templates = 25,
                                .recurring_fraction = 0.65,
                                .shared_fragment_fraction = 0.5,
                                .seed = 42});
  engine::Optimizer optimizer(&gen.catalog());
  engine::CostModel cost_model;
  engine::JobSimulator simulator;

  // --- 2. First pass: default optimizer, collect traces. ---------------
  learned::WorkloadAnalyzer analyzer;
  learned::ReuseManager reuse;
  for (int i = 0; i < 300; ++i) {
    auto job = gen.NextJob();
    auto plan = optimizer.Optimize(*job.plan, engine::RuleConfig::Default());
    auto stages = engine::CompileToStages(*plan, cost_model,
                                          engine::CardSource::kTrue);
    auto run = simulator.Execute(stages, 1000 + static_cast<uint64_t>(i));
    analyzer.ObserveJob(job.job_id, *plan, run.makespan, run.total_compute);
    reuse.ObserveJob(job.job_id, *plan, cost_model);
  }

  std::printf("Workload analysis over %zu jobs:\n", analyzer.jobs_observed());
  std::printf("  recurring jobs:          %.1f%%\n",
              analyzer.RecurringJobFraction() * 100.0);
  std::printf("  share a subexpression:   %.1f%%\n",
              analyzer.SharedSubexpressionFraction() * 100.0);

  // --- 3. Learn from the past. -----------------------------------------
  learned::CardinalityModelStore card_models;
  if (!card_models.Train(analyzer.node_observations()).ok()) {
    std::fprintf(stderr, "cardinality training failed\n");
    return 1;
  }
  std::printf("  cardinality micromodels: %zu retained (of %zu candidates)\n",
              card_models.retained_models(), card_models.candidate_templates());
  auto views = reuse.SelectViews(/*budget_bytes=*/2e10);
  std::printf("  materialized views:      %zu selected\n\n", views.size());

  // --- 4. Evaluate on a fresh ("future") stream: every held-out job runs
  // both ways, so the comparison is apples to apples. ---------------------
  engine::Optimizer learned_optimizer(&gen.catalog());
  learned_optimizer.SetCardinalityProvider(&card_models);
  double eval_default = 0.0;
  double eval_learned = 0.0;
  size_t rewrites = 0;
  for (int i = 0; i < 200; ++i) {
    auto job = gen.NextJob();
    uint64_t seed = 2000 + static_cast<uint64_t>(i);

    auto plan_d = optimizer.Optimize(*job.plan, engine::RuleConfig::Default());
    auto stages_d = engine::CompileToStages(*plan_d, cost_model,
                                            engine::CardSource::kTrue);
    eval_default += simulator.Execute(stages_d, seed).makespan;

    auto rewritten = learned::ReuseManager::Rewrite(*job.plan, views, &rewrites);
    engine::AnnotateTrueCardinality(*rewritten);
    auto plan_l =
        learned_optimizer.Optimize(*rewritten, engine::RuleConfig::Default());
    auto stages_l = engine::CompileToStages(*plan_l, cost_model,
                                            engine::CardSource::kTrue);
    eval_learned += simulator.Execute(stages_l, seed).makespan;
  }

  common::Table table({"configuration", "cumulative latency (s)", "notes"});
  table.AddRow({"default components", common::Table::Num(eval_default, 0),
                "uniformity estimator, no reuse"});
  table.AddRow({"learned components", common::Table::Num(eval_learned, 0),
                "micromodel cards + " + std::to_string(rewrites) +
                    " view rewrites"});
  table.Print("Quickstart: learn from the past to improve the future");
  std::printf("\nImprovement on the held-out stream: %.1f%%\n",
              (1.0 - eval_learned / eval_default) * 100.0);
  return 0;
}
