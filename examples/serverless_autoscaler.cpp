// Serverless pause/resume walkthrough (the Moneyball scenario).
//
// Generates a fleet of serverless-database usage traces, measures how much
// of the usage is predictable, and compares pause/resume policies on the
// QoS (cold starts) vs COGS (billed hours) trade-off — the paper's
// Figure 2 Pareto story, on one fleet.
//
// Run: ./build/examples/serverless_autoscaler

#include <cstdio>

#include "common/table.h"
#include "service/moneyball.h"
#include "workload/usage_gen.h"

using namespace ads;  // NOLINT: example brevity

int main() {
  auto traces = workload::GenerateUsageTraces(
      300, {.hours = 24 * 28, .seed = 7});
  service::ServerlessManager manager;

  double predictable = manager.PredictableFraction(traces);
  std::printf("Fleet: %zu serverless databases, 4 weeks of hourly activity\n",
              traces.size());
  std::printf("Predictable usage: %.1f%% (paper reports 77%%)\n\n",
              predictable * 100.0);

  common::Table table(
      {"policy", "billed hours", "cold starts / active hour"});
  for (auto policy : {service::PausePolicy::kAlwaysOn,
                      service::PausePolicy::kReactive,
                      service::PausePolicy::kPredictive}) {
    auto outcome = manager.SimulateFleet(traces, policy);
    if (!outcome.ok()) {
      std::fprintf(stderr, "simulation failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    table.AddRow({service::PausePolicyName(policy),
                  common::Table::Pct(outcome->billed_fraction),
                  common::Table::Num(outcome->cold_start_rate, 4)});
  }
  table.Print("Pause/resume policies (lower is better on both columns)");
  std::printf(
      "\nThe ML forecasts move the fleet toward the Pareto frontier:\n"
      "cost close to the reactive policy, cold starts close to always-on.\n");
  return 0;
}
