// SKU migration advisor (the Doppler scenario).
//
// Trains the recommender on migrated customers, then advises a batch of
// new customers, printing the explainable price-performance ranking the
// paper emphasizes.
//
// Run: ./build/examples/sku_advisor

#include <cstdio>

#include "common/table.h"
#include "service/doppler.h"
#include "workload/usage_gen.h"

using namespace ads;  // NOLINT: example brevity

int main() {
  workload::CustomerGenOptions opt;
  opt.seed = 11;
  auto skus = workload::MakeSkuLadder(opt);
  auto customers = workload::GenerateCustomers(1100, skus, opt);
  std::vector<workload::CustomerProfile> train(customers.begin(),
                                               customers.begin() + 1000);
  std::vector<workload::CustomerProfile> incoming(customers.begin() + 1000,
                                                  customers.end());

  service::SkuRecommender recommender;
  if (!recommender.Train(train, skus).ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  auto accuracy = recommender.EvaluateAccuracy(incoming);
  std::printf("Trained on %zu migrated customers; accuracy on %zu new: %.1f%%"
              " (paper reports >95%%)\n\n",
              train.size(), incoming.size(), *accuracy * 100.0);

  // Show one customer's full explainable ranking.
  const auto& c = incoming[0];
  std::printf("Customer %d: cpu=%.1f cores, mem=%.1f GB, iops=%.1fk, "
              "storage=%.2f TB (price sensitivity %.2f)\n",
              c.id, c.features[0], c.features[1], c.features[2],
              c.features[3], c.price_sensitivity);
  auto ranked = recommender.RankSkus(c);
  common::Table table({"rank", "sku", "$/month", "covers needs", "score"});
  int rank = 1;
  for (const auto& r : *ranked) {
    table.AddRow({std::to_string(rank++),
                  skus[static_cast<size_t>(r.sku_id)].name,
                  common::Table::Num(r.monthly_price, 0),
                  r.covers_needs ? "yes" : "no",
                  common::Table::Num(r.score, 2)});
  }
  table.Print("Price-performance ranking");
  auto rec = recommender.Recommend(c);
  std::printf("\nRecommendation: %s (ground-truth right-size: %s)\n",
              skus[static_cast<size_t>(*rec)].name.c_str(),
              skus[static_cast<size_t>(c.true_sku)].name.c_str());
  return 0;
}
