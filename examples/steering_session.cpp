// Query-optimizer steering session (the Bao-in-production scenario).
//
// A fleet of recurring jobs runs daily. Per template, the steering
// controller explores one-rule deviations from the default optimizer
// configuration, adopts a better one when the evidence is clear, and
// blacklists configurations that regress — the validation guard the paper
// insists on for production.
//
// Run: ./build/examples/steering_session

#include <cstdio>

#include "common/table.h"
#include "engine/executor.h"
#include "engine/optimizer.h"
#include "learned/steering.h"
#include "workload/query_gen.h"

using namespace ads;  // NOLINT: example brevity

int main() {
  workload::QueryGenerator gen({.num_templates = 8,
                                .recurring_fraction = 1.0,
                                .seed = 21});
  engine::Optimizer optimizer(&gen.catalog());
  engine::CostModel cost_model;
  engine::JobSimulator simulator;
  learned::SteeringController steering({.epsilon = 0.35, .min_trials = 3});
  common::Rng rng(5);

  constexpr int kDays = 80;
  std::vector<double> default_total(gen.num_templates(), 0.0);
  std::vector<double> steered_total(gen.num_templates(), 0.0);

  for (int day = 0; day < kDays; ++day) {
    for (size_t t = 0; t < gen.num_templates(); ++t) {
      auto job = gen.InstantiateTemplate(t);
      uint64_t sig = job.plan->TemplateSignature();
      uint64_t seed = static_cast<uint64_t>(day) * 100 + t;

      engine::RuleConfig config = steering.ChooseConfig(sig, rng);
      auto plan = optimizer.Optimize(*job.plan, config);
      auto stages = engine::CompileToStages(*plan, cost_model,
                                            engine::CardSource::kTrue);
      double runtime = simulator.Execute(stages, seed).makespan;
      steering.ObserveRuntime(sig, config, runtime);
      steered_total[t] += runtime;

      // Counterfactual: the default on the same job and seed.
      auto dplan = optimizer.Optimize(*job.plan, engine::RuleConfig::Default());
      auto dstages = engine::CompileToStages(*dplan, cost_model,
                                             engine::CardSource::kTrue);
      default_total[t] += simulator.Execute(dstages, seed).makespan;
    }
  }

  common::Table table({"template", "default (s)", "steered (s)", "change",
                       "adopted flips"});
  double all_default = 0.0;
  double all_steered = 0.0;
  for (size_t t = 0; t < gen.num_templates(); ++t) {
    auto job = gen.InstantiateTemplate(t);
    int distance = steering.BestConfig(job.plan->TemplateSignature())
                       .Distance(engine::RuleConfig::Default());
    table.AddRow({std::to_string(t), common::Table::Num(default_total[t], 0),
                  common::Table::Num(steered_total[t], 0),
                  common::Table::Pct(steered_total[t] / default_total[t] - 1.0),
                  std::to_string(distance)});
    all_default += default_total[t];
    all_steered += steered_total[t];
  }
  table.Print("Per-template steering outcomes over " +
              std::to_string(kDays) + " days");
  std::printf("\nFleet change: %.1f%% (negative = faster). "
              "Regression-guard blacklists: %zu\n",
              (all_steered / all_default - 1.0) * 100.0,
              steering.regressions_prevented());
  std::printf("Every adopted change is a single rule flip from the default "
              "— interpretable by design.\n");
  return 0;
}
