#include "autonomy/feedback.h"

#include "common/logging.h"

namespace ads::autonomy {

FeedbackLoop::FeedbackLoop(ml::ModelRegistry* registry,
                           FeedbackOptions options)
    : registry_(registry), options_(options), monitor_(options.detector) {
  ADS_CHECK(registry != nullptr) << "feedback loop needs a registry";
}

FeedbackAction FeedbackLoop::ReportObservation(const std::string& model,
                                               double truth,
                                               double prediction) {
  bool alarmed = monitor_.Observe(model, truth, prediction);
  if (!alarmed) return FeedbackAction::kNone;
  if (retrain_pending_.count(model) > 0 && retrain_pending_[model]) {
    return FeedbackAction::kNone;  // already waiting on a retrain
  }
  if (options_.auto_rollback && registry_->Rollback(model).ok()) {
    ++rollbacks_;
    monitor_.Acknowledge(model);
    // The rolled-back model may still be stale; ask for fresh training too.
    retrain_pending_[model] = true;
    ++retrain_requests_;
    return FeedbackAction::kRolledBack;
  }
  retrain_pending_[model] = true;
  ++retrain_requests_;
  return FeedbackAction::kRetrainRequested;
}

void FeedbackLoop::NotifyRetrained(const std::string& model) {
  retrain_pending_[model] = false;
  monitor_.Acknowledge(model);
}

bool FeedbackLoop::RetrainPending(const std::string& model) const {
  auto it = retrain_pending_.find(model);
  return it != retrain_pending_.end() && it->second;
}

}  // namespace ads::autonomy
