#ifndef ADS_AUTONOMY_FEEDBACK_H_
#define ADS_AUTONOMY_FEEDBACK_H_

#include <map>
#include <string>

#include "autonomy/monitor.h"
#include "ml/registry.h"

namespace ads::autonomy {

/// What the feedback loop did in response to an observation.
enum class FeedbackAction {
  kNone,
  /// Drift alarm fired and a previous version existed: rolled back.
  kRolledBack,
  /// Drift alarm fired with no version to roll back to: flagged for
  /// retraining.
  kRetrainRequested,
};

struct FeedbackOptions {
  ml::DriftDetectorOptions detector;
  /// When false, alarms only ever request retraining (no auto-rollback).
  bool auto_rollback = true;
};

/// The closed feedback loop of Insight 3: monitoring feeds a fast-reacting
/// rollback mechanism over the model registry, so a drifting or regressed
/// model is withdrawn before it keeps doing damage, and a retrain is
/// requested to recover.
class FeedbackLoop {
 public:
  FeedbackLoop(ml::ModelRegistry* registry,
               FeedbackOptions options = FeedbackOptions());

  /// Reports one serving-time (truth, prediction) pair for a model and
  /// applies the loop's policy.
  FeedbackAction ReportObservation(const std::string& model, double truth,
                                   double prediction);

  /// Marks a pending retrain as completed (a new version was registered
  /// and deployed by the caller); re-arms monitoring.
  void NotifyRetrained(const std::string& model);

  bool RetrainPending(const std::string& model) const;
  size_t rollbacks() const { return rollbacks_; }
  size_t retrain_requests() const { return retrain_requests_; }
  const ModelMonitor& monitor() const { return monitor_; }

 private:
  ml::ModelRegistry* registry_;
  FeedbackOptions options_;
  ModelMonitor monitor_;
  std::map<std::string, bool> retrain_pending_;
  size_t rollbacks_ = 0;
  size_t retrain_requests_ = 0;
};

}  // namespace ads::autonomy

#endif  // ADS_AUTONOMY_FEEDBACK_H_
