#include "autonomy/flight.h"

#include "common/logging.h"

namespace ads::autonomy {

FlightEvaluator::FlightEvaluator(ml::ModelRegistry* registry,
                                 std::string model_name,
                                 FlightOptions options)
    : registry_(registry), model_(std::move(model_name)), options_(options) {
  ADS_CHECK(registry != nullptr) << "flight evaluator needs a registry";
}

common::Status FlightEvaluator::Start(uint32_t treatment_version) {
  control_version_ = registry_->DeployedVersion(model_);
  if (control_version_ == 0) {
    return common::Status::FailedPrecondition(
        "no deployed control model for " + model_);
  }
  if (treatment_version == control_version_) {
    return common::Status::InvalidArgument(
        "treatment equals the deployed control");
  }
  ADS_RETURN_IF_ERROR(registry_->StartFlight(model_, treatment_version,
                                             options_.traffic_fraction));
  treatment_version_ = treatment_version;
  decision_ = Decision::kPending;
  control_sum_ = treatment_sum_ = 0.0;
  control_n_ = treatment_n_ = 0;
  return common::Status::Ok();
}

uint32_t FlightEvaluator::Route(common::Rng& rng) const {
  ADS_CHECK(registry_->FlightActive(model_) ||
            decision_ != Decision::kPending)
      << "route without an active flight";
  if (decision_ != Decision::kPending) {
    return registry_->DeployedVersion(model_);
  }
  return registry_->ServingVersion(model_, rng);
}

double FlightEvaluator::control_mean_error() const {
  return control_n_ == 0 ? 0.0
                         : control_sum_ / static_cast<double>(control_n_);
}

double FlightEvaluator::treatment_mean_error() const {
  return treatment_n_ == 0
             ? 0.0
             : treatment_sum_ / static_cast<double>(treatment_n_);
}

void FlightEvaluator::Abort() {
  if (decision_ != Decision::kPending) return;
  ADS_CHECK_OK(registry_->EndFlight(model_, /*promote=*/false));
  decision_ = Decision::kAborted;
}

FlightEvaluator::Decision FlightEvaluator::RecordError(uint32_t version,
                                                       double abs_error) {
  if (decision_ != Decision::kPending) return decision_;
  if (version == treatment_version_) {
    treatment_sum_ += abs_error;
    ++treatment_n_;
  } else if (version == control_version_) {
    control_sum_ += abs_error;
    ++control_n_;
  }
  if (control_n_ < options_.min_samples_per_arm ||
      treatment_n_ < options_.min_samples_per_arm) {
    return decision_;
  }
  double control = control_mean_error();
  double treatment = treatment_mean_error();
  if (treatment <= control * options_.promote_ratio) {
    ADS_CHECK_OK(registry_->EndFlight(model_, /*promote=*/true));
    decision_ = Decision::kPromoted;
  } else if (treatment >= control * options_.abort_ratio) {
    ADS_CHECK_OK(registry_->EndFlight(model_, /*promote=*/false));
    decision_ = Decision::kAborted;
  }
  return decision_;
}

}  // namespace ads::autonomy
