#ifndef ADS_AUTONOMY_FLIGHT_H_
#define ADS_AUTONOMY_FLIGHT_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "ml/registry.h"

namespace ads::autonomy {

struct FlightOptions {
  /// Fraction of traffic routed to the treatment arm.
  double traffic_fraction = 0.2;
  /// Samples required on each arm before a decision is made.
  size_t min_samples_per_arm = 50;
  /// Promote when treatment mean error <= control mean error * this ratio.
  double promote_ratio = 0.97;
  /// Abort immediately when treatment mean error exceeds control * this
  /// ratio after min samples (fast regression exit).
  double abort_ratio = 1.15;
};

/// Controlled rollout of a new model version (Insight 3: "all ML solutions
/// undergo extensive testing before being deployed into production,
/// including backtesting, flighting or A/B testing"). Wraps the registry's
/// flight mechanism with error accounting and an automatic
/// promote/abort decision.
class FlightEvaluator {
 public:
  enum class Decision { kPending, kPromoted, kAborted };

  FlightEvaluator(ml::ModelRegistry* registry, std::string model_name,
                  FlightOptions options = FlightOptions());

  /// Starts flighting `treatment_version` against the deployed control.
  common::Status Start(uint32_t treatment_version);

  /// Routes one request: returns the version that should serve it.
  /// Requires an active flight.
  uint32_t Route(common::Rng& rng) const;

  /// Records the serving error one request observed under `version`.
  /// When both arms have enough samples, decides: promote, abort, or keep
  /// collecting. Promotion/abort ends the registry flight.
  Decision RecordError(uint32_t version, double abs_error);

  /// Force-aborts a pending flight regardless of sample counts — the exit
  /// an SLO gate takes when serving health (p99, availability, breaker)
  /// degrades mid-flight and waiting for accuracy evidence would keep a
  /// harmful candidate in rotation. Ends the registry flight without
  /// promotion; no-op once a decision has been reached.
  void Abort();

  Decision decision() const { return decision_; }
  double control_mean_error() const;
  double treatment_mean_error() const;
  size_t control_samples() const { return control_n_; }
  size_t treatment_samples() const { return treatment_n_; }

 private:
  ml::ModelRegistry* registry_;
  std::string model_;
  FlightOptions options_;
  uint32_t control_version_ = 0;
  uint32_t treatment_version_ = 0;
  Decision decision_ = Decision::kPending;
  double control_sum_ = 0.0;
  double treatment_sum_ = 0.0;
  size_t control_n_ = 0;
  size_t treatment_n_ = 0;
};

}  // namespace ads::autonomy

#endif  // ADS_AUTONOMY_FLIGHT_H_
