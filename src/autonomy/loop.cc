#include "autonomy/loop.h"

#include <chrono>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace ads::autonomy {

namespace {

/// FNV-1a over the slice seed then the tenant bytes: a cheap, stable,
/// platform-independent hash, so the canary slice is identical across
/// runs, thread counts, and machines.
uint64_t SliceHash(uint64_t seed, const std::string& tenant) {
  uint64_t h = 14695981039346656037ull;
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (seed >> shift) & 0xffull;
    h *= 1099511628211ull;
  }
  for (char c : tenant) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

const char* LoopStateName(LoopState state) {
  switch (state) {
    case LoopState::kSteady:
      return "steady";
    case LoopState::kRetraining:
      return "retraining";
    case LoopState::kShadow:
      return "shadow";
    case LoopState::kCanary:
      return "canary";
    case LoopState::kProbation:
      return "probation";
  }
  return "unknown";
}

AutonomyLoop::AutonomyLoop(ml::ModelRegistry* registry, std::string model_name,
                           Trainer trainer, AutonomyLoopOptions options,
                           common::ThreadPool* pool,
                           common::FaultInjector* injector)
    : registry_(registry),
      model_(std::move(model_name)),
      trainer_(std::move(trainer)),
      options_(options),
      pool_(pool),
      injector_(injector),
      detector_(options.detector) {
  ADS_CHECK(registry != nullptr) << "autonomy loop needs a registry";
  ADS_CHECK(trainer_ != nullptr) << "autonomy loop needs a trainer";
  ADS_CHECK(options_.retrain_buffer_capacity >= options_.min_retrain_samples)
      << "retrain buffer smaller than the retrain minimum";
}

void AutonomyLoop::SetTracer(telemetry::Tracer* tracer) {
  std::lock_guard<std::mutex> lock(mu_);
  tracer_ = tracer;
}

bool AutonomyLoop::InSliceLocked(const std::string& tenant) const {
  return static_cast<double>(SliceHash(options_.slice_seed, tenant) % 10000) <
         options_.canary_tenant_fraction * 10000.0;
}

bool AutonomyLoop::InCanarySlice(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return InSliceLocked(tenant);
}

uint32_t AutonomyLoop::Route(const std::string& model,
                             const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != LoopState::kCanary || model != model_) return 0;
  return InSliceLocked(tenant) ? candidate_version_ : 0;
}

LoopState AutonomyLoop::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint32_t AutonomyLoop::candidate_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return candidate_version_;
}

LoopStats AutonomyLoop::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

telemetry::SpanId AutonomyLoop::Child(const std::string& kind,
                                      const std::string& name, double now) {
  if (tracer_ == nullptr) return telemetry::kNoSpan;
  return tracer_->StartSpan(kind, name, episode_span_, now);
}

LoopState AutonomyLoop::OnSample(const LoopSample& sample, double now) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.samples;
  const double error = std::fabs(sample.prediction - sample.truth);
  buffer_.emplace_back(sample.features, sample.truth);
  if (buffer_.size() > options_.retrain_buffer_capacity) buffer_.pop_front();

  switch (state_) {
    case LoopState::kSteady:
      if (detector_.Observe(error) && now >= cooldown_until_ &&
          buffer_.size() >= options_.min_retrain_samples) {
        BeginEpisode(now);
        StartRetrain(now);
      }
      break;
    case LoopState::kRetraining:
      PollRetrain(now);
      break;
    case LoopState::kShadow: {
      // Duplicate scoring: the candidate sees live features and truths
      // but its predictions never reach a user.
      shadow_live_sum_ += error;
      shadow_candidate_sum_ +=
          std::fabs(candidate_model_->Predict(sample.features) - sample.truth);
      ++shadow_n_;
      if (shadow_n_ >= options_.shadow_min_samples) {
        const double live = shadow_live_sum_ / static_cast<double>(shadow_n_);
        const double cand =
            shadow_candidate_sum_ / static_cast<double>(shadow_n_);
        if (tracer_ != nullptr) {
          tracer_->Annotate(
              stage_span_, "verdict",
              cand <= live * options_.shadow_max_error_ratio ? "pass" : "fail");
        }
        if (cand <= live * options_.shadow_max_error_ratio) {
          if (tracer_ != nullptr) tracer_->EndSpan(stage_span_, now);
          StartCanary(now);
        } else {
          AbortEpisode("shadow", "shadow-regression", now);
        }
      }
      break;
    }
    case LoopState::kCanary: {
      ADS_CHECK(evaluator_ != nullptr) << "canary without an evaluator";
      switch (evaluator_->RecordError(sample.served_version, error)) {
        case FlightEvaluator::Decision::kPending:
          break;
        case FlightEvaluator::Decision::kPromoted:
          Promote(now);
          break;
        case FlightEvaluator::Decision::kAborted:
          AbortEpisode("canary", "accuracy-regression", now);
          break;
      }
      break;
    }
    case LoopState::kProbation:
      if (detector_.Observe(error)) {
        RollbackFromProbation(now);
      } else if (now >= probation_until_) {
        EndEpisode("promoted", now);
        state_ = LoopState::kSteady;
      }
      break;
  }
  return state_;
}

void AutonomyLoop::ReportHealth(const HealthSnapshot& health, double now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != LoopState::kShadow && state_ != LoopState::kCanary) return;
  const char* reason = nullptr;
  if (health.breaker_open) {
    reason = "breaker-open";
  } else if (health.p99_latency_seconds > options_.p99_slo_seconds) {
    reason = "p99-slo";
  } else if (health.availability < options_.min_availability) {
    reason = "availability";
  }
  if (reason == nullptr) return;
  AbortEpisode(state_ == LoopState::kShadow ? "shadow" : "canary", reason,
               now);
}

void AutonomyLoop::BeginEpisode(double now) {
  ++stats_.episodes;
  ++episode_seq_;
  if (tracer_ != nullptr) {
    episode_span_ = tracer_->StartSpan(
        "episode", "episode-" + std::to_string(episode_seq_),
        telemetry::kNoSpan, now);
    tracer_->Annotate(episode_span_, "model", model_);
    telemetry::SpanId drift = Child("drift", "alarm", now);
    tracer_->Annotate(drift, "trigger", "drift-alarm");
    tracer_->EndSpan(drift, now);
  }
}

void AutonomyLoop::StartRetrain(double now) {
  state_ = LoopState::kRetraining;
  stage_span_ = Child("retrain", model_, now);
  if (tracer_ != nullptr) {
    tracer_->Annotate(stage_span_, "samples",
                      std::to_string(buffer_.size()));
  }
  // One injector draw per retraining run: a fired "autonomy.retrain" site
  // models the training job dying (trainer crash, machine death). The
  // draw happens at trigger time so virtual-time runs stay deterministic;
  // the loss only surfaces when the run would have completed.
  retrain_doomed_ =
      injector_ != nullptr && injector_->ShouldFail("autonomy.retrain");
  retrain_ready_at_ = now + options_.retrain_duration_seconds;
  ml::Dataset data;
  for (const auto& [features, truth] : buffer_) data.Add(features, truth);
  if (pool_ != nullptr) {
    training_ = pool_->Submit(
        [trainer = trainer_, data = std::move(data)]() mutable {
          return trainer(data);
        });
    pending_valid_ = false;
  } else {
    // Synchronous (virtual-time) mode: train now, surface the result at
    // retrain_ready_at_ so training occupies simulated time.
    pending_blob_ = retrain_doomed_
                        ? common::Result<std::string>(
                              common::Status::Internal("retraining run lost"))
                        : trainer_(data);
    pending_valid_ = true;
  }
}

void AutonomyLoop::PollRetrain(double now) {
  if (now < retrain_ready_at_) return;
  if (pool_ != nullptr) {
    if (!training_.valid() ||
        training_.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
      return;
    }
    common::Result<std::string> blob = training_.get();
    if (retrain_doomed_) {
      blob = common::Result<std::string>(
          common::Status::Internal("retraining run lost"));
    }
    FinishRetrain(std::move(blob), now);
    return;
  }
  ADS_CHECK(pending_valid_) << "sync retrain finished without a result";
  pending_valid_ = false;
  FinishRetrain(std::move(pending_blob_), now);
}

void AutonomyLoop::FinishRetrain(common::Result<std::string> blob,
                                 double now) {
  if (!blob.ok()) {
    ++stats_.retrain_failures;
    if (tracer_ != nullptr) {
      tracer_->Annotate(stage_span_, "error", blob.status().message());
    }
    // The drift alarm stays latched (no detector reset): once the
    // cooldown passes, a fresh episode retries the retrain.
    AbortEpisode("retrain", "retrain-failed", now);
    return;
  }
  auto model = ml::DeserializeRegressor(*blob);
  if (!model.ok()) {
    ++stats_.retrain_failures;
    if (tracer_ != nullptr) {
      tracer_->Annotate(stage_span_, "error", "bad candidate blob");
    }
    AbortEpisode("retrain", "retrain-failed", now);
    return;
  }
  candidate_version_ = registry_->Register(model_, std::move(*blob));
  candidate_model_ = std::move(*model);
  if (tracer_ != nullptr) {
    tracer_->Annotate(stage_span_, "candidate",
                      "v" + std::to_string(candidate_version_));
    tracer_->EndSpan(stage_span_, now);
  }
  shadow_live_sum_ = shadow_candidate_sum_ = 0.0;
  shadow_n_ = 0;
  state_ = LoopState::kShadow;
  stage_span_ = Child("shadow", model_, now);
  if (tracer_ != nullptr) {
    tracer_->Annotate(stage_span_, "candidate",
                      "v" + std::to_string(candidate_version_));
  }
}

void AutonomyLoop::StartCanary(double now) {
  evaluator_ =
      std::make_unique<FlightEvaluator>(registry_, model_, options_.flight);
  common::Status started = evaluator_->Start(candidate_version_);
  if (!started.ok()) {
    AbortEpisode("canary", "flight-rejected", now);
    return;
  }
  state_ = LoopState::kCanary;
  stage_span_ = Child("canary", model_, now);
  if (tracer_ != nullptr) {
    tracer_->Annotate(stage_span_, "candidate",
                      "v" + std::to_string(candidate_version_));
  }
}

void AutonomyLoop::Promote(double now) {
  ++stats_.promotes;
  if (tracer_ != nullptr) {
    tracer_->Annotate(stage_span_, "decision", "promote");
    tracer_->EndSpan(stage_span_, now);
    telemetry::SpanId promote = Child("promote", model_, now);
    tracer_->Annotate(promote, "version",
                      "v" + std::to_string(candidate_version_));
    tracer_->EndSpan(promote, now);
  }
  stage_span_ = telemetry::kNoSpan;
  evaluator_.reset();
  // Fresh baseline for the promoted model; an alarm before
  // probation_until_ reverts instead of retraining.
  detector_.Reset();
  probation_until_ = now + options_.probation_seconds;
  state_ = LoopState::kProbation;
}

void AutonomyLoop::RollbackFromProbation(double now) {
  ++stats_.rollbacks;
  const uint32_t from = registry_->DeployedVersion(model_);
  common::Status status = registry_->Rollback(model_);
  const uint32_t to = registry_->DeployedVersion(model_);
  if (tracer_ != nullptr) {
    telemetry::SpanId rollback = Child("rollback", model_, now);
    tracer_->Annotate(rollback, "reason", "probation-drift");
    tracer_->Annotate(rollback, "from", "v" + std::to_string(from));
    tracer_->Annotate(rollback, "to",
                      status.ok() ? "v" + std::to_string(to) : "none");
    tracer_->EndSpan(rollback, now);
  }
  detector_.Reset();
  candidate_version_ = 0;
  candidate_model_.reset();
  cooldown_until_ = now + options_.cooldown_seconds;
  EndEpisode("rolled-back", now);
  state_ = LoopState::kSteady;
}

void AutonomyLoop::AbortEpisode(const std::string& stage,
                                const std::string& reason, double now) {
  ++stats_.aborts;
  if (evaluator_ != nullptr) {
    evaluator_->Abort();  // ends the registry flight (no-op if decided)
    evaluator_.reset();
  }
  if (tracer_ != nullptr) {
    if (stage_span_ != telemetry::kNoSpan) {
      tracer_->Annotate(stage_span_, "decision", "abort");
      tracer_->EndSpan(stage_span_, now);
    }
    telemetry::SpanId abort_span = Child("abort", model_, now);
    tracer_->Annotate(abort_span, "stage", stage);
    tracer_->Annotate(abort_span, "reason", reason);
    tracer_->EndSpan(abort_span, now);
  }
  stage_span_ = telemetry::kNoSpan;
  candidate_version_ = 0;
  candidate_model_.reset();
  cooldown_until_ = now + options_.cooldown_seconds;
  EndEpisode("abort:" + reason, now);
  state_ = LoopState::kSteady;
}

void AutonomyLoop::EndEpisode(const std::string& outcome, double now) {
  candidate_version_ = 0;
  candidate_model_.reset();
  if (tracer_ != nullptr && episode_span_ != telemetry::kNoSpan) {
    tracer_->Annotate(episode_span_, "outcome", outcome);
    tracer_->EndSpan(episode_span_, now);
  }
  episode_span_ = telemetry::kNoSpan;
}

}  // namespace ads::autonomy
