#ifndef ADS_AUTONOMY_LOOP_H_
#define ADS_AUTONOMY_LOOP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "autonomy/flight.h"
#include "autonomy/router.h"
#include "common/fault_injection.h"
#include "common/status.h"
#include "ml/dataset.h"
#include "ml/drift.h"
#include "ml/model.h"
#include "ml/registry.h"
#include "telemetry/span.h"

namespace ads::common {
class ThreadPool;
}  // namespace ads::common

namespace ads::autonomy {

/// Where the closed loop currently is for its model. One episode walks
/// kSteady → kRetraining → kShadow → kCanary → kProbation → kSteady;
/// every stage has an abort edge back to kSteady that leaves the last
/// good model deployed.
enum class LoopState {
  /// Serving the deployed model, watching for drift.
  kSteady = 0,
  /// Drift confirmed; a candidate is training on buffered samples.
  kRetraining,
  /// Candidate registered; scoring it on live traffic without serving it
  /// (duplicate scoring, no user-visible output).
  kShadow,
  /// Candidate serving a seeded tenant slice under SLO + accuracy gates.
  kCanary,
  /// Candidate promoted; a drift alarm inside this window rolls back to
  /// the previous version instead of retraining.
  kProbation,
};

/// Short stable name ("steady", "retraining", ...) for traces and tables.
const char* LoopStateName(LoopState state);

struct AutonomyLoopOptions {
  /// Drift detection over live serving errors (the retrain trigger, and
  /// the rollback trigger during probation).
  ml::DriftDetectorOptions detector;
  /// Canary promote/abort gates (accuracy side).
  FlightOptions flight;
  /// Ring buffer of recent (features, truth) pairs retraining draws from.
  size_t retrain_buffer_capacity = 512;
  /// Buffered samples required before a retrain can start.
  size_t min_retrain_samples = 64;
  /// Modeled latency of one retraining run: the candidate becomes
  /// available this long after the drift trigger. In virtual-time runs
  /// this is what makes training take simulated time; it also applies on
  /// top of real pool execution in threaded runs.
  double retrain_duration_seconds = 0.0;
  /// Live samples shadow-scored before the candidate may canary.
  size_t shadow_min_samples = 50;
  /// Shadow gate: candidate mean error must be <= live serving mean error
  /// times this ratio, else the candidate is discarded before ever
  /// serving a user.
  double shadow_max_error_ratio = 1.05;
  /// Fraction of tenants (by seeded hash) routed to the canary arm.
  double canary_tenant_fraction = 0.25;
  /// Seed of the tenant-slice hash: same seed — same slice, across runs
  /// and thread counts.
  uint64_t slice_seed = 0x51ce;
  /// After a promote, how long a drift alarm triggers rollback-to-previous
  /// rather than a fresh retrain.
  double probation_seconds = 60.0;
  /// After an abort or rollback, how long before another episode may
  /// start (throttles retrain storms when drift persists).
  double cooldown_seconds = 30.0;
  /// Serving SLO gates evaluated against ReportHealth snapshots while a
  /// candidate is in shadow or canary; a breach aborts the episode.
  double p99_slo_seconds = std::numeric_limits<double>::infinity();
  double min_availability = 0.0;
};

/// One serving-time observation fed back into the loop: what was served,
/// by which version, and what the truth turned out to be. Plain scalars —
/// the loop works identically under the virtual-time server and the
/// threaded runtime.
struct LoopSample {
  std::string tenant;
  std::vector<double> features;
  /// The user-visible prediction (whatever tier/version answered).
  double prediction = 0.0;
  /// Registry version that served it (Response::model_version; 0 =
  /// heuristic tier).
  uint32_t served_version = 0;
  double truth = 0.0;
};

/// Periodic serving-health snapshot for the SLO gates.
struct HealthSnapshot {
  double p99_latency_seconds = 0.0;
  /// served / accepted so far (1.0 when nothing was accepted yet).
  double availability = 1.0;
  bool breaker_open = false;
};

struct LoopStats {
  uint64_t samples = 0;
  /// Episodes started (drift alarm accepted as a retrain trigger).
  uint64_t episodes = 0;
  uint64_t promotes = 0;
  /// Probation rollbacks (registry reverted to the previous version).
  uint64_t rollbacks = 0;
  /// Episodes aborted at any stage (includes retrain failures).
  uint64_t aborts = 0;
  uint64_t retrain_failures = 0;
};

/// The paper's Insight-3 loop closed end to end: drift detection on live
/// serving errors triggers retraining on buffered recent samples, the
/// candidate is shadow-scored, then canaried on a seeded tenant slice
/// (via the VersionRouter interface the serving runtimes consult at
/// admission), and promoted or rolled back on combined accuracy + SLO
/// gates — while the serving tier keeps answering throughout.
///
/// Deterministic by construction: the loop owns no clock and no threads.
/// Callers push samples (OnSample) and health snapshots (ReportHealth)
/// with explicit timestamps; under the virtual-time server the whole
/// promote/rollback history is byte-reproducible. With a null pool the
/// trainer runs synchronously at trigger time and the candidate surfaces
/// `retrain_duration_seconds` later (pure virtual-time mode); with a pool
/// the trainer runs as a pool task and the loop polls its future, so
/// retraining shares compute with serving without blocking it.
///
/// Fault injection site (when an injector is supplied):
///   "autonomy.retrain" — this retraining run is lost (trainer crash /
///   machine death); the episode aborts and the deployed model keeps
///   serving. The drift alarm stays latched, so a fresh attempt starts
///   once the cooldown passes.
///
/// Thread-safe: OnSample / ReportHealth / Route may be called from
/// concurrent serving threads.
class AutonomyLoop : public VersionRouter {
 public:
  /// Trains a candidate on the buffered samples and returns its
  /// serialized blob (ml::Regressor::Serialize format). Runs on the pool
  /// in threaded mode — must not touch loop state.
  using Trainer =
      std::function<common::Result<std::string>(const ml::Dataset&)>;

  AutonomyLoop(ml::ModelRegistry* registry, std::string model_name,
               Trainer trainer,
               AutonomyLoopOptions options = AutonomyLoopOptions(),
               common::ThreadPool* pool = nullptr,
               common::FaultInjector* injector = nullptr);

  /// Attaches a causal span tracer (borrowed; may be null). Every episode
  /// opens an "episode" root span with "drift" / "retrain" / "shadow" /
  /// "canary" children and instant "promote" / "rollback" / "abort"
  /// terminals — the machine-checkable causal story of each transition.
  void SetTracer(telemetry::Tracer* tracer);

  /// Feeds one serving observation at time `now` and advances the state
  /// machine; returns the state after the transition.
  LoopState OnSample(const LoopSample& sample, double now);

  /// Feeds one serving-health snapshot; a gate breach (p99 over SLO,
  /// availability under floor, breaker open) while a candidate is in
  /// shadow or canary aborts the episode on the spot.
  void ReportHealth(const HealthSnapshot& health, double now);

  /// VersionRouter: during a canary, tenants in the seeded slice pin the
  /// candidate version; everyone else (and every non-canary state)
  /// delegates to the deployed version.
  uint32_t Route(const std::string& model,
                 const std::string& tenant) const override;

  /// Whether `tenant` belongs to the seeded canary slice (stable for the
  /// lifetime of the loop; exposed so tests and benches can pick tenants
  /// on either side of the split).
  bool InCanarySlice(const std::string& tenant) const;

  LoopState state() const;
  /// Version currently in flight (registered candidate; 0 outside an
  /// episode's shadow/canary/probation stages).
  uint32_t candidate_version() const;
  LoopStats stats() const;

 private:
  // All helpers below require mu_ held.
  bool InSliceLocked(const std::string& tenant) const;
  telemetry::SpanId Child(const std::string& kind, const std::string& name,
                          double now);
  void BeginEpisode(double now);
  void StartRetrain(double now);
  void PollRetrain(double now);
  void FinishRetrain(common::Result<std::string> blob, double now);
  void StartCanary(double now);
  void Promote(double now);
  void RollbackFromProbation(double now);
  /// Ends the episode without a promote: instant "abort" span, cooldown,
  /// back to kSteady with the last good model still deployed.
  void AbortEpisode(const std::string& stage, const std::string& reason,
                    double now);
  void EndEpisode(const std::string& outcome, double now);

  ml::ModelRegistry* registry_;
  const std::string model_;
  Trainer trainer_;
  AutonomyLoopOptions options_;
  common::ThreadPool* pool_;
  common::FaultInjector* injector_;
  telemetry::Tracer* tracer_ = nullptr;

  mutable std::mutex mu_;
  LoopState state_ = LoopState::kSteady;
  ml::DriftDetector detector_;
  /// Ring of recent (features, truth) pairs for retraining.
  std::deque<std::pair<std::vector<double>, double>> buffer_;
  LoopStats stats_;

  // Episode state.
  uint64_t episode_seq_ = 0;
  telemetry::SpanId episode_span_ = telemetry::kNoSpan;
  telemetry::SpanId stage_span_ = telemetry::kNoSpan;
  double cooldown_until_ = 0.0;
  double probation_until_ = 0.0;

  // Retraining state.
  double retrain_ready_at_ = 0.0;
  bool retrain_doomed_ = false;
  /// Sync-mode result, held until retrain_ready_at_.
  common::Result<std::string> pending_blob_{std::string()};
  bool pending_valid_ = false;
  /// Async-mode (pool) result.
  std::future<common::Result<std::string>> training_;

  // Shadow/canary state.
  uint32_t candidate_version_ = 0;
  std::unique_ptr<ml::Regressor> candidate_model_;
  double shadow_live_sum_ = 0.0;
  double shadow_candidate_sum_ = 0.0;
  size_t shadow_n_ = 0;
  std::unique_ptr<FlightEvaluator> evaluator_;
};

}  // namespace ads::autonomy

#endif  // ADS_AUTONOMY_LOOP_H_
