#include "autonomy/monitor.h"

#include <cmath>

namespace ads::autonomy {

bool ModelMonitor::Observe(const std::string& model_name, double truth,
                           double prediction) {
  auto it = detectors_.find(model_name);
  if (it == detectors_.end()) {
    it = detectors_.emplace(model_name, ml::DriftDetector(options_)).first;
  }
  ++counts_[model_name];
  return it->second.Observe(std::abs(truth - prediction));
}

bool ModelMonitor::Alarmed(const std::string& model_name) const {
  auto it = detectors_.find(model_name);
  return it != detectors_.end() && it->second.alarmed();
}

void ModelMonitor::Acknowledge(const std::string& model_name) {
  auto it = detectors_.find(model_name);
  if (it != detectors_.end()) it->second.Reset();
}

size_t ModelMonitor::observations(const std::string& model_name) const {
  auto it = counts_.find(model_name);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace ads::autonomy
