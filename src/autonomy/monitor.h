#ifndef ADS_AUTONOMY_MONITOR_H_
#define ADS_AUTONOMY_MONITOR_H_

#include <map>
#include <string>

#include "ml/drift.h"

namespace ads::autonomy {

/// Fleet-wide model monitor (the "thorough monitoring system to spot
/// potential changes in real time" of Insight 3): one drift detector per
/// deployed model, fed with serving-time prediction errors.
class ModelMonitor {
 public:
  explicit ModelMonitor(ml::DriftDetectorOptions options =
                            ml::DriftDetectorOptions())
      : options_(options) {}

  /// Records one serving observation; returns true if the model is now in
  /// the alarmed state.
  bool Observe(const std::string& model_name, double truth,
               double prediction);

  bool Alarmed(const std::string& model_name) const;
  /// Clears the alarm and re-baselines (after a rollback or retrain).
  void Acknowledge(const std::string& model_name);

  size_t observations(const std::string& model_name) const;
  size_t models_tracked() const { return detectors_.size(); }

 private:
  ml::DriftDetectorOptions options_;
  std::map<std::string, ml::DriftDetector> detectors_;
  std::map<std::string, size_t> counts_;
};

}  // namespace ads::autonomy

#endif  // ADS_AUTONOMY_MONITOR_H_
