#include "autonomy/rai.h"

#include <map>

namespace ads::autonomy {

common::Result<FairnessReport> AuditFairness(
    const std::vector<std::pair<std::string, double>>& decisions,
    double fairness_ratio) {
  if (decisions.empty()) {
    return common::Status::InvalidArgument("no decisions to audit");
  }
  std::map<std::string, SegmentOutcome> by_segment;
  double total = 0.0;
  for (const auto& [segment, benefit] : decisions) {
    SegmentOutcome& out = by_segment[segment];
    out.segment = segment;
    ++out.customers;
    out.mean_benefit += benefit;  // sum for now
    total += benefit;
  }
  FairnessReport report;
  report.overall_mean_benefit = total / static_cast<double>(decisions.size());
  for (auto& [segment, out] : by_segment) {
    out.mean_benefit /= static_cast<double>(out.customers);
    if (out.mean_benefit <
        fairness_ratio * report.overall_mean_benefit) {
      report.flagged_segments.push_back(segment);
      report.fair = false;
    }
    report.segments.push_back(out);
  }
  return report;
}

bool CostGuardrail::Approve(double predicted_cost, double predicted_benefit) {
  bool ok = predicted_cost <= max_cost_ &&
            predicted_benefit >= min_benefit_per_cost_ * predicted_cost;
  if (ok) {
    ++approved_;
  } else {
    ++rejected_;
  }
  return ok;
}

}  // namespace ads::autonomy
