#ifndef ADS_AUTONOMY_RAI_H_
#define ADS_AUTONOMY_RAI_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ads::autonomy {

/// Aggregated outcome of autonomous decisions for one customer segment.
struct SegmentOutcome {
  std::string segment;
  size_t customers = 0;
  double mean_benefit = 0.0;
};

/// Fairness audit result (Direction 4: "we regularly check that our
/// ML-driven decisions serve all customers fairly ... customers, big or
/// small, do not get marginalized").
struct FairnessReport {
  std::vector<SegmentOutcome> segments;
  /// Segments whose mean benefit falls below fairness_ratio * overall mean.
  std::vector<std::string> flagged_segments;
  bool fair = true;
  double overall_mean_benefit = 0.0;
};

/// Audits per-customer decision benefits grouped by segment. `decisions`
/// pairs a segment label with the realized benefit of the autonomous
/// decision for one customer.
common::Result<FairnessReport> AuditFairness(
    const std::vector<std::pair<std::string, double>>& decisions,
    double fairness_ratio = 0.5);

/// Guardrail protecting customers from expensive autonomous decisions:
/// every decision must clear an absolute cost cap and a benefit-per-cost
/// floor before it is applied.
class CostGuardrail {
 public:
  CostGuardrail(double max_cost, double min_benefit_per_cost = 0.0)
      : max_cost_(max_cost), min_benefit_per_cost_(min_benefit_per_cost) {}

  /// Returns true if the decision may proceed.
  bool Approve(double predicted_cost, double predicted_benefit);

  size_t approved() const { return approved_; }
  size_t rejected() const { return rejected_; }

 private:
  double max_cost_;
  double min_benefit_per_cost_;
  size_t approved_ = 0;
  size_t rejected_ = 0;
};

}  // namespace ads::autonomy

#endif  // ADS_AUTONOMY_RAI_H_
