#ifndef ADS_AUTONOMY_ROUTER_H_
#define ADS_AUTONOMY_ROUTER_H_

#include <cstdint>
#include <string>

namespace ads::autonomy {

/// Admission-time version routing hook: the serving tier asks which model
/// version must answer a tenant's request. This is how a canary flight
/// reaches a seeded tenant slice — the autonomy loop implements the
/// interface and the serving runtimes consult it when a request is
/// admitted, so routing is decided exactly once per request and the
/// decision travels with it (see serve::Request::pinned_version).
///
/// Implementations must be thread-safe (the threaded runtime calls Route
/// from concurrent Submit callers) and deterministic in the tenant name
/// (same tenant — same arm for the whole flight, the unit of a tenant
/// slice).
class VersionRouter {
 public:
  virtual ~VersionRouter() = default;

  /// Version that must serve `tenant`'s requests for `model`;
  /// 0 delegates to the version deployed at admission time.
  virtual uint32_t Route(const std::string& model,
                         const std::string& tenant) const = 0;
};

}  // namespace ads::autonomy

#endif  // ADS_AUTONOMY_ROUTER_H_
