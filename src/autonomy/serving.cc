#include "autonomy/serving.h"

#include "common/logging.h"
#include "ml/model.h"

namespace ads::autonomy {

ResilientModelServer::ResilientModelServer(ml::ModelRegistry* registry,
                                           std::string model_name,
                                           Heuristic heuristic,
                                           ServingOptions options,
                                           common::FaultInjector* injector)
    : registry_(registry),
      model_(std::move(model_name)),
      heuristic_(std::move(heuristic)),
      options_(options),
      injector_(injector),
      breaker_(options.breaker) {
  ADS_CHECK(registry != nullptr) << "serving needs a registry";
  ADS_CHECK(heuristic_ != nullptr) << "the heuristic tier must be callable";
}

bool ResilientModelServer::TryServe(uint32_t version, const std::string& site,
                                    const std::vector<double>& features,
                                    double* out) {
  if (version == 0) return false;
  if (injector_ != nullptr && injector_->ShouldFail(site)) return false;
  auto it = cache_.find(version);
  if (it == cache_.end()) {
    auto stored = registry_->GetVersion(model_, version);
    if (!stored.ok()) return false;
    auto model = ml::DeserializeRegressor(stored->blob);
    if (!model.ok()) return false;
    it = cache_.emplace(version, std::move(*model)).first;
  }
  *out = it->second->Predict(features);
  return true;
}

ResilientModelServer::ServeResult ResilientModelServer::Predict(
    const std::vector<double>& features, double now) {
  ServeResult result;
  // Tier 1: the deployed model, guarded by the breaker.
  if (breaker_.AllowRequest(now)) {
    uint32_t deployed = registry_->DeployedVersion(model_);
    if (TryServe(deployed, "serving.deployed", features, &result.value)) {
      breaker_.RecordSuccess(now);
      result.tier = Tier::kDeployed;
      result.version = deployed;
      ++served_[static_cast<size_t>(Tier::kDeployed)];
      return result;
    }
    breaker_.RecordFailure(now);
    if (breaker_.state() == common::CircuitBreaker::State::kOpen &&
        options_.auto_rollback && breaker_.trips() > rollbacks_) {
      // The deployed version is consistently failing: withdraw it. The
      // breaker stays open for its cooldown, so the rolled-back model is
      // first exercised by the half-open probe.
      if (registry_->Rollback(model_).ok()) ++rollbacks_;
    }
  }
  // Tier 2: the previously deployed version.
  uint32_t previous = registry_->PreviousVersion(model_);
  if (TryServe(previous, "serving.previous", features, &result.value)) {
    result.tier = Tier::kPrevious;
    result.version = previous;
    ++served_[static_cast<size_t>(Tier::kPrevious)];
    return result;
  }
  // Tier 3: the heuristic always answers.
  result.value = heuristic_(features);
  result.tier = Tier::kHeuristic;
  result.version = 0;
  ++served_[static_cast<size_t>(Tier::kHeuristic)];
  return result;
}

}  // namespace ads::autonomy
