#include "autonomy/serving.h"

#include "common/logging.h"
#include "common/thread_pool.h"
#include "ml/model.h"

namespace ads::autonomy {

ResilientModelServer::ResilientModelServer(ml::ModelRegistry* registry,
                                           std::string model_name,
                                           Heuristic heuristic,
                                           ServingOptions options,
                                           common::FaultInjector* injector)
    : registry_(registry),
      model_(std::move(model_name)),
      heuristic_(std::move(heuristic)),
      options_(options),
      injector_(injector),
      breaker_(options.breaker) {
  ADS_CHECK(registry != nullptr) << "serving needs a registry";
  ADS_CHECK(heuristic_ != nullptr) << "the heuristic tier must be callable";
}

ml::Regressor* ResilientModelServer::Materialize(uint32_t version) {
  if (version == 0) return nullptr;
  auto it = cache_.find(version);
  if (it == cache_.end()) {
    auto stored = registry_->GetVersion(model_, version);
    if (!stored.ok()) return nullptr;
    auto model = ml::DeserializeRegressor(stored->blob);
    if (!model.ok()) return nullptr;
    it = cache_.emplace(version, std::move(*model)).first;
  }
  return it->second.get();
}

bool ResilientModelServer::TryServe(uint32_t version, const std::string& site,
                                    const std::vector<double>& features,
                                    double* out) {
  if (version == 0) return false;
  if (injector_ != nullptr && injector_->ShouldFail(site)) return false;
  ml::Regressor* model = Materialize(version);
  if (model == nullptr) return false;
  *out = model->Predict(features);
  return true;
}

uint32_t ResilientModelServer::CurrentDeployedVersion() const {
  return registry_->DeployedVersion(model_);
}

ResilientModelServer::ServeResult ResilientModelServer::Predict(
    const std::vector<double>& features, double now) {
  return PredictVersion(registry_->DeployedVersion(model_), features, now);
}

ResilientModelServer::ServeResult ResilientModelServer::PredictVersion(
    uint32_t version, const std::vector<double>& features, double now) {
  if (version == 0) version = registry_->DeployedVersion(model_);
  ServeResult result;
  // Tier 1: the pinned (normally: deployed) model, guarded by the breaker.
  if (breaker_.AllowRequest(now)) {
    if (TryServe(version, "serving.deployed", features, &result.value)) {
      breaker_.RecordSuccess(now);
      result.tier = Tier::kDeployed;
      result.version = version;
      ++served_[static_cast<size_t>(Tier::kDeployed)];
      return result;
    }
    breaker_.RecordFailure(now);
    if (breaker_.state() == common::CircuitBreaker::State::kOpen &&
        options_.auto_rollback && breaker_.trips() > rollbacks_ &&
        version == registry_->DeployedVersion(model_)) {
      // The deployed version is consistently failing: withdraw it. The
      // breaker stays open for its cooldown, so the rolled-back model is
      // first exercised by the half-open probe. A stale pinned version
      // (already swapped out) failing must NOT withdraw its successor,
      // hence the deployed-version check.
      if (registry_->Rollback(model_).ok()) ++rollbacks_;
    }
  }
  // Tier 2: the previously deployed version.
  uint32_t previous = registry_->PreviousVersion(model_);
  if (TryServe(previous, "serving.previous", features, &result.value)) {
    result.tier = Tier::kPrevious;
    result.version = previous;
    ++served_[static_cast<size_t>(Tier::kPrevious)];
    return result;
  }
  // Tier 3: the heuristic always answers.
  result.value = heuristic_(features);
  result.tier = Tier::kHeuristic;
  result.version = 0;
  ++served_[static_cast<size_t>(Tier::kHeuristic)];
  return result;
}

void ResilientModelServer::PredictBatch(const common::Matrix& features,
                                        double now,
                                        std::vector<ServeResult>* out) {
  PredictBatchVersion(0, features, now, out);
}

void ResilientModelServer::PredictBatchVersion(uint32_t version,
                                               const common::Matrix& features,
                                               double now,
                                               std::vector<ServeResult>* out) {
  const size_t n = features.rows();
  out->assign(n, ServeResult());
  if (n == 0) return;
  // The version is resolved exactly once, so a concurrent promote or
  // rollback landing mid-batch cannot split the batch across versions.
  if (version == 0) version = registry_->DeployedVersion(model_);
  // Bulk fast path. Safe exactly when per-row serving could not diverge
  // from one batched call: no injected fault can fire (a disabled injector
  // never fires, so skipping its per-row draws changes nothing) and the
  // breaker is closed (AllowRequest is then a pass-through, and N
  // consecutive RecordSuccess calls collapse to one — both only reset the
  // failure streak). Everything else — open/half-open breakers, pending
  // faults, a pinned model that fails to materialize — takes the exact
  // per-row path so probes, rollbacks, and tier fallbacks fire on the same
  // row they would have with sequential PredictVersion calls.
  const bool quiet = injector_ == nullptr || !injector_->Enabled();
  if (quiet &&
      breaker_.state() == common::CircuitBreaker::State::kClosed) {
    ml::Regressor* model = Materialize(version);
    if (model != nullptr) {
      std::vector<double> values;
      if (n >= options_.parallel_batch_rows) {
        common::ThreadPool& pool = options_.pool != nullptr
                                       ? *options_.pool
                                       : common::ThreadPool::Global();
        ml::PredictBatchParallel(*model, features, pool, &values);
      } else {
        model->PredictBatch(features, &values);
      }
      breaker_.RecordSuccess(now);
      served_[static_cast<size_t>(Tier::kDeployed)] += n;
      for (size_t i = 0; i < n; ++i) {
        (*out)[i].value = values[i];
        (*out)[i].tier = Tier::kDeployed;
        (*out)[i].version = version;
      }
      return;
    }
  }
  std::vector<double> row;
  for (size_t i = 0; i < n; ++i) {
    const double* x = features.RowPtr(i);
    row.assign(x, x + features.cols());
    (*out)[i] = PredictVersion(version, row, now);
  }
}

}  // namespace ads::autonomy
