#ifndef ADS_AUTONOMY_SERVING_H_
#define ADS_AUTONOMY_SERVING_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/matrix.h"
#include "common/retry.h"
#include "ml/registry.h"

namespace ads::common {
class ThreadPool;
}  // namespace ads::common

namespace ads::autonomy {

/// Tuning for the resilient serving path.
struct ServingOptions {
  /// Breaker guarding the deployed-model tier: after this many consecutive
  /// serving failures the tier is taken out of rotation for the cooldown.
  common::CircuitBreakerOptions breaker;
  /// When the deployed tier's breaker opens, automatically roll the
  /// registry back to the previously deployed version (the paper's
  /// "rollback mechanism that reacts fast").
  bool auto_rollback = true;
  /// PredictBatch calls with at least this many rows fan the batched
  /// kernel out over `pool` in chunks; smaller batches run one serial
  /// kernel call. Chunking never changes results (see PredictBatch).
  size_t parallel_batch_rows = 512;
  /// Pool for large-batch fan-out; null = ThreadPool::Global(). Callers
  /// already running on pool workers (the threaded serving runtime)
  /// degrade gracefully: nested ParallelFor executes inline.
  common::ThreadPool* pool = nullptr;
};

/// Model-serving fallback chain: deployed model -> previously deployed
/// model -> heuristic. Autonomous services must keep answering even when
/// the freshest model is broken (bad deploy, serialization bug, injected
/// fault); an ML-backed decision degrades to a rule of thumb, never to an
/// outage.
///
/// A circuit breaker guards the deployed tier: consecutive failures open
/// it, which (optionally) triggers an automatic registry rollback; after
/// the cooldown a single probe request tests the (now rolled back)
/// deployed model and closes the breaker on success. The previous-version
/// tier and the heuristic tier need no breaker — the heuristic cannot
/// fail.
///
/// Fault injection sites (when an injector is supplied):
///   "serving.deployed" — the deployed-model tier fails this request.
///   "serving.previous" — the previous-version tier fails this request.
class ResilientModelServer {
 public:
  enum class Tier { kDeployed = 0, kPrevious = 1, kHeuristic = 2 };

  struct ServeResult {
    double value = 0.0;
    Tier tier = Tier::kHeuristic;
    /// Registry version that served (0 for the heuristic tier).
    uint32_t version = 0;
  };

  using Heuristic = std::function<double(const std::vector<double>&)>;

  /// `heuristic` must be callable and total: it is the tier of last
  /// resort. `injector` may be null (no injected faults).
  ResilientModelServer(ml::ModelRegistry* registry, std::string model_name,
                       Heuristic heuristic,
                       ServingOptions options = ServingOptions(),
                       common::FaultInjector* injector = nullptr);

  /// Serves one request at time `now` (seconds; drives the breaker
  /// cooldown). Never fails: worst case the heuristic answers.
  ServeResult Predict(const std::vector<double>& features, double now);

  /// Serves one request against a specific registry `version` instead of
  /// whatever is deployed at call time — the primary tier of the fallback
  /// chain is pinned, the previous/heuristic tiers behave as in Predict.
  /// This is the hot-swap and canary primitive: a request admitted under
  /// version v keeps serving v even if a promote/rollback swaps the
  /// deployed pointer mid-flight. `version` 0 resolves to the currently
  /// deployed version (== Predict).
  ServeResult PredictVersion(uint32_t version,
                             const std::vector<double>& features, double now);

  /// Serves a whole micro-batch at time `now`; `out` is resized to one
  /// result per row. Produces bit-identical results to calling Predict on
  /// each row in order. When nothing can perturb individual rows — no
  /// injected faults pending (injector null or disabled) and the breaker
  /// closed — the deployed model serves the whole batch through one
  /// batched-kernel call (fanned out over the pool above
  /// `parallel_batch_rows` rows); any other state falls back to the exact
  /// per-row path so breaker bookkeeping, rollback, and tier selection
  /// behave as if the rows had arrived one at a time.
  void PredictBatch(const common::Matrix& features, double now,
                    std::vector<ServeResult>* out);

  /// Batched PredictVersion: the whole micro-batch is served against one
  /// pinned `version` (0 = the version deployed at entry, resolved once),
  /// bit-identical to calling PredictVersion per row in order. No row of a
  /// batch can observe a version swap that lands mid-batch — the
  /// no-mixed-version-batch guarantee the serving runtimes rely on.
  void PredictBatchVersion(uint32_t version, const common::Matrix& features,
                           double now, std::vector<ServeResult>* out);

  /// Version currently deployed in the registry for this model — what the
  /// serving runtimes stamp on requests at admission (pinning). Thread-safe
  /// (the registry serializes internally).
  uint32_t CurrentDeployedVersion() const;

  uint64_t served_by_tier(Tier t) const {
    return served_[static_cast<size_t>(t)];
  }
  /// Automatic rollbacks triggered by the breaker opening.
  int rollbacks() const { return rollbacks_; }
  const common::CircuitBreaker& breaker() const { return breaker_; }

 private:
  /// Tries to serve from a specific registry version; false on any
  /// failure (injected fault, unknown version, deserialization error).
  bool TryServe(uint32_t version, const std::string& site,
                const std::vector<double>& features, double* out);

  /// Fetches + deserializes `version` into the cache; null on any failure
  /// (version 0, unknown version, deserialization error).
  ml::Regressor* Materialize(uint32_t version);

  ml::ModelRegistry* registry_;
  std::string model_;
  Heuristic heuristic_;
  ServingOptions options_;
  common::FaultInjector* injector_;
  common::CircuitBreaker breaker_;
  /// Materialized models keyed by registry version.
  std::map<uint32_t, std::unique_ptr<ml::Regressor>> cache_;
  uint64_t served_[3] = {0, 0, 0};
  int rollbacks_ = 0;
};

}  // namespace ads::autonomy

#endif  // ADS_AUTONOMY_SERVING_H_
