#ifndef ADS_COMMON_ALIGNED_H_
#define ADS_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>
#include <utility>

namespace ads::common {

/// Minimal growable array whose storage is always 64-byte aligned — one
/// cache line, and enough for any SSE/AVX2 load the inference kernels
/// issue. std::vector gives alignof(T) only, so a 24-byte flat-tree node
/// arena or a double scratch tile can start mid-line and every 32-byte
/// lane load risks splitting across two lines. Not a std::vector
/// replacement: trivially-copyable T only (elements are moved with plain
/// copies and never destroyed individually), which the kernels' PODs are.
template <typename T>
class AlignedBuffer {
 public:
  static constexpr size_t kAlignment = 64;

  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t n) { resize(n); }
  ~AlignedBuffer() { Release(); }

  AlignedBuffer(const AlignedBuffer& other) { CopyFrom(other); }
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      Release();
      CopyFrom(other);
    }
    return *this;
  }
  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(other.data_), size_(other.size_), capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.size_ = other.capacity_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = nullptr;
      other.size_ = other.capacity_ = 0;
    }
    return *this;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  void reserve(size_t n) {
    if (n <= capacity_) return;
    T* grown = Allocate(n);
    for (size_t i = 0; i < size_; ++i) grown[i] = data_[i];
    ::operator delete[](data_, std::align_val_t(kAlignment));
    data_ = grown;
    capacity_ = n;
  }

  /// Grows or shrinks to n elements; new elements are value-initialized.
  void resize(size_t n) {
    if (n > capacity_) reserve(n < 2 * capacity_ ? 2 * capacity_ : n);
    for (size_t i = size_; i < n; ++i) data_[i] = T();
    size_ = n;
  }

  /// Ensures capacity for at least n elements without touching contents —
  /// the steady-state scratch pattern: first call allocates, later calls
  /// with the same bound are allocation-free.
  void EnsureCapacity(size_t n) {
    reserve(n);
    if (size_ < n) size_ = n;
  }

  void push_back(const T& value) {
    if (size_ == capacity_) reserve(capacity_ == 0 ? 16 : 2 * capacity_);
    data_[size_++] = value;
  }

  void clear() { size_ = 0; }

 private:
  T* Allocate(size_t n) {
    return static_cast<T*>(
        ::operator new[](n * sizeof(T), std::align_val_t(kAlignment)));
  }
  void CopyFrom(const AlignedBuffer& other) {
    data_ = other.size_ == 0 ? nullptr : Allocate(other.size_);
    size_ = capacity_ = other.size_;
    for (size_t i = 0; i < size_; ++i) data_[i] = other.data_[i];
  }
  void Release() {
    ::operator delete[](data_, std::align_val_t(kAlignment));
    data_ = nullptr;
    size_ = capacity_ = 0;
  }

  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace ads::common

#endif  // ADS_COMMON_ALIGNED_H_
