#include "common/event_queue.h"

#include "common/logging.h"

namespace ads::common {

void EventQueue::ScheduleAt(SimTime when, Callback cb) {
  ADS_CHECK(when >= now_) << "event scheduled in the past: " << when
                          << " < " << now_;
  heap_.push(Event{when, next_seq_++, std::move(cb)});
}

void EventQueue::ScheduleAfter(SimTime delay, Callback cb) {
  ADS_CHECK(delay >= 0.0) << "negative delay";
  ScheduleAt(now_ + delay, std::move(cb));
}

bool EventQueue::Step() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-free
  // alternative: copy. Events are small (one std::function), copy is fine.
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.when;
  ev.cb(now_);
  return true;
}

void EventQueue::RunUntil(SimTime horizon) {
  while (!heap_.empty() && heap_.top().when <= horizon) {
    Step();
  }
  if (now_ < horizon) now_ = horizon;
}

void EventQueue::RunAll() {
  while (Step()) {
  }
}

}  // namespace ads::common
