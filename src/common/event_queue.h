#ifndef ADS_COMMON_EVENT_QUEUE_H_
#define ADS_COMMON_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ads::common {

/// Simulated time, in seconds since the start of the simulation.
using SimTime = double;

/// Discrete-event simulation kernel shared by the infrastructure and engine
/// simulators. Events are (time, sequence, callback) tuples; ties on time
/// break by insertion order so simulations are deterministic.
class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  /// Schedules `cb` at absolute time `when`. Requires when >= now().
  void ScheduleAt(SimTime when, Callback cb);
  /// Schedules `cb` after `delay` seconds from now.
  void ScheduleAfter(SimTime delay, Callback cb);

  /// Runs events until the queue drains or now() would exceed `horizon`.
  /// Events scheduled exactly at the horizon still run.
  void RunUntil(SimTime horizon);
  /// Runs until the queue is empty.
  void RunAll();
  /// Runs a single event; returns false if the queue is empty.
  bool Step();

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

/// Converts hours to simulation seconds.
constexpr SimTime Hours(double h) { return h * 3600.0; }
/// Converts minutes to simulation seconds.
constexpr SimTime Minutes(double m) { return m * 60.0; }
/// Converts days to simulation seconds.
constexpr SimTime Days(double d) { return d * 86400.0; }

}  // namespace ads::common

#endif  // ADS_COMMON_EVENT_QUEUE_H_
