#include "common/fault_injection.h"

#include <algorithm>

namespace ads::common {

bool FaultInjector::SpecCanFire(const FaultSpec& spec) {
  return spec.probability > 0.0 || spec.fail_first_n > 0 ||
         !spec.fire_on_calls.empty();
}

uint64_t FaultInjector::SiteStreamSeed(uint64_t seed,
                                       const std::string& site) {
  // FNV-1a over the site name, mixed with the injector seed: stable across
  // runs and platforms, and distinct per site so streams are independent.
  uint64_t h = 1469598103934665603ULL;
  for (char c : site) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h ^ (seed * 0x9e3779b97f4a7c15ULL);
}

void FaultInjector::Configure(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[site];
  s.spec = std::move(spec);
  s.rng = Rng(SiteStreamSeed(seed_, site));
  s.calls = 0;
  s.injected = 0;
}

void FaultInjector::Clear(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.erase(site);
}

bool FaultInjector::ShouldFail(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  Site& s = it->second;
  ++s.calls;
  bool fire = false;
  if (s.calls <= s.spec.fail_first_n) fire = true;
  if (!fire && !s.spec.fire_on_calls.empty() &&
      std::find(s.spec.fire_on_calls.begin(), s.spec.fire_on_calls.end(),
                s.calls) != s.spec.fire_on_calls.end()) {
    fire = true;
  }
  // The probability stream advances exactly once per call whenever a rate
  // is set, even if a schedule already fired: the draw sequence depends
  // only on the call count, never on which mechanism selected a call.
  if (s.spec.probability > 0.0) {
    bool drawn = s.rng.Bernoulli(s.spec.probability);
    fire = fire || drawn;
  }
  if (fire) ++s.injected;
  return fire;
}

Status FaultInjector::MaybeFail(const std::string& site) {
  if (ShouldFail(site)) {
    return Status::Internal("injected fault at " + site);
  }
  return Status::Ok();
}

uint64_t FaultInjector::Calls(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.calls;
}

uint64_t FaultInjector::Injected(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.injected;
}

uint64_t FaultInjector::TotalInjected() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, s] : sites_) total += s.injected;
  return total;
}

bool FaultInjector::Enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, s] : sites_) {
    if (SpecCanFire(s.spec)) return true;
  }
  return false;
}

}  // namespace ads::common
