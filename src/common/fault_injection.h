#ifndef ADS_COMMON_FAULT_INJECTION_H_
#define ADS_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace ads::common {

/// What a configured injection site does on each ShouldFail() call.
/// Mechanisms compose: a call fires if any of them selects it.
struct FaultSpec {
  /// Chance that any given call fires.
  double probability = 0.0;
  /// The first N calls always fire (crash-on-startup style faults).
  uint64_t fail_first_n = 0;
  /// Explicit 1-based call indices that always fire (scripted schedules).
  std::vector<uint64_t> fire_on_calls = {};
};

/// Seeded, deterministic fault injector: the chaos-testing substrate for
/// the resilience layer. Code under test declares named injection sites
/// ("scheduler/place", "model_serving/kea") and asks ShouldFail(site) at
/// the point where a real system could fail.
///
/// Determinism guarantees:
///  - Each site draws from its own Rng stream derived from (seed, site
///    name), so adding calls at one site never perturbs another.
///  - An unconfigured site (or one with an all-zero spec) never draws and
///    never fires: with injection disabled the instrumented code is
///    bit-identical to uninstrumented code.
///  - Two injectors with the same seed and the same per-site call
///    sequences fire on exactly the same calls.
///
/// Thread-safe: sites may be hit concurrently from thread-pool workers.
/// Concurrent callers race only for call *indices* within a site, so
/// cross-thread determinism holds for the probability mechanism per call
/// count, and tests that need exact schedules drive a site from one thread.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  /// Installs (or replaces) the spec for a site and resets its counters
  /// and stream.
  void Configure(const std::string& site, FaultSpec spec);
  /// Removes a site: subsequent ShouldFail(site) calls never fire.
  void Clear(const std::string& site);

  /// True if this call at the site should fail. Counts the call.
  bool ShouldFail(const std::string& site);

  /// Status form: Ok, or Internal("injected fault at <site>") when firing.
  Status MaybeFail(const std::string& site);

  /// Calls observed at a site (0 if never hit or unconfigured).
  uint64_t Calls(const std::string& site) const;
  /// Faults fired at a site.
  uint64_t Injected(const std::string& site) const;
  /// Faults fired across all sites.
  uint64_t TotalInjected() const;

  /// True if any site is configured with a spec that can fire.
  bool Enabled() const;

 private:
  struct Site {
    FaultSpec spec;
    Rng rng{0};
    uint64_t calls = 0;
    uint64_t injected = 0;
  };

  static bool SpecCanFire(const FaultSpec& spec);
  static uint64_t SiteStreamSeed(uint64_t seed, const std::string& site);

  mutable std::mutex mu_;
  uint64_t seed_;
  std::map<std::string, Site> sites_;
};

}  // namespace ads::common

#endif  // ADS_COMMON_FAULT_INJECTION_H_
