#ifndef ADS_COMMON_LOGGING_H_
#define ADS_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace ads::common {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the current global minimum severity; messages below it are dropped.
LogLevel GetLogLevel();

/// Sets the global minimum severity. Thread-compatible (set once at startup).
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process after emitting.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace ads::common

#define ADS_LOG(level)                                             \
  ::ads::common::internal_logging::LogMessage(                     \
      ::ads::common::LogLevel::k##level, __FILE__, __LINE__)       \
      .stream()

/// Checks an invariant; on failure logs the condition and aborts. Used for
/// programmer errors (not data errors, which return Status).
#define ADS_CHECK(cond)                                                     \
  if (cond) {                                                               \
  } else                                                                    \
    ::ads::common::internal_logging::FatalLogMessage(__FILE__, __LINE__)    \
            .stream()                                                       \
        << "Check failed: " #cond " "

#define ADS_CHECK_OK(expr)                                                  \
  if (::ads::common::Status ads_check_status_ = (expr);                     \
      ads_check_status_.ok()) {                                             \
  } else                                                                    \
    ::ads::common::internal_logging::FatalLogMessage(__FILE__, __LINE__)    \
            .stream()                                                       \
        << "Status not OK: " << ads_check_status_.ToString() << " "

#endif  // ADS_COMMON_LOGGING_H_
