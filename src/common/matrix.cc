#include "common/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ads::common {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Result<Matrix> Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix out(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != out.cols()) {
      return Status::InvalidArgument("FromRows: ragged row arity");
    }
    std::copy(rows[r].begin(), rows[r].end(), out.RowPtr(r));
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  ADS_CHECK(cols_ == other.rows_) << "matmul shape mismatch";
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      double v = At(r, k);
      if (v == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out.At(r, c) += v * other.At(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& v) const {
  ADS_CHECK(cols_ == v.size()) << "matvec shape mismatch";
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += At(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  ADS_CHECK(rows_ == other.rows_ && cols_ == other.cols_)
      << "matrix add shape mismatch";
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + other.data_[i];
  return out;
}

Matrix Matrix::Scale(double s) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

Result<std::vector<double>> Matrix::CholeskySolve(
    const std::vector<double>& b) const {
  if (rows_ != cols_) {
    return Status::InvalidArgument("CholeskySolve on non-square matrix");
  }
  if (b.size() != rows_) {
    return Status::InvalidArgument("CholeskySolve rhs size mismatch");
  }
  size_t n = rows_;
  // Lower-triangular factor L with this = L L^T.
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = At(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l.At(i, k) * l.At(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          return Status::FailedPrecondition("matrix not positive definite");
        }
        l.At(i, j) = std::sqrt(sum);
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }
  // Forward solve L z = b.
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l.At(i, k) * z[k];
    z[i] = sum / l.At(i, i);
  }
  // Back solve L^T x = z.
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double sum = z[i];
    for (size_t k = i + 1; k < n; ++k) sum -= l.At(k, i) * x[k];
    x[i] = sum / l.At(i, i);
  }
  return x;
}

Result<std::vector<double>> Matrix::GaussianSolve(
    const std::vector<double>& b) const {
  if (rows_ != cols_) {
    return Status::InvalidArgument("GaussianSolve on non-square matrix");
  }
  if (b.size() != rows_) {
    return Status::InvalidArgument("GaussianSolve rhs size mismatch");
  }
  size_t n = rows_;
  Matrix a = *this;
  std::vector<double> rhs = b;
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.At(r, col)) > std::abs(a.At(pivot, col))) pivot = r;
    }
    if (std::abs(a.At(pivot, col)) < 1e-12) {
      return Status::FailedPrecondition("matrix is singular");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a.At(pivot, c), a.At(col, c));
      std::swap(rhs[pivot], rhs[col]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      double f = a.At(r, col) / a.At(col, col);
      if (f == 0.0) continue;
      for (size_t c = col; c < n; ++c) a.At(r, c) -= f * a.At(col, c);
      rhs[r] -= f * rhs[col];
    }
  }
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double sum = rhs[i];
    for (size_t c = i + 1; c < n; ++c) sum -= a.At(i, c) * x[c];
    x[i] = sum / a.At(i, i);
  }
  return x;
}

Result<std::vector<double>> SolveLeastSquares(const Matrix& x,
                                              const std::vector<double>& y,
                                              double ridge) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("least squares: X rows != y length");
  }
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("least squares: empty design matrix");
  }
  Matrix xt = x.Transpose();
  Matrix gram = xt.Multiply(x);
  for (size_t i = 0; i < gram.rows(); ++i) {
    gram.At(i, i) += ridge;
  }
  std::vector<double> xty = xt.MultiplyVector(y);
  Result<std::vector<double>> beta = gram.CholeskySolve(xty);
  if (beta.ok()) return beta;
  // Degenerate Gram matrix (collinear features, no ridge): fall back to a
  // tiny ridge, which is standard practice for telemetry features.
  for (size_t i = 0; i < gram.rows(); ++i) gram.At(i, i) += 1e-8;
  return gram.CholeskySolve(xty);
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  ADS_CHECK(a.size() == b.size()) << "dot length mismatch";
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace ads::common
