#ifndef ADS_COMMON_MATRIX_H_
#define ADS_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace ads::common {

/// Dense row-major matrix of doubles, sized for ML-on-telemetry workloads
/// (up to a few thousand columns). Not a BLAS replacement.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Contiguous view of one row (rows are row-major, so row r occupies
  /// [RowPtr(r), RowPtr(r) + cols())). The batched-inference kernels walk
  /// rows through these pointers instead of copying per-row vectors.
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }

  /// Copies one row into a fresh vector (scalar Predict interop).
  std::vector<double> Row(size_t r) const {
    return std::vector<double>(RowPtr(r), RowPtr(r) + cols_);
  }

  /// Builds a matrix from equal-arity rows. Fails with InvalidArgument on
  /// ragged input; an empty row set yields a 0 x 0 matrix.
  static Result<Matrix> FromRows(const std::vector<std::vector<double>>& rows);

  Matrix Transpose() const;
  Matrix Multiply(const Matrix& other) const;
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;
  Matrix Add(const Matrix& other) const;
  Matrix Scale(double s) const;

  /// Solves (this) * x = b for symmetric positive-definite `this` via
  /// Cholesky. Fails with FailedPrecondition if not SPD.
  Result<std::vector<double>> CholeskySolve(const std::vector<double>& b) const;

  /// Solves a general square system via Gaussian elimination with partial
  /// pivoting. Fails if singular.
  Result<std::vector<double>> GaussianSolve(const std::vector<double>& b) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Least squares: finds beta minimizing ||X beta - y||^2 + ridge*||beta||^2
/// by solving the normal equations. X is n x d (n >= 1), y has length n.
Result<std::vector<double>> SolveLeastSquares(const Matrix& x,
                                              const std::vector<double>& y,
                                              double ridge = 0.0);

double Dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace ads::common

#endif  // ADS_COMMON_MATRIX_H_
