#include "common/retry.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ads::common {

RetryPolicy::RetryPolicy(RetryOptions options, uint64_t seed)
    : options_(options), rng_(seed) {
  ADS_CHECK(options_.max_attempts >= 1) << "retry needs at least one attempt";
  ADS_CHECK(options_.initial_backoff_seconds >= 0.0) << "negative backoff";
  ADS_CHECK(options_.backoff_multiplier >= 1.0)
      << "backoff multiplier must be >= 1";
  ADS_CHECK(options_.jitter >= 0.0 && options_.jitter < 1.0)
      << "jitter fraction must be in [0, 1)";
}

bool RetryPolicy::IsRetriable(StatusCode code) {
  return code == StatusCode::kInternal ||
         code == StatusCode::kResourceExhausted;
}

double RetryPolicy::BackoffFor(int retry) {
  ADS_CHECK(retry >= 1) << "retries are 1-based";
  double delay = options_.initial_backoff_seconds *
                 std::pow(options_.backoff_multiplier, retry - 1);
  delay = std::min(delay, options_.max_backoff_seconds);
  if (options_.jitter > 0.0) {
    delay *= rng_.Uniform(1.0 - options_.jitter, 1.0 + options_.jitter);
  }
  return delay;
}

const char* RetryGiveUpReasonName(RetryGiveUpReason reason) {
  switch (reason) {
    case RetryGiveUpReason::kNone:
      return "none";
    case RetryGiveUpReason::kNonRetriable:
      return "non_retriable";
    case RetryGiveUpReason::kAttemptsExhausted:
      return "attempts_exhausted";
    case RetryGiveUpReason::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

RetryResult RetryPolicy::Run(const std::function<Status()>& op) {
  RetryResult result;
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    result.attempts = attempt;
    result.status = op();
    if (result.status.ok()) {
      result.give_up_reason = RetryGiveUpReason::kNone;
      return result;
    }
    if (!IsRetriable(result.status.code())) {
      result.give_up_reason = RetryGiveUpReason::kNonRetriable;
      return result;
    }
    if (attempt == options_.max_attempts) {
      result.give_up_reason = RetryGiveUpReason::kAttemptsExhausted;
      break;
    }
    // Snapshot the jitter stream: if the deadline aborts this wait, the
    // draw is rolled back so a backoff that never happened cannot shift
    // every later delay of a shared policy.
    const Rng before_jitter = rng_;
    double delay = BackoffFor(attempt);
    if (result.total_backoff_seconds + delay > options_.deadline_seconds) {
      rng_ = before_jitter;
      result.give_up_reason = RetryGiveUpReason::kDeadlineExceeded;
      break;  // the next wait would blow the budget; surface the last error
    }
    result.total_backoff_seconds += delay;
  }
  return result;
}

bool CircuitBreaker::AllowRequest(double now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - opened_at_ >= options_.cooldown_seconds) {
        state_ = State::kHalfOpen;
        probe_in_flight_ = true;
        return true;
      }
      return false;
    case State::kHalfOpen:
      // One probe at a time; further requests wait for its verdict.
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::RecordSuccess(double) {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  state_ = State::kClosed;
}

void CircuitBreaker::RecordFailure(double now) {
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  probe_in_flight_ = false;
  if (state_ == State::kHalfOpen ||
      consecutive_failures_ >= options_.failure_threshold) {
    if (state_ != State::kOpen) ++trips_;
    state_ = State::kOpen;
    opened_at_ = now;
    consecutive_failures_ = 0;
  }
}

}  // namespace ads::common
