#ifndef ADS_COMMON_RETRY_H_
#define ADS_COMMON_RETRY_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>

#include "common/rng.h"
#include "common/status.h"

namespace ads::common {

/// Exponential-backoff retry parameters. Delays are simulated seconds (the
/// library's simulators advance virtual time); nothing here sleeps.
struct RetryOptions {
  /// Attempts including the first (>= 1).
  int max_attempts = 4;
  /// Delay before the first retry.
  double initial_backoff_seconds = 1.0;
  /// Multiplier applied per retry.
  double backoff_multiplier = 2.0;
  /// Upper bound on any single delay (pre-jitter).
  double max_backoff_seconds = 60.0;
  /// Symmetric jitter half-width as a fraction of the delay (0 = none).
  /// Jitter is drawn from the policy's seeded stream, so it is fully
  /// deterministic and two policies with the same seed agree.
  double jitter = 0.1;
  /// Give up once cumulative backoff would exceed this budget.
  double deadline_seconds = std::numeric_limits<double>::infinity();
};

/// Why RetryPolicy::Run stopped retrying. Callers that alert or reroute on
/// exhausted budgets need the distinction: a blown deadline means the
/// operation might have succeeded with more time, while exhausted attempts
/// mean it kept failing for the whole budget.
enum class RetryGiveUpReason {
  /// The operation succeeded; nothing was given up.
  kNone = 0,
  /// The last status was not worth retrying (caller/state error).
  kNonRetriable,
  /// All max_attempts attempts failed with retriable errors.
  kAttemptsExhausted,
  /// The next backoff would have pushed total delay past deadline_seconds.
  kDeadlineExceeded,
};

/// Short stable name ("none", "non_retriable", ...) for logs and tables.
const char* RetryGiveUpReasonName(RetryGiveUpReason reason);

/// Outcome of RetryPolicy::Run.
struct RetryResult {
  Status status;
  /// Attempts actually made (>= 1 unless max_attempts < 1).
  int attempts = 0;
  /// Total simulated backoff delay accumulated between attempts.
  double total_backoff_seconds = 0.0;
  /// Why the loop stopped (kNone on success).
  RetryGiveUpReason give_up_reason = RetryGiveUpReason::kNone;
};

/// Status-aware retry loop with deterministic exponential backoff: the
/// resilience wrapper for fallible operations (VM acquisition, model
/// serving, checkpoint writes) in the simulated control planes.
class RetryPolicy {
 public:
  explicit RetryPolicy(RetryOptions options = RetryOptions(),
                       uint64_t seed = 0);

  /// Transient failures worth retrying: Internal, ResourceExhausted.
  /// Everything else (InvalidArgument, NotFound, FailedPrecondition, ...)
  /// reflects a caller or state error a retry cannot fix.
  static bool IsRetriable(StatusCode code);

  /// Backoff delay before retry number `retry` (1-based), jittered.
  /// Advances the jitter stream; successive calls give the delays of
  /// successive retries.
  double BackoffFor(int retry);

  /// Runs `op` until it returns Ok, a non-retriable error, the attempt
  /// budget is exhausted, or the deadline would be exceeded by the next
  /// wait. Returns the final status plus attempt/backoff accounting.
  RetryResult Run(const std::function<Status()>& op);

  const RetryOptions& options() const { return options_; }

 private:
  RetryOptions options_;
  Rng rng_;
};

/// Per-dependency circuit breaker (closed → open → half-open), the guard
/// the serving fallback chain uses to stop hammering a failing model
/// version. Time is caller-provided simulated seconds, so behaviour is
/// deterministic.
///
/// Thread-safe: transitions are serialized by an internal mutex, so the
/// serving runtime's concurrent batch workers can share one breaker. In
/// particular the half-open probe is single-flight — of many concurrent
/// AllowRequest calls after the cooldown, exactly one is admitted until
/// that probe's verdict is recorded.
struct CircuitBreakerOptions {
  /// Consecutive failures that trip the breaker open.
  int failure_threshold = 3;
  /// Seconds the breaker stays open before allowing one probe request
  /// (half-open). A probe success closes it; a probe failure re-opens it.
  double cooldown_seconds = 60.0;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options =
                              CircuitBreakerOptions())
      : options_(options) {}

  /// True if a request may proceed at time `now`. An open breaker past its
  /// cooldown transitions to half-open and admits exactly one probe.
  bool AllowRequest(double now);
  void RecordSuccess(double now);
  void RecordFailure(double now);

  State state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }
  int consecutive_failures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return consecutive_failures_;
  }
  /// Times the breaker tripped from closed/half-open to open.
  int trips() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trips_;
  }

 private:
  mutable std::mutex mu_;
  CircuitBreakerOptions options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int trips_ = 0;
  double opened_at_ = 0.0;
  bool probe_in_flight_ = false;
};

}  // namespace ads::common

#endif  // ADS_COMMON_RETRY_H_
