#include "common/rng.h"

#include <cmath>

namespace ads::common {

int64_t Rng::Zipf(int64_t n, double s) {
  ADS_CHECK(n > 0) << "Zipf over empty support";
  // Inverse-CDF sampling over the (small) discrete support. The generators
  // use n of at most a few thousand, so linear scan is fine and exact.
  double total = 0.0;
  for (int64_t k = 0; k < n; ++k) total += 1.0 / std::pow(k + 1, s);
  double u = Uniform(0.0, total);
  double acc = 0.0;
  for (int64_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(k + 1, s);
    if (u <= acc) return k;
  }
  return n - 1;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  ADS_CHECK(!weights.empty()) << "Categorical over empty weights";
  double total = 0.0;
  for (double w : weights) total += w;
  double u = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u <= acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace ads::common
