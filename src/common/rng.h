#ifndef ADS_COMMON_RNG_H_
#define ADS_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "common/logging.h"

namespace ads::common {

/// Deterministic random number generator used throughout the library.
///
/// All stochastic components (workload generators, simulators, ML training)
/// draw from an Rng seeded by the caller, so every experiment is exactly
/// reproducible. Fork() derives an independent child stream, which keeps
/// subsystems decoupled: adding draws in one module does not perturb another.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Derives an independent child generator; deterministic given this
  /// generator's current state.
  Rng Fork() { return Rng(engine_()); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    ADS_CHECK(lo <= hi) << "UniformInt bounds inverted: " << lo << ".." << hi;
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Normal draw.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal draw (parameters are of the underlying normal).
  double LogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Exponential draw with the given rate (events per unit time).
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Poisson draw with the given mean.
  int64_t Poisson(double mean) {
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }

  /// Bernoulli draw.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Pareto draw with scale x_m and shape alpha (heavy-tailed sizes).
  double Pareto(double x_m, double alpha) {
    double u = Uniform(1e-12, 1.0);
    return x_m / std::pow(u, 1.0 / alpha);
  }

  /// Zipf-like categorical draw over [0, n): P(k) proportional to
  /// 1/(k+1)^s. Used for skewed template popularity.
  int64_t Zipf(int64_t n, double s);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ads::common

#endif  // ADS_COMMON_RNG_H_
