#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace ads::common {

namespace {

constexpr uint32_t kLeaf1EcxSse42 = 1u << 20;
constexpr uint32_t kLeaf7EbxAvx2 = 1u << 5;

// kScalar..kAvx2 are totally ordered tiers; clamping is integer min.
SimdLevel Min(SimdLevel a, SimdLevel b) {
  return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse:
      return "sse";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "scalar";
}

SimdLevel ClassifyCpuidFeatures(uint32_t leaf1_ecx, uint32_t leaf7_ebx) {
  const bool sse42 = (leaf1_ecx & kLeaf1EcxSse42) != 0;
  if (sse42 && (leaf7_ebx & kLeaf7EbxAvx2) != 0) return SimdLevel::kAvx2;
  if (sse42) return SimdLevel::kSse;
  return SimdLevel::kScalar;
}

SimdLevel DetectCpuLevel() {
#if defined(__x86_64__) || defined(__i386__)
  uint32_t eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return SimdLevel::kScalar;
  const uint32_t leaf1_ecx = ecx;
  uint32_t leaf7_ebx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) leaf7_ebx = ebx;
  SimdLevel level = ClassifyCpuidFeatures(leaf1_ecx, leaf7_ebx);
  // The feature bits say the silicon can; __builtin_cpu_supports folds in
  // the OSXSAVE/xgetbv check that the OS preserves ymm state on context
  // switch. Without it an AVX2 kernel would corrupt registers under an
  // old kernel, so clamp to sse.
  if (level == SimdLevel::kAvx2 && !__builtin_cpu_supports("avx2")) {
    level = SimdLevel::kSse;
  }
  return level;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel ResolveSimdLevel(const char* override_value, SimdLevel detected) {
  if (override_value == nullptr || override_value[0] == '\0') return detected;
  SimdLevel requested;
  if (std::strcmp(override_value, "off") == 0 ||
      std::strcmp(override_value, "scalar") == 0) {
    requested = SimdLevel::kScalar;
  } else if (std::strcmp(override_value, "sse") == 0) {
    requested = SimdLevel::kSse;
  } else if (std::strcmp(override_value, "avx2") == 0) {
    requested = SimdLevel::kAvx2;
  } else {
    return detected;  // unrecognized: ignore, run at the detected tier
  }
  return Min(requested, detected);
}

namespace {

std::atomic<SimdLevel>& ActiveLevelSlot() {
  static std::atomic<SimdLevel> active(
      ResolveSimdLevel(std::getenv("ADS_SIMD"), DetectCpuLevel()));
  return active;
}

}  // namespace

SimdLevel ActiveSimdLevel() {
  return ActiveLevelSlot().load(std::memory_order_relaxed);
}

SimdLevel SetSimdLevel(SimdLevel level) {
  const SimdLevel effective = Min(level, DetectCpuLevel());
  ActiveLevelSlot().store(effective, std::memory_order_relaxed);
  return effective;
}

}  // namespace ads::common
