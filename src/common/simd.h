#ifndef ADS_COMMON_SIMD_H_
#define ADS_COMMON_SIMD_H_

#include <cstdint>

namespace ads::common {

/// Instruction-set tiers the inference kernels dispatch between at runtime.
/// Every tier computes bit-identical results — kScalar is the golden
/// reference, the wider tiers just evaluate more independent rows per
/// instruction — so the choice is purely a throughput knob and can be
/// forced per-process (env) or per-call-site (SetSimdLevel) for testing.
enum class SimdLevel {
  kScalar = 0,  // plain loops, autovectorizable at -O2, always available
  kSse = 1,     // 2-wide double lanes, gated on SSE4.2
  kAvx2 = 2,    // 4-wide double lanes, gated on AVX2
};

/// Lowercase tier name: "scalar", "sse", "avx2".
const char* SimdLevelName(SimdLevel level);

/// Pure decode of the cpuid feature words the dispatcher consumes: ECX of
/// leaf 1 (SSE4.2 is bit 20) and EBX of leaf 7/subleaf 0 (AVX2 is bit 5).
/// AVX2 classification requires the SSE4.2 bit too — every AVX2 part sets
/// it, and the sse tier must stay reachable as a fallback. Split out from
/// DetectCpuLevel so the bit twiddling is unit-testable without real cpuid.
SimdLevel ClassifyCpuidFeatures(uint32_t leaf1_ecx, uint32_t leaf7_ebx);

/// Queries cpuid on x86-64 (always kScalar elsewhere). The AVX2 tier is
/// additionally gated on OS ymm-state support (xsave), so the returned
/// level is safe to execute.
SimdLevel DetectCpuLevel();

/// Resolves the level to run at from an ADS_SIMD-style override string and
/// the detected ceiling. Precedence: a valid override ("off"/"scalar",
/// "sse", "avx2") wins but is clamped to `detected` (forcing avx2 on a
/// non-avx2 machine must not crash); null/empty/unrecognized values fall
/// back to `detected`, the best safe tier.
SimdLevel ResolveSimdLevel(const char* override_value, SimdLevel detected);

/// The process-wide level the kernels dispatch on. Initialized lazily from
/// ResolveSimdLevel(getenv("ADS_SIMD"), DetectCpuLevel()); later writes via
/// SetSimdLevel take effect immediately (tests and the bench --simd flag
/// sweep levels within one process).
SimdLevel ActiveSimdLevel();

/// Forces the dispatch level, clamped to DetectCpuLevel() so a forced tier
/// is always executable. Returns the level actually installed.
SimdLevel SetSimdLevel(SimdLevel level);

}  // namespace ads::common

#endif  // ADS_COMMON_SIMD_H_
