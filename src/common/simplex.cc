#include "common/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace ads::common {
namespace {

constexpr double kEps = 1e-9;

/// Dense simplex tableau.
///
/// Layout: rows 0..m-1 are constraints, row m is the objective (stored
/// negated so that optimality is "no negative reduced cost"). Columns
/// 0..n_total-1 are variables, column n_total is the RHS.
class Tableau {
 public:
  Tableau(size_t m, size_t n_total)
      : m_(m), n_(n_total), a_(m + 1, std::vector<double>(n_total + 1, 0.0)),
        basis_(m, 0) {}

  double& At(size_t r, size_t c) { return a_[r][c]; }
  double At(size_t r, size_t c) const { return a_[r][c]; }
  size_t num_rows() const { return m_; }
  size_t num_cols() const { return n_; }
  size_t basis(size_t r) const { return basis_[r]; }
  void set_basis(size_t r, size_t var) { basis_[r] = var; }

  void Pivot(size_t prow, size_t pcol) {
    double pv = a_[prow][pcol];
    ADS_CHECK(std::abs(pv) > kEps) << "pivot on (near-)zero element";
    for (size_t c = 0; c <= n_; ++c) a_[prow][c] /= pv;
    for (size_t r = 0; r <= m_; ++r) {
      if (r == prow) continue;
      double f = a_[r][pcol];
      if (std::abs(f) < kEps) continue;
      for (size_t c = 0; c <= n_; ++c) a_[r][c] -= f * a_[prow][c];
    }
    basis_[prow] = pcol;
  }

  /// Runs primal simplex on columns [0, active_cols). Returns kOptimal or
  /// kUnbounded. Uses Bland's rule (smallest eligible index) which cannot
  /// cycle.
  LpStatus Iterate(size_t active_cols) {
    for (int iter = 0; iter < 100000; ++iter) {
      // Entering column: smallest index with negative reduced cost.
      size_t pcol = active_cols;
      for (size_t c = 0; c < active_cols; ++c) {
        if (a_[m_][c] < -kEps) {
          pcol = c;
          break;
        }
      }
      if (pcol == active_cols) return LpStatus::kOptimal;
      // Leaving row: min ratio test, ties broken by smallest basis var.
      size_t prow = m_;
      double best = std::numeric_limits<double>::infinity();
      for (size_t r = 0; r < m_; ++r) {
        if (a_[r][pcol] > kEps) {
          double ratio = a_[r][n_] / a_[r][pcol];
          if (ratio < best - kEps ||
              (ratio < best + kEps && (prow == m_ || basis_[r] < basis_[prow]))) {
            best = ratio;
            prow = r;
          }
        }
      }
      if (prow == m_) return LpStatus::kUnbounded;
      Pivot(prow, pcol);
    }
    ADS_LOG(Warning) << "simplex iteration limit reached";
    return LpStatus::kUnbounded;
  }

 private:
  size_t m_;
  size_t n_;
  std::vector<std::vector<double>> a_;
  std::vector<size_t> basis_;
};

}  // namespace

Result<LpSolution> SolveLp(const LinearProgram& lp) {
  size_t n = lp.objective.size();
  if (n == 0) {
    return Status::InvalidArgument("LP has no variables");
  }
  for (const LpConstraint& c : lp.constraints) {
    if (c.coeffs.size() != n) {
      return Status::InvalidArgument("LP constraint arity mismatch");
    }
  }
  size_t m = lp.constraints.size();

  // Normalize rows to non-negative RHS and count auxiliary columns.
  // <=  : slack (+1)
  // >=  : surplus (-1) + artificial
  // ==  : artificial
  struct Row {
    std::vector<double> coeffs;
    double rhs;
    ConstraintSense sense;
  };
  std::vector<Row> rows;
  rows.reserve(m);
  for (const LpConstraint& c : lp.constraints) {
    Row row{c.coeffs, c.rhs, c.sense};
    if (row.rhs < 0.0) {
      for (double& v : row.coeffs) v = -v;
      row.rhs = -row.rhs;
      if (row.sense == ConstraintSense::kLessEqual) {
        row.sense = ConstraintSense::kGreaterEqual;
      } else if (row.sense == ConstraintSense::kGreaterEqual) {
        row.sense = ConstraintSense::kLessEqual;
      }
    }
    rows.push_back(std::move(row));
  }

  size_t num_slack = 0;
  size_t num_artificial = 0;
  for (const Row& r : rows) {
    if (r.sense == ConstraintSense::kLessEqual) {
      ++num_slack;
    } else if (r.sense == ConstraintSense::kGreaterEqual) {
      ++num_slack;  // surplus column
      ++num_artificial;
    } else {
      ++num_artificial;
    }
  }

  size_t n_total = n + num_slack + num_artificial;
  Tableau t(m, n_total);

  size_t slack_at = n;
  size_t art_at = n + num_slack;
  std::vector<size_t> artificial_cols;
  for (size_t r = 0; r < m; ++r) {
    for (size_t c = 0; c < n; ++c) t.At(r, c) = rows[r].coeffs[c];
    t.At(r, n_total) = rows[r].rhs;
    switch (rows[r].sense) {
      case ConstraintSense::kLessEqual:
        t.At(r, slack_at) = 1.0;
        t.set_basis(r, slack_at);
        ++slack_at;
        break;
      case ConstraintSense::kGreaterEqual:
        t.At(r, slack_at) = -1.0;
        ++slack_at;
        t.At(r, art_at) = 1.0;
        t.set_basis(r, art_at);
        artificial_cols.push_back(art_at);
        ++art_at;
        break;
      case ConstraintSense::kEqual:
        t.At(r, art_at) = 1.0;
        t.set_basis(r, art_at);
        artificial_cols.push_back(art_at);
        ++art_at;
        break;
    }
  }

  // Phase 1: minimize sum of artificials, i.e. maximize -sum. The objective
  // row holds negated coefficients of the maximization objective.
  if (!artificial_cols.empty()) {
    for (size_t col : artificial_cols) t.At(m, col) = 1.0;
    // Make the objective row consistent with the basis (artificials basic).
    for (size_t r = 0; r < m; ++r) {
      size_t b = t.basis(r);
      if (std::abs(t.At(m, b)) > kEps) {
        double f = t.At(m, b);
        for (size_t c = 0; c <= n_total; ++c) t.At(m, c) -= f * t.At(r, c);
      }
    }
    LpStatus phase1 = t.Iterate(n_total);
    if (phase1 == LpStatus::kUnbounded) {
      return Status::Internal("phase-1 LP unbounded (should be impossible)");
    }
    if (t.At(m, n_total) < -1e-7) {
      LpSolution sol;
      sol.status = LpStatus::kInfeasible;
      return sol;
    }
    // Drive any artificial still in the basis out (degenerate case).
    for (size_t r = 0; r < m; ++r) {
      size_t b = t.basis(r);
      bool is_art = b >= n + num_slack;
      if (!is_art) continue;
      size_t pcol = n_total;
      for (size_t c = 0; c < n + num_slack; ++c) {
        if (std::abs(t.At(r, c)) > kEps) {
          pcol = c;
          break;
        }
      }
      if (pcol != n_total) {
        t.Pivot(r, pcol);
      }
      // If the row is all zeros over real columns it is redundant; the
      // artificial stays basic at value 0, which is harmless.
    }
  }

  // Phase 2: install the real objective (negated for the max convention),
  // zero out artificial columns, and re-reduce against the basis.
  for (size_t c = 0; c <= n_total; ++c) t.At(m, c) = 0.0;
  for (size_t c = 0; c < n; ++c) t.At(m, c) = -lp.objective[c];
  for (size_t r = 0; r < m; ++r) {
    size_t b = t.basis(r);
    if (std::abs(t.At(m, b)) > kEps) {
      double f = t.At(m, b);
      for (size_t c = 0; c <= n_total; ++c) t.At(m, c) -= f * t.At(r, c);
    }
  }
  // Exclude artificial columns from entering.
  LpStatus phase2 = t.Iterate(n + num_slack);
  LpSolution sol;
  if (phase2 == LpStatus::kUnbounded) {
    sol.status = LpStatus::kUnbounded;
    return sol;
  }
  sol.status = LpStatus::kOptimal;
  sol.x.assign(n, 0.0);
  for (size_t r = 0; r < m; ++r) {
    if (t.basis(r) < n) sol.x[t.basis(r)] = t.At(r, n_total);
  }
  sol.objective = t.At(m, n_total);
  return sol;
}

}  // namespace ads::common
