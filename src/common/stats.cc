#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ads::common {

void RunningMoments::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningMoments::Merge(const RunningMoments& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  size_t n = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double RunningMoments::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningMoments::stddev() const { return std::sqrt(variance()); }

QuantileSketch::QuantileSketch(const QuantileSketch& other) {
  std::lock_guard<std::mutex> lock(other.sort_mu_);
  values_ = other.values_;
  sorted_ = other.sorted_;
}

QuantileSketch& QuantileSketch::operator=(const QuantileSketch& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(sort_mu_, other.sort_mu_);
  values_ = other.values_;
  sorted_ = other.sorted_;
  return *this;
}

void QuantileSketch::Add(double x) {
  values_.push_back(x);
  sorted_ = false;
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  if (other.values_.empty()) return;
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  sorted_ = false;
}

void QuantileSketch::EnsureSorted() const {
  std::lock_guard<std::mutex> lock(sort_mu_);
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

QuantileSummary QuantileSketch::Summary() const {
  QuantileSummary s;
  s.count = values_.size();
  if (values_.empty()) return s;
  // One sort, one lock: the whole digest reads the stable sorted buffer
  // directly instead of re-acquiring the sort mutex per percentile.
  EnsureSorted();
  s.p50 = QuantileSorted(0.5);
  s.p95 = QuantileSorted(0.95);
  s.p99 = QuantileSorted(0.99);
  s.max = values_.back();  // EnsureSorted() sorted the samples ascending
  return s;
}

double QuantileSketch::Quantile(double q) const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  return QuantileSorted(q);
}

double QuantileSketch::QuantileSorted(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(values_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  ADS_CHECK(hi > lo) << "Histogram range inverted";
  ADS_CHECK(buckets > 0) << "Histogram needs at least one bucket";
}

size_t Histogram::BucketOf(double x) const {
  // Non-finite first: NaN fails every comparison below, and without this
  // guard it would reach the float -> size_t cast, which is UB.
  if (!std::isfinite(x)) return kNoBucket;
  if (x < lo_) return kNoBucket;  // underflow
  if (x >= hi_) return kNoBucket;  // overflow
  size_t b = static_cast<size_t>((x - lo_) / width_);
  // Rounding in (x - lo) / width can land exactly on bucket_count for
  // x just under hi; clamp that edge case into the last bucket.
  return std::min(b, counts_.size() - 1);
}

void Histogram::Add(double x) {
  if (!std::isfinite(x)) {
    ++non_finite_;
    return;
  }
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  ++counts_[BucketOf(x)];
  ++total_;
}

double Histogram::BucketLow(size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::BucketHigh(size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket + 1);
}

double Histogram::Fraction(size_t bucket) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bucket]) / static_cast<double>(total_);
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  ADS_CHECK(x.size() == y.size()) << "correlation length mismatch";
  size_t n = x.size();
  if (n == 0) return 0.0;
  double mx = 0.0;
  double my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double MeanAbsoluteError(const std::vector<double>& truth,
                         const std::vector<double>& pred) {
  ADS_CHECK(truth.size() == pred.size()) << "MAE length mismatch";
  if (truth.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) s += std::abs(truth[i] - pred[i]);
  return s / static_cast<double>(truth.size());
}

double RootMeanSquaredError(const std::vector<double>& truth,
                            const std::vector<double>& pred) {
  ADS_CHECK(truth.size() == pred.size()) << "RMSE length mismatch";
  if (truth.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    double d = truth[i] - pred[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(truth.size()));
}

double MeanAbsolutePercentageError(const std::vector<double>& truth,
                                   const std::vector<double>& pred,
                                   double eps) {
  ADS_CHECK(truth.size() == pred.size()) << "MAPE length mismatch";
  double s = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (std::abs(truth[i]) < eps) continue;
    s += std::abs((truth[i] - pred[i]) / truth[i]);
    ++n;
  }
  return n == 0 ? 0.0 : s / static_cast<double>(n);
}

double RSquared(const std::vector<double>& truth,
                const std::vector<double>& pred) {
  ADS_CHECK(truth.size() == pred.size()) << "R2 length mismatch";
  if (truth.empty()) return 0.0;
  double mean = 0.0;
  for (double t : truth) mean += t;
  mean /= static_cast<double>(truth.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double QError(double truth, double pred, double floor) {
  double t = std::max(truth, floor);
  double p = std::max(pred, floor);
  return std::max(t / p, p / t);
}

}  // namespace ads::common
