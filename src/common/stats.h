#ifndef ADS_COMMON_STATS_H_
#define ADS_COMMON_STATS_H_

#include <cstddef>
#include <mutex>
#include <vector>

namespace ads::common {

/// Running first/second moments (Welford). O(1) memory, numerically stable.
class RunningMoments {
 public:
  void Add(double x);
  /// Merges another accumulator into this one (parallel-friendly).
  void Merge(const RunningMoments& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// The standard tail-latency digest of a QuantileSketch (see Summary()).
/// All fields are 0 for an empty sketch.
struct QuantileSummary {
  size_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Exact quantile tracker: stores all samples, sorts lazily on query.
/// Fine for simulation-scale data (up to a few million points).
///
/// Thread-safety contract: writes (Add/Merge, the targets of assignment)
/// are externally synchronized by the owner, but the const query methods
/// may be called concurrently with each other — the lazy sort they share
/// runs under an internal mutex, so two readers racing to be first never
/// scribble over the same buffer.
class QuantileSketch {
 public:
  QuantileSketch() = default;
  /// Copying locks `other` so its lazy sort cannot race the element copy.
  QuantileSketch(const QuantileSketch& other);
  QuantileSketch& operator=(const QuantileSketch& other);

  void Add(double x);
  /// Appends another sketch's samples (parallel-friendly: workers fill
  /// local sketches, then the caller merges them in a fixed order).
  void Merge(const QuantileSketch& other);
  /// Returns the q-quantile (q in [0,1]) using linear interpolation.
  /// Returns 0 for an empty sketch.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  size_t count() const { return values_.size(); }
  size_t Count() const { return values_.size(); }
  /// One-call p50/p95/p99/max digest, so callers reporting tail latency
  /// do not hand-roll percentile triples. Sorts (and locks) once for the
  /// whole digest — this sits on hot telemetry paths where four separate
  /// mutex acquisitions per snapshot showed up.
  QuantileSummary Summary() const;

 private:
  /// Sorts the samples once under sort_mu_; after it returns the buffer is
  /// stable until the next (externally synchronized) write.
  void EnsureSorted() const;
  /// Linear-interpolated q-quantile over an already-sorted buffer.
  /// Requires EnsureSorted() to have run and values_ non-empty.
  double QuantileSorted(double q) const;

  mutable std::mutex sort_mu_;
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

/// Fixed-bucket histogram over [lo, hi). Out-of-range samples are counted
/// explicitly (underflow / overflow) instead of being folded into the edge
/// buckets, and non-finite samples (NaN, +/-inf) are quarantined in their
/// own counter — so bucket counts and Fraction() describe exactly the
/// in-range mass, and a polluted input stream is visible rather than
/// silently corrupting the tails.
class Histogram {
 public:
  /// Sentinel returned by BucketOf for samples no bucket holds.
  static constexpr size_t kNoBucket = static_cast<size_t>(-1);

  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  size_t bucket_count() const { return counts_.size(); }
  /// Bucket index for an in-range sample; kNoBucket for x < lo, x >= hi,
  /// or non-finite x (the latter would otherwise be UB in the float ->
  /// size_t cast).
  size_t BucketOf(double x) const;
  size_t count(size_t bucket) const { return counts_[bucket]; }
  /// In-range samples only (the sum of the bucket counts).
  size_t total() const { return total_; }
  /// Samples below lo / at-or-above hi / non-finite, respectively.
  size_t underflow() const { return underflow_; }
  size_t overflow() const { return overflow_; }
  size_t non_finite() const { return non_finite_; }
  /// Every sample ever Add()ed, in-range or not.
  size_t samples() const {
    return total_ + underflow_ + overflow_ + non_finite_;
  }
  double BucketLow(size_t bucket) const;
  double BucketHigh(size_t bucket) const;
  /// Fraction of in-range mass in the given bucket (0 if none).
  double Fraction(size_t bucket) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
  size_t underflow_ = 0;
  size_t overflow_ = 0;
  size_t non_finite_ = 0;
};

/// Pearson correlation of two equal-length series; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Regression error metrics. All return 0 on empty input.
double MeanAbsoluteError(const std::vector<double>& truth,
                         const std::vector<double>& pred);
double RootMeanSquaredError(const std::vector<double>& truth,
                            const std::vector<double>& pred);
/// Mean absolute percentage error; terms with |truth| < eps are skipped.
double MeanAbsolutePercentageError(const std::vector<double>& truth,
                                   const std::vector<double>& pred,
                                   double eps = 1e-9);
/// Coefficient of determination; 0 if truth has zero variance.
double RSquared(const std::vector<double>& truth,
                const std::vector<double>& pred);

/// Q-error, the standard cardinality-estimation metric:
/// max(truth/pred, pred/truth) with both clamped below by `floor`.
double QError(double truth, double pred, double floor = 1.0);

}  // namespace ads::common

#endif  // ADS_COMMON_STATS_H_
