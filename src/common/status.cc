#include "common/status.h"

namespace ads::common {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace ads::common
