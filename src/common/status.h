#ifndef ADS_COMMON_STATUS_H_
#define ADS_COMMON_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>

namespace ads::common {

/// Error codes for fallible operations. The library does not use exceptions;
/// operations that can fail return a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
};

/// Returns a human-readable name for a status code ("Ok", "NotFound", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value, modeled after absl::Status / rocksdb::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// A value-or-error, modeled after absl::StatusOr<T>.
///
/// Callers must check ok() before calling value(); accessing the value of a
/// failed Result aborts the process (this library does not use exceptions).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return value_;
  }
  T& value() & {
    AbortIfNotOk();
    return value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfNotOk() const {
    if (!status_.ok()) {
      std::abort();
    }
  }

  Status status_;
  T value_{};
};

}  // namespace ads::common

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define ADS_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::ads::common::Status ads_status_ = (expr);     \
    if (!ads_status_.ok()) return ads_status_;      \
  } while (false)

#endif  // ADS_COMMON_STATUS_H_
