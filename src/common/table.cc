#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace ads::common {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  ADS_CHECK(cells.size() == headers_.size()) << "row arity mismatch";
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::ToText() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c];
      os << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::Print(const std::string& title) const {
  if (!title.empty()) {
    std::printf("\n== %s ==\n", title.c_str());
  }
  std::printf("%s", ToText().c_str());
  std::fflush(stdout);
}

}  // namespace ads::common
