#ifndef ADS_COMMON_TABLE_H_
#define ADS_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace ads::common {

/// A simple text table used by the benchmark harnesses to print the rows and
/// series that the paper's figures/claims report. Renders aligned columns to
/// stdout and can also emit CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 3);
  /// Formats a ratio as a percentage string, e.g. 0.34 -> "34.0%".
  static std::string Pct(double fraction, int precision = 1);

  /// Renders the aligned table to a string.
  std::string ToText() const;
  /// Renders as CSV (no quoting of separators; callers keep cells simple).
  std::string ToCsv() const;
  /// Prints ToText() to stdout with an optional title line.
  void Print(const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ads::common

#endif  // ADS_COMMON_TABLE_H_
