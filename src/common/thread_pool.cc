#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

namespace ads::common {
namespace {

/// Set for the duration of WorkerLoop so nested ParallelFor calls on the
/// same pool can detect they are already on a worker and run inline.
thread_local const ThreadPool* g_current_pool = nullptr;

size_t GlobalWorkerCount() {
  size_t n = 0;
  if (const char* env = std::getenv("ADS_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) n = static_cast<size_t>(v);
  }
  if (n == 0) n = std::max<size_t>(1, std::thread::hardware_concurrency());
  // One worker buys no concurrency over the calling thread; run inline.
  return n <= 1 ? 0 : n;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  if (workers_.empty() || InWorker()) {
    // Inline mode, or a worker scheduling onto its own pool (running
    // inline avoids deadlock when every worker blocks on subtasks).
    ++active_;
    task();
    --active_;
    ++executed_;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WorkerLoop() {
  g_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) break;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    ++active_;
    task();  // packaged_task captures exceptions into the future
    --active_;
    ++executed_;
  }
  g_current_pool = nullptr;
}

ThreadPoolStats ThreadPool::Stats() const {
  ThreadPoolStats stats;
  stats.workers = workers_.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.queued = queue_.size();
  }
  stats.active = active_.load();
  stats.executed = executed_.load();
  return stats;
}

bool ThreadPool::InWorker() const { return g_current_pool == this; }

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  // Chunk boundaries are a pure function of (begin, end, grain) so that
  // chunk-order reductions are identical no matter how work is placed.
  if (workers_.empty() || InWorker() || end - begin <= grain) {
    for (size_t cb = begin; cb < end; cb += grain) {
      fn(cb, std::min(end, cb + grain));
      ++executed_;
    }
    return;
  }
  size_t num_chunks = (end - begin + grain - 1) / grain;
  std::vector<std::exception_ptr> errors(num_chunks);
  std::atomic<size_t> remaining(num_chunks);
  std::mutex done_mu;
  std::condition_variable done_cv;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t c = 0; c < num_chunks; ++c) {
      size_t cb = begin + c * grain;
      size_t ce = std::min(end, cb + grain);
      queue_.push_back([&, c, cb, ce]() {
        try {
          fn(cb, ce);
        } catch (...) {
          errors[c] = std::current_exception();
        }
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> done_lock(done_mu);
          done_cv.notify_all();
        }
      });
    }
  }
  work_available_.notify_all();
  std::unique_lock<std::mutex> done_lock(done_mu);
  done_cv.wait(done_lock, [&]() { return remaining.load() == 0; });
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);  // first failing chunk wins
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(GlobalWorkerCount());
  return *pool;
}

ThreadPool& ThreadPool::Serial() {
  static ThreadPool* pool = new ThreadPool(0);
  return *pool;
}

void parallel_for(size_t begin, size_t end, size_t grain,
                  const std::function<void(size_t, size_t)>& fn) {
  ThreadPool::Global().ParallelFor(begin, end, grain, fn);
}

void parallel_for(ThreadPool& pool, size_t begin, size_t end, size_t grain,
                  const std::function<void(size_t, size_t)>& fn) {
  pool.ParallelFor(begin, end, grain, fn);
}

}  // namespace ads::common
