#ifndef ADS_COMMON_THREAD_POOL_H_
#define ADS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ads::common {

/// Point-in-time snapshot of a ThreadPool's load (see ThreadPool::Stats).
struct ThreadPoolStats {
  /// Configured worker threads (0 = inline mode).
  size_t workers = 0;
  /// Tasks waiting in the queue, not yet picked up by a worker.
  size_t queued = 0;
  /// Tasks currently executing.
  size_t active = 0;
  /// Tasks completed since construction (Submit tasks, inline tasks and
  /// ParallelFor chunks all count).
  uint64_t executed = 0;
};

/// Fixed-size worker pool shared by the library's compute-bound paths
/// (forest training, k-means, k-NN scans, Monte-Carlo simulators).
///
/// Semantics:
///  - A pool constructed with 0 workers runs every task inline on the
///    calling thread; `Serial()` returns a shared pool in this mode, which
///    tests use to force deterministic single-threaded execution.
///  - `Global()` returns the process-wide pool, sized from the
///    `ADS_THREADS` environment variable (`ADS_THREADS=1` forces inline
///    execution; unset or 0 means hardware concurrency).
///  - Destruction is graceful: already-submitted tasks are drained before
///    the workers exit, so pending futures always complete.
///  - Exceptions thrown by tasks are captured and rethrown from the
///    corresponding `std::future` (Submit) or from `ParallelFor` on the
///    calling thread (first failing chunk in index order wins).
class ThreadPool {
 public:
  /// Spawns `num_workers` threads; 0 means run everything inline.
  explicit ThreadPool(size_t num_workers);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task and returns a future for its result. With 0 workers
  /// the task runs inline before Submit returns.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Schedule([task]() { (*task)(); });
    return future;
  }

  /// Runs `fn(chunk_begin, chunk_end)` over [begin, end) split into chunks
  /// of at most `grain` indices. Chunk boundaries depend only on (begin,
  /// end, grain) — never on the worker count — so chunk-local reductions
  /// merged in chunk order are bit-identical in serial and parallel runs.
  ///
  /// Blocks until every chunk has finished. Nested calls from inside a
  /// worker of this pool execute inline (same chunking) to avoid deadlock.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// Number of worker threads (0 = inline mode).
  size_t worker_count() const { return workers_.size(); }

  /// Load snapshot (queue depth, active workers, tasks executed) for the
  /// serving runtime's gauge sampler and other monitors. Queue depth and
  /// active count are read together under the queue lock; `executed` is a
  /// monotonic counter.
  ThreadPoolStats Stats() const;

  /// True when called from one of this pool's worker threads.
  bool InWorker() const;

  /// Process-wide shared pool, sized from ADS_THREADS (default: hardware
  /// concurrency). Constructed on first use.
  static ThreadPool& Global();

  /// Shared 0-worker pool: every task runs inline on the calling thread.
  static ThreadPool& Serial();

 private:
  void Schedule(std::function<void()> task);
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
  std::atomic<size_t> active_{0};
  std::atomic<uint64_t> executed_{0};
};

/// Convenience wrapper: ThreadPool::Global().ParallelFor(...).
void parallel_for(size_t begin, size_t end, size_t grain,
                  const std::function<void(size_t, size_t)>& fn);

/// Same, on an explicit pool (e.g. ThreadPool::Serial() in tests).
void parallel_for(ThreadPool& pool, size_t begin, size_t end, size_t grain,
                  const std::function<void(size_t, size_t)>& fn);

}  // namespace ads::common

#endif  // ADS_COMMON_THREAD_POOL_H_
