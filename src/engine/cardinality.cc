#include "engine/cardinality.h"

#include <algorithm>

#include "common/logging.h"

namespace ads::engine {

void DefaultCardinalityEstimator::Annotate(PlanNode& node) const {
  for (auto& child : node.children) Annotate(*child);
  if (provider_ != nullptr) {
    std::optional<double> learned = provider_->Estimate(node);
    if (learned.has_value()) {
      node.est_card = std::max(1.0, *learned);
      return;
    }
  }
  node.est_card = BuiltinEstimate(node);
}

double DefaultCardinalityEstimator::BuiltinEstimate(
    const PlanNode& node) const {
  double est = 1.0;
  switch (node.op) {
    case OpType::kScan:
      est = node.table_rows;
      break;
    case OpType::kFilter: {
      double sel = 1.0;
      for (const Predicate& p : node.predicates) {
        const ColumnSpec* col =
            catalog_ != nullptr ? catalog_->FindColumnGlobal(p.column)
                                : nullptr;
        // Unknown column: the textbook magic constant.
        sel *= col != nullptr ? UniformSelectivity(*col, p.op, p.value) : 0.1;
      }
      est = node.children[0]->est_card * sel;
      break;
    }
    case OpType::kProject:
    case OpType::kSort:
      est = node.children[0]->est_card;
      break;
    case OpType::kJoin: {
      double l = node.children[0]->est_card;
      double r = node.children[1]->est_card;
      size_t ndv = 1;
      if (catalog_ != nullptr) {
        const ColumnSpec* lk = catalog_->FindColumnGlobal(node.join.left_key);
        const ColumnSpec* rk = catalog_->FindColumnGlobal(node.join.right_key);
        size_t lndv = lk != nullptr ? lk->distinct_values : 1000;
        size_t rndv = rk != nullptr ? rk->distinct_values : 1000;
        ndv = std::max(lndv, rndv);
      } else {
        ndv = 1000;
      }
      est = l * r / static_cast<double>(std::max<size_t>(1, ndv));
      break;
    }
    case OpType::kAggregate: {
      double child = node.children[0]->est_card;
      double keys_ndv = 1.0;
      for (const std::string& key : node.agg.group_keys) {
        const ColumnSpec* col =
            catalog_ != nullptr ? catalog_->FindColumnGlobal(key) : nullptr;
        keys_ndv *= col != nullptr
                        ? static_cast<double>(col->distinct_values)
                        : 100.0;
      }
      est = std::min(child, keys_ndv);
      break;
    }
    case OpType::kUnion:
      est = node.children[0]->est_card + node.children[1]->est_card;
      break;
  }
  return std::max(est, 1.0);
}

}  // namespace ads::engine
