#ifndef ADS_ENGINE_CARDINALITY_H_
#define ADS_ENGINE_CARDINALITY_H_

#include <optional>

#include "engine/catalog.h"
#include "engine/plan.h"

namespace ads::engine {

/// External cardinality source the optimizer consults before its built-in
/// estimator — the paper's "externalize the learned components and add
/// simple extensions to the optimizer" extension point. Implemented by the
/// learned per-template micromodels; returning nullopt falls back to the
/// default estimate for that node.
class CardinalityProvider {
 public:
  virtual ~CardinalityProvider() = default;
  /// Children of `node` already carry est_card when this is called.
  virtual std::optional<double> Estimate(const PlanNode& node) const = 0;
};

/// The engine's built-in estimator: histogram-free uniformity + independence
/// assumptions (attribute-value independence), the classic source of
/// misestimates that the learned models correct.
class DefaultCardinalityEstimator {
 public:
  explicit DefaultCardinalityEstimator(const Catalog* catalog)
      : catalog_(catalog) {}

  /// Optional learned override, consulted per node first.
  void SetProvider(const CardinalityProvider* provider) {
    provider_ = provider;
  }
  const CardinalityProvider* provider() const { return provider_; }

  /// Annotates est_card on every node, bottom-up.
  void Annotate(PlanNode& node) const;

  /// The built-in (non-learned) estimate for one node whose children are
  /// already annotated.
  double BuiltinEstimate(const PlanNode& node) const;

 private:
  const Catalog* catalog_;
  const CardinalityProvider* provider_ = nullptr;
};

}  // namespace ads::engine

#endif  // ADS_ENGINE_CARDINALITY_H_
