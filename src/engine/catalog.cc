#include "engine/catalog.h"

namespace ads::engine {

const ColumnSpec* TableSpec::FindColumn(const std::string& column_name) const {
  for (const ColumnSpec& c : columns) {
    if (c.name == column_name) return &c;
  }
  return nullptr;
}

void Catalog::AddTable(TableSpec table) {
  tables_[table.name] = std::move(table);
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.find(name) != tables_.end();
}

common::Result<TableSpec> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return common::Status::NotFound("unknown table: " + name);
  }
  return it->second;
}

const TableSpec* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const ColumnSpec* Catalog::FindColumnGlobal(
    const std::string& column_name) const {
  for (const auto& [name, table] : tables_) {
    const ColumnSpec* c = table.FindColumn(column_name);
    if (c != nullptr) return c;
  }
  return nullptr;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  for (const auto& [name, spec] : tables_) out.push_back(name);
  return out;
}

}  // namespace ads::engine
