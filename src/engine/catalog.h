#ifndef ADS_ENGINE_CATALOG_H_
#define ADS_ENGINE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace ads::engine {

/// Statistics the engine keeps about one column. `skew` is part of the
/// synthetic world's ground truth: the default estimator assumes uniform
/// values, so skewed columns are where it errs — and where the learned
/// cardinality models earn their keep.
struct ColumnSpec {
  std::string name;
  double min_value = 0.0;
  double max_value = 1.0e6;
  size_t distinct_values = 1000;
  /// Zipf exponent of the true value distribution (0 = uniform).
  double skew = 0.0;
};

/// One table's schema and row count.
struct TableSpec {
  std::string name;
  double rows = 1.0e6;
  std::vector<ColumnSpec> columns;

  const ColumnSpec* FindColumn(const std::string& column_name) const;
};

/// Name -> table registry for a simulated data lake.
class Catalog {
 public:
  /// Adds or replaces a table definition.
  void AddTable(TableSpec table);

  bool HasTable(const std::string& name) const;
  common::Result<TableSpec> GetTable(const std::string& name) const;
  const TableSpec* FindTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;
  size_t size() const { return tables_.size(); }

  /// Finds a column by name across all tables. The generators keep column
  /// names globally unique, so the first match is the only match.
  const ColumnSpec* FindColumnGlobal(const std::string& column_name) const;

 private:
  std::map<std::string, TableSpec> tables_;
};

}  // namespace ads::engine

#endif  // ADS_ENGINE_CATALOG_H_
