#include "engine/column.h"

#include <cstring>

namespace ads::engine {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kI64:
      return "i64";
    case ColumnType::kF64:
      return "f64";
  }
  return "?";
}

bool Column::BitwiseEquals(const Column& other) const {
  if (name_ != other.name_ || type_ != other.type_ ||
      size() != other.size()) {
    return false;
  }
  if (size() == 0) return true;
  if (type_ == ColumnType::kI64) {
    return std::memcmp(i64_.data(), other.i64_.data(),
                       size() * sizeof(int64_t)) == 0;
  }
  return std::memcmp(f64_.data(), other.f64_.data(),
                     size() * sizeof(double)) == 0;
}

}  // namespace ads::engine
