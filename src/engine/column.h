#ifndef ADS_ENGINE_COLUMN_H_
#define ADS_ENGINE_COLUMN_H_

#include <cstdint>
#include <string>

#include "common/aligned.h"
#include "common/logging.h"

namespace ads::engine {

/// Physical column types. Integers cover keys, dates (days), flags and
/// fixed-point money (cents): integer arithmetic is exact, so aggregates
/// over them are bit-identical regardless of evaluation strategy — which
/// is what lets the differential harness demand exact equality between
/// the vectorized and the reference executor. F64 columns exist for
/// ratios and averages; their sums are *defined* to accumulate in input
/// row order (see AggFn in plan.h).
enum class ColumnType { kI64, kF64 };

const char* ColumnTypeName(ColumnType type);

/// One typed column vector in a 64-byte-aligned arena (common/aligned.h),
/// so vectorized kernels can stream it without split cache-line loads.
class Column {
 public:
  Column() = default;
  Column(std::string name, ColumnType type)
      : name_(std::move(name)), type_(type) {}

  static Column I64(std::string name) {
    return Column(std::move(name), ColumnType::kI64);
  }
  static Column F64(std::string name) {
    return Column(std::move(name), ColumnType::kF64);
  }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  ColumnType type() const { return type_; }
  size_t size() const {
    return type_ == ColumnType::kI64 ? i64_.size() : f64_.size();
  }

  void Reserve(size_t n) {
    if (type_ == ColumnType::kI64) {
      i64_.reserve(n);
    } else {
      f64_.reserve(n);
    }
  }
  void Resize(size_t n) {
    if (type_ == ColumnType::kI64) {
      i64_.resize(n);
    } else {
      f64_.resize(n);
    }
  }

  void AppendI64(int64_t v) {
    ADS_CHECK(type_ == ColumnType::kI64) << name_ << " is not i64";
    i64_.push_back(v);
  }
  void AppendF64(double v) {
    ADS_CHECK(type_ == ColumnType::kF64) << name_ << " is not f64";
    f64_.push_back(v);
  }
  /// Appends row `row` of `src` (same type required).
  void AppendFrom(const Column& src, size_t row) {
    ADS_CHECK(type_ == src.type_) << "type mismatch appending to " << name_;
    if (type_ == ColumnType::kI64) {
      i64_.push_back(src.i64_[row]);
    } else {
      f64_.push_back(src.f64_[row]);
    }
  }

  int64_t I64At(size_t i) const { return i64_[i]; }
  double F64At(size_t i) const { return f64_[i]; }
  int64_t& I64At(size_t i) { return i64_[i]; }
  double& F64At(size_t i) { return f64_[i]; }

  /// Value widened to double — predicate literals are doubles. Generated
  /// integer values stay below 2^53, so the widening is exact.
  double AsDouble(size_t i) const {
    return type_ == ColumnType::kI64 ? static_cast<double>(i64_[i])
                                     : f64_[i];
  }

  const int64_t* i64_data() const { return i64_.data(); }
  const double* f64_data() const { return f64_.data(); }
  int64_t* i64_data() { return i64_.data(); }
  double* f64_data() { return f64_.data(); }

  /// Exact comparison: same name, type, size, and bit pattern of every
  /// value (doubles compared as bits, not numerically).
  bool BitwiseEquals(const Column& other) const;

 private:
  std::string name_;
  ColumnType type_ = ColumnType::kI64;
  common::AlignedBuffer<int64_t> i64_;
  common::AlignedBuffer<double> f64_;
};

}  // namespace ads::engine

#endif  // ADS_ENGINE_COLUMN_H_
