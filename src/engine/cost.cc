#include "engine/cost.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ads::engine {

double CostModel::NodeCost(const PlanNode& node, CardSource source) const {
  double out = CardOf(node, source);
  switch (node.op) {
    case OpType::kScan:
      return node.table_rows * node.row_width * weights_.scan_per_byte;
    case OpType::kFilter:
      return CardOf(*node.children[0], source) * weights_.cpu_per_row;
    case OpType::kProject:
      return CardOf(*node.children[0], source) * weights_.cpu_per_row * 0.5;
    case OpType::kJoin: {
      // Convention: the RIGHT child is the build/broadcast side, the left
      // child is probed. JoinCommute exists to put the smaller input on
      // the right — and picks wrong when the estimates are wrong.
      double probe = CardOf(*node.children[0], source);
      double build = CardOf(*node.children[1], source);
      double probe_bytes = probe * node.children[0]->row_width;
      double build_bytes = build * node.children[1]->row_width;
      double move = 0.0;
      if (node.join.strategy == JoinStrategy::kBroadcast) {
        // Ship the build side everywhere; the probe side stays put.
        move = build_bytes * weights_.broadcast_per_byte *
               weights_.broadcast_fanout;
      } else {
        move = (probe_bytes + build_bytes) * weights_.shuffle_per_byte;
      }
      return move + build * weights_.hash_build_per_row +
             probe * weights_.hash_probe_per_row +
             out * weights_.cpu_per_row;
    }
    case OpType::kAggregate:
      return CardOf(*node.children[0], source) * weights_.agg_per_row +
             out * weights_.cpu_per_row;
    case OpType::kSort: {
      double n = CardOf(*node.children[0], source);
      return n * std::log2(std::max(2.0, n)) * weights_.sort_per_row_log;
    }
    case OpType::kUnion:
      return out * weights_.cpu_per_row * 0.1;
  }
  return 0.0;
}

double CostModel::PlanCost(const PlanNode& node, CardSource source) const {
  if (provider_ != nullptr && source == CardSource::kEstimated) {
    std::optional<double> learned = provider_->Cost(node);
    if (learned.has_value()) return std::max(0.0, *learned);
  }
  double total = NodeCost(node, source);
  for (const auto& child : node.children) {
    total += PlanCost(*child, source);
  }
  return total;
}

}  // namespace ads::engine
