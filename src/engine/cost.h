#ifndef ADS_ENGINE_COST_H_
#define ADS_ENGINE_COST_H_

#include <optional>

#include "engine/plan.h"

namespace ads::engine {

/// Which cardinality annotation the cost model reads. Planning uses
/// estimates; evaluation harnesses use truth ("the cost the plan actually
/// incurs").
enum class CardSource { kEstimated, kTrue };

/// Tunable coefficients of the analytical cost model (arbitrary cost units;
/// roughly milliseconds per unit work).
struct CostWeights {
  double scan_per_byte = 1e-6;
  double cpu_per_row = 1e-4;
  double shuffle_per_byte = 4e-6;
  double broadcast_per_byte = 2e-6;
  /// Number of partitions a broadcast must reach (fan-out multiplier).
  double broadcast_fanout = 64.0;
  double hash_build_per_row = 3e-4;
  double hash_probe_per_row = 1e-4;
  double sort_per_row_log = 2e-5;
  double agg_per_row = 2e-4;
};

/// External learned cost source (per-subtree), consulted before the
/// analytical model; nullopt falls back.
class CostProvider {
 public:
  virtual ~CostProvider() = default;
  virtual std::optional<double> Cost(const PlanNode& node) const = 0;
};

/// Analytical cost model over annotated plans.
class CostModel {
 public:
  explicit CostModel(CostWeights weights = CostWeights())
      : weights_(weights) {}

  void SetProvider(const CostProvider* provider) { provider_ = provider; }

  /// Cost of the operator at `node` alone (children's output cards are
  /// inputs), using the chosen cardinality annotation.
  double NodeCost(const PlanNode& node, CardSource source) const;

  /// Total plan cost: sum of node costs over the tree. The learned provider
  /// (if set) can override whole subtrees.
  double PlanCost(const PlanNode& node, CardSource source) const;

  const CostWeights& weights() const { return weights_; }

 private:
  static double CardOf(const PlanNode& node, CardSource source) {
    return source == CardSource::kTrue ? node.true_card : node.est_card;
  }

  CostWeights weights_;
  const CostProvider* provider_ = nullptr;
};

}  // namespace ads::engine

#endif  // ADS_ENGINE_COST_H_
