#include "engine/exec_real.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <sstream>

#include "engine/vec_ops.h"

namespace ads::engine {

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

common::Status MissingColumn(const std::string& column,
                             const std::string& where) {
  return common::Status::NotFound("column " + column + " not found in " +
                                  where);
}

/// Output type of an aggregate over an input column type.
ColumnType AggOutputType(AggFn fn, ColumnType input) {
  switch (fn) {
    case AggFn::kCount:
      return ColumnType::kI64;
    case AggFn::kAvg:
      return ColumnType::kF64;
    case AggFn::kSum:
    case AggFn::kMin:
    case AggFn::kMax:
      return input;
  }
  return ColumnType::kI64;
}

std::string NodeDetail(const PlanNode& node) {
  std::ostringstream os;
  switch (node.op) {
    case OpType::kScan:
      os << node.table;
      break;
    case OpType::kFilter:
      os << node.predicates.size() << " preds";
      break;
    case OpType::kProject:
      os << node.columns.size() << " cols";
      break;
    case OpType::kJoin:
      os << node.join.left_key << "=" << node.join.right_key;
      break;
    case OpType::kAggregate:
      os << node.agg.group_keys.size() << " keys, "
         << std::max<size_t>(1, node.agg.aggs.size()) << " aggs";
      break;
    case OpType::kSort:
      os << node.columns.size() << " cols";
      break;
    case OpType::kUnion:
      break;
  }
  return os.str();
}

}  // namespace

struct RealExecutor::ExecContext {
  common::ThreadPool* pool = nullptr;
  telemetry::Tracer* tracer = nullptr;
  double start_time = 0.0;
  std::vector<OperatorStats>* operators = nullptr;
};

RealExecutor::RealExecutor(const TableStore* store, RealExecOptions options)
    : store_(store), options_(options) {}

common::Result<ExecResult> RealExecutor::Execute(
    const PlanNode& plan, telemetry::Tracer* tracer,
    telemetry::SpanId parent) const {
  ExecResult result;
  ExecContext ctx;
  ctx.pool =
      options_.pool != nullptr ? options_.pool : &common::ThreadPool::Global();
  ctx.tracer = tracer;
  ctx.start_time = Now();
  ctx.operators = &result.operators;
  auto table = Exec(plan, ctx, parent);
  if (!table.ok()) return table.status();
  result.table = std::move(table).value();
  result.total_seconds = Now() - ctx.start_time;
  return result;
}

common::Result<ColumnTable> RealExecutor::Exec(
    const PlanNode& node, ExecContext& ctx,
    telemetry::SpanId parent) const {
  telemetry::SpanId span = telemetry::kNoSpan;
  if (ctx.tracer != nullptr) {
    span = ctx.tracer->StartSpan(
        "operator", std::string("exec.") + OpTypeName(node.op), parent,
        Now() - ctx.start_time);
    ctx.tracer->Annotate(span, "detail", NodeDetail(node));
  }

  uint64_t rows_in = 0;
  std::vector<ColumnTable> inputs;
  inputs.reserve(node.children.size());
  for (const auto& child : node.children) {
    auto in = Exec(*child, ctx, span);
    if (!in.ok()) {
      if (ctx.tracer != nullptr) {
        ctx.tracer->Annotate(span, "outcome", "error");
        ctx.tracer->EndSpan(span, Now() - ctx.start_time);
      }
      return in.status();
    }
    rows_in += in->num_rows();
    inputs.push_back(std::move(in).value());
  }

  const double op_start = Now();
  common::Result<ColumnTable> out = [&]() -> common::Result<ColumnTable> {
    switch (node.op) {
      case OpType::kScan:
        return ExecScan(node);
      case OpType::kFilter:
        return ExecFilter(node, std::move(inputs[0]));
      case OpType::kProject:
        return ExecProject(node, std::move(inputs[0]));
      case OpType::kJoin:
        return ExecJoin(node, std::move(inputs[0]), std::move(inputs[1]));
      case OpType::kAggregate:
        return ExecAggregate(node, std::move(inputs[0]));
      case OpType::kSort:
        return ExecSort(node, std::move(inputs[0]));
      case OpType::kUnion:
        return ExecUnion(node, std::move(inputs[0]), std::move(inputs[1]));
    }
    return common::Status::Unimplemented("unknown operator");
  }();
  const double op_seconds = Now() - op_start;

  if (!out.ok()) {
    if (ctx.tracer != nullptr) {
      ctx.tracer->Annotate(span, "outcome", "error");
      ctx.tracer->EndSpan(span, Now() - ctx.start_time);
    }
    return out.status();
  }

  OperatorStats stats;
  stats.op = node.op;
  stats.detail = NodeDetail(node);
  stats.rows_in = rows_in;
  stats.rows_out = out->num_rows();
  stats.est_card = node.est_card;
  stats.true_card = node.true_card;
  stats.seconds = op_seconds;
  ctx.operators->push_back(stats);

  if (ctx.tracer != nullptr) {
    ctx.tracer->Annotate(span, "rows_in", std::to_string(rows_in));
    ctx.tracer->Annotate(span, "rows_out", std::to_string(out->num_rows()));
    ctx.tracer->EndSpan(span, Now() - ctx.start_time);
  }
  return out;
}

common::Result<ColumnTable> RealExecutor::ExecScan(
    const PlanNode& node) const {
  const ColumnTable* table = store_->FindTable(node.table);
  if (table == nullptr) {
    return common::Status::NotFound("no stored table named " + node.table +
                                    " (is this a simulated-only plan?)");
  }
  ColumnTable out(table->name());
  if (node.columns.empty()) {
    for (const Column& c : table->columns()) out.AddColumn(c);
    return out;
  }
  // ProjectIntoScan narrowing: emit only the surviving columns.
  for (const std::string& name : node.columns) {
    const Column* c = table->FindColumn(name);
    if (c == nullptr) return MissingColumn(name, "scan of " + node.table);
    out.AddColumn(*c);
  }
  return out;
}

common::Result<ColumnTable> RealExecutor::ExecFilter(
    const PlanNode& node, ColumnTable input) const {
  if (node.predicates.empty()) return input;
  common::ThreadPool& pool = options_.pool != nullptr
                                 ? *options_.pool
                                 : common::ThreadPool::Global();
  const size_t rows = input.num_rows();
  const size_t words = BitmapWords(rows);
  common::AlignedBuffer<uint64_t> acc(words);
  common::AlignedBuffer<uint64_t> scratch(words);
  for (size_t p = 0; p < node.predicates.size(); ++p) {
    const Predicate& pred = node.predicates[p];
    const Column* col = input.FindColumn(pred.column);
    if (col == nullptr) return MissingColumn(pred.column, "filter input");
    uint64_t* target = p == 0 ? acc.data() : scratch.data();
    PredicateBitmap(*col, pred.op, pred.value, pool, target);
    if (p > 0) BitmapAndInPlace(acc.data(), scratch.data(), words);
  }
  common::AlignedBuffer<uint32_t> sel;
  const size_t n = BitmapToSelection(acc.data(), rows, &sel);
  ColumnTable out(input.name());
  for (const Column& c : input.columns()) {
    Column gathered;
    GatherColumn(c, sel.data(), n, pool, &gathered);
    out.AddColumn(std::move(gathered));
  }
  return out;
}

common::Result<ColumnTable> RealExecutor::ExecProject(
    const PlanNode& node, ColumnTable input) const {
  ColumnTable out(input.name());
  for (const std::string& name : node.columns) {
    const Column* c = input.FindColumn(name);
    if (c == nullptr) return MissingColumn(name, "project input");
    out.AddColumn(*c);
  }
  return out;
}

common::Result<ColumnTable> RealExecutor::ExecJoin(const PlanNode& node,
                                                   ColumnTable left,
                                                   ColumnTable right) const {
  // Resolve which side owns which key by schema, not by position: the
  // commute/associativity rules move keys freely.
  const Column* lkey = left.FindColumn(node.join.left_key);
  const Column* rkey = right.FindColumn(node.join.right_key);
  if (lkey == nullptr || rkey == nullptr) {
    lkey = left.FindColumn(node.join.right_key);
    rkey = right.FindColumn(node.join.left_key);
  }
  if (lkey == nullptr || rkey == nullptr) {
    return common::Status::NotFound("join keys " + node.join.left_key +
                                    "/" + node.join.right_key +
                                    " not resolvable against inputs");
  }
  if (lkey->type() != ColumnType::kI64 || rkey->type() != ColumnType::kI64) {
    return common::Status::Unimplemented("join keys must be i64 columns");
  }

  common::ThreadPool& pool = options_.pool != nullptr
                                 ? *options_.pool
                                 : common::ThreadPool::Global();
  // Build over the right input, probe with the left in row order: output
  // row order is (left row asc, right matches asc) — the defined order.
  JoinHashTable table;
  table.Build(*rkey, options_.hash_seed);
  common::AlignedBuffer<uint32_t> probe_idx;
  common::AlignedBuffer<uint32_t> build_idx;
  table.Probe(*lkey, pool, &probe_idx, &build_idx);

  const size_t n = probe_idx.size();
  ColumnTable out(left.name() + "_x_" + right.name());
  for (const Column& c : left.columns()) {
    Column gathered;
    GatherColumn(c, probe_idx.data(), n, pool, &gathered);
    out.AddColumn(std::move(gathered));
  }
  for (const Column& c : right.columns()) {
    Column gathered;
    GatherColumn(c, build_idx.data(), n, pool, &gathered);
    out.AddColumn(std::move(gathered));
  }
  return out;
}

common::Result<ColumnTable> RealExecutor::ExecAggregate(
    const PlanNode& node, ColumnTable input) const {
  const size_t rows = input.num_rows();

  std::vector<const Column*> key_cols;
  for (const std::string& key : node.agg.group_keys) {
    const Column* c = input.FindColumn(key);
    if (c == nullptr) {
      return MissingColumn(key,
                           "aggregate input (eager-aggregation partials "
                           "are not executable)");
    }
    if (c->type() != ColumnType::kI64) {
      return common::Status::Unimplemented("group keys must be i64 columns");
    }
    key_cols.push_back(c);
  }

  std::vector<AggExpr> aggs = node.agg.aggs;
  if (aggs.empty()) aggs.push_back(AggExpr{AggFn::kCount, ""});
  std::vector<const Column*> agg_cols(aggs.size(), nullptr);
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].column.empty()) {
      if (aggs[a].fn != AggFn::kCount) {
        return common::Status::InvalidArgument(
            "aggregate without input column must be COUNT(*)");
      }
      continue;
    }
    agg_cols[a] = input.FindColumn(aggs[a].column);
    if (agg_cols[a] == nullptr) {
      return MissingColumn(aggs[a].column, "aggregate input");
    }
  }

  GroupIndex index;
  index.Build(key_cols, rows, options_.hash_seed);
  // A global aggregate (no keys) over zero rows still yields one row of
  // identities: count 0, sum 0, avg 0, min/max 0. This engine has no
  // NULLs; both executors implement exactly this convention.
  const bool global_empty = key_cols.empty() && rows == 0;
  const size_t groups = global_empty ? 1 : index.num_groups();
  const auto& group_of_row = index.group_of_row();

  ColumnTable out("agg_" + input.name());
  for (size_t k = 0; k < key_cols.size(); ++k) {
    Column keys = Column::I64(key_cols[k]->name());
    keys.Reserve(groups);
    for (size_t g = 0; g < groups; ++g) {
      keys.AppendI64(key_cols[k]->I64At(index.representative_row()[g]));
    }
    out.AddColumn(std::move(keys));
  }

  // Per-group counts, shared by count/avg.
  std::vector<int64_t> counts(groups, 0);
  for (size_t r = 0; r < rows; ++r) ++counts[group_of_row[r]];

  for (size_t a = 0; a < aggs.size(); ++a) {
    const AggExpr& spec = aggs[a];
    const Column* in = agg_cols[a];
    const ColumnType in_type =
        in == nullptr ? ColumnType::kI64 : in->type();
    Column result(spec.OutputName(), AggOutputType(spec.fn, in_type));
    result.Resize(groups);
    switch (spec.fn) {
      case AggFn::kCount: {
        for (size_t g = 0; g < groups; ++g) result.I64At(g) = counts[g];
        break;
      }
      case AggFn::kSum: {
        if (in_type == ColumnType::kI64) {
          // Unsigned accumulation: overflow-adjacent data wraps mod 2^64
          // (defined, and congruent to the signed sum) instead of UB.
          std::vector<uint64_t> sums(groups, 0);
          const int64_t* v = in->i64_data();
          for (size_t r = 0; r < rows; ++r) {
            sums[group_of_row[r]] += static_cast<uint64_t>(v[r]);
          }
          for (size_t g = 0; g < groups; ++g) {
            result.I64At(g) = static_cast<int64_t>(sums[g]);
          }
        } else {
          // Row-order accumulation: the defined (and bit-reproducible)
          // semantics of SUM over doubles.
          std::vector<double> sums(groups, 0.0);
          const double* v = in->f64_data();
          for (size_t r = 0; r < rows; ++r) sums[group_of_row[r]] += v[r];
          for (size_t g = 0; g < groups; ++g) result.F64At(g) = sums[g];
        }
        break;
      }
      case AggFn::kAvg: {
        if (in_type == ColumnType::kI64) {
          std::vector<uint64_t> sums(groups, 0);
          const int64_t* v = in->i64_data();
          for (size_t r = 0; r < rows; ++r) {
            sums[group_of_row[r]] += static_cast<uint64_t>(v[r]);
          }
          for (size_t g = 0; g < groups; ++g) {
            result.F64At(g) =
                counts[g] == 0
                    ? 0.0
                    : static_cast<double>(static_cast<int64_t>(sums[g])) /
                          static_cast<double>(counts[g]);
          }
        } else {
          std::vector<double> sums(groups, 0.0);
          const double* v = in->f64_data();
          for (size_t r = 0; r < rows; ++r) sums[group_of_row[r]] += v[r];
          for (size_t g = 0; g < groups; ++g) {
            result.F64At(g) = counts[g] == 0
                                  ? 0.0
                                  : sums[g] / static_cast<double>(counts[g]);
          }
        }
        break;
      }
      case AggFn::kMin:
      case AggFn::kMax: {
        const bool is_min = spec.fn == AggFn::kMin;
        if (in_type == ColumnType::kI64) {
          std::vector<int64_t> best(groups, 0);
          std::vector<bool> seen(groups, false);
          const int64_t* v = in->i64_data();
          for (size_t r = 0; r < rows; ++r) {
            const uint32_t g = group_of_row[r];
            if (!seen[g] || (is_min ? v[r] < best[g] : v[r] > best[g])) {
              best[g] = v[r];
              seen[g] = true;
            }
          }
          for (size_t g = 0; g < groups; ++g) result.I64At(g) = best[g];
        } else {
          std::vector<double> best(groups, 0.0);
          std::vector<bool> seen(groups, false);
          const double* v = in->f64_data();
          for (size_t r = 0; r < rows; ++r) {
            const uint32_t g = group_of_row[r];
            if (!seen[g] || (is_min ? v[r] < best[g] : v[r] > best[g])) {
              best[g] = v[r];
              seen[g] = true;
            }
          }
          for (size_t g = 0; g < groups; ++g) result.F64At(g) = best[g];
        }
        break;
      }
    }
    out.AddColumn(std::move(result));
  }
  return out;
}

common::Result<ColumnTable> RealExecutor::ExecSort(const PlanNode& node,
                                                   ColumnTable input) const {
  std::vector<const Column*> sort_cols;
  for (const std::string& name : node.columns) {
    const Column* c = input.FindColumn(name);
    if (c == nullptr) return MissingColumn(name, "sort input");
    sort_cols.push_back(c);
  }
  const size_t rows = input.num_rows();
  common::AlignedBuffer<uint32_t> order(rows);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     for (const Column* c : sort_cols) {
                       if (c->type() == ColumnType::kI64) {
                         if (c->I64At(a) != c->I64At(b)) {
                           return c->I64At(a) < c->I64At(b);
                         }
                       } else {
                         if (c->F64At(a) != c->F64At(b)) {
                           return c->F64At(a) < c->F64At(b);
                         }
                       }
                     }
                     return false;
                   });
  common::ThreadPool& pool = options_.pool != nullptr
                                 ? *options_.pool
                                 : common::ThreadPool::Global();
  ColumnTable out(input.name());
  for (const Column& c : input.columns()) {
    Column gathered;
    GatherColumn(c, order.data(), rows, pool, &gathered);
    out.AddColumn(std::move(gathered));
  }
  return out;
}

common::Result<ColumnTable> RealExecutor::ExecUnion(const PlanNode& node,
                                                    ColumnTable left,
                                                    ColumnTable right) const {
  (void)node;
  if (left.num_columns() != right.num_columns()) {
    return common::Status::InvalidArgument("union schema mismatch");
  }
  for (size_t i = 0; i < left.num_columns(); ++i) {
    if (left.ColumnAt(i).name() != right.ColumnAt(i).name() ||
        left.ColumnAt(i).type() != right.ColumnAt(i).type()) {
      return common::Status::InvalidArgument("union schema mismatch");
    }
  }
  ColumnTable out(left.name());
  for (size_t i = 0; i < left.num_columns(); ++i) {
    Column c = left.ColumnAt(i);
    const Column& rc = right.ColumnAt(i);
    for (size_t r = 0; r < rc.size(); ++r) c.AppendFrom(rc, r);
    out.AddColumn(std::move(c));
  }
  return out;
}

}  // namespace ads::engine
