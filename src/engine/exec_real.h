#ifndef ADS_ENGINE_EXEC_REAL_H_
#define ADS_ENGINE_EXEC_REAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/plan.h"
#include "engine/table.h"
#include "telemetry/span.h"

namespace ads::engine {

/// Measured execution of one operator: what the learned components can
/// now score against, instead of the simulated stage-cost model.
struct OperatorStats {
  OpType op = OpType::kScan;
  /// Identity: table name, join keys, group-key count — never timing.
  std::string detail;
  /// Sum of child output rows (0 for scans).
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  /// Optimizer annotations copied from the plan node, so estimated vs
  /// actual cardinality lines up without re-walking the plan.
  double est_card = 0.0;
  double true_card = 0.0;
  /// Measured wall-clock seconds for this operator.
  double seconds = 0.0;
};

/// Result of really executing a plan.
struct ExecResult {
  ColumnTable table;
  /// Post-order (children before parents), one entry per plan node.
  std::vector<OperatorStats> operators;
  double total_seconds = 0.0;
};

struct RealExecOptions {
  /// Pool for the parallel kernels; nullptr means ThreadPool::Global().
  common::ThreadPool* pool = nullptr;
  /// Seed for join/group hashing. Policy: one fixed seed per executor —
  /// never derived from data or time — so a plan re-executed on the same
  /// store is bit-identical, across runs and across ADS_THREADS.
  uint64_t hash_seed = 0x8f3a96cd15ce1bd3ull;
};

/// Vectorized columnar executor over a TableStore.
///
/// Supported plan shapes: Scan (with optional ProjectIntoScan column
/// narrowing), Filter, Project, inner equi-Join on i64 keys, Aggregate
/// (group keys i64; sum/count/avg/min/max per AggSpec::aggs, bare
/// COUNT(*) when empty), Sort (ascending, stable), Union (same schema).
/// Unsupported shapes — the off-by-default EagerAggregation partial
/// aggregates and ContradictionToEmpty's "<empty>" relation — fail with
/// a clean Status instead of executing wrong.
///
/// Output order is fully defined (see DESIGN.md §15), so results are
/// exactly comparable against the row-at-a-time ReferenceExecutor.
///
/// With a tracer, records one "operator" span per plan node (children
/// nested under parents) with deterministic identity attributes
/// (rows_in/rows_out/detail); timestamps are measured seconds from the
/// start of Execute.
class RealExecutor {
 public:
  explicit RealExecutor(const TableStore* store,
                        RealExecOptions options = RealExecOptions());

  common::Result<ExecResult> Execute(
      const PlanNode& plan, telemetry::Tracer* tracer = nullptr,
      telemetry::SpanId parent = telemetry::kNoSpan) const;

 private:
  struct ExecContext;
  common::Result<ColumnTable> Exec(const PlanNode& node, ExecContext& ctx,
                                   telemetry::SpanId parent) const;
  common::Result<ColumnTable> ExecScan(const PlanNode& node) const;
  common::Result<ColumnTable> ExecFilter(const PlanNode& node,
                                         ColumnTable input) const;
  common::Result<ColumnTable> ExecProject(const PlanNode& node,
                                          ColumnTable input) const;
  common::Result<ColumnTable> ExecJoin(const PlanNode& node,
                                       ColumnTable left,
                                       ColumnTable right) const;
  common::Result<ColumnTable> ExecAggregate(const PlanNode& node,
                                            ColumnTable input) const;
  common::Result<ColumnTable> ExecSort(const PlanNode& node,
                                       ColumnTable input) const;
  common::Result<ColumnTable> ExecUnion(const PlanNode& node,
                                        ColumnTable left,
                                        ColumnTable right) const;

  const TableStore* store_;
  RealExecOptions options_;
};

}  // namespace ads::engine

#endif  // ADS_ENGINE_EXEC_REAL_H_
