#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace ads::engine {

double JobRun::PeakTempOnBusiestMachine() const {
  double mx = 0.0;
  for (const auto& [machine, peak] : peak_temp_bytes) mx = std::max(mx, peak);
  return mx;
}

namespace {

int TasksFor(const Stage& stage, const ExecutorOptions& opt) {
  return std::max(1,
                  static_cast<int>(std::ceil(stage.work / opt.work_per_task)));
}

/// Schedules a subset of stages (rerun[s] == true) and returns their
/// per-stage runs. Inputs outside the subset are treated as available at
/// time zero (their outputs already exist).
std::vector<StageRun> Schedule(const StageGraph& graph,
                               const std::vector<bool>& include,
                               const ExecutorOptions& opt, common::Rng& rng) {
  int total_slots = opt.machines * opt.slots_per_machine;
  std::vector<double> end_time(graph.stages.size(), 0.0);
  std::vector<StageRun> runs;
  for (const Stage& s : graph.stages) {  // ids are topological
    if (!include[static_cast<size_t>(s.id)]) continue;
    double ready = 0.0;
    for (int in : s.inputs) {
      ready = std::max(ready, end_time[static_cast<size_t>(in)]);
    }
    int tasks = TasksFor(s, opt);
    int parallelism = std::min(tasks, total_slots);
    double duration = s.work * opt.seconds_per_work /
                      static_cast<double>(parallelism);
    // Task waves: with more tasks than slots, the last wave is partial.
    duration *= std::ceil(static_cast<double>(tasks) /
                          static_cast<double>(parallelism)) *
                static_cast<double>(parallelism) / static_cast<double>(tasks);
    if (opt.noise > 0.0) {
      duration *= rng.Uniform(1.0 - opt.noise, 1.0 + opt.noise);
    }
    StageRun run;
    run.stage = s.id;
    run.start = ready;
    run.end = ready + duration;
    run.tasks = tasks;
    run.output_machine =
        static_cast<int>(static_cast<uint64_t>(s.id) * 2654435761ULL %
                         static_cast<uint64_t>(opt.machines));
    end_time[static_cast<size_t>(s.id)] = run.end;
    runs.push_back(run);
  }
  return runs;
}

}  // namespace

JobRun JobSimulator::Execute(const StageGraph& graph, uint64_t seed,
                             const std::set<int>& checkpointed) const {
  ADS_CHECK(options_.machines > 0) << "executor needs machines";
  common::Rng rng(seed);
  std::vector<bool> all(graph.stages.size(), true);
  JobRun result;
  result.stage_runs = Schedule(graph, all, options_, rng);

  std::vector<double> end_time(graph.stages.size(), 0.0);
  for (const StageRun& r : result.stage_runs) {
    end_time[static_cast<size_t>(r.stage)] = r.end;
    result.makespan = std::max(result.makespan, r.end);
    result.total_compute +=
        graph.stages[static_cast<size_t>(r.stage)].work *
        options_.seconds_per_work;
  }

  // Temp-storage occupancy: a stage's shuffle output lives on its output
  // machine from the stage's end until its last consumer ends. Checkpointed
  // outputs are persisted durably at stage end, so the temp copy is freed
  // immediately (modeled as zero residency). The final stage's output is
  // the job result, not temp.
  auto consumers = graph.Consumers();
  struct TempEvent {
    double time;
    int machine;
    double delta;
  };
  std::vector<TempEvent> events;
  for (const StageRun& r : result.stage_runs) {
    const Stage& s = graph.stages[static_cast<size_t>(r.stage)];
    if (s.id == graph.final_stage || s.output_bytes <= 0.0) continue;
    if (checkpointed.count(s.id) > 0) continue;
    double freed_at = r.end;
    for (int c : consumers[static_cast<size_t>(s.id)]) {
      freed_at = std::max(freed_at, end_time[static_cast<size_t>(c)]);
    }
    events.push_back({r.end, r.output_machine, s.output_bytes});
    events.push_back({freed_at, r.output_machine, -s.output_bytes});
  }
  std::sort(events.begin(), events.end(), [](const TempEvent& a,
                                             const TempEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.delta < b.delta;  // frees before allocs at equal times
  });
  std::map<int, double> current;
  for (const TempEvent& e : events) {
    double& cur = current[e.machine];
    cur += e.delta;
    double& peak = result.peak_temp_bytes[e.machine];
    peak = std::max(peak, cur);
  }
  for (const auto& [machine, peak] : result.peak_temp_bytes) {
    if (peak > options_.temp_capacity_bytes) ++result.temp_overflows;
  }
  return result;
}

double JobSimulator::RestartTime(const StageGraph& graph, uint64_t seed,
                                 const std::set<int>& checkpointed) const {
  common::Rng rng(seed);
  std::vector<bool> rerun = graph.MustRerun(checkpointed);
  std::vector<StageRun> runs = Schedule(graph, rerun, options_, rng);
  double makespan = 0.0;
  for (const StageRun& r : runs) makespan = std::max(makespan, r.end);
  return makespan;
}

double JobSimulator::ExpectedRuntimeWithFailures(
    const StageGraph& graph, uint64_t seed, double failures_per_hour,
    const std::set<int>& checkpointed, int trials) const {
  ADS_CHECK(trials > 0) << "need at least one trial";
  common::Rng rng(seed);
  // Baseline schedule (deterministic modulo noise; reuse one run).
  JobRun base = Execute(graph, seed, checkpointed);
  std::vector<double> end_time(graph.stages.size(), 0.0);
  for (const StageRun& r : base.stage_runs) {
    end_time[static_cast<size_t>(r.stage)] = r.end;
  }
  double rate_per_sec = failures_per_hour / 3600.0;
  double total = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    double t_fail = rate_per_sec > 0.0
                        ? rng.Exponential(rate_per_sec)
                        : std::numeric_limits<double>::infinity();
    if (t_fail >= base.makespan) {
      total += base.makespan;
      continue;
    }
    // Everything not (checkpointed AND completed by t_fail) re-executes;
    // the schedule restarts from scratch over that set.
    std::vector<bool> include(graph.stages.size(), true);
    for (const Stage& s : graph.stages) {
      if (checkpointed.count(s.id) > 0 &&
          end_time[static_cast<size_t>(s.id)] <= t_fail) {
        include[static_cast<size_t>(s.id)] = false;
      }
    }
    common::Rng retry_rng(seed + static_cast<uint64_t>(trial) * 977 + 1);
    std::vector<StageRun> runs = Schedule(graph, include, options_, retry_rng);
    double recovery = 0.0;
    for (const StageRun& r : runs) recovery = std::max(recovery, r.end);
    total += t_fail + recovery;
  }
  return total / static_cast<double>(trials);
}

}  // namespace ads::engine
