#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/event_queue.h"
#include "common/logging.h"

namespace ads::engine {

double JobRun::PeakTempOnBusiestMachine() const {
  double mx = 0.0;
  for (const auto& [machine, peak] : peak_temp_bytes) mx = std::max(mx, peak);
  return mx;
}

namespace {

int TasksFor(const Stage& stage, const ExecutorOptions& opt) {
  return std::max(1,
                  static_cast<int>(std::ceil(stage.work / opt.work_per_task)));
}

std::string JoinInts(const std::vector<int>& values) {
  std::string out;
  for (int v : values) {
    if (!out.empty()) out += ",";
    out += std::to_string(v);
  }
  return out;
}

std::string StageSpanName(const Stage& stage) {
  return stage.label.empty() ? "stage-" + std::to_string(stage.id)
                             : stage.label;
}

/// Schedules a subset of stages (rerun[s] == true) and returns their
/// per-stage runs. Inputs outside the subset are treated as available at
/// time zero (their outputs already exist).
std::vector<StageRun> Schedule(const StageGraph& graph,
                               const std::vector<bool>& include,
                               const ExecutorOptions& opt, common::Rng& rng) {
  int total_slots = opt.machines * opt.slots_per_machine;
  std::vector<double> end_time(graph.stages.size(), 0.0);
  std::vector<StageRun> runs;
  for (const Stage& s : graph.stages) {  // ids are topological
    if (!include[static_cast<size_t>(s.id)]) continue;
    double ready = 0.0;
    for (int in : s.inputs) {
      ready = std::max(ready, end_time[static_cast<size_t>(in)]);
    }
    int tasks = TasksFor(s, opt);
    int parallelism = std::min(tasks, total_slots);
    double duration = s.work * opt.seconds_per_work /
                      static_cast<double>(parallelism);
    // Task waves: with more tasks than slots, the last wave is partial.
    duration *= std::ceil(static_cast<double>(tasks) /
                          static_cast<double>(parallelism)) *
                static_cast<double>(parallelism) / static_cast<double>(tasks);
    if (opt.noise > 0.0) {
      duration *= rng.Uniform(1.0 - opt.noise, 1.0 + opt.noise);
    }
    StageRun run;
    run.stage = s.id;
    run.start = ready;
    run.end = ready + duration;
    run.tasks = tasks;
    run.output_machine =
        static_cast<int>(static_cast<uint64_t>(s.id) * 2654435761ULL %
                         static_cast<uint64_t>(opt.machines));
    end_time[static_cast<size_t>(s.id)] = run.end;
    runs.push_back(run);
  }
  return runs;
}

}  // namespace

JobRun JobSimulator::Execute(const StageGraph& graph, uint64_t seed,
                             const std::set<int>& checkpointed,
                             telemetry::Tracer* tracer) const {
  ADS_CHECK(options_.machines > 0) << "executor needs machines";
  common::Rng rng(seed);
  std::vector<bool> all(graph.stages.size(), true);
  JobRun result;
  result.stage_runs = Schedule(graph, all, options_, rng);

  std::vector<double> end_time(graph.stages.size(), 0.0);
  for (const StageRun& r : result.stage_runs) {
    end_time[static_cast<size_t>(r.stage)] = r.end;
    result.makespan = std::max(result.makespan, r.end);
    result.total_compute +=
        graph.stages[static_cast<size_t>(r.stage)].work *
        options_.seconds_per_work;
  }

  if (tracer != nullptr) {
    telemetry::SpanId job =
        tracer->StartSpan("job", "job", telemetry::kNoSpan, 0.0);
    tracer->Annotate(job, "stages", std::to_string(graph.stages.size()));
    for (const StageRun& r : result.stage_runs) {  // stage (topological) order
      const Stage& s = graph.stages[static_cast<size_t>(r.stage)];
      telemetry::SpanId span =
          tracer->StartSpan("stage", StageSpanName(s), job, r.start);
      tracer->Annotate(span, "stage", std::to_string(s.id));
      tracer->Annotate(span, "inputs", JoinInts(s.inputs));
      tracer->Annotate(span, "tasks", std::to_string(r.tasks));
      if (checkpointed.count(s.id) > 0) {
        tracer->Annotate(span, "checkpointed", "true");
      }
      tracer->EndSpan(span, r.end);
    }
    tracer->EndSpan(job, result.makespan);
  }

  // Temp-storage occupancy: a stage's shuffle output lives on its output
  // machine from the stage's end until its last consumer ends. Checkpointed
  // outputs are persisted durably at stage end, so the temp copy is freed
  // immediately (modeled as zero residency). The final stage's output is
  // the job result, not temp.
  auto consumers = graph.Consumers();
  struct TempEvent {
    double time;
    int machine;
    double delta;
  };
  std::vector<TempEvent> events;
  for (const StageRun& r : result.stage_runs) {
    const Stage& s = graph.stages[static_cast<size_t>(r.stage)];
    if (s.id == graph.final_stage || s.output_bytes <= 0.0) continue;
    if (checkpointed.count(s.id) > 0) continue;
    double freed_at = r.end;
    for (int c : consumers[static_cast<size_t>(s.id)]) {
      freed_at = std::max(freed_at, end_time[static_cast<size_t>(c)]);
    }
    events.push_back({r.end, r.output_machine, s.output_bytes});
    events.push_back({freed_at, r.output_machine, -s.output_bytes});
  }
  std::sort(events.begin(), events.end(), [](const TempEvent& a,
                                             const TempEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.delta < b.delta;  // frees before allocs at equal times
  });
  std::map<int, double> current;
  for (const TempEvent& e : events) {
    double& cur = current[e.machine];
    cur += e.delta;
    double& peak = result.peak_temp_bytes[e.machine];
    peak = std::max(peak, cur);
  }
  for (const auto& [machine, peak] : result.peak_temp_bytes) {
    if (peak > options_.temp_capacity_bytes) ++result.temp_overflows;
  }
  return result;
}

double JobSimulator::RestartTime(const StageGraph& graph, uint64_t seed,
                                 const std::set<int>& checkpointed) const {
  common::Rng rng(seed);
  std::vector<bool> rerun = graph.MustRerun(checkpointed);
  std::vector<StageRun> runs = Schedule(graph, rerun, options_, rng);
  double makespan = 0.0;
  for (const StageRun& r : runs) makespan = std::max(makespan, r.end);
  return makespan;
}

namespace {

/// Derives an independent deterministic stream for one purpose of the
/// chaos simulation (failure process, per-attempt noise, stragglers), so
/// enabling one fault mechanism never perturbs the draws of another.
uint64_t ChaosStreamSeed(uint64_t seed, uint64_t purpose, uint64_t a = 0,
                         uint64_t b = 0) {
  uint64_t h = seed * 0x9e3779b97f4a7c15ULL;
  h ^= (purpose + 0x6a09e667f3bcc909ULL) * 0xff51afd7ed558ccdULL;
  h ^= (a + 1) * 0xc4ceb9fe1a85ec53ULL;
  h ^= (b + 1) * 0x2545f4914f6cdd1dULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

ChaosRun JobSimulator::ExecuteWithFaults(
    const StageGraph& graph, uint64_t seed, const FaultOptions& faults,
    const std::set<int>& checkpointed, telemetry::Tracer* tracer) const {
  ADS_CHECK(options_.machines > 0) << "executor needs machines";
  ADS_CHECK(graph.final_stage >= 0) << "graph has no final stage";
  const size_t n = graph.stages.size();
  const int machines = options_.machines;
  const int slots_per_machine = options_.slots_per_machine;

  // Attempt-0 noise replays the exact draw sequence of Execute()'s
  // Schedule(), so a zero-fault run is bit-identical to the failure-free
  // simulator. Re-executions draw from per-(stage, attempt) streams.
  std::vector<double> base_noise(n, 1.0);
  {
    common::Rng rng(seed);
    if (options_.noise > 0.0) {
      for (size_t i = 0; i < n; ++i) {
        base_noise[i] = rng.Uniform(1.0 - options_.noise, 1.0 + options_.noise);
      }
    }
  }

  enum class Phase { kWaiting, kRunning, kDone };
  struct StageState {
    Phase phase = Phase::kWaiting;
    bool output_available = false;
    int output_machine = -1;  // -1 = durable (checkpoint / job result)
    int attempt = 0;
    int epoch = 0;  // invalidates completion events of killed executions
    double start = 0.0;
    double end = 0.0;
    int parallelism = 1;
    std::vector<int> footprint;  // machines hosting this execution
    // Tracing state (all zero when untraced).
    telemetry::SpanId span = telemetry::kNoSpan;          // stage span
    telemetry::SpanId attempt_span = telemetry::kNoSpan;  // open execution
    double span_end = 0.0;  // last activity; stage spans close here
  };
  std::vector<StageState> st(n);
  telemetry::SpanId job_span = telemetry::kNoSpan;
  if (tracer != nullptr) {
    job_span = tracer->StartSpan("job", "job", telemetry::kNoSpan, 0.0);
    tracer->Annotate(job_span, "stages", std::to_string(n));
  }
  std::vector<bool> machine_up(static_cast<size_t>(machines), true);
  int up_machines = machines;
  auto consumers = graph.Consumers();

  ChaosRun result;
  common::EventQueue events;
  common::Rng failure_rng(ChaosStreamSeed(seed, 1));
  const double rate =
      faults.failures_per_hour > 0.0 ? faults.failures_per_hour / 3600.0 : 0.0;
  int failures_drawn = 0;
  bool finished = false;

  auto up_slots = [&]() { return up_machines * slots_per_machine; };

  // Stages a correct recovery still needs: a stage must (re)run iff its
  // output is gone and some transitive consumer that has not yet consumed
  // it must run — lineage-based recomputation, the dynamic analogue of
  // StageGraph::MustRerun.
  auto compute_needed = [&]() {
    std::vector<bool> need(n, false);
    for (size_t ii = n; ii > 0; --ii) {
      int u = graph.stages[ii - 1].id;
      auto& s = st[static_cast<size_t>(u)];
      if (u == graph.final_stage) {
        need[static_cast<size_t>(u)] = s.phase != Phase::kDone;
        continue;
      }
      if (s.output_available) continue;  // output exists somewhere safe
      for (int c : consumers[static_cast<size_t>(u)]) {
        // A running consumer already read its inputs; only consumers that
        // still have to start keep their producers alive.
        if (need[static_cast<size_t>(c)] &&
            st[static_cast<size_t>(c)].phase != Phase::kRunning) {
          need[static_cast<size_t>(u)] = true;
          break;
        }
      }
    }
    return need;
  };

  std::function<void(double)> pump;  // declared first for recursion via events

  auto complete_stage = [&](int stage_id, int epoch, double t) {
    auto& s = st[static_cast<size_t>(stage_id)];
    if (finished || s.phase != Phase::kRunning || s.epoch != epoch) return;
    if (tracer != nullptr && s.attempt_span != telemetry::kNoSpan) {
      tracer->Annotate(s.attempt_span, "outcome", "ok");
      tracer->EndSpan(s.attempt_span, t);
      s.attempt_span = telemetry::kNoSpan;
      s.span_end = std::max(s.span_end, t);
    }
    s.phase = Phase::kDone;
    s.output_available = true;
    if (stage_id == graph.final_stage || checkpointed.count(stage_id) > 0) {
      s.output_machine = -1;  // durable
    } else {
      // Shuffle output parks on a stable-hashed machine; if that machine
      // is down, the output spills to the next live one (deterministic).
      int preferred = static_cast<int>(
          static_cast<uint64_t>(stage_id) * 2654435761ULL %
          static_cast<uint64_t>(machines));
      s.output_machine = -1;
      for (int k = 0; k < machines; ++k) {
        int m = (preferred + k) % machines;
        if (machine_up[static_cast<size_t>(m)]) {
          s.output_machine = m;
          break;
        }
      }
      if (s.output_machine < 0) s.output_available = false;  // fleet is down
    }
    if (stage_id == graph.final_stage) {
      finished = true;
      result.makespan = t;
      return;
    }
    pump(t);
  };

  pump = [&](double t) {
    if (finished || up_slots() <= 0) return;
    std::vector<bool> need = compute_needed();
    for (const Stage& stage : graph.stages) {  // ids are topological
      auto& s = st[static_cast<size_t>(stage.id)];
      if (s.phase == Phase::kRunning || !need[static_cast<size_t>(stage.id)]) {
        continue;
      }
      bool inputs_ready = true;
      for (int in : stage.inputs) {
        if (!st[static_cast<size_t>(in)].output_available) {
          inputs_ready = false;
          break;
        }
      }
      if (!inputs_ready) continue;
      const bool is_recompute = s.phase == Phase::kDone;
      if (is_recompute) {
        // Lost output being recomputed: the earlier execution is waste.
        ++result.recomputed_stages;
        result.wasted_compute += stage.work * options_.seconds_per_work;
      }
      int tasks = TasksFor(stage, options_);
      int parallelism = std::min(tasks, up_slots());
      double nominal = stage.work * options_.seconds_per_work /
                       static_cast<double>(parallelism);
      nominal *= std::ceil(static_cast<double>(tasks) /
                           static_cast<double>(parallelism)) *
                 static_cast<double>(parallelism) / static_cast<double>(tasks);
      double noise_mult = 1.0;
      if (options_.noise > 0.0) {
        if (s.attempt == 0) {
          noise_mult = base_noise[static_cast<size_t>(stage.id)];
        } else {
          common::Rng retry_rng(ChaosStreamSeed(
              seed, 2, static_cast<uint64_t>(stage.id),
              static_cast<uint64_t>(s.attempt)));
          noise_mult =
              retry_rng.Uniform(1.0 - options_.noise, 1.0 + options_.noise);
        }
      }
      double duration = nominal * noise_mult;
      bool straggled = false;
      double backup_launch = 0.0, backup_land = 0.0;  // speculation window
      if (faults.straggler_prob > 0.0) {
        common::Rng straggler_rng(ChaosStreamSeed(
            seed, 3, static_cast<uint64_t>(stage.id),
            static_cast<uint64_t>(s.attempt)));
        if (straggler_rng.Bernoulli(faults.straggler_prob)) {
          straggled = true;
          duration *= faults.straggler_mult;
          if (faults.speculation) {
            // A backup launches once the straggler overshoots the trigger
            // and needs one more nominal duration to finish; the stage
            // completes at whichever copy lands first. The loser's
            // slot-seconds are pure overhead.
            double backup_end = nominal * (faults.speculation_trigger + 1.0);
            if (backup_end < duration) {
              ++result.speculative_launches;
              result.wasted_compute +=
                  (backup_end - nominal * faults.speculation_trigger) *
                  static_cast<double>(parallelism);
              duration = backup_end;
              backup_launch = t + nominal * faults.speculation_trigger;
              backup_land = t + backup_end;
            }
          }
        }
      }
      s.phase = Phase::kRunning;
      ++s.attempt;
      ++s.epoch;
      s.output_available = false;
      s.start = t;
      s.end = t + duration;
      s.parallelism = parallelism;
      // Footprint: which machines host this execution (for failure
      // correlation). Deterministic: live machines scanned from a stable
      // per-stage offset.
      s.footprint.clear();
      int machines_needed = std::max(
          1, static_cast<int>(std::ceil(static_cast<double>(parallelism) /
                                        static_cast<double>(
                                            slots_per_machine))));
      int offset = static_cast<int>(
          static_cast<uint64_t>(stage.id) * 2654435761ULL %
          static_cast<uint64_t>(machines));
      for (int k = 0; k < machines &&
                      static_cast<int>(s.footprint.size()) < machines_needed;
           ++k) {
        int m = (offset + k) % machines;
        if (machine_up[static_cast<size_t>(m)]) s.footprint.push_back(m);
      }
      if (tracer != nullptr) {
        if (s.span == telemetry::kNoSpan) {
          s.span = tracer->StartSpan("stage", StageSpanName(stage), job_span,
                                     t);
          tracer->Annotate(s.span, "stage", std::to_string(stage.id));
          tracer->Annotate(s.span, "inputs", JoinInts(stage.inputs));
          if (checkpointed.count(stage.id) > 0) {
            tracer->Annotate(s.span, "checkpointed", "true");
          }
        }
        // First execution is an "attempt"; re-deriving a lost completed
        // output is a "recompute"; re-running a killed execution is a
        // "retry". (`s.attempt` was already incremented for this run.)
        const char* attempt_kind =
            is_recompute ? "recompute" : (s.attempt > 1 ? "retry" : "attempt");
        s.attempt_span = tracer->StartSpan(
            attempt_kind, "exec-" + std::to_string(s.attempt), s.span, t);
        tracer->Annotate(s.attempt_span, "machines", JoinInts(s.footprint));
        if (straggled) tracer->Annotate(s.attempt_span, "straggler", "true");
        if (backup_land > 0.0) {
          telemetry::SpanId backup = tracer->StartSpan(
              "backup", "speculative-backup", s.attempt_span, backup_launch);
          tracer->EndSpan(backup, backup_land);
          tracer->Annotate(s.attempt_span, "speculation", "clipped");
        }
      }
      int stage_id = stage.id;
      int epoch = s.epoch;
      events.ScheduleAt(s.end, [&, stage_id, epoch](common::SimTime when) {
        complete_stage(stage_id, epoch, when);
      });
    }
  };

  std::function<void(int)> schedule_next_failure = [&](int victim) {
    events.ScheduleAfter(
        failure_rng.Exponential(rate), [&, victim](common::SimTime t) {
          if (finished) return;
          if (failures_drawn < faults.max_failures) {
            ++failures_drawn;
            schedule_next_failure(static_cast<int>(
                failure_rng.UniformInt(0, machines - 1)));
          }
          if (!machine_up[static_cast<size_t>(victim)]) return;  // already down
          ++result.failures;
          machine_up[static_cast<size_t>(victim)] = false;
          --up_machines;
          if (tracer != nullptr) {
            telemetry::SpanId outage = tracer->StartSpan(
                "outage", "machine-" + std::to_string(victim), job_span, t);
            tracer->EndSpan(outage, t + faults.recovery_seconds);
          }
          // Kill executions with tasks on the victim; their partial work
          // is lost.
          for (const Stage& stage : graph.stages) {
            auto& s = st[static_cast<size_t>(stage.id)];
            if (s.phase != Phase::kRunning) continue;
            if (std::find(s.footprint.begin(), s.footprint.end(), victim) ==
                s.footprint.end()) {
              continue;
            }
            double frac = s.end > s.start ? (t - s.start) / (s.end - s.start)
                                          : 1.0;
            result.wasted_compute +=
                stage.work * options_.seconds_per_work * std::max(0.0, frac);
            if (tracer != nullptr && s.attempt_span != telemetry::kNoSpan) {
              tracer->Annotate(s.attempt_span, "outcome", "killed");
              tracer->Annotate(s.attempt_span, "killed_by",
                               "machine-" + std::to_string(victim));
              tracer->EndSpan(s.attempt_span, t);
              s.attempt_span = telemetry::kNoSpan;
              s.span_end = std::max(s.span_end, t);
            }
            s.phase = Phase::kWaiting;
            ++s.epoch;  // orphan the in-flight completion event
          }
          // Wipe the temp outputs parked on the victim.
          for (const Stage& stage : graph.stages) {
            auto& s = st[static_cast<size_t>(stage.id)];
            if (s.phase == Phase::kDone && s.output_machine == victim) {
              s.output_available = false;
              s.output_machine = -1;
            }
          }
          events.ScheduleAfter(faults.recovery_seconds,
                               [&, victim](common::SimTime when) {
                                 if (machine_up[static_cast<size_t>(victim)]) {
                                   return;
                                 }
                                 machine_up[static_cast<size_t>(victim)] = true;
                                 ++up_machines;
                                 if (!finished) pump(when);
                               });
          pump(t);
        });
  };

  if (rate > 0.0 && faults.max_failures > 0) {
    ++failures_drawn;
    schedule_next_failure(
        static_cast<int>(failure_rng.UniformInt(0, machines - 1)));
  }

  pump(0.0);
  while (!finished && !events.empty()) events.Step();
  ADS_CHECK(finished) << "chaos run stalled before the final stage";
  result.total_compute = graph.TotalWork() * options_.seconds_per_work;
  if (tracer != nullptr) {
    // Close what the final stage's completion left open: executions of
    // side branches still running at makespan, then the stage and job
    // envelopes.
    for (auto& s : st) {
      if (s.attempt_span != telemetry::kNoSpan) {
        tracer->Annotate(s.attempt_span, "outcome", "unfinished");
        tracer->EndSpan(s.attempt_span, result.makespan);
        s.attempt_span = telemetry::kNoSpan;
        s.span_end = std::max(s.span_end, result.makespan);
      }
      if (s.span != telemetry::kNoSpan) {
        tracer->Annotate(s.span, "attempts", std::to_string(s.attempt));
        tracer->EndSpan(s.span, s.span_end);
      }
    }
    tracer->EndSpan(job_span, result.makespan);
  }
  return result;
}

double JobSimulator::ExpectedRuntimeWithFailures(
    const StageGraph& graph, uint64_t seed, double failures_per_hour,
    const std::set<int>& checkpointed, int trials) const {
  ADS_CHECK(trials > 0) << "need at least one trial";
  common::Rng rng(seed);
  // Baseline schedule (deterministic modulo noise; reuse one run).
  JobRun base = Execute(graph, seed, checkpointed);
  std::vector<double> end_time(graph.stages.size(), 0.0);
  for (const StageRun& r : base.stage_runs) {
    end_time[static_cast<size_t>(r.stage)] = r.end;
  }
  double rate_per_sec = failures_per_hour / 3600.0;
  double total = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    double t_fail = rate_per_sec > 0.0
                        ? rng.Exponential(rate_per_sec)
                        : std::numeric_limits<double>::infinity();
    if (t_fail >= base.makespan) {
      total += base.makespan;
      continue;
    }
    // Everything not (checkpointed AND completed by t_fail) re-executes;
    // the schedule restarts from scratch over that set.
    std::vector<bool> include(graph.stages.size(), true);
    for (const Stage& s : graph.stages) {
      if (checkpointed.count(s.id) > 0 &&
          end_time[static_cast<size_t>(s.id)] <= t_fail) {
        include[static_cast<size_t>(s.id)] = false;
      }
    }
    common::Rng retry_rng(seed + static_cast<uint64_t>(trial) * 977 + 1);
    std::vector<StageRun> runs = Schedule(graph, include, options_, retry_rng);
    double recovery = 0.0;
    for (const StageRun& r : runs) recovery = std::max(recovery, r.end);
    total += t_fail + recovery;
  }
  return total / static_cast<double>(trials);
}

}  // namespace ads::engine
