#ifndef ADS_ENGINE_EXECUTOR_H_
#define ADS_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "engine/stage_graph.h"
#include "telemetry/span.h"

namespace ads::engine {

struct ExecutorOptions {
  /// Machines available to the job (drives parallelism and temp placement).
  int machines = 16;
  /// Task slots per machine.
  int slots_per_machine = 4;
  /// Work units one task performs (stage tasks = ceil(work/this), >= 1).
  /// Ties parallelism to the data a stage actually processes.
  double work_per_task = 5.0;
  /// Seconds of runtime per unit of stage work at full parallelism.
  double seconds_per_work = 1.0;
  /// Multiplicative noise half-width on stage durations (0 = none).
  double noise = 0.02;
  /// Per-machine temporary storage capacity in bytes.
  double temp_capacity_bytes = 2.0e9;
};

/// Timing of one executed stage.
struct StageRun {
  int stage = 0;
  double start = 0.0;
  double end = 0.0;
  int tasks = 1;
  /// Machine hosting the stage's shuffle output.
  int output_machine = 0;
};

/// Fault model for the event-driven execution simulator.
struct FaultOptions {
  /// Cluster-wide machine-failure arrival rate (Poisson). 0 = no faults:
  /// ExecuteWithFaults degenerates to the failure-free schedule.
  double failures_per_hour = 0.0;
  /// Downtime before a failed machine's slots rejoin the cluster.
  double recovery_seconds = 120.0;
  /// Chance a stage execution straggles (a slow task wave), and how much
  /// slower it runs. Stragglers are what speculative re-execution clips.
  double straggler_prob = 0.0;
  double straggler_mult = 4.0;
  /// Speculative re-execution: when a stage runs past
  /// `speculation_trigger` times its nominal duration, a backup copy
  /// launches; the stage finishes at the earlier of the two.
  bool speculation = false;
  double speculation_trigger = 1.5;
  /// Safety cap on injected failures per run.
  int max_failures = 256;
};

/// Result of simulating one job execution under the fault model.
struct ChaosRun {
  double makespan = 0.0;
  /// Slot-seconds of useful work (equals the failure-free total).
  double total_compute = 0.0;
  /// Slot-seconds lost to failures: partial executions killed mid-flight
  /// plus completed work whose output was wiped and had to be recomputed.
  double wasted_compute = 0.0;
  /// Machine failures that actually hit the run.
  int failures = 0;
  /// Completed stages whose lost outputs were recomputed via lineage.
  int recomputed_stages = 0;
  /// Backup executions launched by speculation.
  int speculative_launches = 0;
};

/// Result of simulating one job execution.
struct JobRun {
  double makespan = 0.0;
  /// Total compute consumed (slot-seconds).
  double total_compute = 0.0;
  std::vector<StageRun> stage_runs;
  /// Peak temporary-storage bytes per machine over the job's lifetime.
  std::map<int, double> peak_temp_bytes;
  /// Machines whose peak temp usage exceeded capacity ("hotspots").
  int temp_overflows = 0;

  double PeakTempOnBusiestMachine() const;
};

/// Deterministic list-scheduling execution simulator for a stage DAG:
/// the SCOPE/Spark runtime stand-in.
///
/// - A stage becomes ready when its inputs finish; ready stages run in id
///   order, each using min(tasks, free slots) slots (gang-scheduled waves).
/// - Stage duration = work * seconds_per_work / parallelism, dilated when
///   the cluster is busy.
/// - A stage's output occupies temp storage on one machine (chosen by a
///   stable hash) from the stage's end until its last consumer finishes —
///   checkpointed stages release it as soon as the checkpoint is written.
class JobSimulator {
 public:
  explicit JobSimulator(ExecutorOptions options = ExecutorOptions())
      : options_(options) {}

  /// Executes the graph. `checkpointed`: stages whose output is persisted
  /// durably (frees its temp copy immediately and bounds restarts).
  /// With a tracer attached, records a job root span with one stage child
  /// span per stage (dataflow edges in the "inputs" attribute); tracing is
  /// passive and never perturbs the schedule or the RNG draws.
  JobRun Execute(const StageGraph& graph, uint64_t seed,
                 const std::set<int>& checkpointed = {},
                 telemetry::Tracer* tracer = nullptr) const;

  /// Wall-clock time to recover after a failure at the END of the job
  /// (worst case): re-execution of every MustRerun stage, scheduled on the
  /// same cluster.
  double RestartTime(const StageGraph& graph, uint64_t seed,
                     const std::set<int>& checkpointed = {}) const;

  /// Event-driven execution under the fault model: machine failures
  /// arrive as a Poisson process; a failure kills the stages running on
  /// the machine and wipes the non-checkpointed stage outputs parked
  /// there. Lost outputs are recomputed on demand via lineage (the
  /// StageGraph recompute logic restricted to what downstream stages
  /// still need); checkpointed outputs survive and bound the restart.
  /// Fully deterministic given (graph, seed, options): failure times,
  /// straggler draws and duration noise come from independent streams
  /// derived from `seed`. With an all-zero FaultOptions, the makespan is
  /// bit-identical to Execute().
  ///
  /// With a tracer attached, records the full causal story: job → stage
  /// spans, with one child span per execution ("attempt", then "retry"
  /// after a failure kill or "recompute" when lineage re-derives a lost
  /// output, plus "backup" children for speculative clips) and an
  /// "outage" child of the job per injected machine failure. Killed
  /// executions end at the kill time with outcome=killed.
  ChaosRun ExecuteWithFaults(const StageGraph& graph, uint64_t seed,
                             const FaultOptions& faults,
                             const std::set<int>& checkpointed = {},
                             telemetry::Tracer* tracer = nullptr) const;

  /// Fast analytical approximation of the expected wall-clock time of the
  /// job under random machine failures (Poisson with the given rate). A
  /// failure wipes all temporary storage: stages whose outputs were
  /// checkpointed (and had completed) survive; everything else
  /// re-executes. At most one failure per trial is modeled, so the
  /// estimate is accurate when failures are rare at job timescales
  /// (failure rate * makespan << 1) and optimistic otherwise — use
  /// ExecuteWithFaults for the exact multi-failure simulation.
  double ExpectedRuntimeWithFailures(const StageGraph& graph, uint64_t seed,
                                     double failures_per_hour,
                                     const std::set<int>& checkpointed = {},
                                     int trials = 64) const;

  const ExecutorOptions& options() const { return options_; }

 private:
  ExecutorOptions options_;
};

}  // namespace ads::engine

#endif  // ADS_ENGINE_EXECUTOR_H_
