#ifndef ADS_ENGINE_EXECUTOR_H_
#define ADS_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "engine/stage_graph.h"

namespace ads::engine {

struct ExecutorOptions {
  /// Machines available to the job (drives parallelism and temp placement).
  int machines = 16;
  /// Task slots per machine.
  int slots_per_machine = 4;
  /// Work units one task performs (stage tasks = ceil(work/this), >= 1).
  /// Ties parallelism to the data a stage actually processes.
  double work_per_task = 5.0;
  /// Seconds of runtime per unit of stage work at full parallelism.
  double seconds_per_work = 1.0;
  /// Multiplicative noise half-width on stage durations (0 = none).
  double noise = 0.02;
  /// Per-machine temporary storage capacity in bytes.
  double temp_capacity_bytes = 2.0e9;
};

/// Timing of one executed stage.
struct StageRun {
  int stage = 0;
  double start = 0.0;
  double end = 0.0;
  int tasks = 1;
  /// Machine hosting the stage's shuffle output.
  int output_machine = 0;
};

/// Result of simulating one job execution.
struct JobRun {
  double makespan = 0.0;
  /// Total compute consumed (slot-seconds).
  double total_compute = 0.0;
  std::vector<StageRun> stage_runs;
  /// Peak temporary-storage bytes per machine over the job's lifetime.
  std::map<int, double> peak_temp_bytes;
  /// Machines whose peak temp usage exceeded capacity ("hotspots").
  int temp_overflows = 0;

  double PeakTempOnBusiestMachine() const;
};

/// Deterministic list-scheduling execution simulator for a stage DAG:
/// the SCOPE/Spark runtime stand-in.
///
/// - A stage becomes ready when its inputs finish; ready stages run in id
///   order, each using min(tasks, free slots) slots (gang-scheduled waves).
/// - Stage duration = work * seconds_per_work / parallelism, dilated when
///   the cluster is busy.
/// - A stage's output occupies temp storage on one machine (chosen by a
///   stable hash) from the stage's end until its last consumer finishes —
///   checkpointed stages release it as soon as the checkpoint is written.
class JobSimulator {
 public:
  explicit JobSimulator(ExecutorOptions options = ExecutorOptions())
      : options_(options) {}

  /// Executes the graph. `checkpointed`: stages whose output is persisted
  /// durably (frees its temp copy immediately and bounds restarts).
  JobRun Execute(const StageGraph& graph, uint64_t seed,
                 const std::set<int>& checkpointed = {}) const;

  /// Wall-clock time to recover after a failure at the END of the job
  /// (worst case): re-execution of every MustRerun stage, scheduled on the
  /// same cluster.
  double RestartTime(const StageGraph& graph, uint64_t seed,
                     const std::set<int>& checkpointed = {}) const;

  /// Monte-Carlo expected wall-clock time of the job under random machine
  /// failures (Poisson with the given rate). A failure wipes all
  /// temporary storage: stages whose outputs were checkpointed (and had
  /// completed) survive; everything else re-executes. At most one failure
  /// per trial is modeled (failures are rare at job timescales).
  double ExpectedRuntimeWithFailures(const StageGraph& graph, uint64_t seed,
                                     double failures_per_hour,
                                     const std::set<int>& checkpointed = {},
                                     int trials = 64) const;

  const ExecutorOptions& options() const { return options_; }

 private:
  ExecutorOptions options_;
};

}  // namespace ads::engine

#endif  // ADS_ENGINE_EXECUTOR_H_
