#include "engine/expr.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace ads::engine {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLess:
      return "<";
    case CompareOp::kLessEqual:
      return "<=";
    case CompareOp::kEqual:
      return "=";
    case CompareOp::kGreater:
      return ">";
    case CompareOp::kGreaterEqual:
      return ">=";
  }
  return "?";
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // 64-bit FNV-1a step over the 8 bytes of `value`.
  uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t Predicate::TemplateHash() const {
  uint64_t h = HashString(column);
  h = HashCombine(h, static_cast<uint64_t>(op) + 0x9e37);
  return h;
}

uint64_t Predicate::StrictHash() const {
  uint64_t h = TemplateHash();
  uint64_t bits;
  static_assert(sizeof(double) == sizeof(uint64_t));
  std::memcpy(&bits, &value, sizeof(bits));
  return HashCombine(h, bits);
}

double UniformSelectivity(const ColumnSpec& column, CompareOp op,
                          double value) {
  double lo = column.min_value;
  double hi = column.max_value;
  if (hi <= lo) return 1.0;
  double frac = (value - lo) / (hi - lo);
  frac = std::clamp(frac, 0.0, 1.0);
  switch (op) {
    case CompareOp::kLess:
    case CompareOp::kLessEqual:
      return std::max(frac, 1.0 / static_cast<double>(
                                      std::max<size_t>(1, column.distinct_values)));
    case CompareOp::kGreater:
    case CompareOp::kGreaterEqual:
      return std::max(1.0 - frac,
                      1.0 / static_cast<double>(
                                std::max<size_t>(1, column.distinct_values)));
    case CompareOp::kEqual:
      return 1.0 / static_cast<double>(
                       std::max<size_t>(1, column.distinct_values));
  }
  return 1.0;
}

}  // namespace ads::engine
