#ifndef ADS_ENGINE_EXPR_H_
#define ADS_ENGINE_EXPR_H_

#include <cstdint>
#include <string>

#include "engine/catalog.h"

namespace ads::engine {

/// Comparison operators supported in filter predicates.
enum class CompareOp { kLess, kLessEqual, kEqual, kGreater, kGreaterEqual };

const char* CompareOpName(CompareOp op);

/// One column-vs-literal predicate.
///
/// `true_selectivity` is the ground truth set by the workload generator
/// ("nature"): it reflects skew and correlation the engine's statistics do
/// not capture. The engine's default estimator never reads it — it computes
/// its own estimate from the column stats under the uniformity assumption.
/// The execution simulator uses the truth.
struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kLessEqual;
  double value = 0.0;
  double true_selectivity = 1.0;

  /// Stable hash of the predicate shape WITHOUT the literal (used by
  /// template signatures — recurring jobs differ only in literals).
  uint64_t TemplateHash() const;
  /// Stable hash including the literal (strict signatures).
  uint64_t StrictHash() const;
};

/// The default estimator's per-predicate selectivity: assumes values are
/// uniform on [min, max] with `distinct_values` distinct points.
double UniformSelectivity(const ColumnSpec& column, CompareOp op,
                          double value);

/// FNV-1a style hash combiner used for plan signatures.
uint64_t HashCombine(uint64_t seed, uint64_t value);
uint64_t HashString(const std::string& s);

}  // namespace ads::engine

#endif  // ADS_ENGINE_EXPR_H_
