#include "engine/optimizer.h"

namespace ads::engine {

std::unique_ptr<PlanNode> Optimizer::Optimize(const PlanNode& logical,
                                              const RuleConfig& config) const {
  // Rewrite order: logical simplification, pushdowns, projection/sort
  // cleanup, then join shape, then physical decisions.
  static constexpr RuleId kOrder[] = {
      RuleId::kPredicateSimplify,    RuleId::kContradictionToEmpty,
      RuleId::kFilterMerge,          RuleId::kFilterPushdownProject,
      RuleId::kFilterPushdownJoin,   RuleId::kFilterPushdownUnion,
      RuleId::kFilterPushdownAggregate,
      RuleId::kProjectMerge,         RuleId::kProjectIntoScan,
      RuleId::kSortElimination,      RuleId::kJoinAssociativity,
      RuleId::kJoinCommute,          RuleId::kBroadcastJoin,
      RuleId::kEagerAggregation,
  };

  RuleContext ctx;
  ctx.catalog = catalog_;
  ctx.broadcast_threshold_bytes = options_.broadcast_threshold_bytes;

  std::unique_ptr<PlanNode> plan = logical.Clone();
  for (int pass = 0; pass < options_.max_passes; ++pass) {
    estimator_.Annotate(*plan);
    bool changed = false;
    for (RuleId id : kOrder) {
      if (!config.IsEnabled(id)) continue;
      plan = ApplyRule(id, std::move(plan), ctx, &changed);
    }
    if (!changed) break;
  }
  estimator_.Annotate(*plan);
  AnnotateTrueCardinality(*plan);
  return plan;
}

}  // namespace ads::engine
