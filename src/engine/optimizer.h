#ifndef ADS_ENGINE_OPTIMIZER_H_
#define ADS_ENGINE_OPTIMIZER_H_

#include <memory>

#include "engine/cardinality.h"
#include "engine/cost.h"
#include "engine/rules.h"

namespace ads::engine {

struct OptimizerOptions {
  /// Fixpoint iteration cap for the rewrite loop.
  int max_passes = 10;
  /// Broadcast-join threshold handed to the physical rules.
  double broadcast_threshold_bytes = 5.0e6;
};

/// Rule-driven query optimizer with the paper's two extension points:
/// an external cardinality provider (learned micromodels) and an external
/// rule configuration (steering). The optimizer itself stays unchanged as
/// learned components come and go — "minimize changes to the existing
/// optimizer and supplement it with learned components".
class Optimizer {
 public:
  explicit Optimizer(const Catalog* catalog,
                     OptimizerOptions options = OptimizerOptions())
      : catalog_(catalog), options_(options), estimator_(catalog) {}

  /// Installs (or clears, with nullptr) the learned cardinality source.
  void SetCardinalityProvider(const CardinalityProvider* provider) {
    estimator_.SetProvider(provider);
  }

  /// Optimizes a logical plan under the rule configuration. The input is
  /// not modified. The result carries fresh est_card and true_card
  /// annotations on every node.
  std::unique_ptr<PlanNode> Optimize(const PlanNode& logical,
                                     const RuleConfig& config) const;

  const DefaultCardinalityEstimator& estimator() const { return estimator_; }
  const Catalog* catalog() const { return catalog_; }

 private:
  const Catalog* catalog_;
  OptimizerOptions options_;
  DefaultCardinalityEstimator estimator_;
};

}  // namespace ads::engine

#endif  // ADS_ENGINE_OPTIMIZER_H_
