#include "engine/plan.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace ads::engine {

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kScan:
      return "Scan";
    case OpType::kFilter:
      return "Filter";
    case OpType::kProject:
      return "Project";
    case OpType::kJoin:
      return "Join";
    case OpType::kAggregate:
      return "Aggregate";
    case OpType::kSort:
      return "Sort";
    case OpType::kUnion:
      return "Union";
  }
  return "?";
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
      return "sum";
    case AggFn::kCount:
      return "count";
    case AggFn::kAvg:
      return "avg";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
  }
  return "?";
}

std::string AggExpr::OutputName() const {
  if (column.empty()) return "count_rows";
  return std::string(AggFnName(fn)) + "_" + column;
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->op = op;
  copy->table = table;
  copy->table_rows = table_rows;
  copy->predicates = predicates;
  copy->columns = columns;
  copy->row_width = row_width;
  copy->join = join;
  copy->agg = agg;
  copy->true_card = true_card;
  copy->est_card = est_card;
  for (const auto& child : children) {
    copy->children.push_back(child->Clone());
  }
  return copy;
}

namespace {

uint64_t SignatureOf(const PlanNode& node, bool strict) {
  uint64_t h = HashString(OpTypeName(node.op));
  switch (node.op) {
    case OpType::kScan:
      h = HashCombine(h, HashString(node.table));
      break;
    case OpType::kFilter: {
      // Order-insensitive combination so that logically equal predicate
      // sets hash equally.
      uint64_t acc = 0;
      for (const Predicate& p : node.predicates) {
        acc ^= strict ? p.StrictHash() : p.TemplateHash();
      }
      h = HashCombine(h, acc);
      break;
    }
    case OpType::kProject: {
      uint64_t acc = 0;
      for (const std::string& c : node.columns) acc ^= HashString(c);
      h = HashCombine(h, acc);
      break;
    }
    case OpType::kJoin:
      h = HashCombine(h, HashString(node.join.left_key));
      h = HashCombine(h, HashString(node.join.right_key));
      break;
    case OpType::kAggregate: {
      uint64_t acc = 0;
      for (const std::string& c : node.agg.group_keys) acc ^= HashString(c);
      // Aggregate functions fold into the same accumulator, so plans
      // without them (the pre-execution simulated path) hash as before.
      for (const AggExpr& a : node.agg.aggs) {
        acc ^= HashCombine(HashString(a.column),
                           static_cast<uint64_t>(a.fn) + 1);
      }
      h = HashCombine(h, acc);
      break;
    }
    case OpType::kSort: {
      uint64_t acc = 0;
      for (const std::string& c : node.columns) acc ^= HashString(c);
      h = HashCombine(h, acc);
      break;
    }
    case OpType::kUnion:
      break;
  }
  for (const auto& child : node.children) {
    h = HashCombine(h, SignatureOf(*child, strict));
  }
  return h;
}

}  // namespace

uint64_t PlanNode::StrictSignature() const { return SignatureOf(*this, true); }
uint64_t PlanNode::TemplateSignature() const {
  return SignatureOf(*this, false);
}

size_t PlanNode::NodeCount() const {
  size_t n = 1;
  for (const auto& child : children) n += child->NodeCount();
  return n;
}

int PlanNode::Depth() const {
  int d = 0;
  for (const auto& child : children) d = std::max(d, child->Depth());
  return d + 1;
}

void PlanNode::Visit(const std::function<void(const PlanNode&)>& fn) const {
  fn(*this);
  for (const auto& child : children) child->Visit(fn);
}

void PlanNode::VisitMutable(const std::function<void(PlanNode&)>& fn) {
  fn(*this);
  for (auto& child : children) child->VisitMutable(fn);
}

std::string PlanNode::ToString(int indent) const {
  std::ostringstream os;
  os << std::string(static_cast<size_t>(indent) * 2, ' ') << OpTypeName(op);
  switch (op) {
    case OpType::kScan:
      os << "(" << table << ")";
      break;
    case OpType::kFilter:
      os << "(";
      for (size_t i = 0; i < predicates.size(); ++i) {
        if (i > 0) os << " AND ";
        os << predicates[i].column << CompareOpName(predicates[i].op)
           << predicates[i].value;
      }
      os << ")";
      break;
    case OpType::kJoin:
      os << "(" << join.left_key << "=" << join.right_key << ", "
         << (join.strategy == JoinStrategy::kBroadcast ? "broadcast"
                                                       : "shuffle")
         << ")";
      break;
    case OpType::kAggregate:
      os << "(keys=" << agg.group_keys.size() << ")";
      break;
    default:
      break;
  }
  if (true_card > 0.0 || est_card > 0.0) {
    os << " [true=" << true_card << " est=" << est_card << "]";
  }
  os << "\n";
  for (const auto& child : children) {
    os << child->ToString(indent + 1);
  }
  return os.str();
}

std::unique_ptr<PlanNode> MakeScan(const TableSpec& table) {
  auto node = std::make_unique<PlanNode>();
  node->op = OpType::kScan;
  node->table = table.name;
  node->table_rows = table.rows;
  return node;
}

std::unique_ptr<PlanNode> MakeFilter(std::unique_ptr<PlanNode> child,
                                     std::vector<Predicate> predicates) {
  auto node = std::make_unique<PlanNode>();
  node->op = OpType::kFilter;
  node->predicates = std::move(predicates);
  node->row_width = child->row_width;
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> MakeProject(std::unique_ptr<PlanNode> child,
                                      std::vector<std::string> columns,
                                      double row_width) {
  auto node = std::make_unique<PlanNode>();
  node->op = OpType::kProject;
  node->columns = std::move(columns);
  node->row_width = row_width;
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> MakeJoin(std::unique_ptr<PlanNode> left,
                                   std::unique_ptr<PlanNode> right,
                                   JoinSpec join) {
  auto node = std::make_unique<PlanNode>();
  node->op = OpType::kJoin;
  node->join = std::move(join);
  node->row_width = left->row_width + right->row_width;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

std::unique_ptr<PlanNode> MakeAggregate(std::unique_ptr<PlanNode> child,
                                        AggSpec agg) {
  auto node = std::make_unique<PlanNode>();
  node->op = OpType::kAggregate;
  node->agg = std::move(agg);
  node->row_width = child->row_width * 0.5;
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> MakeUnion(std::unique_ptr<PlanNode> left,
                                    std::unique_ptr<PlanNode> right) {
  auto node = std::make_unique<PlanNode>();
  node->op = OpType::kUnion;
  node->row_width = std::max(left->row_width, right->row_width);
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

std::unique_ptr<PlanNode> MakeSort(std::unique_ptr<PlanNode> child,
                                   std::vector<std::string> columns) {
  auto node = std::make_unique<PlanNode>();
  node->op = OpType::kSort;
  node->columns = std::move(columns);
  node->row_width = child->row_width;
  node->children.push_back(std::move(child));
  return node;
}

void AnnotateTrueCardinality(PlanNode& node) {
  for (auto& child : node.children) AnnotateTrueCardinality(*child);
  switch (node.op) {
    case OpType::kScan:
      node.true_card = node.table_rows;
      break;
    case OpType::kFilter: {
      double sel = 1.0;
      for (const Predicate& p : node.predicates) sel *= p.true_selectivity;
      node.true_card = node.children[0]->true_card * sel;
      break;
    }
    case OpType::kProject:
    case OpType::kSort:
      node.true_card = node.children[0]->true_card;
      break;
    case OpType::kJoin:
      node.true_card = node.children[0]->true_card *
                       node.children[1]->true_card *
                       node.join.true_selectivity_factor;
      break;
    case OpType::kAggregate:
      node.true_card = node.children[0]->true_card * node.agg.true_distinct_ratio;
      break;
    case OpType::kUnion:
      node.true_card =
          node.children[0]->true_card + node.children[1]->true_card;
      break;
  }
  if (node.true_card < 1.0) node.true_card = 1.0;
}

}  // namespace ads::engine
