#ifndef ADS_ENGINE_PLAN_H_
#define ADS_ENGINE_PLAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/expr.h"

namespace ads::engine {

/// Logical/physical operator kinds. Physical distinctions that matter to
/// the cost model (hash vs broadcast join) live in JoinStrategy.
enum class OpType {
  kScan,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
  kUnion,
};

const char* OpTypeName(OpType op);

/// Physical join strategies the optimizer can choose between.
enum class JoinStrategy { kShuffleHash, kBroadcast };

/// Join parameters. `true_selectivity_factor` is ground truth set by the
/// generator: true join cardinality = |L| * |R| * factor.
struct JoinSpec {
  std::string left_key;
  std::string right_key;
  double true_selectivity_factor = 1e-6;
  JoinStrategy strategy = JoinStrategy::kShuffleHash;
};

/// Aggregate functions computed by an Aggregate node. Sums over integer
/// columns are exact; sums over doubles accumulate in input row order,
/// which is part of the operator's defined semantics (both the vectorized
/// and the reference executor implement exactly this order, so results are
/// bit-identical by construction).
enum class AggFn { kSum, kCount, kAvg, kMin, kMax };

const char* AggFnName(AggFn fn);

/// One aggregate output. `column` is the input column aggregated over;
/// empty means COUNT(*) (only valid with kCount). The output column is
/// named "<fn>_<column>" ("count_rows" for COUNT(*)).
struct AggExpr {
  AggFn fn = AggFn::kCount;
  std::string column;

  std::string OutputName() const;
};

/// Aggregation parameters. `true_distinct_ratio` is ground truth: output
/// rows = input rows * ratio. `aggs` lists the computed aggregates; an
/// empty list means a bare COUNT(*) (the pre-execution simulated path
/// never looked at aggregate functions, so old plans stay valid).
struct AggSpec {
  std::vector<std::string> group_keys;
  double true_distinct_ratio = 0.1;
  std::vector<AggExpr> aggs;
};

/// One node of a query plan tree.
///
/// Plans are mutable trees owned through unique_ptr; the optimizer rewrites
/// them in place or via Clone(). Cardinality annotations:
///  - true_card: ground-truth output rows, derived from the generator's
///    hidden selectivities (what actually happens at runtime);
///  - est_card: the optimizer's belief, filled in by an estimator.
struct PlanNode {
  OpType op = OpType::kScan;

  // Scan.
  std::string table;
  double table_rows = 0.0;  // copied from the catalog at build time

  // Filter.
  std::vector<Predicate> predicates;

  // Project.
  std::vector<std::string> columns;
  /// Bytes per output row after this operator (projection narrows rows).
  double row_width = 100.0;

  // Join / Aggregate.
  JoinSpec join;
  AggSpec agg;

  std::vector<std::unique_ptr<PlanNode>> children;

  // Annotations.
  double true_card = 0.0;
  double est_card = 0.0;

  /// Deep copy.
  std::unique_ptr<PlanNode> Clone() const;

  /// Structural hash including literals: identical recurring runs share it.
  uint64_t StrictSignature() const;
  /// Structural hash excluding literals: runs of the same script with
  /// different parameters share it (Peregrine templates, CloudViews).
  uint64_t TemplateSignature() const;

  size_t NodeCount() const;
  int Depth() const;

  /// Pre-order visit.
  void Visit(const std::function<void(const PlanNode&)>& fn) const;
  void VisitMutable(const std::function<void(PlanNode&)>& fn);

  /// Human-readable indented tree (for debugging and examples).
  std::string ToString(int indent = 0) const;
};

/// Builders for the common node shapes.
std::unique_ptr<PlanNode> MakeScan(const TableSpec& table);
std::unique_ptr<PlanNode> MakeFilter(std::unique_ptr<PlanNode> child,
                                     std::vector<Predicate> predicates);
std::unique_ptr<PlanNode> MakeProject(std::unique_ptr<PlanNode> child,
                                      std::vector<std::string> columns,
                                      double row_width);
std::unique_ptr<PlanNode> MakeJoin(std::unique_ptr<PlanNode> left,
                                   std::unique_ptr<PlanNode> right,
                                   JoinSpec join);
std::unique_ptr<PlanNode> MakeAggregate(std::unique_ptr<PlanNode> child,
                                        AggSpec agg);
std::unique_ptr<PlanNode> MakeUnion(std::unique_ptr<PlanNode> left,
                                    std::unique_ptr<PlanNode> right);
std::unique_ptr<PlanNode> MakeSort(std::unique_ptr<PlanNode> child,
                                   std::vector<std::string> columns);

/// Computes and annotates true_card on every node from the generator's
/// hidden selectivities (bottom-up).
void AnnotateTrueCardinality(PlanNode& node);

}  // namespace ads::engine

#endif  // ADS_ENGINE_PLAN_H_
