#include "engine/plan_io.h"

#include <map>
#include <sstream>
#include <vector>

namespace ads::engine {
namespace {

const char* OpTag(OpType op) { return OpTypeName(op); }

common::Result<OpType> ParseOp(const std::string& tag) {
  static const std::pair<const char*, OpType> kOps[] = {
      {"Scan", OpType::kScan},           {"Filter", OpType::kFilter},
      {"Project", OpType::kProject},     {"Join", OpType::kJoin},
      {"Aggregate", OpType::kAggregate}, {"Sort", OpType::kSort},
      {"Union", OpType::kUnion},
  };
  for (const auto& [name, op] : kOps) {
    if (tag == name) return op;
  }
  return common::Status::InvalidArgument("unknown operator tag: " + tag);
}

const char* CompareTag(CompareOp op) {
  switch (op) {
    case CompareOp::kLess:
      return "lt";
    case CompareOp::kLessEqual:
      return "le";
    case CompareOp::kEqual:
      return "eq";
    case CompareOp::kGreater:
      return "gt";
    case CompareOp::kGreaterEqual:
      return "ge";
  }
  return "?";
}

common::Result<CompareOp> ParseCompare(const std::string& tag) {
  if (tag == "lt") return CompareOp::kLess;
  if (tag == "le") return CompareOp::kLessEqual;
  if (tag == "eq") return CompareOp::kEqual;
  if (tag == "gt") return CompareOp::kGreater;
  if (tag == "ge") return CompareOp::kGreaterEqual;
  return common::Status::InvalidArgument("unknown comparison tag: " + tag);
}

std::vector<std::string> SplitList(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string JoinList(const std::vector<std::string>& items, char sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

void Emit(const PlanNode& node, int depth, std::ostringstream& os) {
  os << depth << " " << OpTag(node.op);
  os.precision(17);
  os << " width=" << node.row_width;
  os << " true_card=" << node.true_card;
  os << " est_card=" << node.est_card;
  switch (node.op) {
    case OpType::kScan:
      os << " table=" << node.table << " rows=" << node.table_rows;
      // Narrowed scans (ProjectIntoScan) carry the surviving columns.
      if (!node.columns.empty()) {
        os << " columns=" << JoinList(node.columns, ',');
      }
      break;
    case OpType::kFilter: {
      os << " preds=";
      for (size_t i = 0; i < node.predicates.size(); ++i) {
        const Predicate& p = node.predicates[i];
        if (i > 0) os << ";";
        os << p.column << ":" << CompareTag(p.op) << ":" << p.value << ":"
           << p.true_selectivity;
      }
      break;
    }
    case OpType::kProject:
      os << " columns=" << JoinList(node.columns, ',');
      break;
    case OpType::kJoin:
      os << " lkey=" << node.join.left_key << " rkey=" << node.join.right_key
         << " factor=" << node.join.true_selectivity_factor << " strategy="
         << (node.join.strategy == JoinStrategy::kBroadcast ? "broadcast"
                                                            : "shuffle");
      break;
    case OpType::kAggregate:
      os << " keys=" << JoinList(node.agg.group_keys, ',')
         << " ratio=" << node.agg.true_distinct_ratio;
      if (!node.agg.aggs.empty()) {
        os << " aggs=";
        for (size_t i = 0; i < node.agg.aggs.size(); ++i) {
          const AggExpr& a = node.agg.aggs[i];
          if (i > 0) os << ";";
          // COUNT(*) has no input column; "*" keeps the field non-empty.
          os << AggFnName(a.fn) << ":"
             << (a.column.empty() ? "*" : a.column);
        }
      }
      break;
    case OpType::kSort:
      os << " columns=" << JoinList(node.columns, ',');
      break;
    case OpType::kUnion:
      break;
  }
  os << "\n";
  for (const auto& child : node.children) {
    Emit(*child, depth + 1, os);
  }
}

struct ParsedLine {
  int depth = 0;
  OpType op = OpType::kScan;
  std::map<std::string, std::string> attrs;
};

common::Result<ParsedLine> ParseLine(const std::string& line) {
  std::istringstream is(line);
  ParsedLine out;
  std::string tag;
  if (!(is >> out.depth >> tag)) {
    return common::Status::InvalidArgument("malformed plan line: " + line);
  }
  auto op = ParseOp(tag);
  if (!op.ok()) return op.status();
  out.op = *op;
  std::string kv;
  while (is >> kv) {
    size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      return common::Status::InvalidArgument("malformed attribute: " + kv);
    }
    out.attrs[kv.substr(0, eq)] = kv.substr(eq + 1);
  }
  return out;
}

common::Result<std::unique_ptr<PlanNode>> Build(
    const std::vector<ParsedLine>& lines, size_t* index, int depth) {
  if (*index >= lines.size() || lines[*index].depth != depth) {
    return common::Status::InvalidArgument("plan tree structure mismatch");
  }
  const ParsedLine& line = lines[*index];
  ++*index;
  auto node = std::make_unique<PlanNode>();
  node->op = line.op;
  auto get = [&](const std::string& key) -> const std::string* {
    auto it = line.attrs.find(key);
    return it == line.attrs.end() ? nullptr : &it->second;
  };
  auto get_double = [&](const std::string& key, double* out) {
    const std::string* v = get(key);
    if (v == nullptr) return false;
    *out = std::strtod(v->c_str(), nullptr);
    return true;
  };
  get_double("width", &node->row_width);
  get_double("true_card", &node->true_card);
  get_double("est_card", &node->est_card);

  size_t expected_children = 0;
  switch (node->op) {
    case OpType::kScan: {
      const std::string* table = get("table");
      if (table == nullptr) {
        return common::Status::InvalidArgument("scan without table");
      }
      node->table = *table;
      get_double("rows", &node->table_rows);
      const std::string* columns = get("columns");
      if (columns != nullptr) node->columns = SplitList(*columns, ',');
      expected_children = 0;
      break;
    }
    case OpType::kFilter: {
      const std::string* preds = get("preds");
      if (preds == nullptr) {
        return common::Status::InvalidArgument("filter without preds");
      }
      for (const std::string& item : SplitList(*preds, ';')) {
        std::vector<std::string> parts = SplitList(item, ':');
        if (parts.size() != 4) {
          return common::Status::InvalidArgument("malformed predicate: " +
                                                 item);
        }
        Predicate p;
        p.column = parts[0];
        auto cmp = ParseCompare(parts[1]);
        if (!cmp.ok()) return cmp.status();
        p.op = *cmp;
        p.value = std::strtod(parts[2].c_str(), nullptr);
        p.true_selectivity = std::strtod(parts[3].c_str(), nullptr);
        node->predicates.push_back(std::move(p));
      }
      expected_children = 1;
      break;
    }
    case OpType::kProject: {
      const std::string* columns = get("columns");
      if (columns != nullptr) node->columns = SplitList(*columns, ',');
      expected_children = 1;
      break;
    }
    case OpType::kJoin: {
      const std::string* lkey = get("lkey");
      const std::string* rkey = get("rkey");
      if (lkey == nullptr || rkey == nullptr) {
        return common::Status::InvalidArgument("join without keys");
      }
      node->join.left_key = *lkey;
      node->join.right_key = *rkey;
      get_double("factor", &node->join.true_selectivity_factor);
      const std::string* strategy = get("strategy");
      node->join.strategy =
          strategy != nullptr && *strategy == "broadcast"
              ? JoinStrategy::kBroadcast
              : JoinStrategy::kShuffleHash;
      expected_children = 2;
      break;
    }
    case OpType::kAggregate: {
      const std::string* keys = get("keys");
      if (keys != nullptr) node->agg.group_keys = SplitList(*keys, ',');
      get_double("ratio", &node->agg.true_distinct_ratio);
      const std::string* aggs = get("aggs");
      if (aggs != nullptr) {
        for (const std::string& item : SplitList(*aggs, ';')) {
          std::vector<std::string> parts = SplitList(item, ':');
          if (parts.size() != 2) {
            return common::Status::InvalidArgument("malformed aggregate: " +
                                                   item);
          }
          AggExpr a;
          if (parts[0] == "sum") {
            a.fn = AggFn::kSum;
          } else if (parts[0] == "count") {
            a.fn = AggFn::kCount;
          } else if (parts[0] == "avg") {
            a.fn = AggFn::kAvg;
          } else if (parts[0] == "min") {
            a.fn = AggFn::kMin;
          } else if (parts[0] == "max") {
            a.fn = AggFn::kMax;
          } else {
            return common::Status::InvalidArgument("unknown aggregate fn: " +
                                                   parts[0]);
          }
          a.column = parts[1] == "*" ? "" : parts[1];
          node->agg.aggs.push_back(std::move(a));
        }
      }
      expected_children = 1;
      break;
    }
    case OpType::kSort: {
      const std::string* columns = get("columns");
      if (columns != nullptr) node->columns = SplitList(*columns, ',');
      expected_children = 1;
      break;
    }
    case OpType::kUnion:
      expected_children = 2;
      break;
  }
  for (size_t c = 0; c < expected_children; ++c) {
    auto child = Build(lines, index, depth + 1);
    if (!child.ok()) return child.status();
    node->children.push_back(std::move(child).value());
  }
  return node;
}

}  // namespace

std::string SerializePlan(const PlanNode& plan) {
  std::ostringstream os;
  Emit(plan, 0, os);
  return os.str();
}

common::Result<std::unique_ptr<PlanNode>> DeserializePlan(
    const std::string& text) {
  std::vector<ParsedLine> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    auto parsed = ParseLine(line);
    if (!parsed.ok()) return parsed.status();
    lines.push_back(std::move(parsed).value());
  }
  if (lines.empty()) {
    return common::Status::InvalidArgument("empty plan text");
  }
  size_t index = 0;
  auto root = Build(lines, &index, 0);
  if (!root.ok()) return root.status();
  if (index != lines.size()) {
    return common::Status::InvalidArgument("trailing plan lines");
  }
  return root;
}

}  // namespace ads::engine
