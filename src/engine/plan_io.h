#ifndef ADS_ENGINE_PLAN_IO_H_
#define ADS_ENGINE_PLAN_IO_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "engine/plan.h"

namespace ads::engine {

/// Cross-engine plan serialization — the library's stand-in for Substrait
/// (the paper's Direction 2: "a cross-language query plan specification
/// ... as a standard plan representation across our engines").
///
/// The format is a line-oriented s-expression-free text form: one node per
/// line, depth-prefixed, with typed key=value attributes. It is stable,
/// diff-friendly, and loss-free for everything the optimizer and the
/// learned components consume (operators, predicates with true
/// selectivities, join/agg specs, widths, cardinality annotations).
std::string SerializePlan(const PlanNode& plan);

/// Parses SerializePlan output back into a plan. Fails with
/// InvalidArgument on malformed input.
common::Result<std::unique_ptr<PlanNode>> DeserializePlan(
    const std::string& text);

}  // namespace ads::engine

#endif  // ADS_ENGINE_PLAN_IO_H_
