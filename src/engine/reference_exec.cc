#include "engine/reference_exec.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

namespace ads::engine {

namespace {

/// One cell: both representations live side by side; `type` in the schema
/// says which is meaningful. A row is a vector of cells — the classic
/// tuple-at-a-time layout this executor exists to embody.
struct Cell {
  int64_t i = 0;
  double f = 0.0;
};

struct RowBatch {
  std::vector<std::pair<std::string, ColumnType>> schema;
  std::vector<std::vector<Cell>> rows;

  int FindColumn(const std::string& name) const {
    for (size_t i = 0; i < schema.size(); ++i) {
      if (schema[i].first == name) return static_cast<int>(i);
    }
    return -1;
  }
};

common::Status MissingColumn(const std::string& column,
                             const std::string& where) {
  return common::Status::NotFound("column " + column + " not found in " +
                                  where);
}

double CellAsDouble(const Cell& c, ColumnType type) {
  return type == ColumnType::kI64 ? static_cast<double>(c.i) : c.f;
}

bool EvalPredicate(double lhs, CompareOp op, double rhs) {
  switch (op) {
    case CompareOp::kLess:
      return lhs < rhs;
    case CompareOp::kLessEqual:
      return lhs <= rhs;
    case CompareOp::kEqual:
      return lhs == rhs;
    case CompareOp::kGreater:
      return lhs > rhs;
    case CompareOp::kGreaterEqual:
      return lhs >= rhs;
  }
  return false;
}

common::Result<RowBatch> Exec(const TableStore& store, const PlanNode& node);

common::Result<RowBatch> ExecScan(const TableStore& store,
                                  const PlanNode& node) {
  const ColumnTable* table = store.FindTable(node.table);
  if (table == nullptr) {
    return common::Status::NotFound("no stored table named " + node.table +
                                    " (is this a simulated-only plan?)");
  }
  std::vector<const Column*> cols;
  if (node.columns.empty()) {
    for (const Column& c : table->columns()) cols.push_back(&c);
  } else {
    for (const std::string& name : node.columns) {
      const Column* c = table->FindColumn(name);
      if (c == nullptr) return MissingColumn(name, "scan of " + node.table);
      cols.push_back(c);
    }
  }
  RowBatch out;
  for (const Column* c : cols) out.schema.emplace_back(c->name(), c->type());
  const size_t rows = table->num_rows();
  out.rows.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Cell> row(cols.size());
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i]->type() == ColumnType::kI64) {
        row[i].i = cols[i]->I64At(r);
      } else {
        row[i].f = cols[i]->F64At(r);
      }
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

common::Result<RowBatch> ExecFilter(const TableStore& store,
                                    const PlanNode& node) {
  auto in = Exec(store, *node.children[0]);
  if (!in.ok()) return in.status();
  RowBatch batch = std::move(in).value();
  if (node.predicates.empty()) return batch;
  std::vector<int> pred_col(node.predicates.size());
  for (size_t p = 0; p < node.predicates.size(); ++p) {
    pred_col[p] = batch.FindColumn(node.predicates[p].column);
    if (pred_col[p] < 0) {
      return MissingColumn(node.predicates[p].column, "filter input");
    }
  }
  RowBatch out;
  out.schema = batch.schema;
  for (std::vector<Cell>& row : batch.rows) {
    bool keep = true;
    for (size_t p = 0; p < node.predicates.size() && keep; ++p) {
      const Predicate& pred = node.predicates[p];
      const auto idx = static_cast<size_t>(pred_col[p]);
      keep = EvalPredicate(CellAsDouble(row[idx], batch.schema[idx].second),
                           pred.op, pred.value);
    }
    if (keep) out.rows.push_back(std::move(row));
  }
  return out;
}

common::Result<RowBatch> ExecProject(const TableStore& store,
                                     const PlanNode& node) {
  auto in = Exec(store, *node.children[0]);
  if (!in.ok()) return in.status();
  RowBatch batch = std::move(in).value();
  std::vector<int> keep;
  RowBatch out;
  for (const std::string& name : node.columns) {
    int idx = batch.FindColumn(name);
    if (idx < 0) return MissingColumn(name, "project input");
    keep.push_back(idx);
    out.schema.push_back(batch.schema[static_cast<size_t>(idx)]);
  }
  out.rows.reserve(batch.rows.size());
  for (const std::vector<Cell>& row : batch.rows) {
    std::vector<Cell> projected(keep.size());
    for (size_t i = 0; i < keep.size(); ++i) {
      projected[i] = row[static_cast<size_t>(keep[i])];
    }
    out.rows.push_back(std::move(projected));
  }
  return out;
}

common::Result<RowBatch> ExecJoin(const TableStore& store,
                                  const PlanNode& node) {
  auto l = Exec(store, *node.children[0]);
  if (!l.ok()) return l.status();
  auto r = Exec(store, *node.children[1]);
  if (!r.ok()) return r.status();
  RowBatch left = std::move(l).value();
  RowBatch right = std::move(r).value();

  int lkey = left.FindColumn(node.join.left_key);
  int rkey = right.FindColumn(node.join.right_key);
  if (lkey < 0 || rkey < 0) {
    lkey = left.FindColumn(node.join.right_key);
    rkey = right.FindColumn(node.join.left_key);
  }
  if (lkey < 0 || rkey < 0) {
    return common::Status::NotFound("join keys " + node.join.left_key + "/" +
                                    node.join.right_key +
                                    " not resolvable against inputs");
  }
  const auto lk = static_cast<size_t>(lkey);
  const auto rk = static_cast<size_t>(rkey);
  if (left.schema[lk].second != ColumnType::kI64 ||
      right.schema[rk].second != ColumnType::kI64) {
    return common::Status::Unimplemented("join keys must be i64 columns");
  }

  // Row-at-a-time hash join: key -> build rows in input (ascending) order.
  std::unordered_map<int64_t, std::vector<size_t>> build;
  build.reserve(right.rows.size());
  for (size_t i = 0; i < right.rows.size(); ++i) {
    build[right.rows[i][rk].i].push_back(i);
  }

  RowBatch out;
  out.schema = left.schema;
  out.schema.insert(out.schema.end(), right.schema.begin(),
                    right.schema.end());
  for (const std::vector<Cell>& lrow : left.rows) {
    auto it = build.find(lrow[lk].i);
    if (it == build.end()) continue;
    for (size_t ri : it->second) {
      std::vector<Cell> joined = lrow;
      joined.insert(joined.end(), right.rows[ri].begin(),
                    right.rows[ri].end());
      out.rows.push_back(std::move(joined));
    }
  }
  return out;
}

common::Result<RowBatch> ExecAggregate(const TableStore& store,
                                       const PlanNode& node) {
  auto in = Exec(store, *node.children[0]);
  if (!in.ok()) return in.status();
  RowBatch batch = std::move(in).value();

  std::vector<size_t> key_idx;
  for (const std::string& key : node.agg.group_keys) {
    int idx = batch.FindColumn(key);
    if (idx < 0) {
      return MissingColumn(key,
                           "aggregate input (eager-aggregation partials "
                           "are not executable)");
    }
    if (batch.schema[static_cast<size_t>(idx)].second != ColumnType::kI64) {
      return common::Status::Unimplemented("group keys must be i64 columns");
    }
    key_idx.push_back(static_cast<size_t>(idx));
  }

  std::vector<AggExpr> aggs = node.agg.aggs;
  if (aggs.empty()) aggs.push_back(AggExpr{AggFn::kCount, ""});
  std::vector<int> agg_idx(aggs.size(), -1);
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].column.empty()) {
      if (aggs[a].fn != AggFn::kCount) {
        return common::Status::InvalidArgument(
            "aggregate without input column must be COUNT(*)");
      }
      continue;
    }
    agg_idx[a] = batch.FindColumn(aggs[a].column);
    if (agg_idx[a] < 0) {
      return MissingColumn(aggs[a].column, "aggregate input");
    }
  }

  struct Acc {
    int64_t count = 0;
    // Unsigned so overflow-adjacent sums wrap mod 2^64 (defined,
    // congruent to the signed sum) — same rule as the vectorized path.
    uint64_t i_sum = 0;
    double f_sum = 0.0;
    int64_t i_best = 0;
    double f_best = 0.0;
    bool seen = false;
  };

  struct VecHash {
    size_t operator()(const std::vector<int64_t>& v) const {
      uint64_t h = 1469598103934665603ull;
      for (int64_t x : v) {
        h ^= static_cast<uint64_t>(x);
        h *= 1099511628211ull;
      }
      return static_cast<size_t>(h);
    }
  };

  // Group id by first-seen order; one accumulator per (group, agg).
  std::unordered_map<std::vector<int64_t>, size_t, VecHash> group_ids;
  std::vector<std::vector<int64_t>> group_keys;  // in first-seen order
  std::vector<std::vector<Acc>> accs;            // [group][agg]

  for (const std::vector<Cell>& row : batch.rows) {
    std::vector<int64_t> key(key_idx.size());
    for (size_t k = 0; k < key_idx.size(); ++k) key[k] = row[key_idx[k]].i;
    auto [it, inserted] = group_ids.try_emplace(key, group_keys.size());
    if (inserted) {
      group_keys.push_back(key);
      accs.emplace_back(aggs.size());
    }
    std::vector<Acc>& group_accs = accs[it->second];
    for (size_t a = 0; a < aggs.size(); ++a) {
      Acc& acc = group_accs[a];
      ++acc.count;
      if (agg_idx[a] < 0) continue;
      const auto idx = static_cast<size_t>(agg_idx[a]);
      if (batch.schema[idx].second == ColumnType::kI64) {
        const int64_t v = row[idx].i;
        acc.i_sum += static_cast<uint64_t>(v);
        const bool better =
            aggs[a].fn == AggFn::kMin ? v < acc.i_best : v > acc.i_best;
        if (!acc.seen || better) acc.i_best = v;
      } else {
        const double v = row[idx].f;
        acc.f_sum += v;
        const bool better =
            aggs[a].fn == AggFn::kMin ? v < acc.f_best : v > acc.f_best;
        if (!acc.seen || better) acc.f_best = v;
      }
      acc.seen = true;
    }
  }

  // Global aggregate over zero rows: one identity row.
  if (key_idx.empty() && group_keys.empty()) {
    group_keys.emplace_back();
    accs.emplace_back(aggs.size());
  }

  RowBatch out;
  for (size_t k = 0; k < key_idx.size(); ++k) {
    out.schema.emplace_back(node.agg.group_keys[k], ColumnType::kI64);
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    const ColumnType in_type = agg_idx[a] < 0
                                   ? ColumnType::kI64
                                   : batch.schema[static_cast<size_t>(
                                                      agg_idx[a])]
                                         .second;
    ColumnType out_type;
    switch (aggs[a].fn) {
      case AggFn::kCount:
        out_type = ColumnType::kI64;
        break;
      case AggFn::kAvg:
        out_type = ColumnType::kF64;
        break;
      default:
        out_type = in_type;
        break;
    }
    out.schema.emplace_back(aggs[a].OutputName(), out_type);
  }

  for (size_t g = 0; g < group_keys.size(); ++g) {
    std::vector<Cell> row;
    row.reserve(key_idx.size() + aggs.size());
    for (int64_t k : group_keys[g]) {
      Cell c;
      c.i = k;
      row.push_back(c);
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      const Acc& acc = accs[g][a];
      const ColumnType in_type = agg_idx[a] < 0
                                     ? ColumnType::kI64
                                     : batch.schema[static_cast<size_t>(
                                                        agg_idx[a])]
                                           .second;
      Cell c;
      switch (aggs[a].fn) {
        case AggFn::kCount:
          c.i = acc.count;
          break;
        case AggFn::kSum:
          if (in_type == ColumnType::kI64) {
            c.i = static_cast<int64_t>(acc.i_sum);
          } else {
            c.f = acc.f_sum;
          }
          break;
        case AggFn::kAvg:
          if (acc.count == 0) {
            c.f = 0.0;
          } else if (in_type == ColumnType::kI64) {
            c.f = static_cast<double>(static_cast<int64_t>(acc.i_sum)) /
                  static_cast<double>(acc.count);
          } else {
            c.f = acc.f_sum / static_cast<double>(acc.count);
          }
          break;
        case AggFn::kMin:
        case AggFn::kMax:
          if (in_type == ColumnType::kI64) {
            c.i = acc.i_best;
          } else {
            c.f = acc.f_best;
          }
          break;
      }
      row.push_back(c);
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

common::Result<RowBatch> ExecSort(const TableStore& store,
                                  const PlanNode& node) {
  auto in = Exec(store, *node.children[0]);
  if (!in.ok()) return in.status();
  RowBatch batch = std::move(in).value();
  std::vector<size_t> sort_idx;
  for (const std::string& name : node.columns) {
    int idx = batch.FindColumn(name);
    if (idx < 0) return MissingColumn(name, "sort input");
    sort_idx.push_back(static_cast<size_t>(idx));
  }
  std::stable_sort(
      batch.rows.begin(), batch.rows.end(),
      [&](const std::vector<Cell>& a, const std::vector<Cell>& b) {
        for (size_t idx : sort_idx) {
          if (batch.schema[idx].second == ColumnType::kI64) {
            if (a[idx].i != b[idx].i) return a[idx].i < b[idx].i;
          } else {
            if (a[idx].f != b[idx].f) return a[idx].f < b[idx].f;
          }
        }
        return false;
      });
  return batch;
}

common::Result<RowBatch> ExecUnion(const TableStore& store,
                                   const PlanNode& node) {
  auto l = Exec(store, *node.children[0]);
  if (!l.ok()) return l.status();
  auto r = Exec(store, *node.children[1]);
  if (!r.ok()) return r.status();
  RowBatch left = std::move(l).value();
  RowBatch right = std::move(r).value();
  if (left.schema != right.schema) {
    return common::Status::InvalidArgument("union schema mismatch");
  }
  for (std::vector<Cell>& row : right.rows) {
    left.rows.push_back(std::move(row));
  }
  return left;
}

common::Result<RowBatch> Exec(const TableStore& store, const PlanNode& node) {
  switch (node.op) {
    case OpType::kScan:
      return ExecScan(store, node);
    case OpType::kFilter:
      return ExecFilter(store, node);
    case OpType::kProject:
      return ExecProject(store, node);
    case OpType::kJoin:
      return ExecJoin(store, node);
    case OpType::kAggregate:
      return ExecAggregate(store, node);
    case OpType::kSort:
      return ExecSort(store, node);
    case OpType::kUnion:
      return ExecUnion(store, node);
  }
  return common::Status::Unimplemented("unknown operator");
}

}  // namespace

common::Result<ColumnTable> ReferenceExecutor::Execute(
    const PlanNode& plan) const {
  auto batch = Exec(*store_, plan);
  if (!batch.ok()) return batch.status();
  const RowBatch& rows = *batch;
  ColumnTable out("reference");
  for (size_t i = 0; i < rows.schema.size(); ++i) {
    Column c(rows.schema[i].first, rows.schema[i].second);
    c.Reserve(rows.rows.size());
    for (const std::vector<Cell>& row : rows.rows) {
      if (rows.schema[i].second == ColumnType::kI64) {
        c.AppendI64(row[i].i);
      } else {
        c.AppendF64(row[i].f);
      }
    }
    out.AddColumn(std::move(c));
  }
  return out;
}

}  // namespace ads::engine
