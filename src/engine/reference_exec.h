#ifndef ADS_ENGINE_REFERENCE_EXEC_H_
#define ADS_ENGINE_REFERENCE_EXEC_H_

#include "common/status.h"
#include "engine/plan.h"
#include "engine/table.h"

namespace ads::engine {

/// Row-at-a-time executor with the same defined semantics as the
/// vectorized RealExecutor — and two jobs:
///
///  1. Correctness oracle. It is written tuple-at-a-time in the most
///     obvious way (materialized row vectors, per-row predicate checks,
///     per-probe hash lookups, per-row accumulator updates in input
///     order), so it is easy to audit. The differential harness asserts
///     the vectorized executor's output equals this one's bit for bit on
///     every plan, including degenerate shapes.
///  2. Scalar baseline. bench_p7_execution reports vectorized speedup
///     against it — the classic row-store vs columnar gap, measured.
///
/// Shared semantic contract (DESIGN.md §15): join matches come out
/// probe-row-major with build rows ascending; groups appear in
/// first-seen input order; double sums accumulate in input row order;
/// a global aggregate over zero rows yields one identity row; there are
/// no NULLs.
class ReferenceExecutor {
 public:
  explicit ReferenceExecutor(const TableStore* store) : store_(store) {}

  common::Result<ColumnTable> Execute(const PlanNode& plan) const;

 private:
  const TableStore* store_;
};

}  // namespace ads::engine

#endif  // ADS_ENGINE_REFERENCE_EXEC_H_
