#include "engine/rules.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ads::engine {

const char* RuleName(RuleId id) {
  switch (id) {
    case RuleId::kFilterMerge:
      return "FilterMerge";
    case RuleId::kFilterPushdownProject:
      return "FilterPushdownProject";
    case RuleId::kFilterPushdownJoin:
      return "FilterPushdownJoin";
    case RuleId::kFilterPushdownUnion:
      return "FilterPushdownUnion";
    case RuleId::kFilterPushdownAggregate:
      return "FilterPushdownAggregate";
    case RuleId::kPredicateSimplify:
      return "PredicateSimplify";
    case RuleId::kContradictionToEmpty:
      return "ContradictionToEmpty";
    case RuleId::kProjectMerge:
      return "ProjectMerge";
    case RuleId::kProjectIntoScan:
      return "ProjectIntoScan";
    case RuleId::kSortElimination:
      return "SortElimination";
    case RuleId::kJoinCommute:
      return "JoinCommute";
    case RuleId::kJoinAssociativity:
      return "JoinAssociativity";
    case RuleId::kBroadcastJoin:
      return "BroadcastJoin";
    case RuleId::kEagerAggregation:
      return "EagerAggregation";
  }
  return "?";
}

RuleConfig RuleConfig::Default() {
  RuleConfig c = All();
  c.enabled.reset(static_cast<size_t>(RuleId::kEagerAggregation));
  c.enabled.reset(static_cast<size_t>(RuleId::kContradictionToEmpty));
  return c;
}

RuleConfig RuleConfig::All() {
  RuleConfig c;
  c.enabled.set();
  return c;
}

RuleConfig RuleConfig::None() { return RuleConfig(); }

std::vector<RuleConfig> RuleConfig::Neighbors() const {
  std::vector<RuleConfig> out;
  for (int i = 0; i < kNumRules; ++i) {
    RuleConfig c = *this;
    c.enabled.flip(static_cast<size_t>(i));
    out.push_back(c);
  }
  return out;
}

bool SubtreeHasColumn(const PlanNode& node, const Catalog& catalog,
                      const std::string& column) {
  bool found = false;
  node.Visit([&](const PlanNode& n) {
    if (found || n.op != OpType::kScan) return;
    const TableSpec* table = catalog.FindTable(n.table);
    if (table != nullptr && table->FindColumn(column) != nullptr) {
      found = true;
    }
  });
  return found;
}

namespace {

using NodePtr = std::unique_ptr<PlanNode>;

double EstBytes(const PlanNode& node) {
  return node.est_card * node.row_width;
}

NodePtr MakeEmptyRelation(double row_width) {
  auto node = std::make_unique<PlanNode>();
  node->op = OpType::kScan;
  node->table = "<empty>";
  node->table_rows = 1.0;
  node->row_width = row_width;
  return node;
}

bool IsUpperBound(CompareOp op) {
  return op == CompareOp::kLess || op == CompareOp::kLessEqual;
}
bool IsLowerBound(CompareOp op) {
  return op == CompareOp::kGreater || op == CompareOp::kGreaterEqual;
}

/// The estimator's join formula, reused by the associativity rule to score
/// a hypothetical join without building the estimator object.
double EstimateJoin(const RuleContext& ctx, double l, double r,
                    const JoinSpec& spec) {
  size_t ndv = 1000;
  if (ctx.catalog != nullptr) {
    const ColumnSpec* lk = ctx.catalog->FindColumnGlobal(spec.left_key);
    const ColumnSpec* rk = ctx.catalog->FindColumnGlobal(spec.right_key);
    size_t lndv = lk != nullptr ? lk->distinct_values : 1000;
    size_t rndv = rk != nullptr ? rk->distinct_values : 1000;
    ndv = std::max(lndv, rndv);
  }
  return std::max(1.0, l * r / static_cast<double>(std::max<size_t>(1, ndv)));
}

NodePtr RewriteNode(RuleId id, NodePtr node, const RuleContext& ctx,
                    bool* changed);

NodePtr RewriteTree(RuleId id, NodePtr node, const RuleContext& ctx,
                    bool* changed) {
  for (auto& child : node->children) {
    child = RewriteTree(id, std::move(child), ctx, changed);
  }
  return RewriteNode(id, std::move(node), ctx, changed);
}

NodePtr RewriteNode(RuleId id, NodePtr node, const RuleContext& ctx,
                    bool* changed) {
  switch (id) {
    case RuleId::kFilterMerge: {
      if (node->op == OpType::kFilter && node->children.size() == 1 &&
          node->children[0]->op == OpType::kFilter) {
        NodePtr child = std::move(node->children[0]);
        for (Predicate& p : child->predicates) {
          node->predicates.push_back(std::move(p));
        }
        node->children.clear();
        node->children.push_back(std::move(child->children[0]));
        *changed = true;
      }
      return node;
    }

    case RuleId::kFilterPushdownProject: {
      if (node->op == OpType::kFilter &&
          node->children[0]->op == OpType::kProject) {
        NodePtr project = std::move(node->children[0]);
        node->children.clear();
        node->children.push_back(std::move(project->children[0]));
        node->row_width = node->children[0]->row_width;
        project->children.clear();
        project->children.push_back(std::move(node));
        *changed = true;
        return project;
      }
      return node;
    }

    case RuleId::kFilterPushdownJoin: {
      if (node->op != OpType::kFilter ||
          node->children[0]->op != OpType::kJoin || ctx.catalog == nullptr) {
        return node;
      }
      PlanNode& join = *node->children[0];
      std::vector<Predicate> left_preds;
      std::vector<Predicate> right_preds;
      std::vector<Predicate> keep;
      for (Predicate& p : node->predicates) {
        if (SubtreeHasColumn(*join.children[0], *ctx.catalog, p.column)) {
          left_preds.push_back(std::move(p));
        } else if (SubtreeHasColumn(*join.children[1], *ctx.catalog,
                                    p.column)) {
          right_preds.push_back(std::move(p));
        } else {
          keep.push_back(std::move(p));
        }
      }
      if (left_preds.empty() && right_preds.empty()) {
        node->predicates = std::move(keep);
        return node;
      }
      if (!left_preds.empty()) {
        join.children[0] =
            MakeFilter(std::move(join.children[0]), std::move(left_preds));
        join.children[0]->est_card = join.children[0]->children[0]->est_card;
      }
      if (!right_preds.empty()) {
        join.children[1] =
            MakeFilter(std::move(join.children[1]), std::move(right_preds));
        join.children[1]->est_card = join.children[1]->children[0]->est_card;
      }
      *changed = true;
      if (keep.empty()) {
        NodePtr join_ptr = std::move(node->children[0]);
        return join_ptr;
      }
      node->predicates = std::move(keep);
      return node;
    }

    case RuleId::kFilterPushdownUnion: {
      if (node->op == OpType::kFilter &&
          node->children[0]->op == OpType::kUnion) {
        NodePtr union_node = std::move(node->children[0]);
        union_node->children[0] = MakeFilter(
            std::move(union_node->children[0]), node->predicates);
        union_node->children[1] = MakeFilter(
            std::move(union_node->children[1]), node->predicates);
        *changed = true;
        return union_node;
      }
      return node;
    }

    case RuleId::kFilterPushdownAggregate: {
      if (node->op != OpType::kFilter ||
          node->children[0]->op != OpType::kAggregate) {
        return node;
      }
      PlanNode& agg = *node->children[0];
      auto is_group_key = [&](const std::string& col) {
        return std::find(agg.agg.group_keys.begin(), agg.agg.group_keys.end(),
                         col) != agg.agg.group_keys.end();
      };
      std::vector<Predicate> movable;
      std::vector<Predicate> keep;
      for (Predicate& p : node->predicates) {
        if (is_group_key(p.column)) {
          movable.push_back(std::move(p));
        } else {
          keep.push_back(std::move(p));
        }
      }
      if (movable.empty()) {
        node->predicates = std::move(keep);
        return node;
      }
      agg.children[0] = MakeFilter(std::move(agg.children[0]),
                                   std::move(movable));
      *changed = true;
      if (keep.empty()) {
        return std::move(node->children[0]);
      }
      node->predicates = std::move(keep);
      return node;
    }

    case RuleId::kPredicateSimplify: {
      if (node->op != OpType::kFilter || ctx.catalog == nullptr) return node;
      std::vector<Predicate> keep;
      for (Predicate& p : node->predicates) {
        const ColumnSpec* col = ctx.catalog->FindColumnGlobal(p.column);
        if (col != nullptr &&
            UniformSelectivity(*col, p.op, p.value) >= 1.0 &&
            p.true_selectivity >= 1.0) {
          *changed = true;
          continue;  // provably always-true predicate
        }
        keep.push_back(std::move(p));
      }
      node->predicates = std::move(keep);
      if (node->predicates.empty()) {
        *changed = true;
        return std::move(node->children[0]);
      }
      return node;
    }

    case RuleId::kContradictionToEmpty: {
      if (node->op != OpType::kFilter) return node;
      for (const Predicate& a : node->predicates) {
        if (!IsUpperBound(a.op)) continue;
        for (const Predicate& b : node->predicates) {
          if (b.column == a.column && IsLowerBound(b.op) &&
              b.value > a.value) {
            *changed = true;
            return MakeEmptyRelation(node->row_width);
          }
        }
      }
      return node;
    }

    case RuleId::kProjectMerge: {
      if (node->op == OpType::kProject &&
          node->children[0]->op == OpType::kProject) {
        NodePtr inner = std::move(node->children[0]);
        node->children.clear();
        node->children.push_back(std::move(inner->children[0]));
        *changed = true;
      }
      return node;
    }

    case RuleId::kProjectIntoScan: {
      if (node->op == OpType::kProject &&
          node->children[0]->op == OpType::kScan &&
          node->children[0]->row_width > node->row_width) {
        NodePtr scan = std::move(node->children[0]);
        scan->row_width = node->row_width;  // columnar scan reads less
        // The real executor honors the narrowing: a scan with a column
        // list emits only those columns (in list order).
        scan->columns = node->columns;
        *changed = true;
        return scan;
      }
      return node;
    }

    case RuleId::kSortElimination: {
      if ((node->op == OpType::kAggregate || node->op == OpType::kSort) &&
          !node->children.empty() &&
          node->children[0]->op == OpType::kSort) {
        NodePtr sort = std::move(node->children[0]);
        node->children[0] = std::move(sort->children[0]);
        *changed = true;
      }
      return node;
    }

    case RuleId::kJoinCommute: {
      if (node->op != OpType::kJoin) return node;
      if (EstBytes(*node->children[1]) > EstBytes(*node->children[0])) {
        std::swap(node->children[0], node->children[1]);
        std::swap(node->join.left_key, node->join.right_key);
        *changed = true;
      }
      return node;
    }

    case RuleId::kJoinAssociativity: {
      // J2(J1(A,B), C) -> J1'(J2'(A,C), B) when J2 really joins A with C
      // and the estimates say A⋈C is smaller than A⋈B.
      if (node->op != OpType::kJoin || ctx.catalog == nullptr) return node;
      if (node->children[0]->op != OpType::kJoin) return node;
      PlanNode& j1 = *node->children[0];
      if (node->join.strategy != JoinStrategy::kShuffleHash ||
          j1.join.strategy != JoinStrategy::kShuffleHash) {
        return node;
      }
      PlanNode& a = *j1.children[0];
      PlanNode& b = *j1.children[1];
      PlanNode& c = *node->children[1];
      if (!SubtreeHasColumn(a, *ctx.catalog, node->join.left_key)) return node;
      if (!SubtreeHasColumn(a, *ctx.catalog, j1.join.left_key)) return node;
      double est_ab = j1.est_card > 0.0
                          ? j1.est_card
                          : EstimateJoin(ctx, a.est_card, b.est_card, j1.join);
      double est_ac = EstimateJoin(ctx, a.est_card, c.est_card, node->join);
      if (est_ac >= est_ab) return node;

      NodePtr j1_ptr = std::move(node->children[0]);
      NodePtr c_ptr = std::move(node->children[1]);
      NodePtr a_ptr = std::move(j1_ptr->children[0]);
      NodePtr b_ptr = std::move(j1_ptr->children[1]);
      NodePtr j2_new = MakeJoin(std::move(a_ptr), std::move(c_ptr),
                                node->join);
      j2_new->est_card = est_ac;
      NodePtr j1_new = MakeJoin(std::move(j2_new), std::move(b_ptr), j1.join);
      j1_new->est_card = node->est_card;
      *changed = true;
      return j1_new;
    }

    case RuleId::kBroadcastJoin: {
      if (node->op != OpType::kJoin) return node;
      JoinStrategy want =
          EstBytes(*node->children[1]) < ctx.broadcast_threshold_bytes
              ? JoinStrategy::kBroadcast
              : JoinStrategy::kShuffleHash;
      if (node->join.strategy != want) {
        node->join.strategy = want;
        *changed = true;
      }
      return node;
    }

    case RuleId::kEagerAggregation: {
      if (node->op != OpType::kAggregate ||
          node->children[0]->op != OpType::kJoin || ctx.catalog == nullptr) {
        return node;
      }
      PlanNode& join = *node->children[0];
      if (join.children[0]->op == OpType::kAggregate) return node;  // done
      for (const std::string& key : node->agg.group_keys) {
        if (!SubtreeHasColumn(*join.children[0], *ctx.catalog, key)) {
          return node;
        }
      }
      // The join key must survive the partial aggregation, so it joins the
      // group keys of the pushed-down aggregate.
      AggSpec partial;
      partial.group_keys = node->agg.group_keys;
      partial.group_keys.push_back(join.join.left_key);
      // Nature's convention for the partial reduction: the square root of
      // the final ratio (partial groups are finer than final groups).
      partial.true_distinct_ratio =
          std::sqrt(std::clamp(node->agg.true_distinct_ratio, 1e-6, 1.0));
      join.children[0] =
          MakeAggregate(std::move(join.children[0]), std::move(partial));
      join.children[0]->est_card = join.children[0]->children[0]->est_card;
      *changed = true;
      return node;
    }
  }
  return node;
}

}  // namespace

std::unique_ptr<PlanNode> ApplyRule(RuleId id, std::unique_ptr<PlanNode> node,
                                    const RuleContext& ctx, bool* changed) {
  ADS_CHECK(changed != nullptr) << "ApplyRule needs a changed flag";
  return RewriteTree(id, std::move(node), ctx, changed);
}

}  // namespace ads::engine
