#ifndef ADS_ENGINE_RULES_H_
#define ADS_ENGINE_RULES_H_

#include <bitset>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/cardinality.h"
#include "engine/catalog.h"
#include "engine/plan.h"

namespace ads::engine {

/// Transformation rules of the optimizer. Each is a genuine plan rewrite;
/// the RuleConfig bitset enables/disables them individually, which is the
/// surface the Bao-style steering component manipulates (the paper's SCOPE
/// engine has 256 such rules; this engine has kNumRules).
enum class RuleId : int {
  kFilterMerge = 0,          // Filter(Filter(x)) -> Filter(x)
  kFilterPushdownProject,    // Filter(Project(x)) -> Project(Filter(x))
  kFilterPushdownJoin,       // route predicates to the join side that owns them
  kFilterPushdownUnion,      // Filter(Union(a,b)) -> Union(Filter(a),Filter(b))
  kFilterPushdownAggregate,  // legal when the predicate is on a group key
  kPredicateSimplify,        // drop predicates with estimated selectivity 1
  kContradictionToEmpty,     // x<=a AND x>=b, b>a  ->  empty relation
  kProjectMerge,             // Project(Project(x)) -> Project(x)
  kProjectIntoScan,          // Project(Scan) -> narrowed Scan
  kSortElimination,          // Aggregate(Sort(x)) -> Aggregate(x); Sort(Sort)
  kJoinCommute,              // put the estimated-smaller input on the build side
  kJoinAssociativity,        // reassociate a join chain when estimates favor it
  kBroadcastJoin,            // broadcast strategy for small build sides
  kEagerAggregation,         // partial aggregate below a join
};

inline constexpr int kNumRules = 14;

const char* RuleName(RuleId id);

/// On/off configuration of the rule set.
struct RuleConfig {
  std::bitset<kNumRules> enabled;

  /// Production default: everything on except the two aggressive rules
  /// (eager aggregation and empty propagation), mirroring how engines ship
  /// risky rules off by default.
  static RuleConfig Default();
  /// All rules on.
  static RuleConfig All();
  /// All rules off (the "no optimizer" baseline).
  static RuleConfig None();

  bool IsEnabled(RuleId id) const {
    return enabled.test(static_cast<size_t>(id));
  }
  RuleConfig With(RuleId id, bool on) const {
    RuleConfig c = *this;
    c.enabled.set(static_cast<size_t>(id), on);
    return c;
  }
  /// Hamming distance — steering is restricted to small distances for
  /// interpretability ("small incremental steps").
  int Distance(const RuleConfig& other) const {
    return static_cast<int>((enabled ^ other.enabled).count());
  }
  /// All configs at Hamming distance exactly 1.
  std::vector<RuleConfig> Neighbors() const;

  std::string ToString() const { return enabled.to_string(); }

  bool operator==(const RuleConfig& other) const {
    return enabled == other.enabled;
  }
};

/// Context rules need: catalog for column ownership / stats, and broadcast
/// threshold for the physical rule.
struct RuleContext {
  const Catalog* catalog = nullptr;
  /// Broadcast when the estimated build side is under this many bytes.
  double broadcast_threshold_bytes = 5.0e6;
};

/// Applies one rule everywhere it matches, once. `node` children must carry
/// est_card annotations (rules with cost-based conditions read them).
/// Returns the (possibly replaced) subtree root and sets *changed.
std::unique_ptr<PlanNode> ApplyRule(RuleId id, std::unique_ptr<PlanNode> node,
                                    const RuleContext& ctx, bool* changed);

/// True if any Scan in the subtree reads a table that owns `column`.
bool SubtreeHasColumn(const PlanNode& node, const Catalog& catalog,
                      const std::string& column);

}  // namespace ads::engine

#endif  // ADS_ENGINE_RULES_H_
