#include "engine/stage_graph.h"

#include <algorithm>

#include "common/logging.h"

namespace ads::engine {

double StageGraph::TotalWork() const {
  double w = 0.0;
  for (const Stage& s : stages) w += s.work;
  return w;
}

double StageGraph::TotalTempBytes() const {
  double b = 0.0;
  for (const Stage& s : stages) b += s.output_bytes;
  return b;
}

std::vector<std::vector<int>> StageGraph::Consumers() const {
  std::vector<std::vector<int>> consumers(stages.size());
  for (const Stage& s : stages) {
    for (int in : s.inputs) {
      consumers[static_cast<size_t>(in)].push_back(s.id);
    }
  }
  return consumers;
}

std::vector<bool> StageGraph::MustRerun(
    const std::set<int>& checkpointed) const {
  std::vector<bool> rerun(stages.size(), false);
  if (final_stage < 0) return rerun;
  // Process in reverse topological order; stage ids are already topological
  // (CompileToStages emits children before parents).
  auto consumers = Consumers();
  for (size_t ii = stages.size(); ii > 0; --ii) {
    int u = stages[ii - 1].id;
    if (checkpointed.count(u) > 0) continue;  // output persisted
    if (u == final_stage) {
      rerun[static_cast<size_t>(u)] = true;
      continue;
    }
    for (int c : consumers[static_cast<size_t>(u)]) {
      if (rerun[static_cast<size_t>(c)]) {
        rerun[static_cast<size_t>(u)] = true;
        break;
      }
    }
  }
  return rerun;
}

double StageGraph::RestartWork(const std::set<int>& checkpointed) const {
  std::vector<bool> rerun = MustRerun(checkpointed);
  double w = 0.0;
  for (const Stage& s : stages) {
    if (rerun[static_cast<size_t>(s.id)]) w += s.work;
  }
  return w;
}

std::vector<int> StageGraph::Depths() const {
  std::vector<int> depth(stages.size(), 0);
  for (const Stage& s : stages) {  // ids are topological
    for (int in : s.inputs) {
      depth[static_cast<size_t>(s.id)] = std::max(
          depth[static_cast<size_t>(s.id)], depth[static_cast<size_t>(in)] + 1);
    }
  }
  return depth;
}

int StageGraph::MaxDepth() const {
  std::vector<int> d = Depths();
  int mx = 0;
  for (int v : d) mx = std::max(mx, v);
  return mx;
}

std::set<int> StageGraph::LevelCut(int level) const {
  std::vector<int> depth = Depths();
  auto consumers = Consumers();
  std::set<int> cut;
  for (const Stage& s : stages) {
    if (depth[static_cast<size_t>(s.id)] > level) continue;
    if (s.id == final_stage) continue;
    bool crosses = false;
    for (int c : consumers[static_cast<size_t>(s.id)]) {
      if (depth[static_cast<size_t>(c)] > level) {
        crosses = true;
        break;
      }
    }
    if (crosses) cut.insert(s.id);
  }
  return cut;
}

namespace {

struct Compiler {
  const CostModel& cost_model;
  CardSource source;
  StageGraph graph;

  double CardOf(const PlanNode& node) const {
    return source == CardSource::kTrue ? node.true_card : node.est_card;
  }

  int NewStage(const std::string& label, std::vector<int> inputs) {
    Stage s;
    s.id = static_cast<int>(graph.stages.size());
    s.label = label;
    s.inputs = std::move(inputs);
    graph.stages.push_back(s);
    return s.id;
  }

  /// Compiles a subtree; returns the id of the stage whose pipeline
  /// currently ends at `node` (that stage's output is node's output).
  int Compile(const PlanNode& node) {
    switch (node.op) {
      case OpType::kScan: {
        int id = NewStage("scan:" + node.table, {});
        Accumulate(id, node);
        return id;
      }
      case OpType::kFilter:
      case OpType::kProject: {
        int id = Compile(*node.children[0]);
        graph.stages[static_cast<size_t>(id)].label += std::string("+") +
            (node.op == OpType::kFilter ? "filter" : "project");
        Accumulate(id, node);
        return id;
      }
      case OpType::kJoin: {
        // Build side first so stage ids stay topological even when the
        // probe pipeline continues through a broadcast join (the probe
        // stage then consumes the earlier build stage).
        int build = Compile(*node.children[1]);
        int probe = Compile(*node.children[0]);
        Seal(build, *node.children[1]);
        if (node.join.strategy == JoinStrategy::kBroadcast) {
          // The probe pipeline continues through a broadcast join.
          graph.stages[static_cast<size_t>(probe)].label += "+bjoin";
          graph.stages[static_cast<size_t>(probe)].inputs.push_back(build);
          Accumulate(probe, node);
          return probe;
        }
        Seal(probe, *node.children[0]);
        int id = NewStage("join", {probe, build});
        Accumulate(id, node);
        return id;
      }
      case OpType::kAggregate: {
        int child = Compile(*node.children[0]);
        Seal(child, *node.children[0]);
        int id = NewStage("agg", {child});
        Accumulate(id, node);
        return id;
      }
      case OpType::kSort: {
        int child = Compile(*node.children[0]);
        Seal(child, *node.children[0]);
        int id = NewStage("sort", {child});
        Accumulate(id, node);
        return id;
      }
      case OpType::kUnion: {
        int left = Compile(*node.children[0]);
        int right = Compile(*node.children[1]);
        Seal(left, *node.children[0]);
        Seal(right, *node.children[1]);
        int id = NewStage("union", {left, right});
        Accumulate(id, node);
        return id;
      }
    }
    ADS_CHECK(false) << "unreachable op";
    return -1;
  }

  /// Adds the node's operator cost to a stage.
  void Accumulate(int stage_id, const PlanNode& node) {
    graph.stages[static_cast<size_t>(stage_id)].work +=
        cost_model.NodeCost(node, source);
  }

  /// Marks the stage boundary below an exchange: the stage's output is the
  /// given node's output.
  void Seal(int stage_id, const PlanNode& node) {
    Stage& s = graph.stages[static_cast<size_t>(stage_id)];
    s.output_rows = CardOf(node);
    s.output_bytes = CardOf(node) * node.row_width;
  }
};

}  // namespace

StageGraph CompileToStages(const PlanNode& plan, const CostModel& cost_model,
                           CardSource source) {
  Compiler compiler{cost_model, source, {}};
  int final_id = compiler.Compile(plan);
  Compiler* c = &compiler;
  c->graph.final_stage = final_id;
  // The final stage's output is the job result.
  c->Seal(final_id, plan);
  return std::move(compiler.graph);
}

}  // namespace ads::engine
