#ifndef ADS_ENGINE_STAGE_GRAPH_H_
#define ADS_ENGINE_STAGE_GRAPH_H_

#include <set>
#include <string>
#include <vector>

#include "engine/cost.h"
#include "engine/plan.h"

namespace ads::engine {

/// One execution stage: a pipeline of operators between exchange points,
/// as in SCOPE/Spark. Stage outputs are written to machine-local temporary
/// storage and read by consumer stages — which is exactly the resource the
/// Phoebe checkpoint optimizer manages.
struct Stage {
  int id = 0;
  std::vector<int> inputs;  // upstream stage ids
  std::string label;
  /// Work in cost units (drives the stage's duration).
  double work = 0.0;
  /// Rows/bytes written at the stage boundary (shuffle/broadcast output).
  double output_rows = 0.0;
  double output_bytes = 0.0;
};

/// A compiled job: DAG of stages, last stage is the job output.
struct StageGraph {
  std::vector<Stage> stages;
  int final_stage = -1;

  size_t size() const { return stages.size(); }
  double TotalWork() const;
  double TotalTempBytes() const;

  /// Downstream adjacency (consumers of each stage).
  std::vector<std::vector<int>> Consumers() const;

  /// Stages that must re-execute after a failure that wipes temporary
  /// storage, given the set of stages whose outputs were checkpointed to
  /// durable storage. A stage re-runs iff it is not checkpointed and some
  /// consumer (transitively, or the final stage itself) re-runs.
  std::vector<bool> MustRerun(const std::set<int>& checkpointed) const;

  /// Total work of the stages MustRerun selects.
  double RestartWork(const std::set<int>& checkpointed) const;

  /// Candidate checkpoint cuts by topological level: for level L, the cut
  /// is every stage at topological depth <= L whose output feeds a stage at
  /// depth > L (plus dangling outputs). Level cuts are what the checkpoint
  /// optimizer searches over.
  std::set<int> LevelCut(int level) const;
  /// Topological depth of each stage (sources at 0).
  std::vector<int> Depths() const;
  int MaxDepth() const;
};

/// Compiles an (optimized, annotated) plan into a stage DAG. Stage work is
/// computed with the cost model from the chosen cardinality source —
/// kTrue for execution simulation, kEstimated for planning-time reasoning.
StageGraph CompileToStages(const PlanNode& plan, const CostModel& cost_model,
                           CardSource source);

}  // namespace ads::engine

#endif  // ADS_ENGINE_STAGE_GRAPH_H_
