#include "engine/table.h"

#include <sstream>

#include "common/logging.h"

namespace ads::engine {

void ColumnTable::AddColumn(Column column) {
  if (!columns_.empty()) {
    ADS_CHECK(column.size() == columns_[0].size())
        << "column " << column.name() << " has " << column.size()
        << " rows, table " << name_ << " has " << columns_[0].size();
  }
  columns_.push_back(std::move(column));
}

int ColumnTable::FindColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return static_cast<int>(i);
  }
  return -1;
}

const Column* ColumnTable::FindColumn(const std::string& name) const {
  int idx = FindColumnIndex(name);
  return idx < 0 ? nullptr : &columns_[static_cast<size_t>(idx)];
}

bool ColumnTable::BitwiseEquals(const ColumnTable& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!columns_[i].BitwiseEquals(other.columns_[i])) return false;
  }
  return true;
}

std::string ColumnTable::Serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "cols=" << columns_.size() << " rows=" << num_rows() << "\n";
  for (const Column& c : columns_) {
    os << c.name() << ":" << ColumnTypeName(c.type())
       << (&c == &columns_.back() ? "" : " ");
  }
  os << "\n";
  const size_t rows = num_rows();
  for (size_t r = 0; r < rows; ++r) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (i > 0) os << " ";
      const Column& c = columns_[i];
      if (c.type() == ColumnType::kI64) {
        os << c.I64At(r);
      } else {
        os << c.F64At(r);
      }
    }
    os << "\n";
  }
  return os.str();
}

uint64_t ColumnTable::Checksum() const {
  const std::string text = Serialize();
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char ch : text) {
    h ^= ch;
    h *= 1099511628211ull;
  }
  return h;
}

void TableStore::AddTable(ColumnTable table) {
  std::string name = table.name();
  tables_[std::move(name)] = std::move(table);
}

bool TableStore::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

const ColumnTable* TableStore::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<std::string> TableStore::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace ads::engine

