#ifndef ADS_ENGINE_TABLE_H_
#define ADS_ENGINE_TABLE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/column.h"

namespace ads::engine {

/// One columnar table (or intermediate result): a set of equally-sized
/// typed columns. Column names are unique within a table; the generators
/// keep them globally unique across tables (the catalog convention), so
/// joins never produce duplicate names.
class ColumnTable {
 public:
  ColumnTable() = default;
  explicit ColumnTable(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  size_t num_columns() const { return columns_.size(); }

  /// Adds a column; all columns must have the same length (checked).
  void AddColumn(Column column);

  const Column& ColumnAt(size_t i) const { return columns_[i]; }
  Column& ColumnAt(size_t i) { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the named column, or -1.
  int FindColumnIndex(const std::string& name) const;
  const Column* FindColumn(const std::string& name) const;

  /// Exact (bit-level) equality of schema and data. Table names are NOT
  /// compared — two executors producing the same relation are equal even
  /// if they label it differently.
  bool BitwiseEquals(const ColumnTable& other) const;

  /// Deterministic text form used by the golden-answer fixtures and the
  /// differential harness's failure messages: a schema line, then one
  /// line per row with values separated by single spaces. Doubles print
  /// with 17 significant digits (round-trip exact), so equal bytes means
  /// equal bits.
  std::string Serialize() const;

  /// FNV-1a hash of Serialize() — a compact deterministic result
  /// checksum for bench output.
  uint64_t Checksum() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
};

/// Name -> columnar table registry: the real counterpart of the Catalog's
/// simulated data lake. The Catalog keeps statistics; the TableStore keeps
/// the data those statistics describe.
class TableStore {
 public:
  /// Adds or replaces a table.
  void AddTable(ColumnTable table);

  bool HasTable(const std::string& name) const;
  const ColumnTable* FindTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;
  size_t size() const { return tables_.size(); }

 private:
  std::map<std::string, ColumnTable> tables_;
};

}  // namespace ads::engine

#endif  // ADS_ENGINE_TABLE_H_
