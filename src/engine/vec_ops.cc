#include "engine/vec_ops.h"

#include <algorithm>

#include "common/logging.h"

namespace ads::engine {

namespace {

template <typename T, typename Cmp>
void FillBitmapTyped(const T* values, size_t rows, double literal, Cmp cmp,
                     common::ThreadPool& pool, uint64_t* bits) {
  const size_t words = BitmapWords(rows);
  common::parallel_for(
      pool, 0, words, kBitmapGrain / 64, [&](size_t w0, size_t w1) {
        for (size_t w = w0; w < w1; ++w) {
          const size_t row0 = w * 64;
          const size_t row1 = std::min(rows, row0 + 64);
          uint64_t word = 0;
          for (size_t r = row0; r < row1; ++r) {
            word |= static_cast<uint64_t>(
                        cmp(static_cast<double>(values[r]), literal))
                    << (r - row0);
          }
          bits[w] = word;
        }
      });
}

template <typename T>
void FillBitmap(const T* values, size_t rows, CompareOp op, double literal,
                common::ThreadPool& pool, uint64_t* bits) {
  switch (op) {
    case CompareOp::kLess:
      FillBitmapTyped(values, rows, literal,
                      [](double a, double b) { return a < b; }, pool, bits);
      return;
    case CompareOp::kLessEqual:
      FillBitmapTyped(values, rows, literal,
                      [](double a, double b) { return a <= b; }, pool, bits);
      return;
    case CompareOp::kEqual:
      FillBitmapTyped(values, rows, literal,
                      [](double a, double b) { return a == b; }, pool, bits);
      return;
    case CompareOp::kGreater:
      FillBitmapTyped(values, rows, literal,
                      [](double a, double b) { return a > b; }, pool, bits);
      return;
    case CompareOp::kGreaterEqual:
      FillBitmapTyped(values, rows, literal,
                      [](double a, double b) { return a >= b; }, pool, bits);
      return;
  }
}

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void PredicateBitmap(const Column& col, CompareOp op, double value,
                     common::ThreadPool& pool, uint64_t* bits) {
  const size_t rows = col.size();
  if (col.type() == ColumnType::kI64) {
    FillBitmap(col.i64_data(), rows, op, value, pool, bits);
  } else {
    FillBitmap(col.f64_data(), rows, op, value, pool, bits);
  }
}

void BitmapAndInPlace(uint64_t* acc, const uint64_t* other, size_t words) {
  for (size_t w = 0; w < words; ++w) acc[w] &= other[w];
}

size_t BitmapToSelection(const uint64_t* bits, size_t rows,
                         common::AlignedBuffer<uint32_t>* sel) {
  sel->clear();
  const size_t words = BitmapWords(rows);
  for (size_t w = 0; w < words; ++w) {
    uint64_t word = bits[w];
    // Mask padding bits in the tail word: rows beyond `rows` never exist,
    // whatever a caller's AND/OR left in the high bits.
    if (w == words - 1 && (rows % 64) != 0) {
      word &= (uint64_t{1} << (rows % 64)) - 1;
    }
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      sel->push_back(static_cast<uint32_t>(w * 64 + static_cast<size_t>(bit)));
      word &= word - 1;
    }
  }
  return sel->size();
}

void GatherColumn(const Column& src, const uint32_t* sel, size_t n,
                  common::ThreadPool& pool, Column* out) {
  *out = Column(src.name(), src.type());
  out->Resize(n);
  if (src.type() == ColumnType::kI64) {
    const int64_t* in = src.i64_data();
    int64_t* dst = out->i64_data();
    common::parallel_for(pool, 0, n, kGatherGrain,
                         [&](size_t lo, size_t hi) {
                           for (size_t i = lo; i < hi; ++i) {
                             dst[i] = in[sel[i]];
                           }
                         });
  } else {
    const double* in = src.f64_data();
    double* dst = out->f64_data();
    common::parallel_for(pool, 0, n, kGatherGrain,
                         [&](size_t lo, size_t hi) {
                           for (size_t i = lo; i < hi; ++i) {
                             dst[i] = in[sel[i]];
                           }
                         });
  }
}

void JoinHashTable::Build(const Column& keys, uint64_t seed) {
  ADS_CHECK(keys.type() == ColumnType::kI64)
      << "join keys must be i64: " << keys.name();
  seed_ = seed;
  const size_t n = keys.size();
  keys_.resize(n);
  for (size_t i = 0; i < n; ++i) keys_[i] = keys.I64At(i);
  const size_t buckets = NextPow2(std::max<size_t>(16, 2 * n));
  mask_ = buckets - 1;
  heads_.resize(buckets);
  for (size_t b = 0; b < buckets; ++b) heads_[b] = -1;
  next_.resize(n);
  // Insert back to front with push-front chaining, so every chain lists
  // build rows in ascending order — the probe then emits matches in the
  // same order a front-to-back nested loop would.
  for (size_t i = n; i-- > 0;) {
    const size_t bucket = HashJoinKey(keys_[i], seed_) & mask_;
    next_[i] = heads_[bucket];
    heads_[bucket] = static_cast<int32_t>(i);
  }
}

void JoinHashTable::Probe(const Column& probe_keys, common::ThreadPool& pool,
                          common::AlignedBuffer<uint32_t>* probe_idx,
                          common::AlignedBuffer<uint32_t>* build_idx) const {
  ADS_CHECK(probe_keys.type() == ColumnType::kI64)
      << "join keys must be i64: " << probe_keys.name();
  const size_t n = probe_keys.size();
  const int64_t* probe = probe_keys.i64_data();
  probe_idx->clear();
  build_idx->clear();
  if (n == 0 || keys_.empty()) return;

  // Pass 1: matches per fixed-grain chunk.
  const size_t num_chunks = (n + kProbeGrain - 1) / kProbeGrain;
  std::vector<uint64_t> chunk_matches(num_chunks, 0);
  common::parallel_for(
      pool, 0, n, kProbeGrain, [&](size_t lo, size_t hi) {
        uint64_t count = 0;
        for (size_t i = lo; i < hi; ++i) {
          const int64_t key = probe[i];
          for (int32_t e = heads_[HashJoinKey(key, seed_) & mask_]; e >= 0;
               e = next_[static_cast<size_t>(e)]) {
            count += keys_[static_cast<size_t>(e)] == key;
          }
        }
        chunk_matches[lo / kProbeGrain] = count;
      });

  // Exclusive prefix over chunks gives each chunk a disjoint output range.
  std::vector<uint64_t> chunk_offset(num_chunks + 1, 0);
  for (size_t c = 0; c < num_chunks; ++c) {
    chunk_offset[c + 1] = chunk_offset[c] + chunk_matches[c];
  }
  const size_t total = static_cast<size_t>(chunk_offset[num_chunks]);
  probe_idx->resize(total);
  build_idx->resize(total);
  uint32_t* out_probe = probe_idx->data();
  uint32_t* out_build = build_idx->data();

  // Pass 2: fill.
  common::parallel_for(
      pool, 0, n, kProbeGrain, [&](size_t lo, size_t hi) {
        size_t at = static_cast<size_t>(chunk_offset[lo / kProbeGrain]);
        for (size_t i = lo; i < hi; ++i) {
          const int64_t key = probe[i];
          for (int32_t e = heads_[HashJoinKey(key, seed_) & mask_]; e >= 0;
               e = next_[static_cast<size_t>(e)]) {
            if (keys_[static_cast<size_t>(e)] == key) {
              out_probe[at] = static_cast<uint32_t>(i);
              out_build[at] = static_cast<uint32_t>(e);
              ++at;
            }
          }
        }
      });
}

void GroupIndex::Build(const std::vector<const Column*>& keys, size_t rows,
                       uint64_t seed) {
  group_of_row_.resize(rows);
  representative_row_.clear();
  if (keys.empty()) {
    for (size_t r = 0; r < rows; ++r) group_of_row_[r] = 0;
    if (rows > 0) representative_row_.push_back(0);
    return;
  }
  for (const Column* k : keys) {
    ADS_CHECK(k->type() == ColumnType::kI64)
        << "group keys must be i64: " << k->name();
    ADS_CHECK(k->size() == rows) << "group key size mismatch";
  }
  // Open-addressing table of group representatives, linear probing.
  const size_t buckets = NextPow2(std::max<size_t>(16, 2 * rows));
  const size_t mask = buckets - 1;
  std::vector<int32_t> slot_group(buckets, -1);
  auto row_hash = [&](size_t r) {
    uint64_t h = seed;
    for (const Column* k : keys) {
      h = HashJoinKey(k->I64At(r), h);
    }
    return h;
  };
  auto rows_equal = [&](size_t a, size_t b) {
    for (const Column* k : keys) {
      if (k->I64At(a) != k->I64At(b)) return false;
    }
    return true;
  };
  for (size_t r = 0; r < rows; ++r) {
    size_t slot = row_hash(r) & mask;
    for (;;) {
      const int32_t g = slot_group[slot];
      if (g < 0) {
        const auto group = static_cast<uint32_t>(representative_row_.size());
        slot_group[slot] = static_cast<int32_t>(group);
        representative_row_.push_back(static_cast<uint32_t>(r));
        group_of_row_[r] = group;
        break;
      }
      if (rows_equal(r, representative_row_[static_cast<size_t>(g)])) {
        group_of_row_[r] = static_cast<uint32_t>(g);
        break;
      }
      slot = (slot + 1) & mask;
    }
  }
}

}  // namespace ads::engine
