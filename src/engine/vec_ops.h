#ifndef ADS_ENGINE_VEC_OPS_H_
#define ADS_ENGINE_VEC_OPS_H_

#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "common/thread_pool.h"
#include "engine/column.h"
#include "engine/expr.h"

namespace ads::engine {

/// Vectorized operator kernels: predicate bitmaps, selection vectors,
/// gathers, a seeded hash-join table and a grouped-aggregation index.
/// All kernels are deterministic and thread-count invariant: parallel
/// sections use fixed grains on ThreadPool::ParallelFor (whose chunk
/// boundaries never depend on the worker count), and every floating-point
/// reduction happens sequentially in input row order. The differential
/// harness exploits this: vectorized output must equal the row-at-a-time
/// reference executor bit for bit.

/// Fixed chunk grains (rows). kBitmapGrain is a multiple of 64 so no two
/// chunks ever touch the same bitmap word.
inline constexpr size_t kBitmapGrain = 4096;
inline constexpr size_t kGatherGrain = 8192;
inline constexpr size_t kProbeGrain = 2048;

/// Seeded FNV-1a over the key's 8 bytes, finished with a murmur3-style
/// mixer for avalanche on the low bits (bucket indices are low-bit masks).
inline uint64_t HashJoinKey(int64_t key, uint64_t seed) {
  uint64_t h = seed ^ 14695981039346656037ull;
  uint64_t k = static_cast<uint64_t>(key);
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (k >> (byte * 8)) & 0xffull;
    h *= 1099511628211ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

/// Number of 64-bit words a bitmap over `rows` rows needs.
inline size_t BitmapWords(size_t rows) { return (rows + 63) / 64; }

/// Fills `bits` (BitmapWords(col.size()) words) with one bit per row:
/// 1 where `col <op> value` holds. Parallel over word-aligned chunks.
void PredicateBitmap(const Column& col, CompareOp op, double value,
                     common::ThreadPool& pool, uint64_t* bits);

/// acc &= other over `words` words.
void BitmapAndInPlace(uint64_t* acc, const uint64_t* other, size_t words);

/// Expands a bitmap into a selection vector of row indices (ascending).
/// Returns the number of selected rows.
size_t BitmapToSelection(const uint64_t* bits, size_t rows,
                         common::AlignedBuffer<uint32_t>* sel);

/// out[i] = src[sel[i]] for i in [0, n). `out` keeps src's name and type.
void GatherColumn(const Column& src, const uint32_t* sel, size_t n,
                  common::ThreadPool& pool, Column* out);

/// Hash-join build/probe over i64 keys, bucket-chained. Matches for one
/// probe row come out in ascending build-row order (the chains are built
/// back to front), which pins the operator's output order to the
/// nested-loop order the reference executor produces.
class JoinHashTable {
 public:
  /// Builds over the build side's key column (i64). `seed` selects the
  /// hash stream — the executor's hashing seed policy is one fixed seed
  /// per plan execution, so rebuilding the same plan is bit-identical.
  void Build(const Column& keys, uint64_t seed);

  size_t build_rows() const { return keys_.size(); }

  /// Probes with `probe_keys` in row order and appends every match as a
  /// (probe_row, build_row) pair, probe-major, build ascending within a
  /// probe row. Deterministic two-pass parallel: per-chunk match counts,
  /// exclusive prefix, then disjoint writes.
  void Probe(const Column& probe_keys, common::ThreadPool& pool,
             common::AlignedBuffer<uint32_t>* probe_idx,
             common::AlignedBuffer<uint32_t>* build_idx) const;

 private:
  uint64_t seed_ = 0;
  size_t mask_ = 0;
  common::AlignedBuffer<int64_t> keys_;
  common::AlignedBuffer<int32_t> heads_;  // bucket -> first build row or -1
  common::AlignedBuffer<int32_t> next_;   // build row -> next in chain or -1
};

/// Grouped-aggregation index over i64 group-key columns: assigns each row
/// a dense group id in first-seen order. Sequential by design — group
/// discovery order is part of the operator's defined semantics (output
/// groups appear in first-seen input order).
class GroupIndex {
 public:
  /// `keys` may be empty: every row lands in group 0 (global aggregate).
  void Build(const std::vector<const Column*>& keys, size_t rows,
             uint64_t seed);

  size_t num_groups() const { return representative_row_.size(); }
  /// Dense group id per input row.
  const common::AlignedBuffer<uint32_t>& group_of_row() const {
    return group_of_row_;
  }
  /// First input row of each group, indexed by group id.
  const common::AlignedBuffer<uint32_t>& representative_row() const {
    return representative_row_;
  }

 private:
  common::AlignedBuffer<uint32_t> group_of_row_;
  common::AlignedBuffer<uint32_t> representative_row_;
};

}  // namespace ads::engine

#endif  // ADS_ENGINE_VEC_OPS_H_
