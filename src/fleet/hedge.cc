#include "fleet/hedge.h"

#include <algorithm>

#include "common/logging.h"

namespace ads::fleet {

HedgePolicy::HedgePolicy(HedgeOptions options) : options_(options) {
  ADS_CHECK(options_.quantile > 0.0 && options_.quantile < 1.0)
      << "hedge quantile must be in (0,1)";
  ADS_CHECK(options_.min_delay_seconds <= options_.max_delay_seconds)
      << "hedge delay clamp inverted";
  ADS_CHECK(options_.delay_factor > 0.0) << "hedge delay factor must be > 0";
}

void HedgePolicy::Observe(double latency_seconds) {
  latency_.Add(latency_seconds);
}

double HedgePolicy::Delay() const {
  if (latency_.Count() < options_.min_samples) {
    return options_.initial_delay_seconds;
  }
  const double derived =
      latency_.Quantile(options_.quantile) * options_.delay_factor;
  return std::clamp(derived, options_.min_delay_seconds,
                    options_.max_delay_seconds);
}

}  // namespace ads::fleet
