#ifndef ADS_FLEET_HEDGE_H_
#define ADS_FLEET_HEDGE_H_

#include <cstddef>

#include "common/stats.h"

namespace ads::fleet {

struct HedgeOptions {
  bool enabled = false;
  /// The hedge delay is this quantile of observed served latencies...
  double quantile = 0.95;
  /// ...times this factor (a factor > 1 hedges only clear stragglers).
  double delay_factor = 1.0;
  /// Clamp on the derived delay: never hedge sooner than min (protects
  /// against a collapsed latency distribution duplicating everything) or
  /// later than max (bounds worst-case straggler exposure).
  double min_delay_seconds = 0.001;
  double max_delay_seconds = 1.0;
  /// Delay used until min_samples latencies have been observed.
  double initial_delay_seconds = 0.050;
  size_t min_samples = 32;
};

/// Tail-latency hedging policy: decides *when* a second copy of a slow
/// request should be launched. The delay tracks the live latency
/// distribution — "hedge once the request has outlived the p95" — so the
/// duplicate-work budget stays pinned to roughly (1 - quantile) of
/// traffic no matter how the service time drifts. The fleet runtimes own
/// *where* the duplicate goes (the next replica in the shard's group) and
/// the winner/loser bookkeeping.
///
/// Not internally synchronized beyond QuantileSketch's reader lock; the
/// threaded fleet serializes Observe under its own mutex.
class HedgePolicy {
 public:
  explicit HedgePolicy(HedgeOptions options = HedgeOptions());

  bool enabled() const { return options_.enabled; }

  /// Feeds one served end-to-end latency into the distribution.
  void Observe(double latency_seconds);

  /// Quantile-derived delay between a request's admission and its hedge
  /// firing, clamped to [min_delay, max_delay]; initial_delay until the
  /// distribution has min_samples points.
  double Delay() const;

  size_t samples() const { return latency_.Count(); }
  const HedgeOptions& options() const { return options_; }

 private:
  HedgeOptions options_;
  common::QuantileSketch latency_;
};

}  // namespace ads::fleet

#endif  // ADS_FLEET_HEDGE_H_
