#include "fleet/ring.h"

#include <algorithm>

#include "common/logging.h"

namespace ads::fleet {

HashRing::HashRing(RingOptions options) : options_(options) {
  ADS_CHECK(options_.vnodes_per_shard >= 1) << "ring needs at least 1 vnode";
}

uint64_t HashRing::HashKey(uint64_t seed, const std::string& key) {
  // FNV-1a over the seed bytes then the key bytes: cheap, stable, and
  // platform-independent (the same idiom as the autonomy tenant slice).
  uint64_t h = 14695981039346656037ull;
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (seed >> shift) & 0xffull;
    h *= 1099511628211ull;
  }
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  // Raw FNV-1a has no avalanche on the tail bytes: keys that differ only
  // in a trailing counter ("tenant-0".."tenant-39") land within a few
  // thousand of each other and would collapse onto one ring arc. The
  // murmur3 finalizer mixes every input bit into every output bit.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

void HashRing::AddShard(ShardId shard) {
  if (!shards_.insert(shard).second) return;
  ring_.reserve(ring_.size() + options_.vnodes_per_shard);
  for (size_t v = 0; v < options_.vnodes_per_shard; ++v) {
    const std::string key =
        "s" + std::to_string(shard) + "#" + std::to_string(v);
    ring_.emplace_back(HashKey(options_.seed, key), shard);
  }
  std::sort(ring_.begin(), ring_.end());
}

void HashRing::RemoveShard(ShardId shard) {
  if (shards_.erase(shard) == 0) return;
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [shard](const std::pair<uint64_t, ShardId>& p) {
                               return p.second == shard;
                             }),
              ring_.end());
}

std::vector<ShardId> HashRing::Shards() const {
  return std::vector<ShardId>(shards_.begin(), shards_.end());
}

ShardId HashRing::ShardFor(const std::string& tenant) const {
  ADS_CHECK(!ring_.empty()) << "empty hash ring";
  const uint64_t point = HashKey(options_.seed, tenant);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(point, ShardId(0)),
      [](const std::pair<uint64_t, ShardId>& a,
         const std::pair<uint64_t, ShardId>& b) { return a.first < b.first; });
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

std::vector<ShardId> HashRing::PreferenceOrder(const std::string& tenant,
                                               size_t k) const {
  ADS_CHECK(!ring_.empty()) << "empty hash ring";
  std::vector<ShardId> order;
  const size_t want = std::min(k, shards_.size());
  if (want == 0) return order;
  const uint64_t point = HashKey(options_.seed, tenant);
  size_t start = 0;
  while (start < ring_.size() && ring_[start].first < point) ++start;
  for (size_t step = 0; step < ring_.size() && order.size() < want; ++step) {
    ShardId shard = ring_[(start + step) % ring_.size()].second;
    if (std::find(order.begin(), order.end(), shard) == order.end()) {
      order.push_back(shard);
    }
  }
  return order;
}

}  // namespace ads::fleet
