#ifndef ADS_FLEET_RING_H_
#define ADS_FLEET_RING_H_

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fleet/types.h"

namespace ads::fleet {

struct RingOptions {
  /// Virtual nodes per shard: more vnodes smooth the tenant distribution
  /// and tighten the bounded-movement guarantee at O(vnodes * shards)
  /// ring memory.
  size_t vnodes_per_shard = 64;
  /// Seed folded into every vnode and tenant hash: a fixed seed fixes the
  /// whole placement, across runs, thread counts, and machines.
  uint64_t seed = 0x5eed;
};

/// Seeded consistent-hash ring placing tenants on shards.
///
/// Each shard contributes vnodes_per_shard points on a 64-bit ring (FNV-1a
/// of seed ⊕ "shard#vnode"); a tenant maps to the shard owning the first
/// point at or after its own hash. Properties the fleet relies on, and the
/// ring tests pin:
///
///  - Determinism: placement is a pure function of (seed, shard set,
///    tenant) — no global state, no platform-dependent hashing.
///  - Bounded movement: growing N → N+1 shards remaps only the tenants
///    whose arc the new shard's vnodes capture, ~1/(N+1) of them in
///    expectation; every tenant that moves, moves TO the new shard.
///  - Stable fallbacks: PreferenceOrder walks the ring clockwise, so a
///    tenant's reroute target under drain/overload is as sticky as its
///    home placement.
///
/// Not internally synchronized — FleetRouter wraps it with a mutex for
/// the threaded runtime.
class HashRing {
 public:
  explicit HashRing(RingOptions options = RingOptions());

  void AddShard(ShardId shard);
  /// Removes a shard and its vnodes. No-op if absent.
  void RemoveShard(ShardId shard);
  bool Contains(ShardId shard) const { return shards_.count(shard) > 0; }
  size_t shard_count() const { return shards_.size(); }
  /// Shards currently on the ring, ascending.
  std::vector<ShardId> Shards() const;

  /// Home shard for a tenant. Requires a non-empty ring.
  ShardId ShardFor(const std::string& tenant) const;

  /// Up to `k` distinct shards in ring order starting at the tenant's
  /// point: element 0 is the home shard, element 1 the first fallback
  /// (the drain/overload reroute target), and so on.
  std::vector<ShardId> PreferenceOrder(const std::string& tenant,
                                       size_t k) const;

  /// The seeded FNV-1a point hash used for both vnodes and tenants;
  /// exposed so tests and the router's replica spread share one stable
  /// hash.
  static uint64_t HashKey(uint64_t seed, const std::string& key);

 private:
  RingOptions options_;
  /// Sorted (point, shard); ties break by shard id so a hash collision
  /// cannot make placement order-dependent.
  std::vector<std::pair<uint64_t, ShardId>> ring_;
  std::set<ShardId> shards_;
};

}  // namespace ads::fleet

#endif  // ADS_FLEET_RING_H_
