#include "fleet/router.h"

#include "common/logging.h"

namespace ads::fleet {

const char* RouteReasonName(RouteReason reason) {
  switch (reason) {
    case RouteReason::kHome:
      return "home";
    case RouteReason::kDrainDivert:
      return "drain_divert";
    case RouteReason::kLoadDivert:
      return "load_divert";
  }
  return "unknown";
}

FleetRouter::FleetRouter(size_t shards, size_t replicas_per_shard,
                         RouterOptions options)
    : shard_count_(shards),
      replicas_per_shard_(replicas_per_shard),
      options_(options),
      ring_(options.ring),
      draining_(shards, 0),
      load_(shards) {
  ADS_CHECK(shards >= 1) << "fleet needs at least one shard";
  ADS_CHECK(replicas_per_shard >= 1) << "shard needs at least one replica";
  for (ShardId s = 0; s < shards; ++s) ring_.AddShard(s);
}

RouteDecision FleetRouter::Route(const std::string& tenant,
                                 uint64_t request_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  RouteDecision decision;
  std::vector<ShardId> prefs = ring_.PreferenceOrder(tenant, shard_count_);
  decision.home_shard = prefs[0];
  decision.shard = prefs[0];
  decision.reason = RouteReason::kHome;
  const bool home_draining = draining_[prefs[0]] != 0;
  const bool home_overloaded =
      static_cast<double>(load_[prefs[0]].queue_depth) >
      options_.overload_queue_depth;
  if (home_draining || home_overloaded) {
    for (size_t i = 1; i < prefs.size(); ++i) {
      const ShardId candidate = prefs[i];
      if (draining_[candidate] != 0) continue;
      if (home_overloaded && !home_draining &&
          static_cast<double>(load_[candidate].queue_depth) >
              options_.divert_target_depth) {
        continue;  // don't shuffle load onto an equally drowning shard
      }
      decision.shard = candidate;
      decision.reason = home_draining ? RouteReason::kDrainDivert
                                      : RouteReason::kLoadDivert;
      break;
    }
  }
  // Replica spread: hash (tenant, id) so one tenant's requests fan over
  // the replica group instead of hot-spotting replica 0, while staying a
  // pure function of the request.
  decision.replica =
      replicas_per_shard_ == 1
          ? 0
          : static_cast<size_t>(HashRing::HashKey(
                options_.ring.seed ^ 0x9e3779b97f4a7c15ull,
                tenant + "#" + std::to_string(request_id))) %
                replicas_per_shard_;
  return decision;
}

void FleetRouter::DrainShard(ShardId shard) {
  std::lock_guard<std::mutex> lock(mu_);
  ADS_CHECK(shard < shard_count_) << "drain of unknown shard " << shard;
  draining_[shard] = 1;
}

void FleetRouter::RejoinShard(ShardId shard) {
  std::lock_guard<std::mutex> lock(mu_);
  ADS_CHECK(shard < shard_count_) << "rejoin of unknown shard " << shard;
  draining_[shard] = 0;
}

bool FleetRouter::draining(ShardId shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  ADS_CHECK(shard < shard_count_) << "unknown shard " << shard;
  return draining_[shard] != 0;
}

void FleetRouter::UpdateLoad(ShardId shard, const ShardLoad& load) {
  std::lock_guard<std::mutex> lock(mu_);
  ADS_CHECK(shard < shard_count_) << "load update for unknown shard " << shard;
  load_[shard] = load;
}

ShardLoad FleetRouter::load(ShardId shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  ADS_CHECK(shard < shard_count_) << "unknown shard " << shard;
  return load_[shard];
}

ShardId FleetRouter::RerouteTarget(const std::string& tenant,
                                   ShardId exclude) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ShardId> prefs = ring_.PreferenceOrder(tenant, shard_count_);
  for (ShardId candidate : prefs) {
    if (candidate == exclude) continue;
    if (draining_[candidate] != 0) continue;
    return candidate;
  }
  return exclude;
}

}  // namespace ads::fleet
