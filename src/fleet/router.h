#ifndef ADS_FLEET_ROUTER_H_
#define ADS_FLEET_ROUTER_H_

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "fleet/ring.h"
#include "fleet/types.h"

namespace ads::fleet {

/// Cross-shard load snapshot one shard publishes into the router: the
/// signals the reroute/shed decisions read. Queue depth and inflight are
/// instantaneous; shed_rate and p99 are whatever window the publisher
/// maintains.
struct ShardLoad {
  size_t queue_depth = 0;
  size_t inflight = 0;
  double shed_rate = 0.0;
  double p99_seconds = 0.0;
};

struct RouterOptions {
  RingOptions ring;
  /// Load-aware divert: an arrival whose home shard's published queue
  /// depth exceeds this is routed to the first fallback shard whose depth
  /// is at most divert_target_depth. Infinity disables load diverts.
  double overload_queue_depth = std::numeric_limits<double>::infinity();
  /// A fallback must be at most this deep to take diverted traffic
  /// (prevents shuffling load between two equally drowning shards).
  double divert_target_depth = std::numeric_limits<double>::infinity();
};

/// Why a request landed on its shard.
enum class RouteReason {
  kHome = 0,      // consistent-hash home shard
  kDrainDivert,   // home shard is draining
  kLoadDivert,    // home shard over the load threshold
};
const char* RouteReasonName(RouteReason reason);

struct RouteDecision {
  ShardId shard = 0;
  size_t replica = 0;
  ShardId home_shard = 0;
  RouteReason reason = RouteReason::kHome;
};

/// Placement front door of the fleet: consistent-hash home placement,
/// drain-aware and load-aware diverts, and deterministic replica spread
/// within the chosen shard. Both runtimes (VirtualFleet from its event
/// loop, FleetRuntime from concurrent Submit callers) route through this
/// one object; it is thread-safe and, given the same ring seed, drain
/// flags, and published loads, bit-deterministic.
class FleetRouter {
 public:
  FleetRouter(size_t shards, size_t replicas_per_shard,
              RouterOptions options = RouterOptions());

  /// Routes one arrival. Deterministic in (tenant, request_id, ring seed,
  /// drain flags, published loads). When every shard is draining the home
  /// shard takes the request anyway — admission control there decides its
  /// fate; routing never silently drops.
  RouteDecision Route(const std::string& tenant, uint64_t request_id) const;

  /// Marks a shard as draining: new arrivals divert to ring fallbacks
  /// until RejoinShard. Idempotent.
  void DrainShard(ShardId shard);
  void RejoinShard(ShardId shard);
  bool draining(ShardId shard) const;

  /// Publishes one shard's load snapshot (overwrites the previous one).
  void UpdateLoad(ShardId shard, const ShardLoad& load);
  ShardLoad load(ShardId shard) const;

  /// First non-draining shard in the tenant's preference order excluding
  /// `exclude` — the mid-drain reroute target for queued requests.
  /// Returns `exclude` itself if every other shard is draining.
  ShardId RerouteTarget(const std::string& tenant, ShardId exclude) const;

  size_t shards() const { return shard_count_; }
  size_t replicas_per_shard() const { return replicas_per_shard_; }
  const RouterOptions& options() const { return options_; }

 private:
  const size_t shard_count_;
  const size_t replicas_per_shard_;
  const RouterOptions options_;

  mutable std::mutex mu_;
  HashRing ring_;
  std::vector<uint8_t> draining_;
  std::vector<ShardLoad> load_;
};

}  // namespace ads::fleet

#endif  // ADS_FLEET_ROUTER_H_
