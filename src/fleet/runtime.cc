#include "fleet/runtime.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "telemetry/gauges.h"

namespace ads::fleet {

namespace {

constexpr std::chrono::milliseconds kQuiescePollInterval(1);

}  // namespace

FleetRuntime::FleetRuntime(FleetRuntimeOptions options,
                           common::ThreadPool* pool)
    : options_(options),
      pool_(pool),
      router_(options.shards, options.replicas_per_shard, options.router),
      hedge_(options.hedge),
      counters_(options.shards) {
  ADS_CHECK(pool_ != nullptr) << "fleet needs a thread pool";
  runtimes_.reserve(options_.shards * options_.replicas_per_shard);
  for (size_t i = 0; i < options_.shards * options_.replicas_per_shard; ++i) {
    runtimes_.push_back(
        std::make_unique<serve::ServingRuntime>(options_.core, pool_));
  }
}

FleetRuntime::~FleetRuntime() { Shutdown(); }

void FleetRuntime::RegisterBackend(const std::string& model,
                                   autonomy::ResilientModelServer* backend) {
  ADS_CHECK(backend != nullptr) << "null backend";
  ADS_CHECK(!started_) << "backends must be registered before Start()";
  backends_[model] = backend;
  // One fleet-wide mutex per model: ResilientModelServer is not
  // thread-safe, and per-runtime serialization alone would let replicas on
  // different runtimes call Predict concurrently on the shared backend.
  auto [it, inserted] =
      backend_serialization_.emplace(model, std::make_unique<std::mutex>());
  ADS_CHECK(inserted) << "model registered twice: " << model;
  for (auto& runtime : runtimes_) {
    runtime->RegisterBackend(model, backend, it->second.get());
  }
}

void FleetRuntime::SetVersionRouter(const autonomy::VersionRouter* router) {
  ADS_CHECK(!started_) << "SetVersionRouter after Start()";
  version_router_ = router;
}

void FleetRuntime::SetTracer(telemetry::Tracer* tracer) {
  ADS_CHECK(!started_) << "SetTracer after Start()";
  for (auto& runtime : runtimes_) runtime->SetTracer(tracer);
}

void FleetRuntime::Start() {
  ADS_CHECK(!started_) << "Start() is one-shot";
  ADS_CHECK(!backends_.empty()) << "no backends registered";
  started_ = true;
  for (auto& runtime : runtimes_) runtime->Start();
  if (hedge_.enabled() && options_.replicas_per_shard >= 2) {
    hedger_ = std::thread([this]() { HedgerLoop(); });
  }
}

common::Status FleetRuntime::Submit(serve::Request request,
                                    Callback callback) {
  ADS_CHECK(started_) << "Submit before Start()";
  const uint64_t id = request.id;
  auto backend_it = backends_.find(request.model);
  ADS_CHECK(backend_it != backends_.end())
      << "unregistered model: " << request.model;
  // Pin the version here, before placement, so the primary and a later
  // hedge duplicate are guaranteed to serve the same model version.
  if (request.pinned_version == 0 && version_router_ != nullptr) {
    request.pinned_version =
        version_router_->Route(request.model, request.tenant);
  }
  if (request.pinned_version == 0) {
    request.pinned_version = backend_it->second->CurrentDeployedVersion();
  }
  const RouteDecision decision = router_.Route(request.tenant, id);

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      return common::Status::FailedPrecondition(
          "fleet runtime is shutting down");
    }
    counters_[decision.shard].submitted += 1;
    if (decision.reason == RouteReason::kDrainDivert) {
      counters_[decision.home_shard].drain_diverts += 1;
    } else if (decision.reason == RouteReason::kLoadDivert) {
      counters_[decision.home_shard].load_diverts += 1;
    }
    ADS_CHECK(flights_.emplace(id, Flight()).second)
        << "duplicate request id " << id;
    Flight& flight = flights_[id];
    flight.prototype = request;
    flight.user = std::move(callback);
    flight.owner = decision.shard;
    flight.primary_replica = decision.replica;
  }

  // The inner Submit may invoke OnCopyResponse inline (rejections), which
  // takes mu_ — so mu_ must not be held here.
  common::Status status = replica(decision.shard, decision.replica)
                              .Submit(std::move(request),
                                      [this, id](const serve::Response& r) {
                                        OnCopyResponse(id, false, r);
                                      });

  Callback failed_user;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (status.ok()) {
      counters_[decision.shard].accepted += 1;
      auto it = flights_.find(id);
      // The flight can already be gone if the request raced to a served
      // response before Submit returned; nothing left to hedge then.
      if (it != flights_.end() && !it->second.primary_done &&
          hedge_.enabled() && options_.replicas_per_shard >= 2) {
        hedge_deadlines_.push(
            {std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(hedge_.Delay())),
             id});
        hedger_wake_.notify_one();
      }
    } else if (status.code() == common::StatusCode::kFailedPrecondition) {
      // The replica refused without invoking the callback (shutdown
      // race); resolve the flight ourselves.
      counters_[decision.shard].rejected_capacity += 1;
      auto it = flights_.find(id);
      ADS_CHECK(it != flights_.end());
      failed_user = std::move(it->second.user);
      flights_.erase(it);
    }
    // Other rejection statuses already resolved the flight through the
    // inline callback.
  }
  if (failed_user != nullptr) {
    serve::Response response;
    response.id = id;
    response.outcome = serve::Outcome::kRejectedCapacity;
    failed_user(response);
  }
  return status;
}

void FleetRuntime::OnCopyResponse(uint64_t id, bool is_hedge,
                                  const serve::Response& response) {
  Callback user;
  serve::Response out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flights_.find(id);
    if (it == flights_.end()) return;  // resolved and finalized already
    Flight& flight = it->second;
    if (is_hedge) {
      flight.hedge_done = true;
    } else {
      flight.primary_done = true;
    }
    if (!flight.resolved) {
      const bool served = response.outcome == serve::Outcome::kServed;
      bool resolve_now = false;
      if (served) {
        // First served copy wins, whichever it is.
        resolve_now = true;
        out = response;
        counters_[flight.owner].served += 1;
        hedge_.Observe(response.latency_seconds);
        if (flight.hedge_fired) {
          if (is_hedge) {
            counters_[flight.hedge_home].hedge_wins += 1;
          } else {
            counters_[flight.hedge_home].primary_wins += 1;
          }
        }
      } else if (!is_hedge) {
        // Primary failed. If a hedge is still out there, hold the failure:
        // the duplicate may yet serve.
        if (flight.hedge_fired && !flight.hedge_done) {
          flight.have_failure = true;
          flight.failure = response;
        } else {
          resolve_now = true;
          out = response;
        }
      } else if (flight.primary_done) {
        // Hedge failed after the primary already had: the logical outcome
        // is the primary's failure.
        ADS_CHECK(flight.have_failure)
            << "both copies failed with no stored outcome for " << id;
        resolve_now = true;
        out = flight.failure;
      }
      // else: the hedge copy failed while the primary is still live —
      // nothing resolves; the hedge loser just bows out early.
      if (resolve_now) {
        flight.resolved = true;
        if (!served) {
          switch (out.outcome) {
            case serve::Outcome::kRejectedRateLimit:
              counters_[flight.owner].rejected_rate_limit += 1;
              break;
            case serve::Outcome::kRejectedCapacity:
              counters_[flight.owner].rejected_capacity += 1;
              break;
            case serve::Outcome::kRejectedDeadline:
              counters_[flight.owner].rejected_deadline += 1;
              break;
            case serve::Outcome::kShedCapacity:
              counters_[flight.owner].shed_capacity += 1;
              break;
            case serve::Outcome::kShedDeadline:
              counters_[flight.owner].shed_deadline += 1;
              break;
            default:
              ADS_CHECK(false) << "unexpected terminal outcome";
          }
          // Resolving with a failure after a hedge fired means both
          // copies lost: the race had no winner.
          if (flight.hedge_fired) {
            counters_[flight.hedge_home].hedges_failed += 1;
          }
        }
        user = std::move(flight.user);
      }
    }
    FinalizeLocked(it);
  }
  if (user != nullptr) user(out);
}

void FleetRuntime::FinalizeLocked(std::map<uint64_t, Flight>::iterator it) {
  Flight& flight = it->second;
  if (!flight.primary_done || (flight.hedge_fired && !flight.hedge_done)) {
    return;
  }
  ADS_CHECK(flight.resolved)
      << "finalizing request " << it->first << " with no resolution";
  if (flight.hedge_fired) {
    counters_[flight.hedge_home].hedges_cancelled += 1;
  }
  flights_.erase(it);
}

void FleetRuntime::FireHedge(uint64_t id,
                             std::unique_lock<std::mutex>& lock) {
  auto it = flights_.find(id);
  if (it == flights_.end()) return;
  Flight& flight = it->second;
  if (flight.resolved || flight.primary_done || flight.hedge_fired) return;
  if (router_.draining(flight.owner)) return;  // don't hedge into a drain
  flight.hedge_fired = true;
  flight.hedge_home = flight.owner;
  const ShardId shard = flight.owner;
  const size_t hedge_replica =
      (flight.primary_replica + 1) % options_.replicas_per_shard;
  counters_[flight.hedge_home].hedges_fired += 1;
  serve::Request copy = flight.prototype;

  lock.unlock();
  common::Status status =
      replica(shard, hedge_replica)
          .Submit(std::move(copy), [this, id](const serve::Response& r) {
            OnCopyResponse(id, true, r);
          });
  lock.lock();
  if (status.code() == common::StatusCode::kFailedPrecondition) {
    // The replica refused without a callback; the hedge is an instant
    // loser and the flight continues on its primary alone.
    auto again = flights_.find(id);
    if (again != flights_.end()) {
      again->second.hedge_done = true;
      FinalizeLocked(again);
    }
  }
  // Plain rejections already resolved through the inline hedge callback.
}

void FleetRuntime::HedgerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutting_down_) {
    if (hedge_deadlines_.empty()) {
      hedger_wake_.wait(lock);
      continue;
    }
    const auto due = hedge_deadlines_.top().due;
    if (std::chrono::steady_clock::now() < due) {
      hedger_wake_.wait_until(lock, due);
      continue;
    }
    const uint64_t id = hedge_deadlines_.top().id;
    hedge_deadlines_.pop();
    FireHedge(id, lock);  // drops and retakes the lock around Submit
  }
}

void FleetRuntime::DrainShard(ShardId shard) { router_.DrainShard(shard); }

void FleetRuntime::RejoinShard(ShardId shard) { router_.RejoinShard(shard); }

void FleetRuntime::WaitShardQuiesced(ShardId shard) const {
  ADS_CHECK(shard < options_.shards) << "unknown shard " << shard;
  for (;;) {
    bool quiet = true;
    for (size_t r = 0; quiet && r < options_.replicas_per_shard; ++r) {
      if (replica(shard, r).Stats().queued > 0) quiet = false;
    }
    if (quiet) {
      std::lock_guard<std::mutex> lock(mu_);
      quiet = std::none_of(flights_.begin(), flights_.end(),
                           [shard](const auto& entry) {
                             return entry.second.owner == shard;
                           });
    }
    if (quiet) return;
    std::this_thread::sleep_for(kQuiescePollInterval);
  }
}

void FleetRuntime::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return;
    shutting_down_ = true;
  }
  hedger_wake_.notify_all();
  if (hedger_.joinable()) hedger_.join();
  for (auto& runtime : runtimes_) runtime->Shutdown();
  std::lock_guard<std::mutex> lock(mu_);
  ADS_CHECK(flights_.empty())
      << "fleet shutdown left " << flights_.size() << " flights unresolved";
  if (started_) CheckInvariantsLocked();
}

void FleetRuntime::CheckInvariantsLocked() const {
  for (ShardId shard = 0; shard < options_.shards; ++shard) {
    const ShardCounters& c = counters_[shard];
    ADS_CHECK(c.submitted == c.accepted + c.Rejected())
        << "shard " << shard << ": admission not total";
    ADS_CHECK(c.accepted + c.rerouted_in == c.Finished() + c.rerouted_out)
        << "shard " << shard << ": ownership ledger out of balance";
    ADS_CHECK(c.hedges_fired ==
              c.hedge_wins + c.primary_wins + c.hedges_failed)
        << "shard " << shard << ": a fired hedge has no outcome";
    ADS_CHECK(c.hedges_fired == c.hedges_cancelled)
        << "shard " << shard << ": a fired hedge has no cancelled loser";
  }
  const ShardCounters fleet = Aggregate(counters_);
  ADS_CHECK(fleet.accepted == fleet.served + fleet.Shed())
      << "fleet ledger out of balance";
}

std::vector<ShardCounters> FleetRuntime::CountersSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

ShardCounters FleetRuntime::FleetCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Aggregate(counters_);
}

serve::ServingStats FleetRuntime::ReplicaStats(ShardId shard,
                                               size_t r) const {
  ADS_CHECK(shard < options_.shards && r < options_.replicas_per_shard)
      << "unknown replica " << shard << "/" << r;
  return replica(shard, r).Stats();
}

double FleetRuntime::HedgeDelay() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hedge_.Delay();
}

void FleetRuntime::SampleGauges(telemetry::TelemetryStore* store) {
  if (store == nullptr) return;
  const double now = runtimes_.empty() ? 0.0 : runtimes_[0]->Now();
  std::vector<ShardCounters> counters = CountersSnapshot();
  for (ShardId shard = 0; shard < options_.shards; ++shard) {
    ShardLoad load;
    for (size_t r = 0; r < options_.replicas_per_shard; ++r) {
      telemetry::ScopedGauges scope(
          store, "fleet.serve.",
          {{"shard", std::to_string(shard)},
           {"replica", std::to_string(r)}});
      replica(shard, r).SampleGauges(scope);
      serve::ServingStats stats = replica(shard, r).Stats();
      load.queue_depth += stats.queued;
      load.p99_seconds = std::max(load.p99_seconds, stats.latency.p99);
    }
    const ShardCounters& c = counters[shard];
    load.shed_rate = c.accepted > 0 ? static_cast<double>(c.Shed()) /
                                          static_cast<double>(c.accepted)
                                    : 0.0;
    router_.UpdateLoad(shard, load);
    telemetry::ScopedGauges fleet_scope(
        store, "fleet.", {{"shard", std::to_string(shard)}});
    fleet_scope.Record("served_total", now, static_cast<double>(c.served));
    fleet_scope.Record("hedges_fired_total", now,
                       static_cast<double>(c.hedges_fired));
    fleet_scope.Record("hedge_wins_total", now,
                       static_cast<double>(c.hedge_wins));
    fleet_scope.Record("draining", now,
                       router_.draining(shard) ? 1.0 : 0.0);
  }
}

}  // namespace ads::fleet
