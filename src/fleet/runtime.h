#ifndef ADS_FLEET_RUNTIME_H_
#define ADS_FLEET_RUNTIME_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "autonomy/router.h"
#include "autonomy/serving.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "fleet/hedge.h"
#include "fleet/router.h"
#include "fleet/types.h"
#include "serve/runtime.h"
#include "serve/types.h"
#include "telemetry/span.h"
#include "telemetry/store.h"

namespace ads::fleet {

struct FleetRuntimeOptions {
  size_t shards = 4;
  size_t replicas_per_shard = 2;
  /// Admission/batching policy instantiated per replica runtime.
  serve::CoreOptions core;
  HedgeOptions hedge;
  RouterOptions router;
};

/// Threaded sharded serving tier: shards x replicas ServingRuntimes behind
/// one FleetRouter, with tail-latency hedging driven by a dedicated hedger
/// thread. The wall-clock counterpart of VirtualFleet — same routing, same
/// first-completion-wins hedge state machine, same logical-request ledger
/// (ShardCounters) — minus virtual time's reproducibility: use VirtualFleet
/// for byte-stable experiments and this for running under real load.
///
/// Drain model: DrainShard diverts new arrivals via the ring; work already
/// queued on the shard completes in place (a real runtime cannot un-send
/// what its dispatcher may already be executing), so a rolling deploy is
/// drain → WaitShardQuiesced → swap → RejoinShard with zero lost requests.
/// The mid-drain queue reroute with ownership transfer is exercised in
/// virtual time, where it is observable deterministically.
///
/// Every logical request gets exactly one user callback, even when hedged:
/// copy responses funnel through a per-flight state machine that picks the
/// first served copy (or the primary's failure once every copy has failed)
/// and discards the loser.
class FleetRuntime {
 public:
  using Callback = serve::ServingRuntime::Callback;

  /// `pool` is borrowed, shared by every replica runtime, and must outlive
  /// the fleet.
  FleetRuntime(FleetRuntimeOptions options, common::ThreadPool* pool);
  ~FleetRuntime();

  FleetRuntime(const FleetRuntime&) = delete;
  FleetRuntime& operator=(const FleetRuntime&) = delete;

  /// Registers a model on every replica (fleet-wide). Borrowed; must
  /// outlive Shutdown(). The fleet installs one shared per-model mutex
  /// across all replica runtimes, so the non-thread-safe backend never
  /// sees interleaved Predict calls — replicas serialize on the backend,
  /// which models a shared model store behind independent serving queues.
  void RegisterBackend(const std::string& model,
                       autonomy::ResilientModelServer* backend);

  /// Version router consulted once per logical request at Submit; the pin
  /// is stamped before placement so the primary and any hedge duplicate
  /// serve the same version even if a promote lands between them.
  void SetVersionRouter(const autonomy::VersionRouter* router);
  /// Forwards a thread-safe tracer to every replica runtime.
  void SetTracer(telemetry::Tracer* tracer);

  void Start();

  /// Thread-safe. Routes by (tenant, id), stamps the version pin, and
  /// submits to the chosen replica. `callback` fires exactly once with the
  /// logical outcome; requests accepted with hedging enabled may fire a
  /// duplicate later. Request ids must be unique across the fleet.
  common::Status Submit(serve::Request request, Callback callback);

  /// Diverts new arrivals away from `shard` (ring fallback order). Queued
  /// and in-flight work completes in place.
  void DrainShard(ShardId shard);
  void RejoinShard(ShardId shard);
  /// Blocks until the shard has no queued work and no unresolved flight
  /// whose primary copy lives there. Call after DrainShard to know the
  /// shard is safe to restart.
  void WaitShardQuiesced(ShardId shard) const;

  /// Stops the hedger, drains every replica runtime, and checks the
  /// fleet accounting invariants. Idempotent.
  void Shutdown();

  std::vector<ShardCounters> CountersSnapshot() const;
  ShardCounters FleetCounters() const;
  serve::ServingStats ReplicaStats(ShardId shard, size_t r) const;
  const FleetRouter& router() const { return router_; }
  /// Current quantile-derived hedge delay (seconds).
  double HedgeDelay() const;

  /// Publishes per-replica serving gauges (prefix "fleet.serve.", labels
  /// {shard, replica}) and per-shard fleet counters (prefix "fleet.",
  /// label {shard}) into `store`, and refreshes the router's load view.
  void SampleGauges(telemetry::TelemetryStore* store);

 private:
  /// Exactly-one-callback state machine for one logical request.
  struct Flight {
    serve::Request prototype;  // version-pinned copy for the hedge
    Callback user;
    ShardId owner = 0;
    size_t primary_replica = 0;
    ShardId hedge_home = 0;
    bool resolved = false;
    bool primary_done = false;
    bool hedge_fired = false;
    bool hedge_done = false;
    bool have_failure = false;
    serve::Response failure;  // primary's failure, held while hedge runs
  };
  struct HedgeDeadline {
    std::chrono::steady_clock::time_point due;
    uint64_t id;
    bool operator>(const HedgeDeadline& other) const {
      return due > other.due;
    }
  };

  serve::ServingRuntime& replica(ShardId shard, size_t r) {
    return *runtimes_[shard * options_.replicas_per_shard + r];
  }
  const serve::ServingRuntime& replica(ShardId shard, size_t r) const {
    return *runtimes_[shard * options_.replicas_per_shard + r];
  }
  /// Funnel for every copy response; resolves / finalizes the flight.
  void OnCopyResponse(uint64_t id, bool is_hedge,
                      const serve::Response& response);
  void HedgerLoop();
  /// Fires one due hedge (called from the hedger with mu_ held; drops the
  /// lock around the inner Submit).
  void FireHedge(uint64_t id, std::unique_lock<std::mutex>& lock);
  /// Requires mu_. Returns the callback to invoke (resolution) or null.
  void FinalizeLocked(std::map<uint64_t, Flight>::iterator it);
  void CheckInvariantsLocked() const;

  FleetRuntimeOptions options_;
  common::ThreadPool* pool_;
  FleetRouter router_;
  std::vector<std::unique_ptr<serve::ServingRuntime>> runtimes_;
  std::map<std::string, autonomy::ResilientModelServer*> backends_;
  /// Fleet-wide per-model backend serialization (see RegisterBackend).
  std::map<std::string, std::unique_ptr<std::mutex>> backend_serialization_;
  const autonomy::VersionRouter* version_router_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable hedger_wake_;
  HedgePolicy hedge_;
  std::map<uint64_t, Flight> flights_;
  std::priority_queue<HedgeDeadline, std::vector<HedgeDeadline>,
                      std::greater<HedgeDeadline>>
      hedge_deadlines_;
  std::vector<ShardCounters> counters_;
  bool started_ = false;
  bool shutting_down_ = false;
  std::thread hedger_;
};

}  // namespace ads::fleet

#endif  // ADS_FLEET_RUNTIME_H_
