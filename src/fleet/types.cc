#include "fleet/types.h"

namespace ads::fleet {

ShardCounters Aggregate(const std::vector<ShardCounters>& shards) {
  ShardCounters total;
  for (const ShardCounters& c : shards) {
    total.submitted += c.submitted;
    total.accepted += c.accepted;
    total.rejected_rate_limit += c.rejected_rate_limit;
    total.rejected_capacity += c.rejected_capacity;
    total.rejected_deadline += c.rejected_deadline;
    total.served += c.served;
    total.shed_capacity += c.shed_capacity;
    total.shed_deadline += c.shed_deadline;
    total.rerouted_in += c.rerouted_in;
    total.rerouted_out += c.rerouted_out;
    total.drain_diverts += c.drain_diverts;
    total.load_diverts += c.load_diverts;
    total.hedges_fired += c.hedges_fired;
    total.hedge_wins += c.hedge_wins;
    total.primary_wins += c.primary_wins;
    total.hedges_failed += c.hedges_failed;
    total.hedges_cancelled += c.hedges_cancelled;
  }
  return total;
}

}  // namespace ads::fleet
