#ifndef ADS_FLEET_TYPES_H_
#define ADS_FLEET_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ads::fleet {

/// Index of one shard within the fleet (0-based, dense).
using ShardId = size_t;

/// Fleet-level accounting for one shard, maintained by the fleet runtimes
/// (the per-replica serve::Counters underneath keep counting every copy
/// that passes through a core — including hedge duplicates and rerouted
/// re-injections — so they are load views, not the ledger).
///
/// Accounting is by *logical request* and follows ownership: a request is
/// owned by the shard its primary copy sits on; a mid-drain reroute
/// transfers ownership (rerouted_out on the source, rerouted_in on the
/// target) and the terminal outcome is counted against the owner at
/// emission time. Hedge duplicates never touch the served/shed ledger —
/// they only move the hedge counters. The invariants the fleet tests
/// enforce, per shard after a full drain:
///
///   accepted + rerouted_in == served + shed_capacity + shed_deadline
///                             + rerouted_out
///   hedges_fired == hedge_wins + primary_wins + hedges_failed
///                               (one winner per hedge, unless every copy
///                                of the request failed)
///   hedges_fired == hedges_cancelled            (one loser per hedge)
///
/// and fleet-wide, because reroute in/out telescope:
///
///   sum(accepted) == sum(served) + sum(shed_*)
struct ShardCounters {
  /// Fresh arrivals whose route landed here (hedge duplicates excluded).
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected_rate_limit = 0;
  uint64_t rejected_capacity = 0;
  uint64_t rejected_deadline = 0;
  /// Owned requests whose terminal outcome was a served response.
  uint64_t served = 0;
  uint64_t shed_capacity = 0;
  uint64_t shed_deadline = 0;
  /// Ownership transfers from/to this shard (queued requests moved by a
  /// shard drain).
  uint64_t rerouted_in = 0;
  uint64_t rerouted_out = 0;
  /// Arrivals whose home was this shard but were diverted at route time
  /// (shard draining, or load-aware overload divert). Informational: the
  /// diverted request is accounted on the shard that actually took it.
  uint64_t drain_diverts = 0;
  uint64_t load_diverts = 0;
  /// Hedge duplicates launched for requests owned here; wins split by
  /// which copy finished first; every fired hedge eventually resolves
  /// exactly one cancelled loser.
  uint64_t hedges_fired = 0;
  uint64_t hedge_wins = 0;
  uint64_t primary_wins = 0;
  /// Hedged requests where *both* copies failed (shed or rejected): the
  /// race had no winner and the logical outcome is the primary's failure.
  uint64_t hedges_failed = 0;
  uint64_t hedges_cancelled = 0;

  uint64_t Rejected() const {
    return rejected_rate_limit + rejected_capacity + rejected_deadline;
  }
  uint64_t Shed() const { return shed_capacity + shed_deadline; }
  uint64_t Finished() const { return served + Shed(); }
};

/// Element-wise sum over shards. The telescoped fleet-wide invariant
/// (accepted == served + shed) holds on the result.
ShardCounters Aggregate(const std::vector<ShardCounters>& shards);

}  // namespace ads::fleet

#endif  // ADS_FLEET_TYPES_H_
