#include "fleet/virtual_fleet.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.h"
#include "telemetry/gauges.h"

namespace ads::fleet {

namespace {

std::string ShardName(ShardId shard) {
  return "shard-" + std::to_string(shard);
}

}  // namespace

VirtualFleet::VirtualFleet(VirtualFleetOptions options,
                           telemetry::TelemetryStore* store)
    : options_(options),
      store_(store),
      router_(options.shards, options.replicas_per_shard, options.router),
      hedge_(options.hedge),
      counters_(options.shards),
      drain_spans_(options.shards, telemetry::kNoSpan),
      shard_latency_(options.shards) {
  ADS_CHECK(options_.workers_per_replica >= 1)
      << "need at least one virtual worker per replica";
  ADS_CHECK(options_.service.batch_overhead_seconds >= 0.0 &&
            options_.service.per_item_seconds >= 0.0)
      << "negative service time";
  ADS_CHECK(options_.slow_probability >= 0.0 &&
            options_.slow_probability <= 1.0)
      << "slow_probability out of [0,1]";
  ADS_CHECK(options_.slow_multiplier >= 1.0)
      << "slow_multiplier must be >= 1";
  // Fork noise streams in (shard, replica) order so the fleet layout, not
  // event timing, fixes which stream each replica owns.
  common::Rng master(options_.seed);
  replicas_.reserve(options_.shards * options_.replicas_per_shard);
  for (size_t i = 0; i < options_.shards * options_.replicas_per_shard; ++i) {
    replicas_.emplace_back(options_.core, master.engine()());
  }
}

void VirtualFleet::RegisterBackend(const std::string& model,
                                   autonomy::ResilientModelServer* backend) {
  ADS_CHECK(backend != nullptr) << "null backend";
  backends_[model] = backend;
}

void VirtualFleet::SetRouter(const autonomy::VersionRouter* router) {
  ADS_CHECK(!ran_) << "SetRouter after Run()";
  version_router_ = router;
}

void VirtualFleet::SetTracer(telemetry::Tracer* tracer) {
  ADS_CHECK(!ran_) << "SetTracer after Run()";
  tracer_ = tracer;
  for (Replica& replica : replicas_) replica.core.SetTracer(tracer);
}

void VirtualFleet::SetResponseCallback(Callback callback) {
  callback_ = std::move(callback);
}

void VirtualFleet::SubmitAt(double t, serve::Request request) {
  ADS_CHECK(!ran_) << "SubmitAt after Run()";
  queue_.ScheduleAt(t, [this, r = std::move(request)](
                           common::SimTime now) mutable {
    OnArrival(std::move(r), now);
  });
}

void VirtualFleet::ScheduleDrain(double t, ShardId shard) {
  ADS_CHECK(!ran_) << "ScheduleDrain after Run()";
  ADS_CHECK(shard < options_.shards) << "drain of unknown shard " << shard;
  queue_.ScheduleAt(
      t, [this, shard](common::SimTime now) { DrainShardNow(shard, now); });
}

void VirtualFleet::ScheduleRejoin(double t, ShardId shard) {
  ADS_CHECK(!ran_) << "ScheduleRejoin after Run()";
  ADS_CHECK(shard < options_.shards) << "rejoin of unknown shard " << shard;
  queue_.ScheduleAt(
      t, [this, shard](common::SimTime now) { RejoinShardNow(shard, now); });
}

void VirtualFleet::ScheduleRollingDrain(double start, double dwell_seconds) {
  ADS_CHECK(dwell_seconds > 0.0) << "rolling drain needs a positive dwell";
  for (ShardId shard = 0; shard < options_.shards; ++shard) {
    const double t = start + static_cast<double>(shard) * dwell_seconds;
    ScheduleDrain(t, shard);
    ScheduleRejoin(t + dwell_seconds, shard);
  }
}

size_t VirtualFleet::ShardQueueDepth(ShardId shard) const {
  size_t depth = 0;
  for (size_t r = 0; r < options_.replicas_per_shard; ++r) {
    depth += replicas_[shard * options_.replicas_per_shard + r].core.queued();
  }
  return depth;
}

size_t VirtualFleet::FleetQueueDepth() const {
  size_t depth = 0;
  for (const Replica& replica : replicas_) depth += replica.core.queued();
  return depth;
}

void VirtualFleet::Emit(const serve::Response& response) {
  if (callback_ != nullptr) callback_(response);
}

void VirtualFleet::PublishLoad(ShardId shard) {
  ShardLoad load;
  load.queue_depth = ShardQueueDepth(shard);
  for (size_t r = 0; r < options_.replicas_per_shard; ++r) {
    load.inflight +=
        replicas_[shard * options_.replicas_per_shard + r].busy_workers;
  }
  const ShardCounters& c = counters_[shard];
  load.shed_rate = c.accepted > 0 ? static_cast<double>(c.Shed()) /
                                        static_cast<double>(c.accepted)
                                  : 0.0;
  load.p99_seconds = shard_latency_[shard].Quantile(0.99);
  router_.UpdateLoad(shard, load);
}

void VirtualFleet::OnArrival(serve::Request request, double now) {
  auto backend_it = backends_.find(request.model);
  ADS_CHECK(backend_it != backends_.end())
      << "unregistered model: " << request.model;
  const uint64_t id = request.id;
  ADS_CHECK(pending_.find(id) == pending_.end())
      << "duplicate request id " << id;

  const RouteDecision decision = router_.Route(request.tenant, id);
  counters_[decision.shard].submitted += 1;
  if (decision.reason == RouteReason::kDrainDivert) {
    counters_[decision.home_shard].drain_diverts += 1;
  } else if (decision.reason == RouteReason::kLoadDivert) {
    counters_[decision.home_shard].load_diverts += 1;
  }

  // The fleet opens the causal root before admission: the routing verdict
  // is part of the request's story, and a hedge needs a parent that
  // outlives either single copy.
  telemetry::SpanId root = telemetry::kNoSpan;
  if (tracer_ != nullptr) {
    root = tracer_->StartSpan("request", "req-" + std::to_string(id),
                              telemetry::kNoSpan, now);
    tracer_->Annotate(root, "model", request.model);
    tracer_->Annotate(root, "tenant", request.tenant);
    if (request.priority != 0) {
      tracer_->Annotate(root, "priority", std::to_string(request.priority));
    }
    telemetry::SpanId route =
        tracer_->StartSpan("route", ShardName(decision.shard), root, now);
    tracer_->Annotate(route, "reason", RouteReasonName(decision.reason));
    tracer_->Annotate(route, "home", ShardName(decision.home_shard));
    tracer_->Annotate(route, "replica", std::to_string(decision.replica));
    tracer_->EndSpan(route, now);
    request.trace_span = root;
  }

  // Pin the model version once per logical request; both copies and any
  // rerouted re-injection serve under this pin.
  if (request.pinned_version == 0 && version_router_ != nullptr) {
    request.pinned_version =
        version_router_->Route(request.model, request.tenant);
  }
  if (request.pinned_version == 0) {
    request.pinned_version = backend_it->second->CurrentDeployedVersion();
  }

  serve::Request prototype = request;  // kept for the hedge duplicate
  prototype.arrival = now;
  Replica& target = replica(decision.shard, decision.replica);
  serve::AdmitResult admit = target.core.Admit(std::move(request), now);
  if (!admit.accepted) {
    switch (admit.decision) {
      case serve::Outcome::kRejectedRateLimit:
        counters_[decision.shard].rejected_rate_limit += 1;
        break;
      case serve::Outcome::kRejectedCapacity:
        counters_[decision.shard].rejected_capacity += 1;
        break;
      case serve::Outcome::kRejectedDeadline:
        counters_[decision.shard].rejected_deadline += 1;
        break;
      default:
        ADS_CHECK(false) << "unexpected admission decision";
    }
    serve::Response response;
    response.id = id;
    response.outcome = admit.decision;
    Emit(response);  // core already closed the root span
  } else {
    counters_[decision.shard].accepted += 1;
    Pending pending;
    pending.prototype = std::move(prototype);
    pending.owner = decision.shard;
    pending.primary_replica = decision.replica;
    pending.arrival = now;
    pending.root_span = root;
    pending_.emplace(id, std::move(pending));
    if (hedge_.enabled() && options_.replicas_per_shard >= 2) {
      queue_.ScheduleAt(now + hedge_.Delay(), [this, id](common::SimTime t) {
        FireHedge(id, t);
      });
    }
  }
  if (admit.evicted) {
    OnCopyFailure(decision.shard, decision.replica, admit.victim.id,
                  serve::Outcome::kShedCapacity, now);
  }
  max_queue_depth_ = std::max(max_queue_depth_, FleetQueueDepth());
  Dispatch(decision.shard, decision.replica, now);
}

void VirtualFleet::FireHedge(uint64_t id, double now) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // already finalized: nothing to hedge
  Pending& p = it->second;
  if (p.resolved || p.hedge_fired || p.primary_done) return;
  // Never hedge into a draining shard: the duplicate would immediately be
  // rerouted away, buying latency for nothing.
  if (router_.draining(p.owner)) return;

  p.hedge_fired = true;
  p.hedge_shard = p.owner;
  p.hedge_replica = (p.primary_replica + 1) % options_.replicas_per_shard;
  p.hedge_home = p.owner;
  counters_[p.hedge_home].hedges_fired += 1;

  serve::Request copy = p.prototype;
  if (tracer_ != nullptr) {
    p.hedge_span = tracer_->StartSpan("hedge", "req-" + std::to_string(id),
                                      p.root_span, now);
    tracer_->Annotate(p.hedge_span, "shard", ShardName(p.hedge_shard));
    tracer_->Annotate(p.hedge_span, "replica",
                      std::to_string(p.hedge_replica));
    copy.trace_span = p.hedge_span;
  }

  const ShardId shard = p.hedge_shard;
  const size_t r = p.hedge_replica;
  Replica& target = replica(shard, r);
  serve::AdmitResult admit = target.core.Admit(std::move(copy), now);
  if (!admit.accepted) {
    // The duplicate could not even queue; the hedge resolves as an
    // immediate loser. Fleet rejected counters are untouched — the
    // logical request is still live on its primary.
    p.hedge_done = true;  // core closed the hedge span with the outcome
    MaybeFinalize(id, now);
  }
  if (admit.evicted) {
    OnCopyFailure(shard, r, admit.victim.id, serve::Outcome::kShedCapacity,
                  now);
  }
  max_queue_depth_ = std::max(max_queue_depth_, FleetQueueDepth());
  Dispatch(shard, r, now);
}

void VirtualFleet::Dispatch(ShardId shard, size_t r, double now) {
  Replica& rep = replica(shard, r);
  for (const serve::Request& expired : rep.core.DropExpired(now)) {
    OnCopyFailure(shard, r, expired.id, serve::Outcome::kShedDeadline, now);
  }
  while (rep.busy_workers < options_.workers_per_replica &&
         rep.core.HasReadyBatch(now)) {
    serve::Batch batch = rep.core.TakeReadyBatch(now);
    if (batch.requests.empty()) break;
    ++rep.busy_workers;
    double service = options_.service.batch_overhead_seconds +
                     options_.service.per_item_seconds *
                         static_cast<double>(batch.requests.size());
    bool slow = false;
    if (options_.slow_probability > 0.0 &&
        rep.rng.Bernoulli(options_.slow_probability)) {
      service *= options_.slow_multiplier;
      slow = true;
    }
    if (tracer_ != nullptr && batch.trace_span != telemetry::kNoSpan) {
      tracer_->Annotate(batch.trace_span, "shard", ShardName(shard));
      tracer_->Annotate(batch.trace_span, "replica", std::to_string(r));
      if (slow) tracer_->Annotate(batch.trace_span, "slow", "true");
    }
    queue_.ScheduleAt(now + service, [this, shard, r, b = std::move(batch),
                                      now](common::SimTime t) mutable {
      OnBatchComplete(shard, r, std::move(b), now, t);
    });
  }
  if (rep.core.queued() > 0) {
    double next = rep.core.NextLingerDeadline();
    if (next > now && next < std::numeric_limits<double>::infinity()) {
      queue_.ScheduleAt(next, [this, shard, r](common::SimTime t) {
        Dispatch(shard, r, t);
      });
    }
  }
  PublishLoad(shard);
}

void VirtualFleet::OnBatchComplete(ShardId shard, size_t r,
                                   serve::Batch batch, double dispatched,
                                   double now) {
  Replica& rep = replica(shard, r);
  --rep.busy_workers;
  autonomy::ResilientModelServer* backend = backends_.at(batch.model);
  const size_t batch_size = batch.requests.size();
  batch_size_.Add(static_cast<double>(batch_size));
  telemetry::SpanId backend_span = telemetry::kNoSpan;
  if (tracer_ != nullptr && batch.trace_span != telemetry::kNoSpan) {
    backend_span = tracer_->StartSpan("backend", batch.model,
                                      batch.trace_span, dispatched);
  }
  std::vector<size_t> all(batch_size);
  for (size_t i = 0; i < batch_size; ++i) all[i] = i;
  std::vector<autonomy::ResilientModelServer::ServeResult> served_rows;
  common::Matrix features;
  if (batch_size > 0 &&
      serve::GatherFeatures(batch.requests, all, &features)) {
    backend->PredictBatchVersion(batch.pinned_version, features, now,
                                 &served_rows);
  } else {
    served_rows.resize(batch_size);
    for (size_t i = 0; i < batch_size; ++i) {
      served_rows[i] = backend->PredictVersion(
          batch.pinned_version, batch.requests[i].features, now);
    }
  }
  for (size_t i = 0; i < batch_size; ++i) {
    const serve::Request& request = batch.requests[i];
    auto it = pending_.find(request.id);
    ADS_CHECK(it != pending_.end())
        << "completion for unknown request " << request.id;
    Pending& p = it->second;
    const bool is_primary = p.owner == shard && p.primary_replica == r;
    if (!is_primary) {
      ADS_CHECK(p.hedge_fired && p.hedge_shard == shard &&
                p.hedge_replica == r)
          << "completion at a shard/replica owning no copy of request "
          << request.id;
    }
    const telemetry::SpanId copy_span = request.trace_span;
    if (!p.resolved) {
      // First completion wins: this copy's result is the response.
      p.resolved = true;
      counters_[p.owner].served += 1;
      const double latency = now - p.arrival;
      hedge_.Observe(latency);
      latency_.Add(latency);
      shard_latency_[p.owner].Add(latency);
      if (p.hedge_fired) {
        if (is_primary) {
          counters_[p.hedge_home].primary_wins += 1;
        } else {
          counters_[p.hedge_home].hedge_wins += 1;
        }
        if (tracer_ != nullptr) {
          // Winner/loser cross-links: the root names the winning copy,
          // the hedge span records its own fate.
          tracer_->Annotate(p.root_span, "winner",
                            is_primary ? "primary" : "hedge");
          tracer_->Annotate(p.hedge_span, "result",
                            is_primary ? "cancelled" : "won");
        }
      }
      const autonomy::ResilientModelServer::ServeResult& served =
          served_rows[i];
      serve::Response response;
      response.id = request.id;
      response.outcome = serve::Outcome::kServed;
      response.value = served.value;
      response.tier = served.tier;
      response.model_version = served.version;
      response.latency_seconds = latency;
      response.batch_size = batch_size;
      if (tracer_ != nullptr && copy_span != telemetry::kNoSpan) {
        telemetry::SpanId serve_span = tracer_->StartSpan(
            "serve", batch.model, copy_span, dispatched);
        tracer_->Annotate(serve_span, "batch", std::to_string(batch.seq));
        tracer_->Annotate(serve_span, "tier", serve::TierName(served.tier));
        if (served.tier !=
            autonomy::ResilientModelServer::Tier::kDeployed) {
          telemetry::SpanId fallback = tracer_->StartSpan(
              "fallback", serve::TierName(served.tier), serve_span,
              dispatched);
          tracer_->EndSpan(fallback, now);
        }
        tracer_->EndSpan(serve_span, now);
      }
      Emit(response);
    } else if (tracer_ != nullptr && copy_span != telemetry::kNoSpan) {
      // Cancelled loser running to completion: traced (the work happened)
      // but its result is discarded and no ledger counter moves.
      telemetry::SpanId serve_span =
          tracer_->StartSpan("serve", batch.model, copy_span, dispatched);
      tracer_->Annotate(serve_span, "batch", std::to_string(batch.seq));
      tracer_->Annotate(serve_span, "discarded", "true");
      tracer_->EndSpan(serve_span, now);
    }
    if (is_primary) {
      p.primary_done = true;
    } else {
      p.hedge_done = true;
      if (tracer_ != nullptr) tracer_->EndSpan(p.hedge_span, now);
    }
    MaybeFinalize(request.id, now);
  }
  if (backend_span != telemetry::kNoSpan) {
    tracer_->EndSpan(backend_span, now);
    tracer_->EndSpan(batch.trace_span, now);
  }
  Dispatch(shard, r, now);
}

void VirtualFleet::OnCopyFailure(ShardId shard, size_t r, uint64_t id,
                                 serve::Outcome outcome, double now) {
  auto it = pending_.find(id);
  ADS_CHECK(it != pending_.end()) << "failure for unknown request " << id;
  Pending& p = it->second;
  if (p.owner == shard && p.primary_replica == r && !p.primary_done) {
    p.primary_done = true;
    p.root_ended = true;  // the core closed the root span with the outcome
    if (!p.resolved && !p.have_failure) {
      p.have_failure = true;
      p.failure = outcome;
    }
  } else {
    ADS_CHECK(p.hedge_fired && p.hedge_shard == shard &&
              p.hedge_replica == r && !p.hedge_done)
        << "failure at a shard/replica owning no copy of request " << id;
    p.hedge_done = true;  // the core closed the hedge span
  }
  MaybeFinalize(id, now);
}

void VirtualFleet::MaybeFinalize(uint64_t id, double now) {
  auto it = pending_.find(id);
  ADS_CHECK(it != pending_.end());
  Pending& p = it->second;
  if (!p.primary_done || (p.hedge_fired && !p.hedge_done)) return;
  if (!p.resolved) {
    // Every copy failed; the logical outcome is the primary's failure.
    ADS_CHECK(p.have_failure) << "finalizing request " << id
                              << " with no outcome";
    if (p.failure == serve::Outcome::kShedCapacity) {
      counters_[p.owner].shed_capacity += 1;
    } else {
      ADS_CHECK(p.failure == serve::Outcome::kShedDeadline)
          << "unexpected copy failure outcome";
      counters_[p.owner].shed_deadline += 1;
    }
    serve::Response response;
    response.id = id;
    response.outcome = p.failure;
    Emit(response);
  }
  if (p.hedge_fired) {
    // Exactly one loser per fired hedge, whatever its fate (cancelled at
    // completion, shed, rejected at hedge admission, or zombie-dropped).
    counters_[p.hedge_home].hedges_cancelled += 1;
    // A hedge race both copies lost has no winner to count.
    if (!p.resolved) counters_[p.hedge_home].hedges_failed += 1;
  }
  if (tracer_ != nullptr && p.root_span != telemetry::kNoSpan) {
    // The logical outcome may differ from the last copy-level annotation
    // (a shed primary whose hedge won is served), so re-annotate.
    tracer_->Annotate(
        p.root_span, "outcome",
        serve::OutcomeName(p.resolved ? serve::Outcome::kServed : p.failure));
    if (!p.root_ended) tracer_->EndSpan(p.root_span, now);
  }
  pending_.erase(it);
}

void VirtualFleet::DrainShardNow(ShardId shard, double now) {
  router_.DrainShard(shard);
  if (tracer_ != nullptr) {
    drain_spans_[shard] = tracer_->StartSpan("drain", ShardName(shard),
                                             telemetry::kNoSpan, now);
  }
  size_t moved = 0;
  size_t dropped = 0;
  std::set<std::pair<ShardId, size_t>> touched;
  for (size_t r = 0; r < options_.replicas_per_shard; ++r) {
    for (serve::Request& request : replica(shard, r).core.TakeQueued()) {
      auto it = pending_.find(request.id);
      ADS_CHECK(it != pending_.end())
          << "queued copy of unknown request " << request.id;
      Pending& p = it->second;
      const bool is_primary = p.owner == shard && p.primary_replica == r;
      if (!is_primary) {
        ADS_CHECK(p.hedge_fired && p.hedge_shard == shard &&
                  p.hedge_replica == r)
            << "queued copy at a shard/replica owning no copy of request "
            << request.id;
      }
      if (p.resolved) {
        // A cancelled loser still queued: the drain is a natural
        // cancellation point — drop it instead of moving dead work.
        ++dropped;
        if (is_primary) {
          p.primary_done = true;
        } else {
          p.hedge_done = true;
          if (tracer_ != nullptr) tracer_->EndSpan(p.hedge_span, now);
        }
        MaybeFinalize(request.id, now);
        continue;
      }
      const ShardId target = router_.RerouteTarget(request.tenant, shard);
      if (target == shard) {
        // Every other shard is draining too; keep the copy in place.
        replica(shard, r).core.Reinject(std::move(request));
        continue;
      }
      if (is_primary) {
        // Ownership transfer: the terminal outcome will be accounted on
        // the target shard.
        counters_[shard].rerouted_out += 1;
        counters_[target].rerouted_in += 1;
        p.owner = target;
      } else {
        p.hedge_shard = target;
      }
      if (tracer_ != nullptr && request.trace_span != telemetry::kNoSpan) {
        telemetry::SpanId reroute = tracer_->StartSpan(
            "reroute", ShardName(shard) + ">" + ShardName(target),
            request.trace_span, now);
        tracer_->Annotate(reroute, "reason", "drain");
        tracer_->Annotate(reroute, "replica", std::to_string(r));
        tracer_->EndSpan(reroute, now);
      }
      ++moved;
      // Replica index is preserved across the move, which keeps the two
      // copies of a hedged request on distinct replicas everywhere.
      replica(target, r).core.Reinject(std::move(request));
      touched.insert({target, r});
    }
  }
  if (tracer_ != nullptr && drain_spans_[shard] != telemetry::kNoSpan) {
    tracer_->Annotate(drain_spans_[shard], "rerouted",
                      std::to_string(moved));
    tracer_->Annotate(drain_spans_[shard], "dropped_losers",
                      std::to_string(dropped));
  }
  for (const auto& [target, r] : touched) Dispatch(target, r, now);
  PublishLoad(shard);
}

void VirtualFleet::RejoinShardNow(ShardId shard, double now) {
  router_.RejoinShard(shard);
  if (tracer_ != nullptr && drain_spans_[shard] != telemetry::kNoSpan) {
    tracer_->EndSpan(drain_spans_[shard], now);
    drain_spans_[shard] = telemetry::kNoSpan;
  }
}

void VirtualFleet::SampleGauges(double now) {
  for (ShardId shard = 0; shard < options_.shards; ++shard) {
    telemetry::ScopedGauges gauges(
        store_, "fleet.serve.",
        {{"shard", std::to_string(shard)}});
    const ShardCounters& c = counters_[shard];
    size_t busy = 0;
    for (size_t r = 0; r < options_.replicas_per_shard; ++r) {
      busy += replicas_[shard * options_.replicas_per_shard + r].busy_workers;
    }
    gauges.Record("queue_depth", now,
                  static_cast<double>(ShardQueueDepth(shard)));
    gauges.Record("busy_workers", now, static_cast<double>(busy));
    gauges.Record("served_total", now, static_cast<double>(c.served));
    gauges.Record("shed_total", now, static_cast<double>(c.Shed()));
    gauges.Record("rejected_total", now, static_cast<double>(c.Rejected()));
    gauges.Record("hedges_fired_total", now,
                  static_cast<double>(c.hedges_fired));
    gauges.Record("draining", now, router_.draining(shard) ? 1.0 : 0.0);
  }
  bool busy_anywhere = false;
  for (const Replica& replica : replicas_) {
    if (replica.core.queued() > 0 || replica.busy_workers > 0) {
      busy_anywhere = true;
      break;
    }
  }
  if (busy_anywhere || !queue_.empty()) {
    queue_.ScheduleAt(now + options_.telemetry_period_seconds,
                      [this](common::SimTime t) { SampleGauges(t); });
  }
}

void VirtualFleet::CheckInvariants() const {
  for (ShardId shard = 0; shard < options_.shards; ++shard) {
    const ShardCounters& c = counters_[shard];
    ADS_CHECK(c.submitted == c.accepted + c.Rejected())
        << "shard " << shard << ": admission not total";
    ADS_CHECK(c.accepted + c.rerouted_in ==
              c.Finished() + c.rerouted_out)
        << "shard " << shard << ": ownership ledger out of balance";
    ADS_CHECK(c.hedges_fired ==
              c.hedge_wins + c.primary_wins + c.hedges_failed)
        << "shard " << shard << ": a fired hedge has no outcome";
    ADS_CHECK(c.hedges_fired == c.hedges_cancelled)
        << "shard " << shard << ": a fired hedge has no cancelled loser";
  }
  const ShardCounters fleet = Aggregate(counters_);
  ADS_CHECK(fleet.accepted == fleet.served + fleet.Shed())
      << "fleet ledger out of balance (reroutes double-counted?)";
}

VirtualFleetReport VirtualFleet::Run() {
  ADS_CHECK(!ran_) << "Run() is one-shot";
  ran_ = true;
  if (store_ != nullptr && options_.telemetry_period_seconds > 0.0) {
    queue_.ScheduleAt(0.0, [this](common::SimTime t) { SampleGauges(t); });
  }
  queue_.RunAll();
  ADS_CHECK(pending_.empty())
      << "fleet drain left " << pending_.size() << " requests unresolved";
  for (const Replica& replica : replicas_) {
    ADS_CHECK(replica.core.queued() == 0) << "fleet drain left work queued";
  }
  CheckInvariants();

  VirtualFleetReport report;
  report.shards = counters_;
  report.fleet = Aggregate(counters_);
  report.latency = latency_.Summary();
  report.shard_latency.reserve(options_.shards);
  for (const common::QuantileSketch& sketch : shard_latency_) {
    report.shard_latency.push_back(sketch.Summary());
  }
  report.mean_batch_size = batch_size_.mean();
  report.max_queue_depth = max_queue_depth_;
  report.horizon_seconds = queue_.now();
  report.throughput_rps =
      report.horizon_seconds > 0.0
          ? static_cast<double>(report.fleet.served) / report.horizon_seconds
          : 0.0;
  report.availability =
      report.fleet.accepted > 0
          ? static_cast<double>(report.fleet.served) /
                static_cast<double>(report.fleet.accepted)
          : 1.0;
  report.hedge_delay_seconds = hedge_.Delay();
  return report;
}

}  // namespace ads::fleet
