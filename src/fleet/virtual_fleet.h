#ifndef ADS_FLEET_VIRTUAL_FLEET_H_
#define ADS_FLEET_VIRTUAL_FLEET_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "autonomy/router.h"
#include "autonomy/serving.h"
#include "common/event_queue.h"
#include "common/rng.h"
#include "common/stats.h"
#include "fleet/hedge.h"
#include "fleet/router.h"
#include "fleet/types.h"
#include "serve/core.h"
#include "serve/types.h"
#include "serve/virtual_server.h"
#include "telemetry/span.h"
#include "telemetry/store.h"

namespace ads::fleet {

struct VirtualFleetOptions {
  size_t shards = 4;
  size_t replicas_per_shard = 2;
  /// Concurrent simulated batch executors per replica.
  size_t workers_per_replica = 1;
  /// Admission/batching policy instantiated per replica core.
  serve::CoreOptions core;
  serve::ServiceTimeModel service;
  /// Straggler model: each dispatched batch independently draws slow with
  /// this probability and takes slow_multiplier times its nominal service
  /// time. This is the tail hedging exists to cut — with it at 0 hedging
  /// can only lose (duplicate work, no stragglers to beat).
  double slow_probability = 0.0;
  double slow_multiplier = 8.0;
  /// Seeds the per-replica service-noise streams (forked in fixed order).
  uint64_t seed = 1;
  HedgeOptions hedge;
  RouterOptions router;
  /// Per-shard gauge-sampling period into the telemetry store (0 = off).
  double telemetry_period_seconds = 0.0;
};

/// End-of-run aggregate of one virtual-time fleet experiment.
struct VirtualFleetReport {
  /// Element-wise sum of `shards` — the fleet ledger. Invariant:
  /// fleet.accepted == fleet.served + fleet.Shed().
  ShardCounters fleet;
  std::vector<ShardCounters> shards;
  /// End-to-end latency digest over served logical requests (seconds),
  /// measured original-admission → winning-copy completion.
  common::QuantileSummary latency;
  std::vector<common::QuantileSummary> shard_latency;
  double mean_batch_size = 0.0;
  /// Max over time of fleet-wide queued requests.
  size_t max_queue_depth = 0;
  double horizon_seconds = 0.0;
  double throughput_rps = 0.0;
  /// served / accepted over the whole fleet (1.0 when nothing accepted):
  /// the zero-downtime claim of a rolling drain is availability == 1.0.
  double availability = 0.0;
  /// Hedge delay in force when the run ended (quantile-derived).
  double hedge_delay_seconds = 0.0;
};

/// Virtual-time twin of the sharded serving fleet: N shards of M replica
/// cores behind one FleetRouter, driven by a single discrete-event loop.
/// Mirrors what FleetRuntime does with threads — consistent-hash routing,
/// tail-latency hedging with first-completion-wins, rolling shard drains
/// that reroute queued work with exact ownership accounting — but with a
/// deterministic service-time model, so for a fixed seed the report and
/// span table are byte-identical across runs and ADS_THREADS values.
///
/// Accounting is by logical request (see ShardCounters): a hedge launches
/// a physical duplicate whose serve/shed never touches the served ledger;
/// a drain reroute moves queued copies and transfers ownership. Cancelled
/// losers are discarded at completion (virtual time cannot interrupt an
/// in-flight batch, matching a real runtime that cannot un-send an RPC).
class VirtualFleet {
 public:
  using Callback = std::function<void(const serve::Response&)>;

  explicit VirtualFleet(VirtualFleetOptions options,
                        telemetry::TelemetryStore* store = nullptr);

  /// Registers a model backend fleet-wide (every replica serves it).
  /// Borrowed; must outlive Run().
  void RegisterBackend(const std::string& model,
                       autonomy::ResilientModelServer* backend);

  /// Version router consulted once per logical request at admission; the
  /// pin travels with both copies and survives reroute, so flighting
  /// decisions (canary slices) are never re-made mid-request.
  void SetRouter(const autonomy::VersionRouter* router);
  void SetTracer(telemetry::Tracer* tracer);
  void SetResponseCallback(Callback callback);

  /// Schedules one logical request arrival at simulated time `t`.
  void SubmitAt(double t, serve::Request request);

  /// Schedules a shard drain at `t`: new arrivals divert via the ring,
  /// queued copies reroute to each tenant's first healthy fallback, and
  /// in-flight batches run to completion in place.
  void ScheduleDrain(double t, ShardId shard);
  void ScheduleRejoin(double t, ShardId shard);
  /// Rolling deploy: drains shard s at start + s*dwell and rejoins it at
  /// start + (s+1)*dwell — exactly one shard down at any moment.
  void ScheduleRollingDrain(double start, double dwell_seconds);

  /// Runs the event loop to completion. One-shot. Checks the per-shard
  /// and fleet-wide accounting invariants before returning.
  VirtualFleetReport Run();

  const FleetRouter& router() const { return router_; }
  const HedgePolicy& hedge_policy() const { return hedge_; }

 private:
  /// One replica: a full admission core plus its virtual workers and its
  /// private service-noise stream.
  struct Replica {
    explicit Replica(const serve::CoreOptions& core_options, uint64_t seed)
        : core(core_options), rng(seed) {}
    serve::ServingCore core;
    common::Rng rng;
    size_t busy_workers = 0;
  };

  /// Per-logical-request hedge/ownership state machine. Lives from
  /// acceptance to the terminal event of the last physical copy; exactly
  /// one Response is emitted per entry.
  struct Pending {
    serve::Request prototype;  // post-pin copy, duplicated on hedge fire
    ShardId owner = 0;         // shard owning the primary copy
    size_t primary_replica = 0;
    double arrival = 0.0;
    bool resolved = false;      // terminal Response emitted
    bool primary_done = false;  // primary copy reached a terminal event
    bool root_ended = false;    // core closed the root span (reject paths)
    bool hedge_fired = false;
    bool hedge_done = false;
    ShardId hedge_shard = 0;
    size_t hedge_replica = 0;
    ShardId hedge_home = 0;  // shard the hedge counters live on
    bool have_failure = false;
    serve::Outcome failure = serve::Outcome::kServed;
    telemetry::SpanId root_span = telemetry::kNoSpan;
    telemetry::SpanId hedge_span = telemetry::kNoSpan;
  };

  Replica& replica(ShardId shard, size_t r) {
    return replicas_[shard * options_.replicas_per_shard + r];
  }
  size_t ShardQueueDepth(ShardId shard) const;
  size_t FleetQueueDepth() const;

  void OnArrival(serve::Request request, double now);
  void FireHedge(uint64_t id, double now);
  void Dispatch(ShardId shard, size_t r, double now);
  void OnBatchComplete(ShardId shard, size_t r, serve::Batch batch,
                       double dispatched, double now);
  /// Copy-level terminal failure (eviction / deadline shed) in core
  /// (shard, r); the core has already closed the copy's span.
  void OnCopyFailure(ShardId shard, size_t r, uint64_t id,
                     serve::Outcome outcome, double now);
  void DrainShardNow(ShardId shard, double now);
  void RejoinShardNow(ShardId shard, double now);
  void MaybeFinalize(uint64_t id, double now);
  void PublishLoad(ShardId shard);
  void Emit(const serve::Response& response);
  void SampleGauges(double now);
  void CheckInvariants() const;

  VirtualFleetOptions options_;
  telemetry::TelemetryStore* store_;
  telemetry::Tracer* tracer_ = nullptr;
  const autonomy::VersionRouter* version_router_ = nullptr;
  common::EventQueue queue_;
  FleetRouter router_;
  HedgePolicy hedge_;
  std::vector<Replica> replicas_;
  std::map<std::string, autonomy::ResilientModelServer*> backends_;
  Callback callback_;
  bool ran_ = false;

  std::map<uint64_t, Pending> pending_;
  std::vector<ShardCounters> counters_;
  std::vector<telemetry::SpanId> drain_spans_;
  common::QuantileSketch latency_;
  std::vector<common::QuantileSketch> shard_latency_;
  common::RunningMoments batch_size_;
  size_t max_queue_depth_ = 0;
};

}  // namespace ads::fleet

#endif  // ADS_FLEET_VIRTUAL_FLEET_H_
