#include "infra/autoscaler.h"

#include <cmath>

namespace ads::infra {

int ReactivePolicy::Decide(const std::vector<double>& load_history) {
  if (load_history.empty()) return 1;
  double want = load_history.back() * headroom_ / capacity_;
  return std::max(1, static_cast<int>(std::ceil(want)));
}

int PredictivePolicy::Decide(const std::vector<double>& load_history) {
  if (load_history.size() < min_history_) {
    // Fall back to reactive behaviour until enough history accumulates.
    if (load_history.empty()) return 1;
    double want = load_history.back() * headroom_ / capacity_;
    return std::max(1, static_cast<int>(std::ceil(want)));
  }
  if (!fitted_) {
    if (!forecaster_->Fit(load_history).ok()) {
      return std::max(1, static_cast<int>(std::ceil(
                             load_history.back() * headroom_ / capacity_)));
    }
    fitted_ = true;
  } else {
    forecaster_->Update(load_history.back());
  }
  double predicted = forecaster_->Forecast(1);
  double want = predicted * headroom_ / capacity_;
  return std::max(1, static_cast<int>(std::ceil(want)));
}

common::Result<AutoscaleReport> SimulateAutoscaling(
    ScalingPolicy& policy, const std::vector<double>& load,
    double capacity_per_instance, size_t warmup) {
  if (load.empty()) {
    return common::Status::InvalidArgument("empty load trace");
  }
  if (capacity_per_instance <= 0.0) {
    return common::Status::InvalidArgument("capacity must be positive");
  }
  AutoscaleReport report;
  report.policy = policy.Name();
  std::vector<double> history;
  double instance_sum = 0.0;
  size_t scored = 0;
  size_t violations = 0;
  for (size_t t = 0; t < load.size(); ++t) {
    int instances = policy.Decide(history);
    double capacity = instances * capacity_per_instance;
    if (t >= warmup) {
      ++scored;
      instance_sum += instances;
      if (capacity < load[t]) {
        ++violations;
        report.shed_load += load[t] - capacity;
      }
    }
    history.push_back(load[t]);
  }
  report.intervals = scored;
  if (scored > 0) {
    report.violation_rate =
        static_cast<double>(violations) / static_cast<double>(scored);
    report.mean_instances = instance_sum / static_cast<double>(scored);
  }
  return report;
}

}  // namespace ads::infra
