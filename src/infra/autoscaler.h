#ifndef ADS_INFRA_AUTOSCALER_H_
#define ADS_INFRA_AUTOSCALER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/forecast.h"

namespace ads::infra {

/// How an autoscaling policy decides the next interval's instance count.
class ScalingPolicy {
 public:
  virtual ~ScalingPolicy() = default;
  /// Returns the instance count for the NEXT interval given the load history
  /// observed so far (most recent last).
  virtual int Decide(const std::vector<double>& load_history) = 0;
  virtual std::string Name() const = 0;
};

/// Always runs a fixed number of instances.
class StaticPolicy : public ScalingPolicy {
 public:
  explicit StaticPolicy(int instances) : instances_(instances) {}
  int Decide(const std::vector<double>&) override { return instances_; }
  std::string Name() const override { return "static"; }

 private:
  int instances_;
};

/// Scales to fit the last observed load plus headroom (classic reactive
/// autoscaling — lags the load by one interval).
class ReactivePolicy : public ScalingPolicy {
 public:
  ReactivePolicy(double capacity_per_instance, double headroom = 1.1)
      : capacity_(capacity_per_instance), headroom_(headroom) {}
  int Decide(const std::vector<double>& load_history) override;
  std::string Name() const override { return "reactive"; }

 private:
  double capacity_;
  double headroom_;
};

/// Scales to fit the forecast of the next interval (the paper's
/// ML-driven proactive policy). Owns the forecaster.
class PredictivePolicy : public ScalingPolicy {
 public:
  PredictivePolicy(double capacity_per_instance,
                   std::unique_ptr<ml::Forecaster> forecaster,
                   size_t min_history, double headroom = 1.1)
      : capacity_(capacity_per_instance), forecaster_(std::move(forecaster)),
        min_history_(min_history), headroom_(headroom) {}
  int Decide(const std::vector<double>& load_history) override;
  std::string Name() const override { return "predictive"; }

 private:
  double capacity_;
  std::unique_ptr<ml::Forecaster> forecaster_;
  size_t min_history_;
  bool fitted_ = false;
  double headroom_;
};

/// Outcome of replaying a load trace against a policy.
struct AutoscaleReport {
  std::string policy;
  /// Fraction of intervals where capacity < load (QoS violations).
  double violation_rate = 0.0;
  /// Mean instances kept running (cost proxy).
  double mean_instances = 0.0;
  /// Total load shed (load beyond capacity summed over intervals).
  double shed_load = 0.0;
  size_t intervals = 0;
};

/// Replays a per-interval load trace: at each step the policy sees history
/// up to t-1 and provisions for step t.
common::Result<AutoscaleReport> SimulateAutoscaling(
    ScalingPolicy& policy, const std::vector<double>& load,
    double capacity_per_instance, size_t warmup = 0);

}  // namespace ads::infra

#endif  // ADS_INFRA_AUTOSCALER_H_
