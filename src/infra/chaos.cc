#include "infra/chaos.h"

#include "common/logging.h"

namespace ads::infra {

MachineChaos::MachineChaos(Cluster* cluster, common::EventQueue* queue,
                           ClusterScheduler* scheduler, uint64_t seed)
    : cluster_(cluster), queue_(queue), scheduler_(scheduler), rng_(seed) {
  ADS_CHECK(cluster != nullptr) << "chaos needs a cluster";
  ADS_CHECK(queue != nullptr) << "chaos needs an event queue";
}

void MachineChaos::Start(const ChaosOptions& options) {
  if (options.mtbf_seconds <= 0.0) return;  // chaos disabled
  double rate = 1.0 / options.mtbf_seconds;
  // Each machine gets its own pre-drawn lifecycle, so the schedule does
  // not depend on event execution order or on other machines.
  for (size_t i = 0; i < cluster_->size(); ++i) {
    common::Rng machine_rng = rng_.Fork();
    double t = machine_rng.Exponential(rate);
    while (t <= options.horizon_seconds) {
      bool graceful = options.drain_fraction > 0.0 &&
                      machine_rng.Bernoulli(options.drain_fraction);
      FailAt(t, i, graceful, options.mttr_seconds,
             options.drain_lead_seconds);
      double down = (graceful ? options.drain_lead_seconds : 0.0) +
                    options.mttr_seconds;
      t += down + machine_rng.Exponential(rate);
    }
  }
}

void MachineChaos::FailAt(common::SimTime when, size_t machine_index,
                          bool graceful, double mttr, double drain_lead) {
  if (graceful) {
    queue_->ScheduleAt(when, [this, machine_index](common::SimTime) {
      Machine& m = cluster_->machine(machine_index);
      if (m.dead()) return;  // already down via another path
      ++drains_;
      if (scheduler_ != nullptr) {
        scheduler_->OnMachineDraining(&m);
      } else if (m.state() == MachineState::kHealthy) {
        m.SetState(MachineState::kDraining);
      }
    });
    // The decommission point: whatever is still running is lost.
    queue_->ScheduleAt(when + drain_lead,
                       [this, machine_index, mttr](common::SimTime) {
                         Fail(machine_index, mttr);
                       });
  } else {
    queue_->ScheduleAt(when, [this, machine_index, mttr](common::SimTime) {
      Fail(machine_index, mttr);
    });
  }
}

void MachineChaos::Fail(size_t machine_index, double mttr) {
  Machine& m = cluster_->machine(machine_index);
  if (m.dead()) return;
  ++failures_;
  if (tracer_ != nullptr) {
    telemetry::SpanId span = tracer_->StartSpan(
        "outage", "machine-" + std::to_string(m.id()), telemetry::kNoSpan,
        queue_->now());
    tracer_->Annotate(span, "sku", m.spec().name);
    open_outages_[machine_index] = span;
  }
  if (scheduler_ != nullptr) {
    scheduler_->OnMachineFailed(&m);
  } else {
    m.Crash();
  }
  queue_->ScheduleAfter(mttr, [this, machine_index](common::SimTime) {
    Recover(machine_index);
  });
}

void MachineChaos::Recover(size_t machine_index) {
  Machine& m = cluster_->machine(machine_index);
  if (!m.dead()) return;
  ++recoveries_;
  if (tracer_ != nullptr) {
    auto it = open_outages_.find(machine_index);
    if (it != open_outages_.end()) {
      tracer_->EndSpan(it->second, queue_->now());
      open_outages_.erase(it);
    }
  }
  if (scheduler_ != nullptr) {
    scheduler_->OnMachineRecovered(&m);
  } else {
    m.SetState(MachineState::kHealthy);
  }
}

}  // namespace ads::infra
