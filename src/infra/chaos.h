#ifndef ADS_INFRA_CHAOS_H_
#define ADS_INFRA_CHAOS_H_

#include <cstdint>

#include <map>

#include "common/event_queue.h"
#include "common/rng.h"
#include "infra/cluster.h"
#include "infra/scheduler.h"
#include "telemetry/span.h"

namespace ads::infra {

/// Failure/recovery schedule for the fleet. All times are simulated
/// seconds; every draw comes from a per-machine stream forked off the
/// chaos seed, so the schedule is identical run to run and independent of
/// any other randomness in the simulation.
struct ChaosOptions {
  /// Per-machine mean time between failures (exponential inter-arrivals).
  /// <= 0 disables fault injection entirely: no events are scheduled and
  /// the simulation is bit-identical to a chaos-free run.
  double mtbf_seconds = 0.0;
  /// Downtime before a failed machine rejoins the fleet.
  double mttr_seconds = 120.0;
  /// Fraction of lifecycle events that are graceful drains instead of
  /// crashes: the machine drains for `drain_lead_seconds` (no new work,
  /// running tasks finish), then goes down and later recovers —
  /// the decommission/re-image path of a real fleet.
  double drain_fraction = 0.0;
  double drain_lead_seconds = 60.0;
  /// Events are only scheduled up to this horizon.
  double horizon_seconds = 3600.0;
};

/// Deterministic chaos driver: injects machine failure, drain and
/// recovery lifecycle events into the event queue, flipping MachineState
/// and notifying the scheduler so in-flight work is re-placed. This is
/// the infra-layer half of the fault model — the "provisioning latencies,
/// failures" row of the paper's simulator substitution table.
class MachineChaos {
 public:
  /// `scheduler` may be null (pure state flipping, e.g. under an
  /// autoscaler test); with a scheduler attached, failures kill and
  /// resubmit that machine's running tasks.
  MachineChaos(Cluster* cluster, common::EventQueue* queue,
               ClusterScheduler* scheduler, uint64_t seed);

  /// Pre-schedules each machine's lifecycle events over the horizon.
  /// Idempotent per call: call once per simulation.
  void Start(const ChaosOptions& options);

  /// Attaches a causal span tracer (borrowed; may be null). Every injected
  /// outage opens a root "outage" span at failure time, closed at
  /// recovery — the infra-side causal peers of the scheduler's killed
  /// placement spans.
  void SetTracer(telemetry::Tracer* tracer) { tracer_ = tracer; }

  int failures_injected() const { return failures_; }
  int drains_injected() const { return drains_; }
  int recoveries() const { return recoveries_; }

 private:
  void FailAt(common::SimTime when, size_t machine_index, bool graceful,
              double mttr, double drain_lead);
  void Fail(size_t machine_index, double mttr);
  void Recover(size_t machine_index);

  Cluster* cluster_;
  common::EventQueue* queue_;
  ClusterScheduler* scheduler_;
  telemetry::Tracer* tracer_ = nullptr;
  std::map<size_t, telemetry::SpanId> open_outages_;
  common::Rng rng_;
  int failures_ = 0;
  int drains_ = 0;
  int recoveries_ = 0;
};

}  // namespace ads::infra

#endif  // ADS_INFRA_CHAOS_H_
