#include "infra/cluster.h"

#include <algorithm>

namespace ads::infra {

const char* MachineStateName(MachineState state) {
  switch (state) {
    case MachineState::kHealthy:
      return "healthy";
    case MachineState::kDraining:
      return "draining";
    case MachineState::kDead:
      return "dead";
  }
  return "?";
}

void Cluster::AddMachines(const SkuSpec& sku, int count, int racks,
                          int first_rack) {
  ADS_CHECK(count >= 0) << "negative machine count";
  ADS_CHECK(racks >= 1) << "need at least one rack";
  if (std::find(sku_names_.begin(), sku_names_.end(), sku.name) ==
      sku_names_.end()) {
    sku_names_.push_back(sku.name);
  }
  for (int i = 0; i < count; ++i) {
    int rack = first_rack + (i % racks);
    machines_.push_back(std::make_unique<Machine>(next_id_++, sku, rack));
    max_rack_ = std::max(max_rack_, rack);
  }
}

std::vector<Machine*> Cluster::AllMachines() {
  std::vector<Machine*> out;
  out.reserve(machines_.size());
  for (auto& m : machines_) out.push_back(m.get());
  return out;
}

std::vector<Machine*> Cluster::HealthyMachines() {
  std::vector<Machine*> out;
  for (auto& m : machines_) {
    if (m->AcceptsWork()) out.push_back(m.get());
  }
  return out;
}

std::vector<Machine*> Cluster::MachinesOfSku(const std::string& sku_name) {
  std::vector<Machine*> out;
  for (auto& m : machines_) {
    if (m->spec().name == sku_name) out.push_back(m.get());
  }
  return out;
}

std::vector<Machine*> Cluster::HealthyMachinesOfSku(
    const std::string& sku_name) {
  std::vector<Machine*> out;
  for (auto& m : machines_) {
    if (m->spec().name == sku_name && m->AcceptsWork()) out.push_back(m.get());
  }
  return out;
}

size_t Cluster::healthy_count() const {
  size_t n = 0;
  for (const auto& m : machines_) n += m->AcceptsWork() ? 1 : 0;
  return n;
}

size_t Cluster::dead_count() const {
  size_t n = 0;
  for (const auto& m : machines_) n += m->dead() ? 1 : 0;
  return n;
}

double Cluster::RackPowerWatts(int rack) const {
  double w = 0.0;
  for (const auto& m : machines_) {
    if (m->rack() == rack) w += m->PowerWatts();
  }
  return w;
}

double Cluster::CostPerHour() const {
  double c = 0.0;
  for (const auto& m : machines_) c += m->spec().cost_per_hour;
  return c;
}

}  // namespace ads::infra
