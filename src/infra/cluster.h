#ifndef ADS_INFRA_CLUSTER_H_
#define ADS_INFRA_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "infra/machine.h"

namespace ads::infra {

/// A fleet of machines grouped into racks. Owns the Machine objects;
/// schedulers and executors hold stable pointers into it. Machine objects
/// are never deallocated — a machine leaving service transitions through
/// the explicit MachineState lifecycle (healthy → draining → dead →
/// healthy again on recovery) instead of being removed, so held pointers
/// stay valid across failures.
class Cluster {
 public:
  /// Adds `count` machines of the SKU, round-robining them across
  /// `racks` racks starting at rack `first_rack`.
  void AddMachines(const SkuSpec& sku, int count, int racks = 1,
                   int first_rack = 0);

  size_t size() const { return machines_.size(); }
  Machine& machine(size_t i) { return *machines_[i]; }
  const Machine& machine(size_t i) const { return *machines_[i]; }

  /// Every machine, regardless of health — capacity planning and audits.
  /// Callers placing work should use HealthyMachines() or check
  /// Machine::AcceptsWork() per machine.
  std::vector<Machine*> AllMachines();
  /// Machines currently accepting new work (state == kHealthy).
  std::vector<Machine*> HealthyMachines();
  /// Machines of one SKU, regardless of health.
  std::vector<Machine*> MachinesOfSku(const std::string& sku_name);
  /// Healthy machines of one SKU.
  std::vector<Machine*> HealthyMachinesOfSku(const std::string& sku_name);
  /// Distinct SKU names present, in insertion order.
  const std::vector<std::string>& sku_names() const { return sku_names_; }

  /// Machines currently accepting work.
  size_t healthy_count() const;
  /// Machines currently dead.
  size_t dead_count() const;

  /// Sum of PowerWatts over a rack's machines.
  double RackPowerWatts(int rack) const;
  /// Highest rack id present (racks are 0-based).
  int max_rack() const { return max_rack_; }

  /// Total hourly cost of the fleet.
  double CostPerHour() const;

 private:
  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<std::string> sku_names_;
  int next_id_ = 0;
  int max_rack_ = 0;
};

}  // namespace ads::infra

#endif  // ADS_INFRA_CLUSTER_H_
