#ifndef ADS_INFRA_MACHINE_H_
#define ADS_INFRA_MACHINE_H_

#include <string>

#include "common/logging.h"

namespace ads::infra {

/// Hardware/behaviour description of a machine generation ("SKU").
///
/// The last three fields are the ground-truth *machine behaviour model* of
/// the simulator: CPU utilization grows linearly with running containers,
/// and task execution slows down once utilization passes a knee. The KEA
/// reproduction (bench E1/F1) learns exactly these relationships back from
/// telemetry, as in the paper's Figure 1.
struct SkuSpec {
  std::string name;
  int cores = 16;
  double memory_gb = 64.0;
  double temp_storage_gb = 512.0;
  /// Scheduler knob: default maximum concurrently running containers.
  int default_max_containers = 16;
  double cost_per_hour = 1.0;
  /// Power draw at idle and at 100% utilization (per machine, watts).
  double idle_watts = 120.0;
  double busy_watts = 400.0;

  /// CPU utilization contributed by one running container (fraction).
  double cpu_per_container = 0.05;
  /// Utilization beyond which tasks start slowing down.
  double util_knee = 0.75;
  /// Task slowdown per unit utilization above the knee, e.g. 2.0 means
  /// a machine at knee+0.25 runs tasks (1 + 2.0*0.25) = 1.5x slower.
  double slowdown_per_util = 2.0;
};

/// Health lifecycle of a machine. Healthy machines accept work; draining
/// machines finish what they run but take no new placements (graceful
/// decommission); dead machines run nothing and their machine-local
/// temporary storage is lost.
enum class MachineState {
  kHealthy = 0,
  kDraining,
  kDead,
};

const char* MachineStateName(MachineState state);

/// One simulated machine. State is mutated by the scheduler/executor; the
/// class only enforces capacity invariants.
class Machine {
 public:
  Machine(int id, SkuSpec spec, int rack)
      : id_(id), spec_(std::move(spec)), rack_(rack) {}

  int id() const { return id_; }
  const SkuSpec& spec() const { return spec_; }
  int rack() const { return rack_; }

  MachineState state() const { return state_; }
  void SetState(MachineState state) { state_ = state; }
  /// Accepts new placements (healthy only — draining machines are winding
  /// down and dead machines run nothing).
  bool AcceptsWork() const { return state_ == MachineState::kHealthy; }
  bool dead() const { return state_ == MachineState::kDead; }

  /// Models the crash: every running container and all machine-local
  /// temporary storage is lost. The caller (scheduler / chaos driver)
  /// decides what to do about the work that was on board.
  void Crash() {
    state_ = MachineState::kDead;
    running_containers_ = 0;
    temp_used_gb_ = 0.0;
  }

  int running_containers() const { return running_containers_; }
  void StartContainer() { ++running_containers_; }
  void FinishContainer() {
    ADS_CHECK(running_containers_ > 0) << "finish with no running containers";
    --running_containers_;
  }

  /// Modeled CPU utilization in [0, 1] given the current container count.
  double CpuUtilization() const {
    double u = spec_.cpu_per_container * running_containers_;
    return u > 1.0 ? 1.0 : u;
  }

  /// Execution-time multiplier (>= 1) under the current load.
  double TaskSlowdown() const {
    double over = CpuUtilization() - spec_.util_knee;
    return over > 0.0 ? 1.0 + spec_.slowdown_per_util * over : 1.0;
  }

  /// Instantaneous power draw under the current load (a dead machine
  /// draws nothing).
  double PowerWatts() const {
    if (state_ == MachineState::kDead) return 0.0;
    return spec_.idle_watts +
           (spec_.busy_watts - spec_.idle_watts) * CpuUtilization();
  }

  double temp_storage_used_gb() const { return temp_used_gb_; }
  double temp_storage_free_gb() const {
    return spec_.temp_storage_gb - temp_used_gb_;
  }
  /// Reserves temp storage; returns false (no change) if it would overflow.
  bool ReserveTempStorage(double gb) {
    if (temp_used_gb_ + gb > spec_.temp_storage_gb) return false;
    temp_used_gb_ += gb;
    return true;
  }
  void ReleaseTempStorage(double gb) {
    temp_used_gb_ -= gb;
    if (temp_used_gb_ < 0.0) temp_used_gb_ = 0.0;
  }

 private:
  int id_;
  SkuSpec spec_;
  int rack_;
  MachineState state_ = MachineState::kHealthy;
  int running_containers_ = 0;
  double temp_used_gb_ = 0.0;
};

}  // namespace ads::infra

#endif  // ADS_INFRA_MACHINE_H_
