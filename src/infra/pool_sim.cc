#include "infra/pool_sim.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace ads::infra {

const char* RequestPolicyName(RequestPolicy policy) {
  switch (policy) {
    case RequestPolicy::kSerial:
      return "serial";
    case RequestPolicy::kParallel:
      return "parallel";
    case RequestPolicy::kHedged:
      return "hedged";
    case RequestPolicy::kRetryOnTimeout:
      return "retry_on_timeout";
  }
  return "?";
}

double PoolInitSimulator::OneInit(RequestPolicy policy, common::Rng& rng,
                                  int* requests_issued) const {
  int k = options_.vms_per_cluster;
  auto draw = [&]() { return rng.LogNormal(options_.vm_mu, options_.vm_sigma); };
  switch (policy) {
    case RequestPolicy::kSerial: {
      *requests_issued = k;
      double total = 0.0;
      for (int i = 0; i < k; ++i) total += draw();
      return total;
    }
    case RequestPolicy::kParallel: {
      *requests_issued = k;
      double worst = 0.0;
      for (int i = 0; i < k; ++i) worst = std::max(worst, draw());
      return worst;
    }
    case RequestPolicy::kHedged: {
      int n = k + options_.hedge_extras;
      *requests_issued = n;
      std::vector<double> lat(static_cast<size_t>(n));
      for (auto& v : lat) v = draw();
      std::nth_element(lat.begin(), lat.begin() + (k - 1), lat.end());
      return lat[static_cast<size_t>(k - 1)];
    }
    case RequestPolicy::kRetryOnTimeout: {
      *requests_issued = k;
      double worst = 0.0;
      for (int i = 0; i < k; ++i) {
        double l = draw();
        // Reissue loop: a slow request is abandoned at the timeout and a
        // fresh one started (the original may still land first; we take
        // the better of the two completion times).
        double elapsed = 0.0;
        while (l > options_.retry_timeout) {
          ++*requests_issued;
          elapsed += options_.retry_timeout;
          double retry = draw();
          l = std::min(l, retry);  // whichever lands first from now
        }
        worst = std::max(worst, elapsed + l);
      }
      return worst;
    }
  }
  return 0.0;
}

common::Result<PoolSimReport> PoolInitSimulator::Simulate(
    RequestPolicy policy, int trials, uint64_t seed) const {
  if (trials <= 0) {
    return common::Status::InvalidArgument("trials must be positive");
  }
  if (options_.vms_per_cluster <= 0) {
    return common::Status::InvalidArgument("vms_per_cluster must be positive");
  }
  common::Rng rng(seed);
  common::QuantileSketch lat;
  double total_requests = 0.0;
  for (int t = 0; t < trials; ++t) {
    int issued = 0;
    lat.Add(OneInit(policy, rng, &issued));
    total_requests += issued;
  }
  PoolSimReport report;
  report.policy = policy;
  report.p50 = lat.Quantile(0.5);
  report.p95 = lat.Quantile(0.95);
  report.p99 = lat.Quantile(0.99);
  report.mean_requests_issued = total_requests / trials;
  return report;
}

common::Result<PoolSimReport> PoolInitSimulator::DeriveBestPolicy(
    int trials, uint64_t seed) const {
  const RequestPolicy all[] = {
      RequestPolicy::kSerial, RequestPolicy::kParallel,
      RequestPolicy::kHedged, RequestPolicy::kRetryOnTimeout};
  PoolSimReport best;
  bool have = false;
  for (RequestPolicy p : all) {
    auto r = Simulate(p, trials, seed);
    if (!r.ok()) return r.status();
    if (!have || r->p99 < best.p99) {
      best = *r;
      have = true;
    }
  }
  return best;
}

}  // namespace ads::infra
