#include "infra/pool_sim.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace ads::infra {

const char* RequestPolicyName(RequestPolicy policy) {
  switch (policy) {
    case RequestPolicy::kSerial:
      return "serial";
    case RequestPolicy::kParallel:
      return "parallel";
    case RequestPolicy::kHedged:
      return "hedged";
    case RequestPolicy::kRetryOnTimeout:
      return "retry_on_timeout";
  }
  return "?";
}

double PoolInitSimulator::OneInit(RequestPolicy policy, common::Rng& rng,
                                  int* requests_issued) const {
  int k = options_.vms_per_cluster;
  auto draw = [&]() { return rng.LogNormal(options_.vm_mu, options_.vm_sigma); };
  switch (policy) {
    case RequestPolicy::kSerial: {
      *requests_issued = k;
      double total = 0.0;
      for (int i = 0; i < k; ++i) total += draw();
      return total;
    }
    case RequestPolicy::kParallel: {
      *requests_issued = k;
      double worst = 0.0;
      for (int i = 0; i < k; ++i) worst = std::max(worst, draw());
      return worst;
    }
    case RequestPolicy::kHedged: {
      int n = k + options_.hedge_extras;
      *requests_issued = n;
      std::vector<double> lat(static_cast<size_t>(n));
      for (auto& v : lat) v = draw();
      std::nth_element(lat.begin(), lat.begin() + (k - 1), lat.end());
      return lat[static_cast<size_t>(k - 1)];
    }
    case RequestPolicy::kRetryOnTimeout: {
      *requests_issued = k;
      double worst = 0.0;
      for (int i = 0; i < k; ++i) {
        double l = draw();
        // Reissue loop: a slow request is abandoned at the timeout and a
        // fresh one started (the original may still land first; we take
        // the better of the two completion times).
        double elapsed = 0.0;
        while (l > options_.retry_timeout) {
          ++*requests_issued;
          elapsed += options_.retry_timeout;
          double retry = draw();
          l = std::min(l, retry);  // whichever lands first from now
        }
        worst = std::max(worst, elapsed + l);
      }
      return worst;
    }
  }
  return 0.0;
}

common::Result<PoolSimReport> PoolInitSimulator::Simulate(
    RequestPolicy policy, int trials, uint64_t seed) const {
  if (trials <= 0) {
    return common::Status::InvalidArgument("trials must be positive");
  }
  if (options_.vms_per_cluster <= 0) {
    return common::Status::InvalidArgument("vms_per_cluster must be positive");
  }
  // Trials fan out across the shared pool in fixed-size blocks. Each
  // block draws from its own Rng seeded off the root seed, and block
  // results merge in block order, so the report depends only on `seed`
  // and `trials` — never on the worker count.
  constexpr size_t kBlock = 512;
  size_t n = static_cast<size_t>(trials);
  size_t num_blocks = (n + kBlock - 1) / kBlock;
  common::Rng root(seed);
  std::vector<uint64_t> block_seeds(num_blocks);
  for (auto& s : block_seeds) s = root.engine()();

  std::vector<common::QuantileSketch> block_lat(num_blocks);
  std::vector<double> block_requests(num_blocks, 0.0);
  common::ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : common::ThreadPool::Global();
  pool.ParallelFor(0, n, kBlock, [&](size_t cb, size_t ce) {
    size_t b = cb / kBlock;
    common::Rng rng(block_seeds[b]);
    for (size_t t = cb; t < ce; ++t) {
      int issued = 0;
      block_lat[b].Add(OneInit(policy, rng, &issued));
      block_requests[b] += issued;
    }
  });
  common::QuantileSketch lat;
  double total_requests = 0.0;
  for (size_t b = 0; b < num_blocks; ++b) {
    lat.Merge(block_lat[b]);
    total_requests += block_requests[b];
  }
  PoolSimReport report;
  report.policy = policy;
  common::QuantileSummary summary = lat.Summary();
  report.p50 = summary.p50;
  report.p95 = summary.p95;
  report.p99 = summary.p99;
  report.mean_requests_issued = total_requests / trials;
  return report;
}

common::Result<PoolSimReport> PoolInitSimulator::DeriveBestPolicy(
    int trials, uint64_t seed) const {
  const RequestPolicy all[] = {
      RequestPolicy::kSerial, RequestPolicy::kParallel,
      RequestPolicy::kHedged, RequestPolicy::kRetryOnTimeout};
  PoolSimReport best;
  bool have = false;
  for (RequestPolicy p : all) {
    auto r = Simulate(p, trials, seed);
    if (!r.ok()) return r.status();
    if (!have || r->p99 < best.p99) {
      best = *r;
      have = true;
    }
  }
  return best;
}

}  // namespace ads::infra
