#ifndef ADS_INFRA_POOL_SIM_H_
#define ADS_INFRA_POOL_SIM_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"

namespace ads::common {
class ThreadPool;
}  // namespace ads::common

namespace ads::infra {

/// How the cluster-initialization flow issues its VM acquisition requests.
enum class RequestPolicy {
  /// One request at a time; next starts when the previous lands.
  kSerial,
  /// All k requests at once; init completes at the slowest.
  kParallel,
  /// k + extras requests at once; init completes at the k-th fastest
  /// (hedging away the tail).
  kHedged,
  /// All k at once; any request slower than `timeout` is reissued.
  kRetryOnTimeout,
};

const char* RequestPolicyName(RequestPolicy policy);

/// Parameters of the cluster-initialization simulator: a cluster needs
/// `vms_per_cluster` VM acquisitions, each with a heavy-tailed latency.
/// This reproduces the paper's Synapse Spark study: "we developed a
/// simulator to mimic the cluster initialization process and derived the
/// optimal policy for sending requests, reducing its tail latency".
struct PoolSimOptions {
  int vms_per_cluster = 8;
  /// Per-VM acquisition latency ~ LogNormal(mu, sigma) seconds.
  double vm_mu = 3.4;     // median ~30 s
  double vm_sigma = 0.8;  // heavy tail
  /// Extra requests for the hedged policy.
  int hedge_extras = 2;
  /// Reissue threshold for the retry policy (seconds).
  double retry_timeout = 60.0;
  /// Pool for the Monte-Carlo trial fan-out; null = ThreadPool::Global().
  /// Trial blocks are seeded independently of worker placement, so the
  /// report is identical for any pool size.
  common::ThreadPool* pool = nullptr;
};

/// Result of simulating one policy over many cluster initializations.
struct PoolSimReport {
  RequestPolicy policy = RequestPolicy::kSerial;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean_requests_issued = 0.0;  // overhead vs vms_per_cluster
};

/// Monte-Carlo cluster-initialization simulator.
class PoolInitSimulator {
 public:
  explicit PoolInitSimulator(PoolSimOptions options = PoolSimOptions())
      : options_(options) {}

  /// Simulates `trials` cluster initializations under the policy.
  common::Result<PoolSimReport> Simulate(RequestPolicy policy, int trials,
                                         uint64_t seed) const;

  /// Runs every policy and returns the one with the lowest P99 latency.
  common::Result<PoolSimReport> DeriveBestPolicy(int trials,
                                                 uint64_t seed) const;

 private:
  double OneInit(RequestPolicy policy, common::Rng& rng,
                 int* requests_issued) const;

  PoolSimOptions options_;
};

}  // namespace ads::infra

#endif  // ADS_INFRA_POOL_SIM_H_
