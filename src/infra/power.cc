#include "infra/power.h"

#include <algorithm>
#include <cmath>

#include "common/simplex.h"

namespace ads::infra {

common::Result<SchedulerConfig> PowerManager::CapForPower(
    const Cluster& cluster, double rack_cap_watts,
    const std::map<std::string, double>& cpu_per_container) {
  if (cluster.size() == 0) {
    return common::Status::InvalidArgument("empty cluster");
  }
  const std::vector<std::string>& skus = cluster.sku_names();
  // Per (rack, sku): machine count; per sku: spec data.
  std::map<std::string, SkuSpec> spec_by_sku;
  std::map<int, std::map<std::string, int>> rack_sku_machines;
  for (size_t i = 0; i < cluster.size(); ++i) {
    const Machine& m = cluster.machine(i);
    spec_by_sku.emplace(m.spec().name, m.spec());
    ++rack_sku_machines[m.rack()][m.spec().name];
  }

  // Variables: one cap per SKU. Maximize total fleet capacity
  // (sum over machines of their SKU's cap).
  common::LinearProgram lp;
  lp.objective.resize(skus.size(), 0.0);
  std::map<std::string, size_t> var_of;
  for (size_t s = 0; s < skus.size(); ++s) {
    var_of[skus[s]] = s;
  }
  for (size_t i = 0; i < cluster.size(); ++i) {
    lp.objective[var_of[cluster.machine(i).spec().name]] += 1.0;
  }

  // One power constraint per rack:
  //   sum_m idle_m + (busy_m - idle_m) * min(1, slope_s * cap_s) <= cap.
  // The LP uses the linear (unclamped) utilization, which upper-bounds
  // power only up to 100% utilization; the slot bound below keeps caps in
  // the linear region (slope * cap <= 1).
  for (const auto& [rack, sku_counts] : rack_sku_machines) {
    common::LpConstraint power;
    power.coeffs.assign(skus.size(), 0.0);
    double idle_total = 0.0;
    for (const auto& [sku_name, count] : sku_counts) {
      const SkuSpec& spec = spec_by_sku[sku_name];
      double slope = spec.cpu_per_container;
      auto it = cpu_per_container.find(sku_name);
      if (it != cpu_per_container.end() && it->second > 0.0) {
        slope = it->second;
      }
      idle_total += spec.idle_watts * count;
      power.coeffs[var_of[sku_name]] +=
          (spec.busy_watts - spec.idle_watts) * slope * count;
    }
    if (idle_total > rack_cap_watts) {
      return common::Status::FailedPrecondition(
          "rack " + std::to_string(rack) + " exceeds the cap even when idle");
    }
    power.sense = common::ConstraintSense::kLessEqual;
    power.rhs = rack_cap_watts - idle_total;
    lp.constraints.push_back(std::move(power));
  }

  // Utilization-linearity + slot bounds: cap_s <= min(slots, 1/slope).
  for (const std::string& sku_name : skus) {
    const SkuSpec& spec = spec_by_sku[sku_name];
    double slope = spec.cpu_per_container;
    auto it = cpu_per_container.find(sku_name);
    if (it != cpu_per_container.end() && it->second > 0.0) slope = it->second;
    common::LpConstraint bound;
    bound.coeffs.assign(skus.size(), 0.0);
    bound.coeffs[var_of[sku_name]] = 1.0;
    bound.sense = common::ConstraintSense::kLessEqual;
    double util_bound = slope > 0.0 ? 1.0 / slope : 1e9;
    bound.rhs = std::min(static_cast<double>(spec.default_max_containers),
                         util_bound);
    lp.constraints.push_back(std::move(bound));
  }

  auto sol = common::SolveLp(lp);
  if (!sol.ok()) return sol.status();
  if (sol->status != common::LpStatus::kOptimal) {
    return common::Status::FailedPrecondition("power cap LP infeasible");
  }
  SchedulerConfig config;
  for (const std::string& sku_name : skus) {
    config.max_containers_per_sku[sku_name] =
        std::max(0, static_cast<int>(std::floor(sol->x[var_of[sku_name]])));
  }
  return config;
}

double PowerManager::WorstCaseRackPower(const Cluster& cluster, int rack,
                                        const SchedulerConfig& config) {
  double watts = 0.0;
  for (size_t i = 0; i < cluster.size(); ++i) {
    const Machine& m = cluster.machine(i);
    if (m.rack() != rack) continue;
    const SkuSpec& spec = m.spec();
    double util = std::min(1.0, spec.cpu_per_container *
                                    static_cast<double>(config.MaxFor(spec)));
    watts += spec.idle_watts + (spec.busy_watts - spec.idle_watts) * util;
  }
  return watts;
}

std::vector<int> PowerManager::ViolatingRacks(const Cluster& cluster,
                                              double rack_cap_watts) {
  std::vector<int> out;
  for (int rack = 0; rack <= cluster.max_rack(); ++rack) {
    if (cluster.RackPowerWatts(rack) > rack_cap_watts) {
      out.push_back(rack);
    }
  }
  return out;
}

}  // namespace ads::infra
