#ifndef ADS_INFRA_POWER_H_
#define ADS_INFRA_POWER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "infra/cluster.h"
#include "infra/scheduler.h"

namespace ads::infra {

/// Rack power management (the KEA engagement the paper mentions: "similar
/// methods were used ... to set power limits on Cosmos racks").
///
/// Given learned cpu-per-container behaviour per SKU, derives per-SKU
/// container caps such that EVERY rack's worst-case power draw (all
/// machines at their cap) stays under the rack limit. The derivation is a
/// joint LP over all racks: maximize total container capacity subject to
/// one power constraint per rack and slot bounds per SKU.
class PowerManager {
 public:
  /// Computes per-SKU caps for the cluster. `cpu_per_container` maps SKU
  /// name -> learned utilization slope; SKUs without an entry fall back to
  /// their spec's ground truth (the operator knows shipped hardware).
  /// Fails if even idle machines exceed a rack cap (infeasible), or if the
  /// cluster is empty.
  static common::Result<SchedulerConfig> CapForPower(
      const Cluster& cluster, double rack_cap_watts,
      const std::map<std::string, double>& cpu_per_container = {});

  /// Worst-case power of one rack under a config: every machine running at
  /// its per-SKU cap.
  static double WorstCaseRackPower(const Cluster& cluster, int rack,
                                   const SchedulerConfig& config);

  /// Racks whose CURRENT draw exceeds the cap (for monitoring/audit).
  static std::vector<int> ViolatingRacks(const Cluster& cluster,
                                         double rack_cap_watts);
};

}  // namespace ads::infra

#endif  // ADS_INFRA_POWER_H_
