#include "infra/provisioner.h"

#include "common/logging.h"

namespace ads::infra {

ClusterProvisioner::ClusterProvisioner(common::EventQueue* queue,
                                       uint64_t seed,
                                       ProvisionerOptions options)
    : queue_(queue), rng_(seed), options_(options) {
  ADS_CHECK(queue != nullptr) << "provisioner needs an event queue";
}

void ClusterProvisioner::AccrueIdleCost() {
  double now = queue_->now();
  double hours = (now - last_accrual_time_) / 3600.0;
  idle_cost_ += hours * options_.warm_cost_per_hour *
                static_cast<double>(warm_available_);
  last_accrual_time_ = now;
}

double ClusterProvisioner::WarmIdleCost() const {
  double hours = (queue_->now() - last_accrual_time_) / 3600.0;
  return idle_cost_ + hours * options_.warm_cost_per_hour *
                          static_cast<double>(warm_available_);
}

void ClusterProvisioner::SetWarmPoolTarget(int target) {
  ADS_CHECK(target >= 0) << "negative warm pool target";
  target_ = target;
  MaintainPool();
}

void ClusterProvisioner::MaintainPool() {
  while (warm_available_ + warm_in_flight_ < target_) {
    ++warm_in_flight_;
    double latency = rng_.LogNormal(options_.cold_mu, options_.cold_sigma);
    queue_->ScheduleAfter(latency, [this](common::SimTime) {
      --warm_in_flight_;
      // The pool may have shrunk its target while this creation was in
      // flight; surplus clusters still join the pool (they drain naturally).
      AccrueIdleCost();
      ++warm_available_;
    });
  }
}

void ClusterProvisioner::RequestCluster(std::function<void(double)> on_ready) {
  if (warm_available_ > 0) {
    AccrueIdleCost();
    --warm_available_;
    MaintainPool();
    double wait = options_.warm_handoff_seconds;
    queue_->ScheduleAfter(wait, [this, wait, on_ready](common::SimTime) {
      waits_.Add(wait);
      ++served_;
      on_ready(wait);
    });
  } else {
    double wait = rng_.LogNormal(options_.cold_mu, options_.cold_sigma);
    queue_->ScheduleAfter(wait, [this, wait, on_ready](common::SimTime) {
      waits_.Add(wait);
      ++served_;
      on_ready(wait);
    });
  }
}

}  // namespace ads::infra
