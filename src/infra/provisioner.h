#ifndef ADS_INFRA_PROVISIONER_H_
#define ADS_INFRA_PROVISIONER_H_

#include <cstdint>
#include <functional>

#include "common/event_queue.h"
#include "common/rng.h"
#include "common/stats.h"

namespace ads::infra {

struct ProvisionerOptions {
  /// Cold cluster creation latency ~ LogNormal(mu, sigma) seconds.
  /// Defaults give a median of ~150 s with a heavy tail, matching the
  /// minutes-scale Spark pool startup the paper targets.
  double cold_mu = 5.0;
  double cold_sigma = 0.5;
  /// Hand-off latency when a warm cluster is available.
  double warm_handoff_seconds = 5.0;
  /// Cost of keeping one warm cluster alive, per hour (COGS accounting).
  double warm_cost_per_hour = 4.0;
};

/// Warm-pool cluster provisioner (the Synapse-Spark-style substrate for the
/// paper's proactive provisioning result). A policy sets the warm-pool
/// target; user requests consume warm clusters when available and fall back
/// to cold creation otherwise. The provisioner accounts the QoS side (user
/// wait times) and the cost side (warm idle cluster-hours) of the paper's
/// Figure 2 trade-off.
class ClusterProvisioner {
 public:
  ClusterProvisioner(common::EventQueue* queue, uint64_t seed,
                     ProvisionerOptions options = ProvisionerOptions());

  /// Sets the warm-pool target; the provisioner starts cold creations to
  /// reach it (or lets the pool drain down to it as requests arrive).
  void SetWarmPoolTarget(int target);
  int warm_pool_target() const { return target_; }
  int warm_available() const { return warm_available_; }

  /// A user asks for a cluster now; `on_ready(wait_seconds)` fires when one
  /// is handed over.
  void RequestCluster(std::function<void(double)> on_ready);

  // --- outcome statistics -------------------------------------------------
  const common::QuantileSketch& wait_times() const { return waits_; }
  uint64_t requests_served() const { return served_; }
  /// Accumulated warm idle cost so far (advance with the sim clock).
  double WarmIdleCost() const;

 private:
  void AccrueIdleCost();
  void MaintainPool();

  common::EventQueue* queue_;
  common::Rng rng_;
  ProvisionerOptions options_;

  int target_ = 0;
  int warm_available_ = 0;
  int warm_in_flight_ = 0;

  common::QuantileSketch waits_;
  uint64_t served_ = 0;
  double idle_cost_ = 0.0;
  double last_accrual_time_ = 0.0;
};

}  // namespace ads::infra

#endif  // ADS_INFRA_PROVISIONER_H_
