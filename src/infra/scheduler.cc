#include "infra/scheduler.h"

#include <limits>
#include <vector>

namespace ads::infra {

ClusterScheduler::ClusterScheduler(Cluster* cluster,
                                   common::EventQueue* queue,
                                   telemetry::TelemetryStore* telemetry,
                                   uint64_t seed)
    : cluster_(cluster), queue_(queue), telemetry_(telemetry), rng_(seed) {
  ADS_CHECK(cluster != nullptr) << "scheduler needs a cluster";
  ADS_CHECK(queue != nullptr) << "scheduler needs an event queue";
}

void ClusterScheduler::Submit(const ContainerTask& task) {
  Pending pending{task, queue_->now()};
  if (tracer_ != nullptr) {
    pending.span = tracer_->StartSpan(
        "task", "task-" + std::to_string(task.id), telemetry::kNoSpan,
        queue_->now());
  }
  if (!TryPlace(pending)) {
    waiting_.push_back(pending);
    ++queue_depth_;
  }
}

bool ClusterScheduler::TryPlace(const Pending& pending) {
  // Least-utilized healthy machine among those under their SKU cap with
  // room for the task's temp storage.
  Machine* best = nullptr;
  double best_util = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < cluster_->size(); ++i) {
    Machine& m = cluster_->machine(i);
    if (!m.AcceptsWork()) continue;
    if (m.running_containers() >= config_.MaxFor(m.spec())) continue;
    if (m.temp_storage_free_gb() < pending.task.temp_storage_gb) continue;
    double u = m.CpuUtilization();
    if (u < best_util) {
      best_util = u;
      best = &m;
    }
  }
  if (best == nullptr) return false;

  best->StartContainer();
  if (pending.task.temp_storage_gb > 0.0) {
    ADS_CHECK(best->ReserveTempStorage(pending.task.temp_storage_gb))
        << "temp reservation failed after capacity check";
  }
  double util_now = best->CpuUtilization();
  auto& peak = peak_util_[best->id()];
  if (util_now > peak) peak = util_now;

  // Execution dilates with the utilization at start (plus mild noise).
  double duration = pending.task.base_duration * best->TaskSlowdown() *
                    rng_.Uniform(0.95, 1.05);
  uint64_t placement_id = next_placement_id_++;
  telemetry::SpanId placement_span = telemetry::kNoSpan;
  if (tracer_ != nullptr && pending.span != telemetry::kNoSpan) {
    placement_span = tracer_->StartSpan(
        "placement", "machine-" + std::to_string(best->id()), pending.span,
        queue_->now());
    tracer_->Annotate(placement_span, "machine", std::to_string(best->id()));
    tracer_->Annotate(placement_span, "sku", best->spec().name);
  }
  running_.emplace(placement_id, Running{best, pending, duration,
                                         best->CpuUtilization(),
                                         placement_span});
  queue_->ScheduleAfter(duration, [this, placement_id](common::SimTime) {
    OnTaskFinished(placement_id);
  });
  return true;
}

void ClusterScheduler::OnTaskFinished(uint64_t placement_id) {
  auto it = running_.find(placement_id);
  // The placement was killed by a machine failure: the task has already
  // been resubmitted, so this completion event is a ghost.
  if (it == running_.end()) return;
  Machine* machine = it->second.machine;
  const Pending pending = it->second.pending;
  double duration = it->second.duration;
  double util_at_start = it->second.util_at_start;
  if (tracer_ != nullptr) {
    tracer_->Annotate(it->second.placement_span, "outcome", "completed");
    tracer_->EndSpan(it->second.placement_span, queue_->now());
    tracer_->Annotate(pending.span, "outcome", "completed");
    tracer_->EndSpan(pending.span, queue_->now());
  }
  running_.erase(it);

  machine->FinishContainer();
  if (pending.task.temp_storage_gb > 0.0) {
    machine->ReleaseTempStorage(pending.task.temp_storage_gb);
  }
  ++completed_;
  latency_.Add(queue_->now() - pending.submit_time);
  if (telemetry_ != nullptr) {
    telemetry::LabelSet labels{{"machine", std::to_string(machine->id())},
                               {"sku", machine->spec().name}};
    // Execution time only (queue wait excluded) plus the machine's
    // utilization when the task started: the machine-behaviour signals the
    // KEA-style models learn from. Both are emitted at completion time, so
    // the i-th points of the two series describe the same task.
    ADS_CHECK_OK(telemetry_->Record("task.execution.time", labels,
                                    queue_->now(), duration));
    ADS_CHECK_OK(telemetry_->Record("task.start.utilization", labels,
                                    queue_->now(), util_at_start));
  }
  DrainQueue();
}

void ClusterScheduler::OnMachineFailed(Machine* machine) {
  ADS_CHECK(machine != nullptr) << "failed machine must exist";
  // The crash wipes the machine's containers and temp storage in one shot;
  // per-placement release below would double-free.
  machine->Crash();
  std::vector<Pending> lost;
  for (auto it = running_.begin(); it != running_.end();) {
    if (it->second.machine == machine) {
      if (tracer_ != nullptr) {
        tracer_->Annotate(it->second.placement_span, "outcome", "killed");
        tracer_->EndSpan(it->second.placement_span, queue_->now());
      }
      lost.push_back(it->second.pending);
      it = running_.erase(it);
    } else {
      ++it;
    }
  }
  // Resubmit with the original submit time: the time lost to the failure
  // is real latency the task's owner observed.
  for (const Pending& p : lost) {
    ++restarted_;
    if (!TryPlace(p)) {
      waiting_.push_back(p);
      ++queue_depth_;
    }
  }
}

void ClusterScheduler::OnMachineRecovered(Machine* machine) {
  ADS_CHECK(machine != nullptr) << "recovered machine must exist";
  machine->SetState(MachineState::kHealthy);
  DrainQueue();
}

void ClusterScheduler::OnMachineDraining(Machine* machine) {
  ADS_CHECK(machine != nullptr) << "draining machine must exist";
  if (machine->state() == MachineState::kHealthy) {
    machine->SetState(MachineState::kDraining);
  }
}

void ClusterScheduler::DrainQueue() {
  while (!waiting_.empty()) {
    if (!TryPlace(waiting_.front())) break;
    waiting_.pop_front();
    --queue_depth_;
  }
}

void ClusterScheduler::SampleTelemetry() {
  if (telemetry_ == nullptr) return;
  for (size_t i = 0; i < cluster_->size(); ++i) {
    Machine& m = cluster_->machine(i);
    telemetry::LabelSet labels{{"machine", std::to_string(m.id())},
                               {"sku", m.spec().name}};
    ADS_CHECK_OK(telemetry_->Record("system.cpu.utilization", labels,
                                    queue_->now(), m.CpuUtilization()));
    ADS_CHECK_OK(telemetry_->Record("container.running.count", labels,
                                    queue_->now(),
                                    static_cast<double>(m.running_containers())));
    double peak = peak_util_.count(m.id()) ? peak_util_[m.id()] : 0.0;
    if (m.CpuUtilization() > peak) peak_util_[m.id()] = m.CpuUtilization();
  }
}

int ClusterScheduler::HotspotCount(double util_threshold) const {
  int n = 0;
  for (const auto& [id, peak] : peak_util_) {
    if (peak >= util_threshold) ++n;
  }
  return n;
}

}  // namespace ads::infra
