#ifndef ADS_INFRA_SCHEDULER_H_
#define ADS_INFRA_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "common/event_queue.h"
#include "common/rng.h"
#include "common/stats.h"
#include "infra/cluster.h"
#include "telemetry/span.h"
#include "telemetry/store.h"

namespace ads::infra {

/// The KEA tunable: per-SKU cap on concurrently running containers per
/// machine. Machines above the cap do not accept new containers even if
/// they have slots.
struct SchedulerConfig {
  std::map<std::string, int> max_containers_per_sku;

  int MaxFor(const SkuSpec& sku) const {
    auto it = max_containers_per_sku.find(sku.name);
    return it == max_containers_per_sku.end() ? sku.default_max_containers
                                              : it->second;
  }
};

/// One container-granularity work item.
struct ContainerTask {
  uint64_t id = 0;
  /// Execution time on an unloaded machine, seconds.
  double base_duration = 60.0;
  double temp_storage_gb = 0.0;
};

/// Event-driven container scheduler over a Cluster: the Cosmos-style
/// substrate that KEA tunes. Tasks go to the least-utilized healthy
/// machine with spare capacity; execution time dilates with the machine's
/// utilization at start (the machine-behaviour model), which is what
/// creates hotspots when the per-SKU caps are mis-set.
///
/// Failure-aware: when a machine dies mid-flight (OnMachineFailed, driven
/// by MachineChaos or any lifecycle controller), every container it was
/// running is lost and its task is transparently resubmitted, keeping the
/// original submit time so the lost time shows up in task latency.
class ClusterScheduler {
 public:
  ClusterScheduler(Cluster* cluster, common::EventQueue* queue,
                   telemetry::TelemetryStore* telemetry, uint64_t seed);

  void SetConfig(SchedulerConfig config) { config_ = std::move(config); }
  const SchedulerConfig& config() const { return config_; }

  /// Attaches a causal span tracer (borrowed; may be null). Each submitted
  /// task opens a root "task" span; every placement opens a "placement"
  /// child naming the machine. A machine death ends the placement span
  /// with outcome=killed and the resubmission opens a fresh placement
  /// child under the same task span — the re-placement is causally tied
  /// to the original submission.
  void SetTracer(telemetry::Tracer* tracer) { tracer_ = tracer; }

  /// Submits a task at the current simulation time.
  void Submit(const ContainerTask& task);

  /// Samples per-machine telemetry (cpu, containers) at the current time.
  /// Call periodically from the driving simulation.
  void SampleTelemetry();

  // --- machine lifecycle hooks -------------------------------------------
  /// The machine crashed: its containers and temp storage are gone
  /// (Machine::Crash), and every task it was running is resubmitted.
  void OnMachineFailed(Machine* machine);
  /// The machine rejoined the fleet: mark healthy and drain the backlog.
  void OnMachineRecovered(Machine* machine);
  /// Graceful decommission: no new placements; running work finishes.
  void OnMachineDraining(Machine* machine);

  // --- outcome statistics -------------------------------------------------
  uint64_t completed_tasks() const { return completed_; }
  size_t queued_tasks() const { return queue_depth_; }
  size_t running_tasks() const { return running_.size(); }
  /// Tasks whose execution was killed by a machine failure and resubmitted.
  uint64_t restarted_tasks() const { return restarted_; }
  /// End-to-end latency (queue wait + execution) distribution.
  const common::QuantileSketch& task_latency() const { return latency_; }
  /// Peak utilization observed per machine id.
  const std::map<int, double>& peak_utilization() const { return peak_util_; }
  /// Machines whose peak utilization exceeded the hotspot threshold.
  int HotspotCount(double util_threshold = 0.9) const;

 private:
  struct Pending {
    ContainerTask task;
    common::SimTime submit_time;
    telemetry::SpanId span = telemetry::kNoSpan;  // root "task" span
  };
  struct Running {
    Machine* machine;
    Pending pending;
    double duration;
    double util_at_start;
    telemetry::SpanId placement_span = telemetry::kNoSpan;
  };

  /// Tries to place one task now; returns false if no machine has capacity.
  bool TryPlace(const Pending& pending);
  void OnTaskFinished(uint64_t placement_id);
  void DrainQueue();

  Cluster* cluster_;
  common::EventQueue* queue_;
  telemetry::TelemetryStore* telemetry_;
  telemetry::Tracer* tracer_ = nullptr;
  common::Rng rng_;
  SchedulerConfig config_;

  std::deque<Pending> waiting_;
  std::map<uint64_t, Running> running_;
  uint64_t next_placement_id_ = 0;
  size_t queue_depth_ = 0;
  uint64_t completed_ = 0;
  uint64_t restarted_ = 0;
  common::QuantileSketch latency_;
  std::map<int, double> peak_util_;
};

}  // namespace ads::infra

#endif  // ADS_INFRA_SCHEDULER_H_
