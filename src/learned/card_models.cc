#include "learned/card_models.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace ads::learned {

common::Status CardinalityModelStore::Train(
    const std::map<uint64_t, std::vector<CardObservation>>& observations) {
  models_.clear();
  candidates_ = 0;
  discarded_ = 0;
  common::Rng rng(options_.seed);
  common::RunningMoments learned_q;
  common::RunningMoments default_q;

  for (const auto& [signature, samples] : observations) {
    if (samples.size() < options_.min_samples) continue;
    ++candidates_;
    size_t arity = samples[0].features.size();

    // Split train/holdout deterministically.
    std::vector<size_t> idx(samples.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    rng.Shuffle(idx);
    size_t holdout = std::max<size_t>(
        2, static_cast<size_t>(options_.holdout_fraction *
                               static_cast<double>(samples.size())));
    if (holdout >= samples.size()) holdout = samples.size() / 2;

    ml::Dataset train;
    for (size_t i = holdout; i < idx.size(); ++i) {
      const CardObservation& obs = samples[idx[i]];
      if (obs.features.size() != arity) continue;
      train.Add(obs.features, std::log1p(obs.true_card));
    }
    if (train.size() < 3) {
      ++discarded_;
      continue;
    }
    ml::LinearRegressor model(options_.ridge);
    if (!model.Fit(train).ok()) {
      ++discarded_;
      continue;
    }

    // Retention check: holdout median q-error vs the default estimator.
    std::vector<double> learned_qs;
    std::vector<double> default_qs;
    for (size_t i = 0; i < holdout; ++i) {
      const CardObservation& obs = samples[idx[i]];
      if (obs.features.size() != arity) continue;
      double pred = std::expm1(model.Predict(obs.features));
      learned_qs.push_back(common::QError(obs.true_card, pred));
      default_qs.push_back(common::QError(obs.true_card, obs.default_estimate));
    }
    if (learned_qs.empty()) {
      ++discarded_;
      continue;
    }
    auto median = [](std::vector<double> v) {
      std::sort(v.begin(), v.end());
      return v[v.size() / 2];
    };
    double lm = median(learned_qs);
    double dm = median(default_qs);
    if (lm > dm * options_.retention_ratio) {
      ++discarded_;  // model would not improve on the default: drop it
      continue;
    }
    learned_q.Add(lm);
    default_q.Add(dm);
    models_[signature] = Micromodel{std::move(model), arity};
  }
  mean_learned_qerror_ = learned_q.mean();
  mean_default_qerror_ = default_q.mean();
  return common::Status::Ok();
}

std::optional<double> CardinalityModelStore::Estimate(
    const engine::PlanNode& node) const {
  auto it = models_.find(node.TemplateSignature());
  if (it == models_.end()) return std::nullopt;
  std::vector<double> features = NodeFeatures(node);
  if (features.size() != it->second.feature_arity) return std::nullopt;
  double pred = std::expm1(it->second.regressor.Predict(features));
  if (!std::isfinite(pred)) return std::nullopt;
  return std::max(1.0, pred);
}

}  // namespace ads::learned
