#ifndef ADS_LEARNED_CARD_MODELS_H_
#define ADS_LEARNED_CARD_MODELS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "engine/cardinality.h"
#include "learned/workload_analysis.h"
#include "ml/linear.h"

namespace ads::learned {

struct CardModelOptions {
  /// Minimum observations of a node template before training a micromodel.
  size_t min_samples = 8;
  /// Fraction of samples held out for the retention check.
  double holdout_fraction = 0.3;
  /// Keep a model only if its holdout median q-error is at most this
  /// fraction of the default estimator's ("retain only models that would
  /// actually improve performance").
  double retention_ratio = 0.9;
  double ridge = 1e-3;
  uint64_t seed = 1;
};

/// Per-template cardinality micromodels (the paper's approach from [49]):
/// one small linear model per recurring subexpression template, trained on
/// observed true cardinalities, predicting log-cardinality from the
/// template's literals. Plugs into the optimizer as a CardinalityProvider;
/// templates without a retained model fall back to the default estimator.
class CardinalityModelStore : public engine::CardinalityProvider {
 public:
  explicit CardinalityModelStore(CardModelOptions options = CardModelOptions())
      : options_(options) {}

  /// Trains micromodels from analyzer observations. Re-trainable; replaces
  /// the current model set.
  common::Status Train(
      const std::map<uint64_t, std::vector<CardObservation>>& observations);

  /// CardinalityProvider: estimate for nodes whose template has a retained
  /// model; nullopt otherwise.
  std::optional<double> Estimate(const engine::PlanNode& node) const override;

  size_t retained_models() const { return models_.size(); }
  size_t candidate_templates() const { return candidates_; }
  size_t discarded_models() const { return discarded_; }

  /// Holdout median q-errors measured during training (learned vs default),
  /// aggregated over retained templates. For reporting.
  double mean_learned_qerror() const { return mean_learned_qerror_; }
  double mean_default_qerror() const { return mean_default_qerror_; }

 private:
  struct Micromodel {
    ml::LinearRegressor regressor;
    size_t feature_arity = 0;
  };

  CardModelOptions options_;
  std::map<uint64_t, Micromodel> models_;
  size_t candidates_ = 0;
  size_t discarded_ = 0;
  double mean_learned_qerror_ = 0.0;
  double mean_default_qerror_ = 0.0;
};

}  // namespace ads::learned

#endif  // ADS_LEARNED_CARD_MODELS_H_
