#include "learned/checkpoint.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/simplex.h"
#include "ml/dataset.h"

namespace ads::learned {

using engine::Stage;
using engine::StageGraph;

std::vector<double> StageFeatures(const StageGraph& graph,
                                  const Stage& stage) {
  std::vector<int> depths = graph.Depths();
  double in_rows = 0.0;
  for (int in : stage.inputs) {
    in_rows += graph.stages[static_cast<size_t>(in)].output_rows;
  }
  return {
      std::log1p(stage.work),
      std::log1p(stage.output_rows),
      std::log1p(stage.output_bytes),
      std::log1p(in_rows),
      static_cast<double>(stage.inputs.size()),
      static_cast<double>(depths[static_cast<size_t>(stage.id)]),
  };
}

common::Status StagePredictor::Train(
    const std::vector<StageObservation>& observations) {
  if (observations.size() < 10) {
    return common::Status::FailedPrecondition(
        "need at least 10 stage observations");
  }
  ml::Dataset work_data;
  ml::Dataset bytes_data;
  for (const StageObservation& obs : observations) {
    work_data.Add(obs.features, std::log1p(obs.actual_work));
    bytes_data.Add(obs.features, std::log1p(obs.actual_output_bytes));
  }
  ml::GradientBoostedTrees work_model({.num_rounds = 40, .max_depth = 3});
  ml::GradientBoostedTrees bytes_model({.num_rounds = 40, .max_depth = 3});
  ADS_RETURN_IF_ERROR(work_model.Fit(work_data));
  ADS_RETURN_IF_ERROR(bytes_model.Fit(bytes_data));
  work_model_ = std::move(work_model);
  bytes_model_ = std::move(bytes_model);
  trained_ = true;
  return common::Status::Ok();
}

double StagePredictor::PredictWork(const std::vector<double>& features) const {
  ADS_CHECK(trained_) << "predict before train";
  return std::max(0.0, std::expm1(work_model_.Predict(features)));
}

double StagePredictor::PredictOutputBytes(
    const std::vector<double>& features) const {
  ADS_CHECK(trained_) << "predict before train";
  return std::max(0.0, std::expm1(bytes_model_.Predict(features)));
}

double RestartWorkWeighted(const StageGraph& graph,
                           const std::vector<double>& stage_work,
                           const std::set<int>& checkpointed) {
  ADS_CHECK(stage_work.size() == graph.stages.size())
      << "stage work arity mismatch";
  std::vector<bool> rerun = graph.MustRerun(checkpointed);
  double w = 0.0;
  for (const Stage& s : graph.stages) {
    if (rerun[static_cast<size_t>(s.id)]) {
      w += stage_work[static_cast<size_t>(s.id)];
    }
  }
  return w;
}

common::Result<std::vector<CheckpointChoice>> CheckpointOptimizer::Choose(
    const std::vector<const StageGraph*>& jobs,
    const StagePredictor* predictor) const {
  if (jobs.empty()) {
    return common::Status::InvalidArgument("no jobs to checkpoint");
  }

  // Enumerate candidate cuts (one per topological level, per job).
  struct Candidate {
    size_t job = 0;
    std::set<int> stages;
    double bytes = 0.0;
    double saved = 0.0;
  };
  std::vector<Candidate> candidates;
  for (size_t j = 0; j < jobs.size(); ++j) {
    const StageGraph& graph = *jobs[j];
    // Per-stage (possibly predicted) work and bytes.
    std::vector<double> work(graph.stages.size());
    std::vector<double> bytes(graph.stages.size());
    for (const Stage& s : graph.stages) {
      if (predictor != nullptr && predictor->trained()) {
        std::vector<double> f = StageFeatures(graph, s);
        work[static_cast<size_t>(s.id)] = predictor->PredictWork(f);
        bytes[static_cast<size_t>(s.id)] = predictor->PredictOutputBytes(f);
      } else {
        work[static_cast<size_t>(s.id)] = s.work;
        bytes[static_cast<size_t>(s.id)] = s.output_bytes;
      }
    }
    double baseline = RestartWorkWeighted(graph, work, {});
    int max_depth = graph.MaxDepth();
    for (int level = 0; level < max_depth; ++level) {
      Candidate c;
      c.job = j;
      c.stages = graph.LevelCut(level);
      if (c.stages.empty()) continue;
      for (int s : c.stages) c.bytes += bytes[static_cast<size_t>(s)];
      c.saved = baseline - RestartWorkWeighted(graph, work, c.stages) +
                options_.temp_relief_weight * c.bytes;
      if (c.saved <= 0.0) continue;
      candidates.push_back(std::move(c));
    }
  }
  if (candidates.empty()) return std::vector<CheckpointChoice>{};

  // Fractional relaxation: maximize sum(saved * x) subject to one cut per
  // job and the byte budget.
  common::LinearProgram lp;
  lp.objective.resize(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    lp.objective[i] = candidates[i].saved;
  }
  for (size_t j = 0; j < jobs.size(); ++j) {
    common::LpConstraint per_job;
    per_job.coeffs.assign(candidates.size(), 0.0);
    bool any = false;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].job == j) {
        per_job.coeffs[i] = 1.0;
        any = true;
      }
    }
    if (!any) continue;
    per_job.sense = common::ConstraintSense::kLessEqual;
    per_job.rhs = 1.0;
    lp.constraints.push_back(std::move(per_job));
  }
  {
    common::LpConstraint budget;
    budget.coeffs.resize(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      budget.coeffs[i] = candidates[i].bytes;
    }
    budget.sense = common::ConstraintSense::kLessEqual;
    budget.rhs = options_.budget_bytes;
    lp.constraints.push_back(std::move(budget));
  }
  // Box constraints x <= 1 (x >= 0 is implicit).
  for (size_t i = 0; i < candidates.size(); ++i) {
    common::LpConstraint box;
    box.coeffs.assign(candidates.size(), 0.0);
    box.coeffs[i] = 1.0;
    box.sense = common::ConstraintSense::kLessEqual;
    box.rhs = 1.0;
    lp.constraints.push_back(std::move(box));
  }
  auto sol = common::SolveLp(lp);
  if (!sol.ok()) return sol.status();
  if (sol->status != common::LpStatus::kOptimal) {
    return common::Status::Internal("checkpoint LP not optimal");
  }

  // Rounding: per job take the candidate with the largest fractional mass
  // (threshold 0.5 of the per-job mass), then enforce the budget greedily
  // by savings density.
  std::vector<const Candidate*> picked(jobs.size(), nullptr);
  std::vector<double> mass(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) mass[i] = sol->x[i];
  for (size_t j = 0; j < jobs.size(); ++j) {
    double best_mass = 0.25;  // ignore negligible fractional picks
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].job == j && mass[i] > best_mass) {
        best_mass = mass[i];
        picked[j] = &candidates[i];
      }
    }
  }
  // Budget enforcement: drop lowest-density picks if over budget.
  double total_bytes = 0.0;
  std::vector<size_t> chosen_jobs;
  for (size_t j = 0; j < jobs.size(); ++j) {
    if (picked[j] != nullptr) {
      total_bytes += picked[j]->bytes;
      chosen_jobs.push_back(j);
    }
  }
  std::sort(chosen_jobs.begin(), chosen_jobs.end(), [&](size_t a, size_t b) {
    double da = picked[a]->saved / std::max(1.0, picked[a]->bytes);
    double db = picked[b]->saved / std::max(1.0, picked[b]->bytes);
    return da < db;
  });
  size_t drop = 0;
  while (total_bytes > options_.budget_bytes && drop < chosen_jobs.size()) {
    size_t j = chosen_jobs[drop++];
    total_bytes -= picked[j]->bytes;
    picked[j] = nullptr;
  }

  std::vector<CheckpointChoice> out;
  for (size_t j = 0; j < jobs.size(); ++j) {
    if (picked[j] == nullptr) continue;
    CheckpointChoice choice;
    choice.job_index = j;
    choice.stages = picked[j]->stages;
    choice.bytes = picked[j]->bytes;
    choice.saved_work = picked[j]->saved;
    out.push_back(std::move(choice));
  }
  return out;
}

}  // namespace ads::learned
