#ifndef ADS_LEARNED_CHECKPOINT_H_
#define ADS_LEARNED_CHECKPOINT_H_

#include <set>
#include <vector>

#include "common/status.h"
#include "engine/stage_graph.h"
#include "ml/forest.h"

namespace ads::learned {

/// Features of one stage for the Phoebe predictors, computed from
/// PLANNING-TIME information (the estimated-cardinality compilation):
/// estimated work, estimated output, fan-in, depth.
std::vector<double> StageFeatures(const engine::StageGraph& graph,
                                  const engine::Stage& stage);

/// One observed stage execution for training.
struct StageObservation {
  std::vector<double> features;
  double actual_work = 0.0;
  double actual_output_bytes = 0.0;
};

/// Phoebe's per-stage predictors ([52]): models that estimate each stage's
/// execution work and output size before the job runs, taking inter-stage
/// structure into account via the features.
class StagePredictor {
 public:
  common::Status Train(const std::vector<StageObservation>& observations);
  bool trained() const { return trained_; }

  double PredictWork(const std::vector<double>& features) const;
  double PredictOutputBytes(const std::vector<double>& features) const;

 private:
  ml::GradientBoostedTrees work_model_;
  ml::GradientBoostedTrees bytes_model_;
  bool trained_ = false;
};

/// RestartWork with externally supplied per-stage work (e.g. predictions).
double RestartWorkWeighted(const engine::StageGraph& graph,
                           const std::vector<double>& stage_work,
                           const std::set<int>& checkpointed);

/// The checkpoint decision for one job.
struct CheckpointChoice {
  size_t job_index = 0;
  std::set<int> stages;
  double bytes = 0.0;
  double saved_work = 0.0;
};

struct CheckpointOptions {
  /// Candidate cuts per job = level cuts of the stage DAG.
  /// Global budget on persisted bytes across all jobs.
  double budget_bytes = 1.0e9;
  /// Credit (in work units per byte) for temp storage relieved by
  /// persisting a cut's outputs. Phoebe optimizes both goals: bounded
  /// restarts AND freeing hotspot temp storage.
  double temp_relief_weight = 2.0e-6;
};

/// Phoebe's cut selector: evaluates the level cuts of every job's stage
/// DAG (persisted bytes vs restart work saved) and solves the global
/// budgeted selection as a linear program (fractional relaxation via the
/// simplex solver, then rounding) — "applied a linear programming
/// algorithm to introduce checkpoint cuts of the query DAG".
class CheckpointOptimizer {
 public:
  explicit CheckpointOptimizer(CheckpointOptions options = CheckpointOptions())
      : options_(options) {}

  /// Chooses at most one cut per job. If `predictor` is non-null, cut
  /// bytes/savings are computed from its predictions (the production
  /// setting); otherwise from the graphs' actual values (oracle).
  common::Result<std::vector<CheckpointChoice>> Choose(
      const std::vector<const engine::StageGraph*>& jobs,
      const StagePredictor* predictor = nullptr) const;

 private:
  CheckpointOptions options_;
};

}  // namespace ads::learned

#endif  // ADS_LEARNED_CHECKPOINT_H_
