#include "learned/cost_models.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "learned/workload_analysis.h"

namespace ads::learned {

using engine::OpType;
using engine::PlanNode;

std::vector<double> GenericPlanFeatures(const PlanNode& node) {
  // Operator-mix counts, shape, and volume: reusable across engines, as
  // Peregrine's engine-agnostic workload representation prescribes.
  double counts[7] = {0, 0, 0, 0, 0, 0, 0};
  double scan_rows = 0.0;
  node.Visit([&](const PlanNode& n) {
    ++counts[static_cast<size_t>(n.op)];
    if (n.op == OpType::kScan) scan_rows += n.table_rows;
  });
  std::vector<double> f;
  for (double c : counts) f.push_back(c);
  f.push_back(static_cast<double>(node.NodeCount()));
  f.push_back(static_cast<double>(node.Depth()));
  f.push_back(std::log1p(scan_rows));
  f.push_back(std::log1p(node.est_card));
  f.push_back(node.row_width);
  return f;
}

void LearnedCostModel::ObserveTarget(const PlanNode& root, double target) {
  Sample s;
  s.template_sig = root.TemplateSignature();
  s.template_features = NodeFeatures(root);
  s.generic_features = GenericPlanFeatures(root);
  s.true_cost = target;
  samples_.push_back(std::move(s));
}

void LearnedCostModel::Observe(const PlanNode& root,
                               const engine::CostModel& cost_model) {
  root.Visit([&](const PlanNode& n) {
    Sample s;
    s.template_sig = n.TemplateSignature();
    s.template_features = NodeFeatures(n);
    s.generic_features = GenericPlanFeatures(n);
    s.true_cost = cost_model.PlanCost(n, engine::CardSource::kTrue);
    samples_.push_back(std::move(s));
  });
}

common::Status LearnedCostModel::Train() {
  if (samples_.empty()) {
    return common::Status::FailedPrecondition("no cost observations");
  }
  common::Rng rng(options_.seed);

  // Global model over generic features (log target).
  ml::Dataset global_train;
  for (const Sample& s : samples_) {
    global_train.Add(s.generic_features, std::log1p(s.true_cost));
  }
  ml::GradientBoostedTrees global(
      {.num_rounds = options_.global_rounds, .max_depth = 4,
       .seed = rng.engine()()});
  ADS_RETURN_IF_ERROR(global.Fit(global_train));
  global_ = std::move(global);

  // Group samples per template.
  std::map<uint64_t, std::vector<const Sample*>> by_template;
  for (const Sample& s : samples_) {
    by_template[s.template_sig].push_back(&s);
  }

  micro_.clear();
  for (auto& [sig, group] : by_template) {
    if (group.size() < options_.min_samples) continue;
    size_t arity = group[0]->template_features.size();
    std::vector<size_t> idx(group.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    rng.Shuffle(idx);
    size_t holdout = std::max<size_t>(
        2, static_cast<size_t>(options_.holdout_fraction *
                               static_cast<double>(group.size())));
    if (holdout >= group.size()) holdout = group.size() / 2;

    ml::Dataset train;
    for (size_t i = holdout; i < idx.size(); ++i) {
      const Sample* s = group[idx[i]];
      if (s->template_features.size() != arity) continue;
      train.Add(s->template_features, std::log1p(s->true_cost));
    }
    if (train.size() < 3) continue;
    ml::LinearRegressor model(options_.ridge);
    if (!model.Fit(train).ok()) continue;

    // Ensemble weight from holdout errors of micro vs global.
    double err_micro = 0.0;
    double err_global = 0.0;
    size_t n = 0;
    for (size_t i = 0; i < holdout; ++i) {
      const Sample* s = group[idx[i]];
      if (s->template_features.size() != arity) continue;
      double truth = std::log1p(s->true_cost);
      err_micro += std::abs(model.Predict(s->template_features) - truth);
      err_global += std::abs(global_.Predict(s->generic_features) - truth);
      ++n;
    }
    if (n == 0) continue;
    double alpha =
        (err_micro + err_global) > 0.0
            ? err_global / (err_micro + err_global)
            : 0.5;
    micro_[sig] = Micromodel{std::move(model), arity, alpha};
  }
  trained_ = true;
  return common::Status::Ok();
}

std::optional<double> LearnedCostModel::Cost(const PlanNode& node) const {
  if (!trained_) return std::nullopt;
  double global_pred = std::expm1(global_.Predict(GenericPlanFeatures(node)));
  auto it = micro_.find(node.TemplateSignature());
  if (it != micro_.end()) {
    std::vector<double> f = NodeFeatures(node);
    if (f.size() == it->second.feature_arity) {
      double micro_pred = std::expm1(it->second.regressor.Predict(f));
      ++hits_micro_;
      double a = it->second.alpha;
      return std::max(0.0, a * micro_pred + (1.0 - a) * global_pred);
    }
  }
  ++hits_global_;
  return std::max(0.0, global_pred);
}

double LearnedCostModel::MicromodelHitRate() const {
  size_t total = hits_micro_ + hits_global_;
  if (total == 0) return 0.0;
  return static_cast<double>(hits_micro_) / static_cast<double>(total);
}

}  // namespace ads::learned
