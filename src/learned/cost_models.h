#ifndef ADS_LEARNED_COST_MODELS_H_
#define ADS_LEARNED_COST_MODELS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "engine/cost.h"
#include "ml/forest.h"
#include "ml/linear.h"

namespace ads::learned {

/// Engine-agnostic features of a plan subtree for the global cost model:
/// operator mix, shape, and volume statistics.
std::vector<double> GenericPlanFeatures(const engine::PlanNode& node);

struct CostModelOptions {
  size_t min_samples = 8;
  double holdout_fraction = 0.3;
  double ridge = 1e-3;
  size_t global_rounds = 40;
  uint64_t seed = 1;
};

/// Learned cost models in the paper's arrangement ([46]): per-template
/// micromodels where history exists, one global model for coverage, and a
/// meta ensemble that combines both predictions weighted by their measured
/// holdout accuracy. Implements engine::CostProvider so the optimizer can
/// consult it without being modified.
class LearnedCostModel : public engine::CostProvider {
 public:
  explicit LearnedCostModel(CostModelOptions options = CostModelOptions())
      : options_(options) {}

  /// Records training data from one executed (annotated) plan: every
  /// subtree contributes (features -> true subtree cost).
  void Observe(const engine::PlanNode& root,
               const engine::CostModel& cost_model);

  /// Records one ROOT-level sample with a measured target (e.g. the job's
  /// simulated execution time). Use either Observe or ObserveTarget
  /// consistently — the model learns whatever target it is fed.
  void ObserveTarget(const engine::PlanNode& root, double target);

  /// Trains micromodels + global model + ensemble weights from the
  /// observations accumulated so far.
  common::Status Train();

  /// CostProvider: ensemble prediction of the subtree's true cost, or
  /// nullopt before training.
  std::optional<double> Cost(const engine::PlanNode& node) const override;

  bool trained() const { return trained_; }
  size_t micromodel_count() const { return micro_.size(); }
  /// Fraction of Cost() calls served with a micromodel in the ensemble
  /// (coverage accounting; resets are not needed for the benches).
  double MicromodelHitRate() const;

 private:
  struct Sample {
    uint64_t template_sig = 0;
    std::vector<double> template_features;
    std::vector<double> generic_features;
    double true_cost = 0.0;
  };
  struct Micromodel {
    ml::LinearRegressor regressor;
    size_t feature_arity = 0;
    /// Ensemble weight on the micromodel (vs the global model).
    double alpha = 0.5;
  };

  CostModelOptions options_;
  std::vector<Sample> samples_;
  std::map<uint64_t, Micromodel> micro_;
  ml::GradientBoostedTrees global_;
  bool trained_ = false;
  mutable size_t hits_micro_ = 0;
  mutable size_t hits_global_ = 0;
};

}  // namespace ads::learned

#endif  // ADS_LEARNED_COST_MODELS_H_
