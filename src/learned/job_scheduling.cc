#include "learned/job_scheduling.h"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>

namespace ads::learned {

const char* SchedulingPolicyName(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kFifo:
      return "fifo";
    case SchedulingPolicy::kCriticalPath:
      return "critical_path";
    case SchedulingPolicy::kShortestFirst:
      return "shortest_first";
    case SchedulingPolicy::kShortestPipelineFirst:
      return "shortest_pipeline_first";
  }
  return "?";
}

namespace {

/// Downstream work per job: its own duration plus the heaviest chain of
/// dependents (computed over the reverse DAG).
common::Result<std::vector<double>> DownstreamWork(
    const std::vector<ScheduledJob>& jobs) {
  size_t n = jobs.size();
  std::vector<std::vector<int>> consumers(n);
  std::vector<int> outdegree(n, 0);
  for (size_t j = 0; j < n; ++j) {
    for (int dep : jobs[j].deps) {
      if (dep < 0 || static_cast<size_t>(dep) >= n) {
        return common::Status::InvalidArgument("dependency out of range");
      }
      consumers[static_cast<size_t>(dep)].push_back(static_cast<int>(j));
      ++outdegree[static_cast<size_t>(dep)];
    }
  }
  // Reverse-topological accumulation (Kahn on the reverse graph).
  std::vector<double> down(n, 0.0);
  std::vector<int> remaining = outdegree;
  std::queue<int> ready;
  for (size_t j = 0; j < n; ++j) {
    down[j] = jobs[j].duration;
    if (remaining[j] == 0) ready.push(static_cast<int>(j));
  }
  size_t processed = 0;
  while (!ready.empty()) {
    int j = ready.front();
    ready.pop();
    ++processed;
    for (int dep : jobs[static_cast<size_t>(j)].deps) {
      down[static_cast<size_t>(dep)] =
          std::max(down[static_cast<size_t>(dep)],
                   jobs[static_cast<size_t>(dep)].duration +
                       down[static_cast<size_t>(j)]);
      if (--remaining[static_cast<size_t>(dep)] == 0) ready.push(dep);
    }
  }
  if (processed != n) {
    return common::Status::InvalidArgument("dependency cycle detected");
  }
  return down;
}

}  // namespace

common::Result<ScheduleOutcome> SchedulePipelines(
    const std::vector<ScheduledJob>& jobs, int slots,
    SchedulingPolicy policy) {
  if (jobs.empty()) {
    return common::Status::InvalidArgument("no jobs to schedule");
  }
  if (slots <= 0) {
    return common::Status::InvalidArgument("need at least one slot");
  }
  auto down = DownstreamWork(jobs);
  if (!down.ok()) return down.status();

  size_t n = jobs.size();
  // Total work per pipeline (standalone jobs form their own "pipeline").
  std::map<int, double> pipeline_work;
  for (const ScheduledJob& job : jobs) {
    if (job.pipeline >= 0) pipeline_work[job.pipeline] += job.duration;
  }
  auto priority = [&](size_t j) {
    switch (policy) {
      case SchedulingPolicy::kFifo:
        return -static_cast<double>(j);
      case SchedulingPolicy::kCriticalPath:
        return (*down)[j];
      case SchedulingPolicy::kShortestFirst:
        return -jobs[j].duration;
      case SchedulingPolicy::kShortestPipelineFirst:
        return jobs[j].pipeline >= 0
                   ? -pipeline_work[jobs[j].pipeline]
                   : -jobs[j].duration;
    }
    return 0.0;
  };

  std::vector<int> pending_deps(n, 0);
  for (size_t j = 0; j < n; ++j) {
    pending_deps[j] = static_cast<int>(jobs[j].deps.size());
  }
  std::vector<std::vector<int>> consumers(n);
  for (size_t j = 0; j < n; ++j) {
    for (int dep : jobs[j].deps) {
      consumers[static_cast<size_t>(dep)].push_back(static_cast<int>(j));
    }
  }

  // Ready pool ordered by priority (ties by index for determinism).
  auto better = [&](size_t a, size_t b) {
    double pa = priority(a);
    double pb = priority(b);
    if (pa != pb) return pa > pb;
    return a < b;
  };
  std::vector<size_t> ready_pool;
  for (size_t j = 0; j < n; ++j) {
    if (pending_deps[j] == 0) ready_pool.push_back(j);
  }

  // Running jobs as (finish time, job) min-heap.
  using Running = std::pair<double, size_t>;
  std::priority_queue<Running, std::vector<Running>, std::greater<>> running;
  std::vector<double> completion(n, 0.0);
  double now = 0.0;
  size_t done = 0;

  auto launch_ready = [&]() {
    std::sort(ready_pool.begin(), ready_pool.end(), better);
    while (!ready_pool.empty() &&
           running.size() < static_cast<size_t>(slots)) {
      size_t j = ready_pool.front();
      ready_pool.erase(ready_pool.begin());
      running.emplace(now + jobs[j].duration, j);
    }
  };

  launch_ready();
  while (done < n) {
    if (running.empty()) {
      return common::Status::Internal("scheduler stalled (bad DAG)");
    }
    auto [finish, j] = running.top();
    running.pop();
    now = finish;
    completion[j] = finish;
    ++done;
    for (int c : consumers[j]) {
      if (--pending_deps[static_cast<size_t>(c)] == 0) {
        ready_pool.push_back(static_cast<size_t>(c));
      }
    }
    launch_ready();
  }

  ScheduleOutcome out;
  out.policy = policy;
  double job_sum = 0.0;
  std::map<int, double> pipeline_finish;
  size_t pipeline_or_standalone = 0;
  for (size_t j = 0; j < n; ++j) {
    out.makespan = std::max(out.makespan, completion[j]);
    job_sum += completion[j];
    if (jobs[j].pipeline >= 0) {
      double& f = pipeline_finish[jobs[j].pipeline];
      f = std::max(f, completion[j]);
    } else {
      ++pipeline_or_standalone;  // standalone jobs count as 1-job pipelines
    }
  }
  double pipe_sum = 0.0;
  for (size_t j = 0; j < n; ++j) {
    if (jobs[j].pipeline < 0) pipe_sum += completion[j];
  }
  for (const auto& [id, finish] : pipeline_finish) pipe_sum += finish;
  pipeline_or_standalone += pipeline_finish.size();
  out.mean_job_completion = job_sum / static_cast<double>(n);
  out.mean_pipeline_completion =
      pipe_sum / static_cast<double>(std::max<size_t>(1,
                                                      pipeline_or_standalone));
  return out;
}

}  // namespace ads::learned
