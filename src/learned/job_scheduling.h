#ifndef ADS_LEARNED_JOB_SCHEDULING_H_
#define ADS_LEARNED_JOB_SCHEDULING_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace ads::learned {

/// One job in a daily schedule. Dependencies reference indices into the
/// same job vector (producer jobs must run before their consumers).
struct ScheduledJob {
  int pipeline = -1;  // -1 = standalone
  double duration = 60.0;
  std::vector<int> deps;
};

/// How ready jobs are prioritized for free cluster slots.
enum class SchedulingPolicy {
  /// Submission order (the dependency-oblivious baseline).
  kFifo,
  /// Longest-downstream-work first: jobs whose completion unblocks the
  /// most remaining pipeline work run first. This is what mining the
  /// inter-job dependencies enables ([8]: "unearthing inter-job
  /// dependencies for better cluster scheduling").
  kCriticalPath,
  /// Shortest job first (a classic latency heuristic, dependency-blind).
  kShortestFirst,
  /// Shortest-total-work PIPELINE first: jobs belonging to pipelines with
  /// little total work run first, minimizing mean pipeline completion.
  /// Only possible once inter-job dependencies have been mined — a job's
  /// pipeline membership is invisible to a per-job scheduler.
  kShortestPipelineFirst,
};

const char* SchedulingPolicyName(SchedulingPolicy policy);

/// Outcome of replaying the day's jobs on `slots` concurrent job slots.
struct ScheduleOutcome {
  SchedulingPolicy policy = SchedulingPolicy::kFifo;
  double makespan = 0.0;
  /// Mean completion time of entire pipelines (their last job's finish).
  double mean_pipeline_completion = 0.0;
  /// Mean job completion time.
  double mean_job_completion = 0.0;
};

/// Deterministic list-scheduling simulation: all jobs are submitted at time
/// zero; a job is ready when its dependencies completed; ready jobs grab
/// free slots in policy order. Fails on malformed dependencies (cycles,
/// out-of-range references).
common::Result<ScheduleOutcome> SchedulePipelines(
    const std::vector<ScheduledJob>& jobs, int slots,
    SchedulingPolicy policy);

}  // namespace ads::learned

#endif  // ADS_LEARNED_JOB_SCHEDULING_H_
