#include "learned/pipeline_opt.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace ads::learned {

using engine::PlanNode;

PipelineOptimizationResult PipelineOptimizer::Optimize(
    const std::vector<const PlanNode*>& job_plans,
    const engine::CostModel& cost_model) const {
  PipelineOptimizationResult result;
  for (const PlanNode* plan : job_plans) {
    ADS_CHECK(plan != nullptr) << "null pipeline plan";
    result.cost_before +=
        cost_model.PlanCost(*plan, engine::CardSource::kTrue);
  }

  // Pipeline-aware statistics: which subexpressions recur across the
  // pipeline's consumer jobs.
  struct Shared {
    const PlanNode* example = nullptr;
    size_t consumers = 0;
  };
  std::map<uint64_t, Shared> shared;
  for (size_t j = 0; j < job_plans.size(); ++j) {
    std::map<uint64_t, bool> seen_in_job;
    job_plans[j]->Visit([&](const PlanNode& n) {
      if (n.NodeCount() < 2) return;
      uint64_t sig = n.StrictSignature();
      if (seen_in_job.count(sig) > 0) return;  // count once per job
      seen_in_job[sig] = true;
      Shared& s = shared[sig];
      if (s.example == nullptr) s.example = &n;
      ++s.consumers;
    });
  }

  // Build the pushed set (skip subexpressions nested inside a pushed one:
  // the outermost shared subtree subsumes its parts).
  std::vector<MaterializedView> views;
  std::vector<const PlanNode*> pushed_examples;
  // Order by descending node count so outer subtrees are considered first.
  std::vector<std::pair<uint64_t, const Shared*>> ranked;
  for (const auto& [sig, s] : shared) {
    if (s.consumers >= options_.min_consumers) ranked.emplace_back(sig, &s);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              return a.second->example->NodeCount() >
                     b.second->example->NodeCount();
            });
  for (const auto& [sig, s] : ranked) {
    bool nested = false;
    for (const PlanNode* outer : pushed_examples) {
      outer->Visit([&](const PlanNode& inner) {
        if (&inner != outer && inner.StrictSignature() == sig) nested = true;
      });
      if (nested) break;
    }
    if (nested) continue;
    MaterializedView view;
    view.strict_signature = sig;
    view.name = "pipe_view_" + std::to_string(views.size());
    view.rows = s->example->true_card;
    view.row_width = s->example->row_width;
    views.push_back(view);
    pushed_examples.push_back(s->example);
  }

  // Producer-side cost: compute each pushed subexpression once and write
  // its output.
  double producer_cost = 0.0;
  for (const PlanNode* ex : pushed_examples) {
    producer_cost += cost_model.PlanCost(*ex, engine::CardSource::kTrue);
    producer_cost += ex->true_card * ex->row_width *
                     options_.write_cost_per_byte;
  }

  // Rewrite consumers against the pushed views.
  double consumer_cost = 0.0;
  for (const PlanNode* plan : job_plans) {
    size_t rewrites = 0;
    auto rewritten = ReuseManager::Rewrite(*plan, views, &rewrites);
    engine::AnnotateTrueCardinality(*rewritten);
    consumer_cost +=
        cost_model.PlanCost(*rewritten, engine::CardSource::kTrue);
    result.optimized_plans.push_back(std::move(rewritten));
  }

  result.cost_after = producer_cost + consumer_cost;
  result.subexpressions_pushed = views.size();
  result.producer_outputs = std::move(views);
  // If pushing did not pay off (write costs exceeded the sharing), report
  // honestly; callers may choose to keep the original plans.
  return result;
}

}  // namespace ads::learned
