#ifndef ADS_LEARNED_PIPELINE_OPT_H_
#define ADS_LEARNED_PIPELINE_OPT_H_

#include <memory>
#include <vector>

#include "engine/cost.h"
#include "engine/plan.h"
#include "learned/reuse.h"

namespace ads::learned {

/// Outcome of optimizing one pipeline.
struct PipelineOptimizationResult {
  /// Total true cost of running the pipeline's jobs independently.
  double cost_before = 0.0;
  /// Cost after pushing shared subexpressions to the producer: each shared
  /// computation runs once (plus a materialization write), consumers read
  /// the result.
  double cost_after = 0.0;
  /// Common subexpressions pushed to the producer.
  size_t subexpressions_pushed = 0;
  /// The rewritten consumer plans, in input order.
  std::vector<std::unique_ptr<engine::PlanNode>> optimized_plans;
  /// What the producer must additionally materialize.
  std::vector<MaterializedView> producer_outputs;

  double Improvement() const {
    return cost_before <= 0.0 ? 0.0 : 1.0 - cost_after / cost_before;
  }
};

struct PipelineOptimizerOptions {
  /// Cost units to write one byte of a pushed subexpression's output.
  double write_cost_per_byte = 2.0e-6;
  /// Minimum consumers that must share a subexpression before it is pushed.
  size_t min_consumers = 2;
};

/// Pipemizer ([14]): optimizes a recurring pipeline of jobs jointly,
/// collecting pipeline-aware statistics and pushing subexpressions that
/// several consumer jobs compute into their shared producer so they are
/// computed once.
class PipelineOptimizer {
 public:
  explicit PipelineOptimizer(
      PipelineOptimizerOptions options = PipelineOptimizerOptions())
      : options_(options) {}

  /// Optimizes one pipeline given its jobs' (annotated) plans.
  PipelineOptimizationResult Optimize(
      const std::vector<const engine::PlanNode*>& job_plans,
      const engine::CostModel& cost_model) const;

 private:
  PipelineOptimizerOptions options_;
};

}  // namespace ads::learned

#endif  // ADS_LEARNED_PIPELINE_OPT_H_
