#include "learned/reuse.h"

#include <algorithm>

#include "common/logging.h"

namespace ads::learned {

using engine::PlanNode;

void ReuseManager::ObserveJob(uint64_t job_id, const PlanNode& plan,
                              const engine::CostModel& cost_model) {
  ++observed_jobs_;
  plan.Visit([&](const PlanNode& n) {
    if (n.NodeCount() < 2) return;  // bare scans are not worth materializing
    uint64_t sig = n.StrictSignature();
    CandidateState& state = candidates_[sig];
    if (state.stats.job_count == 0) {
      state.stats.strict_signature = sig;
      state.stats.rows = n.true_card;
      state.stats.row_width = n.row_width;
      state.stats.compute_cost =
          cost_model.PlanCost(n, engine::CardSource::kTrue);
      state.stats.node_count = n.NodeCount();
      // Record nested subexpression signatures for subsumption checks.
      n.Visit([&](const PlanNode& inner) {
        if (&inner == &n || inner.NodeCount() < 2) return;
        state.child_signatures.push_back(inner.StrictSignature());
      });
    }
    if (std::find(state.jobs.begin(), state.jobs.end(), job_id) ==
        state.jobs.end()) {
      state.jobs.push_back(job_id);
      state.stats.job_count = state.jobs.size();
    }
  });

  // Containment candidates: Filter-over-Scan templates, widened per
  // instance into an umbrella.
  plan.Visit([&](const PlanNode& n) {
    if (n.op != engine::OpType::kFilter ||
        n.children[0]->op != engine::OpType::kScan) {
      return;
    }
    FilterTemplateState& ft = filter_templates_[n.TemplateSignature()];
    if (ft.jobs.empty()) {
      ft.table = n.children[0]->table;
      ft.table_rows = n.children[0]->table_rows;
      ft.row_width = n.row_width;
      ft.umbrella = n.predicates;
    } else if (ft.valid) {
      if (ft.umbrella.size() != n.predicates.size()) {
        ft.valid = false;
      } else {
        for (size_t i = 0; i < ft.umbrella.size() && ft.valid; ++i) {
          engine::Predicate& u = ft.umbrella[i];
          const engine::Predicate& p = n.predicates[i];
          if (u.column != p.column || u.op != p.op) {
            ft.valid = false;
            break;
          }
          switch (u.op) {
            case engine::CompareOp::kLess:
            case engine::CompareOp::kLessEqual:
              u.value = std::max(u.value, p.value);
              break;
            case engine::CompareOp::kGreater:
            case engine::CompareOp::kGreaterEqual:
              u.value = std::min(u.value, p.value);
              break;
            case engine::CompareOp::kEqual:
              // Equality umbrellas only hold for identical literals.
              if (u.value != p.value) ft.valid = false;
              break;
          }
          u.true_selectivity = std::max(u.true_selectivity,
                                        p.true_selectivity);
        }
      }
    }
    if (std::find(ft.jobs.begin(), ft.jobs.end(), job_id) == ft.jobs.end()) {
      ft.jobs.push_back(job_id);
    }
  });
}

std::vector<MaterializedView> ReuseManager::SelectContainmentViews(
    double budget_bytes, size_t min_jobs) const {
  std::vector<const FilterTemplateState*> ranked;
  for (const auto& [sig, ft] : filter_templates_) {
    (void)sig;
    if (ft.valid && ft.jobs.size() >= min_jobs) ranked.push_back(&ft);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const FilterTemplateState* a, const FilterTemplateState* b) {
              return a->jobs.size() > b->jobs.size();
            });
  std::vector<MaterializedView> out;
  double used = 0.0;
  for (const FilterTemplateState* ft : ranked) {
    double sel = 1.0;
    for (const engine::Predicate& p : ft->umbrella) {
      sel *= p.true_selectivity;
    }
    MaterializedView view;
    view.table = ft->table;
    view.table_rows = ft->table_rows;
    view.predicates = ft->umbrella;
    view.rows = std::max(1.0, ft->table_rows * sel);
    view.row_width = ft->row_width;
    view.name = "cview_" + std::to_string(out.size());
    // Strict signature of the umbrella itself, so instances that EQUAL the
    // umbrella rewrite via the exact path too.
    auto scan = std::make_unique<PlanNode>();
    scan->op = engine::OpType::kScan;
    scan->table = ft->table;
    scan->table_rows = ft->table_rows;
    auto umbrella_node =
        engine::MakeFilter(std::move(scan), ft->umbrella);
    view.strict_signature = umbrella_node->StrictSignature();
    double bytes = view.rows * view.row_width;
    if (used + bytes > budget_bytes) continue;
    used += bytes;
    out.push_back(std::move(view));
  }
  return out;
}

std::vector<ViewCandidate> ReuseManager::Candidates(size_t min_jobs) const {
  std::vector<ViewCandidate> out;
  for (const auto& [sig, state] : candidates_) {
    (void)sig;
    if (state.stats.job_count >= min_jobs) out.push_back(state.stats);
  }
  std::sort(out.begin(), out.end(),
            [](const ViewCandidate& a, const ViewCandidate& b) {
              return a.Utility() > b.Utility();
            });
  return out;
}

std::vector<MaterializedView> ReuseManager::SelectViews(
    double budget_bytes, size_t min_jobs) const {
  // Order by utility per byte (density), greedily pack the budget,
  // skipping candidates nested inside an already-selected view.
  std::vector<const CandidateState*> ranked;
  for (const auto& [sig, state] : candidates_) {
    (void)sig;
    if (state.stats.job_count >= min_jobs && state.stats.Utility() > 0.0) {
      ranked.push_back(&state);
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const CandidateState* a, const CandidateState* b) {
              double da = a->stats.Utility() / std::max(1.0, a->stats.bytes());
              double db = b->stats.Utility() / std::max(1.0, b->stats.bytes());
              return da > db;
            });
  std::vector<MaterializedView> selected;
  std::vector<const CandidateState*> selected_states;
  double used = 0.0;
  for (const CandidateState* c : ranked) {
    if (used + c->stats.bytes() > budget_bytes) continue;
    bool nested = false;
    for (const CandidateState* s : selected_states) {
      if (std::find(s->child_signatures.begin(), s->child_signatures.end(),
                    c->stats.strict_signature) != s->child_signatures.end()) {
        nested = true;
        break;
      }
    }
    if (nested) continue;
    MaterializedView view;
    view.strict_signature = c->stats.strict_signature;
    view.name = "view_" + std::to_string(selected.size());
    view.rows = c->stats.rows;
    view.row_width = c->stats.row_width;
    used += c->stats.bytes();
    selected.push_back(view);
    selected_states.push_back(c);
  }
  return selected;
}

namespace {

std::unique_ptr<PlanNode> RewriteNode(
    const PlanNode& node, const std::vector<MaterializedView>& views,
    size_t* rewrites) {
  uint64_t sig = node.StrictSignature();
  for (const MaterializedView& view : views) {
    if (view.strict_signature == sig) {
      auto scan = std::make_unique<PlanNode>();
      scan->op = engine::OpType::kScan;
      scan->table = view.name;
      scan->table_rows = view.rows;
      scan->row_width = view.row_width;
      scan->true_card = view.rows;
      scan->est_card = view.rows;  // views have exact statistics
      if (rewrites != nullptr) ++*rewrites;
      return scan;
    }
  }
  auto copy = std::make_unique<PlanNode>();
  *copy = PlanNode{};
  copy->op = node.op;
  copy->table = node.table;
  copy->table_rows = node.table_rows;
  copy->predicates = node.predicates;
  copy->columns = node.columns;
  copy->row_width = node.row_width;
  copy->join = node.join;
  copy->agg = node.agg;
  copy->true_card = node.true_card;
  copy->est_card = node.est_card;
  for (const auto& child : node.children) {
    copy->children.push_back(RewriteNode(*child, views, rewrites));
  }
  return copy;
}

/// True if the view's umbrella predicate `v` is implied by query predicate
/// `q` (same column/op, q at least as restrictive).
bool Implies(const engine::Predicate& q, const engine::Predicate& v) {
  if (q.column != v.column || q.op != v.op) return false;
  switch (v.op) {
    case engine::CompareOp::kLess:
    case engine::CompareOp::kLessEqual:
      return q.value <= v.value;
    case engine::CompareOp::kGreater:
    case engine::CompareOp::kGreaterEqual:
      return q.value >= v.value;
    case engine::CompareOp::kEqual:
      return q.value == v.value;
  }
  return false;
}

std::unique_ptr<PlanNode> MakeViewScan(const MaterializedView& view) {
  auto scan = std::make_unique<PlanNode>();
  scan->op = engine::OpType::kScan;
  scan->table = view.name;
  scan->table_rows = view.rows;
  scan->row_width = view.row_width;
  scan->true_card = view.rows;
  scan->est_card = view.rows;
  return scan;
}

std::unique_ptr<PlanNode> RewriteContainmentNode(
    const PlanNode& node, const std::vector<MaterializedView>& views,
    size_t* exact, size_t* contained) {
  uint64_t sig = node.StrictSignature();
  for (const MaterializedView& view : views) {
    if (view.strict_signature == sig) {
      if (exact != nullptr) ++*exact;
      return MakeViewScan(view);
    }
  }
  // Containment: Filter(Scan(T), q) where some view (T, v) has every
  // umbrella predicate implied by a query predicate.
  if (node.op == engine::OpType::kFilter &&
      node.children[0]->op == engine::OpType::kScan) {
    const std::string& table = node.children[0]->table;
    for (const MaterializedView& view : views) {
      if (view.table != table || view.predicates.empty()) continue;
      // Match every view predicate to an implying query predicate.
      std::vector<int> matched_view_pred(node.predicates.size(), -1);
      bool all_implied = true;
      for (size_t vi = 0; vi < view.predicates.size() && all_implied; ++vi) {
        bool found = false;
        for (size_t qi = 0; qi < node.predicates.size(); ++qi) {
          if (matched_view_pred[qi] >= 0) continue;
          if (Implies(node.predicates[qi], view.predicates[vi])) {
            matched_view_pred[qi] = static_cast<int>(vi);
            found = true;
            break;
          }
        }
        all_implied = found;
      }
      if (!all_implied) continue;
      // Residual predicates re-filter the view. For predicates matched to
      // an umbrella predicate, the residual's TRUE selectivity is
      // conditional: q_sel / v_sel (the view already removed the rest).
      std::vector<engine::Predicate> residual;
      for (size_t qi = 0; qi < node.predicates.size(); ++qi) {
        engine::Predicate p = node.predicates[qi];
        if (matched_view_pred[qi] >= 0) {
          const engine::Predicate& v =
              view.predicates[static_cast<size_t>(matched_view_pred[qi])];
          if (p.value == v.value) continue;  // fully answered by the view
          p.true_selectivity =
              std::min(1.0, p.true_selectivity /
                                std::max(1e-12, v.true_selectivity));
        }
        residual.push_back(std::move(p));
      }
      if (contained != nullptr) ++*contained;
      auto scan = MakeViewScan(view);
      if (residual.empty()) return scan;
      auto filter = engine::MakeFilter(std::move(scan), std::move(residual));
      filter->row_width = view.row_width;
      return filter;
    }
  }
  auto copy = std::make_unique<PlanNode>();
  copy->op = node.op;
  copy->table = node.table;
  copy->table_rows = node.table_rows;
  copy->predicates = node.predicates;
  copy->columns = node.columns;
  copy->row_width = node.row_width;
  copy->join = node.join;
  copy->agg = node.agg;
  copy->true_card = node.true_card;
  copy->est_card = node.est_card;
  for (const auto& child : node.children) {
    copy->children.push_back(
        RewriteContainmentNode(*child, views, exact, contained));
  }
  return copy;
}

}  // namespace

std::unique_ptr<PlanNode> ReuseManager::Rewrite(
    const PlanNode& plan, const std::vector<MaterializedView>& views,
    size_t* rewrites) {
  return RewriteNode(plan, views, rewrites);
}

std::unique_ptr<PlanNode> ReuseManager::RewriteWithContainment(
    const PlanNode& plan, const std::vector<MaterializedView>& views,
    size_t* exact, size_t* contained) {
  return RewriteContainmentNode(plan, views, exact, contained);
}

}  // namespace ads::learned
