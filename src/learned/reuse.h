#ifndef ADS_LEARNED_REUSE_H_
#define ADS_LEARNED_REUSE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/cost.h"
#include "engine/plan.h"

namespace ads::learned {

/// A subexpression observed across jobs, keyed by its strict signature
/// (CloudViews' lightweight hash: identical computation, including
/// literals).
struct ViewCandidate {
  uint64_t strict_signature = 0;
  /// Distinct jobs containing the subexpression.
  size_t job_count = 0;
  /// Output of the subexpression (true values from execution).
  double rows = 0.0;
  double row_width = 100.0;
  /// Compute cost of producing it once.
  double compute_cost = 0.0;
  size_t node_count = 0;

  double bytes() const { return rows * row_width; }
  /// Net benefit of materializing: every occurrence after the first reads
  /// the view instead of recomputing.
  double Utility() const {
    return job_count <= 1 ? 0.0
                          : static_cast<double>(job_count - 1) * compute_cost;
  }
};

/// A selected materialized view. Exact (syntactic) views match subtrees by
/// strict signature. CONTAINMENT views additionally describe their
/// definition — Filter(Scan(table), predicates) with umbrella literals — so
/// tighter filter instances can be answered from the view with residual
/// predicates (the paper's "semantically ... contained subexpressions"
/// extension of CloudViews).
struct MaterializedView {
  uint64_t strict_signature = 0;
  std::string name;
  double rows = 0.0;
  double row_width = 100.0;
  /// Containment definition (empty table = exact-match-only view).
  std::string table;
  double table_rows = 0.0;
  std::vector<engine::Predicate> predicates;  // umbrella bounds
};

/// CloudViews ([21, 22, 43]): signature-based detection of common
/// subexpressions across jobs, budgeted materialized-view selection, and
/// plan rewriting that swaps matching subtrees for view scans.
class ReuseManager {
 public:
  /// Ingests one executed (annotated) job plan.
  void ObserveJob(uint64_t job_id, const engine::PlanNode& plan,
                  const engine::CostModel& cost_model);

  /// Candidates appearing in at least `min_jobs` distinct jobs, by
  /// descending utility.
  std::vector<ViewCandidate> Candidates(size_t min_jobs = 2) const;

  /// Greedy utility-density selection under a storage budget. Candidates
  /// nested inside an already-selected candidate are skipped (the larger
  /// view subsumes them).
  std::vector<MaterializedView> SelectViews(double budget_bytes,
                                            size_t min_jobs = 2) const;

  /// Containment views: for recurring Filter(Scan) TEMPLATES (same shape,
  /// varying literals), materializes the umbrella — the widest observed
  /// bound per predicate — so every tighter instance can read the view
  /// with residual predicates. Returns views under the storage budget,
  /// by descending recurrence.
  std::vector<MaterializedView> SelectContainmentViews(
      double budget_bytes, size_t min_jobs = 2) const;

  /// Rewrites a plan against a view set: any subtree whose strict
  /// signature matches a view becomes a scan of that view. Returns the
  /// rewritten plan (true/estimated cards re-annotated on the new scans);
  /// `rewrites` (optional) counts the replacements.
  static std::unique_ptr<engine::PlanNode> Rewrite(
      const engine::PlanNode& plan, const std::vector<MaterializedView>& views,
      size_t* rewrites = nullptr);

  /// Like Rewrite, but additionally serves Filter(Scan) subtrees CONTAINED
  /// in a view's umbrella: the subtree becomes Filter(Scan(view), residual
  /// predicates) with conditional true selectivities, so true cardinality
  /// is preserved. `exact`/`contained` (optional) count the two kinds.
  static std::unique_ptr<engine::PlanNode> RewriteWithContainment(
      const engine::PlanNode& plan, const std::vector<MaterializedView>& views,
      size_t* exact = nullptr, size_t* contained = nullptr);

  size_t observed_jobs() const { return observed_jobs_; }

 private:
  struct CandidateState {
    ViewCandidate stats;
    std::vector<uint64_t> jobs;            // distinct jobs seen (capped)
    std::vector<uint64_t> child_signatures;  // strict sigs of nested subtrees
  };

  /// Per-template (shape, not literals) state of Filter(Scan) subtrees for
  /// umbrella/containment views.
  struct FilterTemplateState {
    std::string table;
    double table_rows = 0.0;
    double row_width = 100.0;
    std::vector<engine::Predicate> umbrella;  // widest bound + max true sel
    std::vector<uint64_t> jobs;
    bool valid = true;  // false if instances disagree structurally
  };

  std::map<uint64_t, CandidateState> candidates_;
  std::map<uint64_t, FilterTemplateState> filter_templates_;
  size_t observed_jobs_ = 0;
};

}  // namespace ads::learned

#endif  // ADS_LEARNED_REUSE_H_
