#include "learned/steering.h"

#include <algorithm>

#include "common/logging.h"

namespace ads::learned {

using engine::RuleConfig;

SteeringController::SteeringController(SteeringOptions options)
    : options_(options) {}

SteeringController::TemplateState& SteeringController::StateFor(
    uint64_t template_sig) {
  auto it = states_.find(template_sig);
  if (it != states_.end()) return it->second;
  TemplateState state;
  state.epsilon = options_.epsilon;
  Arm def;
  def.config = RuleConfig::Default();
  state.arms.push_back(def);
  for (const RuleConfig& n : RuleConfig::Default().Neighbors()) {
    Arm arm;
    arm.config = n;
    state.arms.push_back(arm);
  }
  return states_.emplace(template_sig, std::move(state)).first->second;
}

int SteeringController::ArmIndexOf(const TemplateState& state,
                                   const RuleConfig& config) {
  for (size_t i = 0; i < state.arms.size(); ++i) {
    if (state.arms[i].config == config) return static_cast<int>(i);
  }
  return -1;
}

RuleConfig SteeringController::ChooseConfig(uint64_t template_sig,
                                            common::Rng& rng) {
  TemplateState& state = StateFor(template_sig);
  const Arm& def = state.arms[0];
  double eps = state.epsilon;
  state.epsilon *= options_.epsilon_decay;

  // Until the default arm has a trusted baseline, run the default — never
  // experiment before knowing what "no regression" means.
  if (def.trials < options_.min_trials) return def.config;

  if (rng.Bernoulli(eps)) {
    // Explore a uniformly random non-blacklisted arm.
    std::vector<size_t> open;
    for (size_t i = 0; i < state.arms.size(); ++i) {
      if (!state.arms[i].blacklisted) open.push_back(i);
    }
    size_t pick = open[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(open.size()) - 1))];
    return state.arms[pick].config;
  }
  return BestConfig(template_sig);
}

RuleConfig SteeringController::BestConfig(uint64_t template_sig) const {
  auto it = states_.find(template_sig);
  if (it == states_.end()) return RuleConfig::Default();
  const TemplateState& state = it->second;
  const Arm& def = state.arms[0];
  int best = 0;
  double best_mean = def.mean_runtime;
  for (size_t i = 1; i < state.arms.size(); ++i) {
    const Arm& arm = state.arms[i];
    if (arm.blacklisted || arm.trials < options_.min_trials) continue;
    // Validation threshold: adopt only a clear improvement.
    if (arm.mean_runtime < def.mean_runtime * options_.adoption_ratio &&
        arm.mean_runtime < best_mean) {
      best = static_cast<int>(i);
      best_mean = arm.mean_runtime;
    }
  }
  return state.arms[static_cast<size_t>(best)].config;
}

void SteeringController::ObserveRuntime(uint64_t template_sig,
                                        const RuleConfig& config,
                                        double runtime) {
  TemplateState& state = StateFor(template_sig);
  int idx = ArmIndexOf(state, config);
  if (idx < 0) return;  // a config outside the incremental-step arm set
  Arm& arm = state.arms[static_cast<size_t>(idx)];
  ++arm.trials;
  arm.mean_runtime += (runtime - arm.mean_runtime) /
                      static_cast<double>(arm.trials);
  // Regression guard: condemn arms that run worse than default.
  const Arm& def = state.arms[0];
  if (idx != 0 && !arm.blacklisted && arm.trials >= options_.min_trials &&
      def.trials >= options_.min_trials &&
      arm.mean_runtime > def.mean_runtime * options_.regression_guard_ratio) {
    arm.blacklisted = true;
    ++regressions_prevented_;
  }
}

size_t SteeringController::templates_steered() const {
  size_t n = 0;
  for (const auto& [sig, state] : states_) {
    (void)sig;
    const Arm& def = state.arms[0];
    for (size_t i = 1; i < state.arms.size(); ++i) {
      const Arm& arm = state.arms[i];
      if (!arm.blacklisted && arm.trials >= options_.min_trials &&
          arm.mean_runtime < def.mean_runtime * options_.adoption_ratio) {
        ++n;
        break;
      }
    }
  }
  return n;
}

double SteeringController::DefaultMeanRuntime(uint64_t template_sig) const {
  auto it = states_.find(template_sig);
  if (it == states_.end()) return 0.0;
  return it->second.arms[0].mean_runtime;
}

}  // namespace ads::learned
