#ifndef ADS_LEARNED_STEERING_H_
#define ADS_LEARNED_STEERING_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "engine/rules.h"

namespace ads::learned {

struct SteeringOptions {
  /// Exploration probability and its per-decision decay.
  double epsilon = 0.2;
  double epsilon_decay = 0.999;
  /// Trials of an arm before its mean is trusted for exploitation or
  /// condemnation.
  size_t min_trials = 3;
  /// An arm whose mean runtime exceeds default * this ratio (after
  /// min_trials) is blacklisted — the regression guard.
  double regression_guard_ratio = 1.1;
  /// An arm is only exploited if its mean beats default * this ratio
  /// (the validation threshold before steering away from default).
  double adoption_ratio = 0.95;
};

/// Bao-style query-optimizer steering, with the production adjustments the
/// paper describes ([35, 51]):
///  - steering is limited to SMALL INCREMENTAL STEPS: the candidate arms
///    are the default rule config plus its Hamming-distance-1 neighbors
///    (one rule flipped), keeping decisions interpretable and debuggable;
///  - a contextual-bandit-style explore/exploit loop minimizes
///    pre-production experimentation cost;
///  - a validation guard blacklists any arm that regresses versus the
///    default, and never steers away without evidence of improvement.
class SteeringController {
 public:
  explicit SteeringController(SteeringOptions options = SteeringOptions());

  /// Picks the rule config to run the next instance of this template with.
  engine::RuleConfig ChooseConfig(uint64_t template_sig, common::Rng& rng);

  /// Feeds back the observed runtime of a (template, config) execution.
  void ObserveRuntime(uint64_t template_sig, const engine::RuleConfig& config,
                      double runtime);

  /// The config the controller currently believes best for the template
  /// (pure exploitation).
  engine::RuleConfig BestConfig(uint64_t template_sig) const;

  size_t regressions_prevented() const { return regressions_prevented_; }
  size_t templates_steered() const;
  /// Mean runtime of the default arm for a template (0 if unseen).
  double DefaultMeanRuntime(uint64_t template_sig) const;

 private:
  struct Arm {
    engine::RuleConfig config;
    size_t trials = 0;
    double mean_runtime = 0.0;
    bool blacklisted = false;
  };
  struct TemplateState {
    std::vector<Arm> arms;  // arm 0 is the default config
    double epsilon;
  };

  TemplateState& StateFor(uint64_t template_sig);
  static int ArmIndexOf(const TemplateState& state,
                        const engine::RuleConfig& config);

  SteeringOptions options_;
  std::map<uint64_t, TemplateState> states_;
  size_t regressions_prevented_ = 0;
};

}  // namespace ads::learned

#endif  // ADS_LEARNED_STEERING_H_
