#include "learned/workload_analysis.h"

#include <algorithm>
#include <cmath>

#include "ml/forecast.h"

namespace ads::learned {

using engine::OpType;
using engine::PlanNode;

std::vector<double> NodeFeatures(const PlanNode& node) {
  // Deterministic pre-order collection of predicate literals, plus the
  // total scan volume feeding the subtree. Literals are what vary across
  // recurring runs of one template; scan volume captures data growth.
  std::vector<double> features;
  double scan_rows = 0.0;
  node.Visit([&](const PlanNode& n) {
    if (n.op == OpType::kFilter) {
      for (const engine::Predicate& p : n.predicates) {
        features.push_back(p.value);
      }
    }
    if (n.op == OpType::kScan) scan_rows += n.table_rows;
  });
  features.push_back(std::log1p(scan_rows));
  return features;
}

void WorkloadAnalyzer::ObserveJob(uint64_t job_id, const PlanNode& plan,
                                  double runtime_seconds,
                                  double total_compute) {
  JobObservation job;
  job.job_id = job_id;
  job.strict_signature = plan.StrictSignature();
  job.template_signature = plan.TemplateSignature();
  job.runtime_seconds = runtime_seconds;
  job.total_compute = total_compute;
  jobs_.push_back(job);

  TemplateInfo& info = templates_[job.template_signature];
  info.template_signature = job.template_signature;
  ++info.occurrences;
  info.total_runtime += runtime_seconds;

  // Node-level observations keyed by the node's template signature.
  plan.Visit([&](const PlanNode& n) {
    CardObservation obs;
    obs.features = NodeFeatures(n);
    obs.true_card = n.true_card;
    obs.default_estimate = n.est_card;
    node_observations_[n.TemplateSignature()].push_back(std::move(obs));
  });

  // Subexpression sharing: count distinct jobs per non-trivial strict
  // subexpression, and remember each job's signature set for the
  // fraction query.
  std::vector<uint64_t> sigs;
  plan.Visit([&](const PlanNode& n) {
    if (n.NodeCount() < 2) return;
    sigs.push_back(n.StrictSignature());
  });
  std::sort(sigs.begin(), sigs.end());
  sigs.erase(std::unique(sigs.begin(), sigs.end()), sigs.end());
  for (uint64_t sig : sigs) ++subexpr_job_counts_[sig];
  job_subexprs_.emplace_back(job_id, std::move(sigs));
}

double WorkloadAnalyzer::RecurringJobFraction() const {
  if (jobs_.empty()) return 0.0;
  size_t recurring = 0;
  for (const JobObservation& job : jobs_) {
    auto it = templates_.find(job.template_signature);
    if (it != templates_.end() && it->second.occurrences > 1) ++recurring;
  }
  return static_cast<double>(recurring) / static_cast<double>(jobs_.size());
}

double WorkloadAnalyzer::SharedSubexpressionFraction(size_t min_nodes) const {
  (void)min_nodes;  // the collection filter (NodeCount >= 2) applies
  if (job_subexprs_.empty()) return 0.0;
  size_t sharing = 0;
  for (const auto& [job_id, sigs] : job_subexprs_) {
    (void)job_id;
    for (uint64_t sig : sigs) {
      auto it = subexpr_job_counts_.find(sig);
      if (it != subexpr_job_counts_.end() && it->second >= 2) {
        ++sharing;
        break;
      }
    }
  }
  return static_cast<double>(sharing) /
         static_cast<double>(job_subexprs_.size());
}

std::vector<TemplateInfo> WorkloadAnalyzer::Templates() const {
  std::vector<TemplateInfo> out;
  out.reserve(templates_.size());
  for (const auto& [sig, info] : templates_) out.push_back(info);
  std::sort(out.begin(), out.end(),
            [](const TemplateInfo& a, const TemplateInfo& b) {
              return a.occurrences > b.occurrences;
            });
  return out;
}

void WorkloadAnalyzer::ObserveJobAt(uint64_t job_id, const PlanNode& plan,
                                    double runtime_seconds,
                                    double submit_time_hours,
                                    double total_compute) {
  ObserveJob(job_id, plan, runtime_seconds, total_compute);
  if (submit_time_hours < 0.0) return;
  size_t hour = static_cast<size_t>(submit_time_hours);
  if (hourly_counts_.size() <= hour) hourly_counts_.resize(hour + 1, 0.0);
  hourly_counts_[hour] += 1.0;
}

common::Result<double> WorkloadAnalyzer::ForecastHourlyJobs(
    size_t hours_ahead) const {
  if (hourly_counts_.empty()) {
    return common::Status::FailedPrecondition(
        "no timed observations (use ObserveJobAt)");
  }
  if (hours_ahead == 0) {
    return common::Status::InvalidArgument("hours_ahead must be >= 1");
  }
  if (hourly_counts_.size() >= 3 * 24) {
    ml::SeasonalNaiveForecaster daily(24);
    ADS_RETURN_IF_ERROR(daily.Fit(hourly_counts_));
    return daily.Forecast(hours_ahead);
  }
  ml::EwmaForecaster ewma(0.3);
  ADS_RETURN_IF_ERROR(ewma.Fit(hourly_counts_));
  return ewma.Forecast(hours_ahead);
}

double WorkloadAnalyzer::ForecastRuntime(uint64_t template_signature) const {
  auto it = templates_.find(template_signature);
  if (it == templates_.end()) return 0.0;
  return it->second.mean_runtime();
}

}  // namespace ads::learned
