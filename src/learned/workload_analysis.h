#ifndef ADS_LEARNED_WORKLOAD_ANALYSIS_H_
#define ADS_LEARNED_WORKLOAD_ANALYSIS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/plan.h"

namespace ads::learned {

/// Feature vector for a plan node used by the cardinality/cost micromodels:
/// the predicate literals in the node's subtree in a deterministic order,
/// plus the subtree's scan input volume. Within one template signature the
/// arity is fixed, so per-template models can train on it directly.
std::vector<double> NodeFeatures(const engine::PlanNode& node);

/// One training observation for a node-level micromodel.
struct CardObservation {
  std::vector<double> features;
  double true_card = 0.0;
  double default_estimate = 0.0;
};

/// One observed job execution.
struct JobObservation {
  uint64_t job_id = 0;
  uint64_t strict_signature = 0;
  uint64_t template_signature = 0;
  double runtime_seconds = 0.0;
  double total_compute = 0.0;
};

/// Aggregate information about one recurring template.
struct TemplateInfo {
  uint64_t template_signature = 0;
  size_t occurrences = 0;
  double total_runtime = 0.0;
  double mean_runtime() const {
    return occurrences == 0 ? 0.0
                            : total_runtime / static_cast<double>(occurrences);
  }
};

/// Peregrine-style workload analyzer: ingests executed jobs (plan + runtime
/// statistics), categorizes them into templates by signature, tracks
/// subexpression sharing, and accumulates per-node training data for the
/// learned cardinality/cost components. This is the "combine the dispersed
/// workload data first" step the paper describes.
class WorkloadAnalyzer {
 public:
  /// Records one executed job. The plan must carry true_card annotations
  /// (set by execution) and est_card annotations (set by the optimizer).
  void ObserveJob(uint64_t job_id, const engine::PlanNode& plan,
                  double runtime_seconds, double total_compute = 0.0);

  /// Timed variant: also attributes the job to an hour-of-history bucket
  /// so the analyzer can learn the workload's evolution over time.
  void ObserveJobAt(uint64_t job_id, const engine::PlanNode& plan,
                    double runtime_seconds, double submit_time_hours,
                    double total_compute = 0.0);

  size_t jobs_observed() const { return jobs_.size(); }

  /// Fraction of observed jobs whose template signature occurred more than
  /// once (the paper: >60% of SCOPE jobs are recurring).
  double RecurringJobFraction() const;

  /// Fraction of observed jobs that share at least one non-trivial strict
  /// subexpression (subtree of >= min_nodes nodes) with a DIFFERENT job
  /// (the paper: ~40% of daily jobs share common subexpressions).
  double SharedSubexpressionFraction(size_t min_nodes = 2) const;

  /// Templates sorted by occurrence count, descending.
  std::vector<TemplateInfo> Templates() const;

  /// Per-template-signature node observations for micromodel training.
  const std::map<uint64_t, std::vector<CardObservation>>& node_observations()
      const {
    return node_observations_;
  }

  /// All job observations in arrival order.
  const std::vector<JobObservation>& jobs() const { return jobs_; }

  /// Mean runtime of future occurrences forecast per template: the simple
  /// "learn from the past" predictor (mean of history).
  double ForecastRuntime(uint64_t template_signature) const;

  /// Forecasts the number of job submissions `hours_ahead` hours past the
  /// end of the timed history ("learn the evolving nature of the
  /// historical workloads to forecast future workloads"). Uses a
  /// seasonal-naive daily model once 3 days of timed history exist, EWMA
  /// before that. Fails without timed observations.
  common::Result<double> ForecastHourlyJobs(size_t hours_ahead = 1) const;

  /// Hourly submission counts observed via ObserveJobAt (index = hour).
  const std::vector<double>& hourly_job_counts() const {
    return hourly_counts_;
  }

 private:
  std::vector<JobObservation> jobs_;
  std::map<uint64_t, TemplateInfo> templates_;
  std::map<uint64_t, std::vector<CardObservation>> node_observations_;
  // strict subexpression signature -> number of distinct jobs containing it.
  std::map<uint64_t, size_t> subexpr_job_counts_;
  // per observed job: the distinct subexpression signatures it contains.
  std::vector<std::pair<uint64_t, std::vector<uint64_t>>> job_subexprs_;
  // hourly submission counts (index = floor(submit hour)).
  std::vector<double> hourly_counts_;
};

}  // namespace ads::learned

#endif  // ADS_LEARNED_WORKLOAD_ANALYSIS_H_
