#include "ml/algorithm_store.h"

#include <algorithm>

#include "ml/forest.h"
#include "ml/knn.h"
#include "ml/linear.h"
#include "ml/mlp.h"
#include "ml/tree.h"

namespace ads::ml {

AlgorithmStore AlgorithmStore::Default() {
  AlgorithmStore store;
  ADS_CHECK_OK(store.Register(
      "linear_regression",
      "Ridge/OLS linear regression; the default for telemetry relationships",
      {"regression", "interpretable", "telemetry", "cheap"},
      [] { return std::make_unique<LinearRegressor>(); }));
  ADS_CHECK_OK(store.Register(
      "regression_tree",
      "CART regression tree; interpretable splits for knob/threshold effects",
      {"regression", "interpretable", "nonlinear"},
      [] { return std::make_unique<RegressionTree>(); }));
  ADS_CHECK_OK(store.Register(
      "random_forest",
      "Bagged trees; robust nonlinear regressor for noisy system metrics",
      {"regression", "nonlinear", "robust"},
      [] { return std::make_unique<RandomForestRegressor>(); }));
  ADS_CHECK_OK(store.Register(
      "gradient_boosting",
      "Boosted trees; strongest accuracy/cost ratio for surrogate models",
      {"regression", "nonlinear", "surrogate", "tuning"},
      [] { return std::make_unique<GradientBoostedTrees>(); }));
  ADS_CHECK_OK(store.Register(
      "knn",
      "k-nearest neighbours; match-to-similar for segment transfer",
      {"regression", "segments", "transfer"},
      [] { return std::make_unique<KnnRegressor>(); }));
  ADS_CHECK_OK(store.Register(
      "mlp",
      "Small neural network; for surfaces simple models underfit (costly)",
      {"regression", "nonlinear", "expensive"},
      [] { return std::make_unique<MlpRegressor>(); }));
  return store;
}

common::Status AlgorithmStore::Register(const std::string& name,
                                        const std::string& description,
                                        std::vector<std::string> tags,
                                        RegressorFactory factory) {
  if (entries_.count(name) > 0) {
    return common::Status::AlreadyExists("algorithm already registered: " +
                                         name);
  }
  if (!factory) {
    return common::Status::InvalidArgument("null factory for " + name);
  }
  Entry entry;
  entry.info = {name, description, std::move(tags)};
  entry.factory = std::move(factory);
  entries_[name] = std::move(entry);
  return common::Status::Ok();
}

common::Result<std::unique_ptr<Regressor>> AlgorithmStore::Create(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return common::Status::NotFound("unknown algorithm: " + name);
  }
  return it->second.factory();
}

std::vector<AlgorithmStore::AlgorithmInfo> AlgorithmStore::SearchByTag(
    const std::string& tag) const {
  std::vector<AlgorithmInfo> out;
  for (const auto& [name, entry] : entries_) {
    if (std::find(entry.info.tags.begin(), entry.info.tags.end(), tag) !=
        entry.info.tags.end()) {
      out.push_back(entry.info);
    }
  }
  return out;
}

std::vector<AlgorithmStore::AlgorithmInfo> AlgorithmStore::SearchByKeyword(
    const std::string& keyword) const {
  std::vector<AlgorithmInfo> out;
  for (const auto& [name, entry] : entries_) {
    if (entry.info.name.find(keyword) != std::string::npos ||
        entry.info.description.find(keyword) != std::string::npos) {
      out.push_back(entry.info);
    }
  }
  return out;
}

std::vector<AlgorithmStore::AlgorithmInfo> AlgorithmStore::List() const {
  std::vector<AlgorithmInfo> out;
  for (const auto& [name, entry] : entries_) out.push_back(entry.info);
  return out;
}

}  // namespace ads::ml
