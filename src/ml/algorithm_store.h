#ifndef ADS_ML_ALGORITHM_STORE_H_
#define ADS_ML_ALGORITHM_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/model.h"

namespace ads::ml {

/// The paper's Direction 1 "AlgorithmStore" ("analogous to a GitHub for
/// models"): a searchable catalog of algorithm templates so previously
/// developed solutions can be discovered and adapted to new scenarios.
///
/// Entries are factories (an algorithm, not a trained model) annotated
/// with free-form tags and a description; discovery is by tag or by
/// keyword over name/description.
class AlgorithmStore {
 public:
  using RegressorFactory = std::function<std::unique_ptr<Regressor>()>;

  struct AlgorithmInfo {
    std::string name;
    std::string description;
    std::vector<std::string> tags;
  };

  /// A store preloaded with this library's regressor families, tagged by
  /// the scenarios the paper applies them to.
  static AlgorithmStore Default();

  /// Registers an algorithm. Fails on duplicate names.
  common::Status Register(const std::string& name,
                          const std::string& description,
                          std::vector<std::string> tags,
                          RegressorFactory factory);

  /// Instantiates a registered algorithm by exact name.
  common::Result<std::unique_ptr<Regressor>> Create(
      const std::string& name) const;

  /// All algorithms carrying the tag, sorted by name.
  std::vector<AlgorithmInfo> SearchByTag(const std::string& tag) const;

  /// Case-sensitive substring search over name and description.
  std::vector<AlgorithmInfo> SearchByKeyword(const std::string& keyword) const;

  std::vector<AlgorithmInfo> List() const;
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    AlgorithmInfo info;
    RegressorFactory factory;
  };

  std::map<std::string, Entry> entries_;
};

}  // namespace ads::ml

#endif  // ADS_ML_ALGORITHM_STORE_H_
