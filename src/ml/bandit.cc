#include "ml/bandit.h"

#include <cmath>

#include "common/logging.h"

namespace ads::ml {

EpsilonGreedyBandit::EpsilonGreedyBandit(size_t num_arms, double epsilon,
                                         double decay)
    : epsilon_(epsilon), decay_(decay), means_(num_arms, 0.0),
      counts_(num_arms, 0) {
  ADS_CHECK(num_arms > 0) << "bandit needs at least one arm";
}

size_t EpsilonGreedyBandit::Select(common::Rng& rng) {
  size_t choice;
  if (rng.Bernoulli(epsilon_)) {
    choice = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(means_.size()) - 1));
  } else {
    choice = BestArm();
  }
  epsilon_ *= decay_;
  return choice;
}

size_t EpsilonGreedyBandit::BestArm() const {
  size_t best = 0;
  for (size_t a = 1; a < means_.size(); ++a) {
    if (means_[a] > means_[best]) best = a;
  }
  return best;
}

void EpsilonGreedyBandit::Update(size_t arm, double reward) {
  ADS_CHECK(arm < means_.size()) << "bandit arm out of range";
  ++counts_[arm];
  means_[arm] += (reward - means_[arm]) / static_cast<double>(counts_[arm]);
}

LinUcbBandit::LinUcbBandit(size_t num_arms, size_t context_dim, double alpha,
                           double ridge)
    : context_dim_(context_dim), alpha_(alpha) {
  ADS_CHECK(num_arms > 0) << "bandit needs at least one arm";
  ADS_CHECK(context_dim > 0) << "bandit needs a nonempty context";
  arms_.reserve(num_arms);
  for (size_t i = 0; i < num_arms; ++i) {
    Arm arm;
    arm.a = common::Matrix::Identity(context_dim).Scale(ridge);
    arm.b.assign(context_dim, 0.0);
    arms_.push_back(std::move(arm));
  }
}

double LinUcbBandit::Ucb(const Arm& arm,
                         const std::vector<double>& context) const {
  // theta = A^-1 b; bonus = alpha * sqrt(x^T A^-1 x).
  auto theta = arm.a.CholeskySolve(arm.b);
  ADS_CHECK(theta.ok()) << "LinUCB A matrix not SPD";
  auto ainv_x = arm.a.CholeskySolve(context);
  ADS_CHECK(ainv_x.ok()) << "LinUCB A matrix not SPD";
  double mean = common::Dot(*theta, context);
  double width = std::sqrt(std::max(0.0, common::Dot(context, *ainv_x)));
  return mean + alpha_ * width;
}

size_t LinUcbBandit::Select(const std::vector<double>& context) const {
  ADS_CHECK(context.size() == context_dim_) << "context arity mismatch";
  size_t best = 0;
  double best_ucb = -1e300;
  for (size_t a = 0; a < arms_.size(); ++a) {
    double u = Ucb(arms_[a], context);
    if (u > best_ucb) {
      best_ucb = u;
      best = a;
    }
  }
  return best;
}

double LinUcbBandit::PredictReward(size_t arm,
                                   const std::vector<double>& context) const {
  ADS_CHECK(arm < arms_.size()) << "bandit arm out of range";
  ADS_CHECK(context.size() == context_dim_) << "context arity mismatch";
  auto theta = arms_[arm].a.CholeskySolve(arms_[arm].b);
  ADS_CHECK(theta.ok()) << "LinUCB A matrix not SPD";
  return common::Dot(*theta, context);
}

common::Status LinUcbBandit::Update(size_t arm,
                                    const std::vector<double>& context,
                                    double reward) {
  if (arm >= arms_.size()) {
    return common::Status::OutOfRange("bandit arm out of range");
  }
  if (context.size() != context_dim_) {
    return common::Status::InvalidArgument("context arity mismatch");
  }
  Arm& a = arms_[arm];
  for (size_t i = 0; i < context_dim_; ++i) {
    a.b[i] += reward * context[i];
    for (size_t j = 0; j < context_dim_; ++j) {
      a.a.At(i, j) += context[i] * context[j];
    }
  }
  return common::Status::Ok();
}

}  // namespace ads::ml
