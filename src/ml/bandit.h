#ifndef ADS_ML_BANDIT_H_
#define ADS_ML_BANDIT_H_

#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/status.h"

namespace ads::ml {

/// Epsilon-greedy multi-armed bandit over a fixed arm set. The paper's
/// steering work uses bandits to minimize pre-production experimentation
/// cost when searching rule configurations.
class EpsilonGreedyBandit {
 public:
  /// epsilon: exploration probability; decays by `decay` per selection.
  EpsilonGreedyBandit(size_t num_arms, double epsilon = 0.1,
                      double decay = 1.0);

  /// Picks an arm (explore with prob epsilon, else exploit best mean).
  size_t Select(common::Rng& rng);
  /// Records the observed reward for an arm.
  void Update(size_t arm, double reward);

  size_t num_arms() const { return means_.size(); }
  double mean(size_t arm) const { return means_[arm]; }
  size_t pulls(size_t arm) const { return counts_[arm]; }
  /// Arm with the highest posterior mean (ties to the lowest index).
  size_t BestArm() const;

 private:
  double epsilon_;
  double decay_;
  std::vector<double> means_;
  std::vector<size_t> counts_;
};

/// LinUCB contextual bandit: one ridge model per arm over a shared context,
/// selecting by optimistic upper confidence bound. This is the contextual
/// bandit the paper cites for steering query optimizers with low
/// experimentation cost.
class LinUcbBandit {
 public:
  /// alpha: exploration width; ridge: regularization of per-arm models.
  LinUcbBandit(size_t num_arms, size_t context_dim, double alpha = 1.0,
               double ridge = 1.0);

  /// Picks the arm with the highest UCB for this context.
  size_t Select(const std::vector<double>& context) const;
  /// Point estimate of an arm's reward for a context (no bonus).
  double PredictReward(size_t arm, const std::vector<double>& context) const;
  /// Records the reward observed after playing `arm` in `context`.
  common::Status Update(size_t arm, const std::vector<double>& context,
                        double reward);

  size_t num_arms() const { return arms_.size(); }
  size_t context_dim() const { return context_dim_; }

 private:
  struct Arm {
    common::Matrix a;         // d x d: ridge*I + sum x x^T
    std::vector<double> b;    // d: sum reward * x
  };

  double Ucb(const Arm& arm, const std::vector<double>& context) const;

  size_t context_dim_;
  double alpha_;
  std::vector<Arm> arms_;
};

}  // namespace ads::ml

#endif  // ADS_ML_BANDIT_H_
