#include "ml/dataset.h"

#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace ads::ml {

void Dataset::Add(std::vector<double> features, double label) {
  if (!features_.empty()) {
    ADS_CHECK(features.size() == features_[0].size())
        << "feature arity mismatch: " << features.size() << " vs "
        << features_[0].size();
  }
  features_.push_back(std::move(features));
  labels_.push_back(label);
}

std::pair<Dataset, Dataset> Dataset::Split(double train_fraction,
                                           common::Rng& rng) const {
  std::vector<size_t> idx(size());
  std::iota(idx.begin(), idx.end(), 0);
  rng.Shuffle(idx);
  size_t n_train = static_cast<size_t>(train_fraction *
                                       static_cast<double>(size()));
  Dataset train(feature_names_);
  Dataset test(feature_names_);
  for (size_t i = 0; i < idx.size(); ++i) {
    if (i < n_train) {
      train.Add(features_[idx[i]], labels_[idx[i]]);
    } else {
      test.Add(features_[idx[i]], labels_[idx[i]]);
    }
  }
  return {std::move(train), std::move(test)};
}

Dataset Dataset::Filter(const std::vector<size_t>& indices) const {
  Dataset out(feature_names_);
  for (size_t i : indices) {
    ADS_CHECK(i < size()) << "filter index out of range";
    out.Add(features_[i], labels_[i]);
  }
  return out;
}

common::Status Standardizer::Fit(const Dataset& data) {
  if (data.empty()) {
    return common::Status::InvalidArgument("standardizer fit on empty data");
  }
  size_t d = data.dimensions();
  means_.assign(d, 0.0);
  scales_.assign(d, 1.0);
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t j = 0; j < d; ++j) means_[j] += data.row(i)[j];
  }
  for (size_t j = 0; j < d; ++j) means_[j] /= static_cast<double>(data.size());
  std::vector<double> var(d, 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t j = 0; j < d; ++j) {
      double delta = data.row(i)[j] - means_[j];
      var[j] += delta * delta;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    double s = std::sqrt(var[j] / static_cast<double>(data.size()));
    scales_[j] = s > 1e-12 ? s : 1.0;
  }
  return common::Status::Ok();
}

std::vector<double> Standardizer::Transform(const std::vector<double>& x) const {
  ADS_CHECK(x.size() == means_.size()) << "standardizer arity mismatch";
  std::vector<double> out(x.size());
  for (size_t j = 0; j < x.size(); ++j) {
    out[j] = (x[j] - means_[j]) / scales_[j];
  }
  return out;
}

Dataset Standardizer::TransformAll(const Dataset& data) const {
  Dataset out(data.feature_names());
  for (size_t i = 0; i < data.size(); ++i) {
    out.Add(Transform(data.row(i)), data.label(i));
  }
  return out;
}

}  // namespace ads::ml
