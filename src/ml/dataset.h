#ifndef ADS_ML_DATASET_H_
#define ADS_ML_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace ads::ml {

/// A supervised dataset: rows of numeric features plus one label per row.
/// Feature vectors are dense; all rows must share one arity.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names)
      : feature_names_(std::move(feature_names)) {}

  /// Appends one example. The first row fixes the arity; later rows must
  /// match (checked).
  void Add(std::vector<double> features, double label);

  size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  size_t dimensions() const { return empty() ? 0 : features_[0].size(); }

  const std::vector<double>& row(size_t i) const { return features_[i]; }
  double label(size_t i) const { return labels_[i]; }
  const std::vector<std::vector<double>>& features() const { return features_; }
  const std::vector<double>& labels() const { return labels_; }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  /// Splits into train/test with the given train fraction after a
  /// deterministic shuffle driven by `rng`.
  std::pair<Dataset, Dataset> Split(double train_fraction,
                                    common::Rng& rng) const;

  /// Returns the subset of rows whose index satisfies the predicate.
  Dataset Filter(const std::vector<size_t>& indices) const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<std::vector<double>> features_;
  std::vector<double> labels_;
};

/// Per-feature affine standardization (zero mean, unit variance), fit on a
/// training set and applied to any vector. Constant features pass through.
class Standardizer {
 public:
  /// Learns means and scales from the dataset. Fails on an empty dataset.
  common::Status Fit(const Dataset& data);

  /// Applies the learned transform to one feature vector.
  std::vector<double> Transform(const std::vector<double>& x) const;
  /// Transforms an entire dataset (labels unchanged).
  Dataset TransformAll(const Dataset& data) const;

  bool fitted() const { return !means_.empty(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& scales() const { return scales_; }

  /// Installs precomputed moments (model deserialization).
  void SetMoments(std::vector<double> means, std::vector<double> scales) {
    means_ = std::move(means);
    scales_ = std::move(scales);
  }

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
};

}  // namespace ads::ml

#endif  // ADS_ML_DATASET_H_
