#include "ml/drift.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ads::ml {

common::Result<double> PopulationStabilityIndex(
    const std::vector<double>& reference, const std::vector<double>& current,
    size_t buckets) {
  if (reference.empty() || current.empty()) {
    return common::Status::InvalidArgument("PSI on empty sample");
  }
  if (buckets == 0) {
    return common::Status::InvalidArgument("PSI needs at least one bucket");
  }
  double lo = reference[0];
  double hi = reference[0];
  for (double v : reference) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (double v : current) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) hi = lo + 1.0;  // all-equal degenerate case
  double width = (hi - lo) / static_cast<double>(buckets);

  auto fractions = [&](const std::vector<double>& sample) {
    std::vector<double> f(buckets, 0.0);
    for (double v : sample) {
      size_t b = std::min(buckets - 1,
                          static_cast<size_t>((v - lo) / width));
      f[b] += 1.0;
    }
    for (double& x : f) x /= static_cast<double>(sample.size());
    return f;
  };
  std::vector<double> ref_f = fractions(reference);
  std::vector<double> cur_f = fractions(current);

  constexpr double kFloor = 1e-4;  // standard PSI zero-bucket smoothing
  double psi = 0.0;
  for (size_t b = 0; b < buckets; ++b) {
    double r = std::max(ref_f[b], kFloor);
    double c = std::max(cur_f[b], kFloor);
    psi += (c - r) * std::log(c / r);
  }
  return psi;
}

bool DriftDetector::Observe(double abs_error) {
  if (!std::isfinite(abs_error)) return alarmed_;
  if (baseline_.size() < options_.baseline_window) {
    baseline_.push_back(abs_error);
    return alarmed_;
  }
  recent_.push_back(abs_error);
  if (recent_.size() > options_.recent_window) recent_.pop_front();
  if (recent_.size() == options_.recent_window) {
    double recent = recent_mean();
    double base = std::max(baseline_mean(), options_.min_absolute_error);
    if (recent > options_.degradation_factor * base &&
        recent > options_.min_absolute_error) {
      alarmed_ = true;
    }
  }
  return alarmed_;
}

void DriftDetector::Reset() {
  baseline_.clear();
  recent_.clear();
  alarmed_ = false;
}

double DriftDetector::baseline_mean() const {
  if (baseline_.empty()) return 0.0;
  double s = 0.0;
  for (double v : baseline_) s += v;
  return s / static_cast<double>(baseline_.size());
}

double DriftDetector::recent_mean() const {
  if (recent_.empty()) return 0.0;
  double s = 0.0;
  for (double v : recent_) s += v;
  return s / static_cast<double>(recent_.size());
}

}  // namespace ads::ml
