#ifndef ADS_ML_DRIFT_H_
#define ADS_ML_DRIFT_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "common/status.h"

namespace ads::ml {

/// Population Stability Index between a reference and a current sample over
/// shared equal-width buckets. PSI > 0.2 is the conventional "significant
/// drift" threshold. Returns InvalidArgument on empty inputs.
common::Result<double> PopulationStabilityIndex(
    const std::vector<double>& reference, const std::vector<double>& current,
    size_t buckets = 10);

struct DriftDetectorOptions {
  size_t baseline_window = 50;
  size_t recent_window = 20;
  /// Alarm when recent mean error exceeds baseline mean by this factor.
  double degradation_factor = 2.0;
  /// Minimum absolute error before alarming (guards near-zero baselines).
  double min_absolute_error = 1e-6;
};

/// Online drift detector over a model's prediction errors: compares the
/// rolling recent-window mean against a frozen baseline window. This is the
/// monitoring half of the paper's Insight 3 feedback loop — spot changes in
/// real time, trigger fine-tuning or rollback.
class DriftDetector {
 public:
  using Options = DriftDetectorOptions;

  explicit DriftDetector(Options options = Options()) : options_(options) {}

  /// Feeds one absolute error observation; returns true if the detector is
  /// in the alarmed state after this observation. Non-finite observations
  /// (NaN, +/-inf — a poisoned prediction or a corrupt label) are dropped
  /// without consuming window slots: one bad sensor reading must not
  /// poison the baseline mean or permanently wedge the alarm.
  bool Observe(double abs_error);

  bool alarmed() const { return alarmed_; }
  /// Resets the alarm and re-baselines from scratch (after redeploy).
  void Reset();

  double baseline_mean() const;
  double recent_mean() const;
  bool baseline_ready() const {
    return baseline_.size() >= options_.baseline_window;
  }

 private:
  Options options_;
  std::deque<double> baseline_;
  std::deque<double> recent_;
  bool alarmed_ = false;
};

}  // namespace ads::ml

#endif  // ADS_ML_DRIFT_H_
