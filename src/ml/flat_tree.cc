#include "ml/flat_tree.h"

#include <algorithm>
#include <type_traits>
#include <utility>

#include "common/logging.h"
#include "ml/tree.h"

namespace ads::ml {

void FlatTreeEnsemble::Append(const RegressionTree& tree) {
  ADS_CHECK(tree.fitted()) << "flattening an unfitted tree";
  const std::vector<RegressionTree::Node>& src = tree.nodes();
  nodes_.reserve(nodes_.size() + src.size());
  const int32_t offset = static_cast<int32_t>(nodes_.size());
  roots_.push_back(offset);
  for (size_t i = 0; i < src.size(); ++i) {
    const RegressionTree::Node& n = src[i];
    const int32_t self = offset + static_cast<int32_t>(i);
    // Leaves self-loop so the level-synchronous kernel can run a fixed
    // number of passes: a row parked on a leaf keeps reselecting it.
    nodes_.push_back({n.feature >= 0 ? n.threshold : n.value, n.feature,
                      n.left >= 0 ? n.left + offset : self,
                      n.right >= 0 ? n.right + offset : self});
    if (n.feature >= 0) {
      min_arity_ = std::max(min_arity_, static_cast<size_t>(n.feature) + 1);
    }
  }
  // Deepest root->leaf edge count: the pass count that guarantees every
  // row has parked on a leaf.
  int32_t max_depth = 0;
  std::vector<std::pair<int32_t, int32_t>> walk = {{0, 0}};
  while (!walk.empty()) {
    const auto [id, d] = walk.back();
    walk.pop_back();
    const RegressionTree::Node& n = src[static_cast<size_t>(id)];
    if (n.feature >= 0) {
      walk.emplace_back(n.left, d + 1);
      walk.emplace_back(n.right, d + 1);
    } else {
      max_depth = std::max(max_depth, d);
    }
  }
  depths_.push_back(max_depth);
}

FlatTreeEnsemble FlatTreeEnsemble::FromTree(const RegressionTree& tree) {
  FlatTreeEnsemble flat;
  flat.mode_ = Aggregation::kSingle;
  flat.Append(tree);
  return flat;
}

FlatTreeEnsemble FlatTreeEnsemble::FromForest(
    const std::vector<RegressionTree>& trees) {
  FlatTreeEnsemble flat;
  flat.mode_ = Aggregation::kMean;
  for (const RegressionTree& tree : trees) flat.Append(tree);
  return flat;
}

FlatTreeEnsemble FlatTreeEnsemble::FromBoosted(
    const std::vector<RegressionTree>& trees, double base_prediction,
    double learning_rate) {
  FlatTreeEnsemble flat;
  flat.mode_ = Aggregation::kBoostedSum;
  flat.base_ = base_prediction;
  flat.rate_ = learning_rate;
  for (const RegressionTree& tree : trees) flat.Append(tree);
  return flat;
}

namespace {

/// Leaf value of one flattened tree for one row: the tight traversal loop
/// the single-row predict paths funnel through.
inline double TraverseTree(const FlatTreeEnsemble::Node* nodes, int32_t root,
                           const double* row) {
  int32_t cur = root;
  for (;;) {
    const FlatTreeEnsemble::Node n = nodes[cur];
    if (n.feature < 0) return n.scalar;
    cur = row[n.feature] <= n.scalar ? n.left : n.right;
  }
}

}  // namespace

double FlatTreeEnsemble::AggregateInit() const {
  return mode_ == Aggregation::kBoostedSum ? base_ : 0.0;
}

double FlatTreeEnsemble::Finish(double acc) const {
  return mode_ == Aggregation::kMean
             ? acc / static_cast<double>(roots_.size())
             : acc;
}

namespace {

/// Row-block widths for the level-synchronous kernel, keyed on *per-tree*
/// arena bytes — trees are walked one at a time, so the working set each
/// level pass streams is (one tree's slice + the block's row panel), not
/// the whole ensemble arena. A forest of forty L1-resident trees wants the
/// PR 5 block: 256 rows x 64 B/row of features stays in L1 alongside the
/// tree across all its levels (keying on total arena bytes here cost the
/// forest 40% — the wide block evicted the row panel once per level). A
/// lone deep tree whose slice outgrows L1 wants the opposite: widen the
/// block so each streaming pass over the nodes (the dominant cost once
/// they stop fitting) is shared by more rows — the tree.b1024 regression
/// was this kernel re-streaming a cache-cold arena once per 256 rows.
struct BlockChoice {
  size_t max_tree_bytes;
  size_t rows;
};
constexpr BlockChoice kBlockTable[] = {
    {32u << 10, 256},
    {256u << 10, 512},
    {~size_t{0}, 1024},
};
constexpr size_t kMaxBlockRows = 1024;

/// Prefetch only pays for itself when the tree being walked misses cache:
/// for an L1-resident slice it is one wasted uop per node visit in the
/// hottest loop of the kernel.
constexpr size_t kPrefetchMinTreeBytes = 32u << 10;

/// Single trees below this stay on the early-exit walk: the whole arena
/// fits a handful of L1 sets, so fixed-depth passes and block state would
/// only add instructions. Deeper single trees (the BENCH_p5 depth-10
/// tree packs ~70 KiB) go through the blocked kernel like ensembles.
constexpr size_t kSingleTreeEarlyExitBytes = 4u << 10;

/// Below this many rows a lone deep tree also keeps the early-exit walk:
/// the blocked kernel's fixed-depth passes only pay off once enough rows
/// share each streaming pass over the arena. At small batch sizes the
/// arena is re-read per block anyway, so the extra pass instructions are
/// pure overhead (BENCH_p5 showed 0.6x at b64/b256 before this gate).
constexpr size_t kSingleTreeBlockedMinRows = 512;

}  // namespace

size_t FlatTreeEnsemble::block_rows() const {
  const size_t per_tree =
      arena_bytes() / (roots_.empty() ? size_t{1} : roots_.size());
  for (const BlockChoice& choice : kBlockTable) {
    if (per_tree <= choice.max_tree_bytes) return choice.rows;
  }
  return kMaxBlockRows;
}

double FlatTreeEnsemble::PredictRow(const double* row) const {
  ADS_CHECK(!empty()) << "predict on an empty flat ensemble";
  const Node* nodes = nodes_.data();
  if (mode_ == Aggregation::kSingle) {
    return TraverseTree(nodes, roots_[0], row);
  }
  double acc = AggregateInit();
  for (int32_t root : roots_) {
    double v = TraverseTree(nodes, root, row);
    acc += mode_ == Aggregation::kBoostedSum ? rate_ * v : v;
  }
  return Finish(acc);
}

void FlatTreeEnsemble::PredictRows(const common::Matrix& rows, size_t begin,
                                   size_t end, double* out) const {
  ADS_CHECK(!empty()) << "predict on an empty flat ensemble";
  ADS_CHECK(end <= rows.rows()) << "flat predict range out of bounds";
  ADS_CHECK(rows.cols() >= min_arity_) << "flat predict arity mismatch";
  const Node* nodes = nodes_.data();

  // A small lone tree lives in a handful of L1 sets, where the early-exit
  // walk beats fixed-depth passes; likewise a deep lone tree fed too few
  // rows to amortise a streaming pass. Everything else — ensembles and
  // deep single trees with large batches — takes the blocked kernel.
  const bool single = mode_ == Aggregation::kSingle;
  if (single && (arena_bytes() <= kSingleTreeEarlyExitBytes ||
                 end - begin < kSingleTreeBlockedMinRows)) {
    const int32_t root = roots_[0];
    for (size_t r = begin; r < end; ++r) {
      out[r] = TraverseTree(nodes, root, rows.RowPtr(r));
    }
    return;
  }

  // Row-tiled, level-synchronous: each pass advances every row in the
  // block one tree level through a branchless select, so many independent
  // node loads are in flight per level and the naive loop's per-row
  // variable-depth exit mispredict never happens. The block width comes
  // from kBlockTable so one streaming pass over the arena (the dominant
  // cost once the nodes stop fitting in cache) is shared by as many rows
  // as possible while the block-local row-pointer/cursor/accumulator
  // arrays stay L1-resident — the (row-block x level-slice) working set
  // is what must fit in L2, not the whole arena. As soon as a row's next
  // cursor is known its node is prefetched, so the next level's slice is
  // already in flight while this pass finishes. The leaf each row lands
  // on is exactly the one the one-row-at-a-time walk reaches, and per-row
  // accumulation still runs in tree order, so results are bit-identical
  // to the scalar loop.
  const size_t block_width = block_rows();
  const double* rp[kMaxBlockRows];
  int32_t cur[kMaxBlockRows];
  double acc[kMaxBlockRows];
  const size_t num_trees = roots_.size();
  const bool boosted = mode_ == Aggregation::kBoostedSum;
  for (size_t block = begin; block < end; block += block_width) {
    const size_t n = std::min(block_width, end - block);
    for (size_t i = 0; i < n; ++i) rp[i] = rows.RowPtr(block + i);
    const double init = AggregateInit();
    for (size_t i = 0; i < n; ++i) acc[i] = init;
    for (size_t t = 0; t < num_trees; ++t) {
      const int32_t root = roots_[t];
      const int32_t levels = depths_[t];
      const size_t slice_end =
          t + 1 < num_trees ? static_cast<size_t>(roots_[t + 1]) : nodes_.size();
      const size_t tree_bytes =
          (slice_end - static_cast<size_t>(root)) * sizeof(Node);
      for (size_t i = 0; i < n; ++i) cur[i] = root;
      auto advance_level = [&](auto prefetch) {
        for (size_t i = 0; i < n; ++i) {
          const Node nd = nodes[cur[i]];
          // A leaf reached before the deepest level has feature == -1;
          // clamp the load to column 0 (depth >= 1 implies cols >= 1) and
          // let its self-loop children keep the row parked.
          const int32_t f = nd.feature < 0 ? 0 : nd.feature;
          // Bitwise select, not ?:, so the compiler cannot emit a compare
          // branch — split direction is data-dependent and mispredicts on
          // nearly every visit once query rows stop repeating.
          const int32_t mask = -static_cast<int32_t>(rp[i][f] <= nd.scalar);
          cur[i] = (nd.left & mask) | (nd.right & ~mask);
          if constexpr (prefetch.value) __builtin_prefetch(nodes + cur[i], 0, 3);
        }
      };
      if (tree_bytes > kPrefetchMinTreeBytes) {
        for (int32_t d = 0; d < levels; ++d) advance_level(std::true_type{});
      } else {
        for (int32_t d = 0; d < levels; ++d) advance_level(std::false_type{});
      }
      if (single) {
        for (size_t i = 0; i < n; ++i) out[block + i] = nodes[cur[i]].scalar;
      } else {
        for (size_t i = 0; i < n; ++i) {
          const double v = nodes[cur[i]].scalar;
          acc[i] += boosted ? rate_ * v : v;
        }
      }
    }
    if (!single) {
      for (size_t i = 0; i < n; ++i) out[block + i] = Finish(acc[i]);
    }
  }
}

}  // namespace ads::ml
