#include "ml/flat_tree.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "ml/tree.h"

namespace ads::ml {

void FlatTreeEnsemble::Append(const RegressionTree& tree) {
  ADS_CHECK(tree.fitted()) << "flattening an unfitted tree";
  const std::vector<RegressionTree::Node>& src = tree.nodes();
  nodes_.reserve(nodes_.size() + src.size());
  const int32_t offset = static_cast<int32_t>(nodes_.size());
  roots_.push_back(offset);
  for (size_t i = 0; i < src.size(); ++i) {
    const RegressionTree::Node& n = src[i];
    const int32_t self = offset + static_cast<int32_t>(i);
    // Leaves self-loop so the level-synchronous kernel can run a fixed
    // number of passes: a row parked on a leaf keeps reselecting it.
    nodes_.push_back({n.feature >= 0 ? n.threshold : n.value, n.feature,
                      n.left >= 0 ? n.left + offset : self,
                      n.right >= 0 ? n.right + offset : self});
    if (n.feature >= 0) {
      min_arity_ = std::max(min_arity_, static_cast<size_t>(n.feature) + 1);
    }
  }
  // Deepest root->leaf edge count: the pass count that guarantees every
  // row has parked on a leaf.
  int32_t max_depth = 0;
  std::vector<std::pair<int32_t, int32_t>> walk = {{0, 0}};
  while (!walk.empty()) {
    const auto [id, d] = walk.back();
    walk.pop_back();
    const RegressionTree::Node& n = src[static_cast<size_t>(id)];
    if (n.feature >= 0) {
      walk.emplace_back(n.left, d + 1);
      walk.emplace_back(n.right, d + 1);
    } else {
      max_depth = std::max(max_depth, d);
    }
  }
  depths_.push_back(max_depth);
}

FlatTreeEnsemble FlatTreeEnsemble::FromTree(const RegressionTree& tree) {
  FlatTreeEnsemble flat;
  flat.mode_ = Aggregation::kSingle;
  flat.Append(tree);
  return flat;
}

FlatTreeEnsemble FlatTreeEnsemble::FromForest(
    const std::vector<RegressionTree>& trees) {
  FlatTreeEnsemble flat;
  flat.mode_ = Aggregation::kMean;
  for (const RegressionTree& tree : trees) flat.Append(tree);
  return flat;
}

FlatTreeEnsemble FlatTreeEnsemble::FromBoosted(
    const std::vector<RegressionTree>& trees, double base_prediction,
    double learning_rate) {
  FlatTreeEnsemble flat;
  flat.mode_ = Aggregation::kBoostedSum;
  flat.base_ = base_prediction;
  flat.rate_ = learning_rate;
  for (const RegressionTree& tree : trees) flat.Append(tree);
  return flat;
}

namespace {

/// Leaf value of one flattened tree for one row: the tight traversal loop
/// the single-row predict paths funnel through.
inline double TraverseTree(const FlatTreeEnsemble::Node* nodes, int32_t root,
                           const double* row) {
  int32_t cur = root;
  for (;;) {
    const FlatTreeEnsemble::Node n = nodes[cur];
    if (n.feature < 0) return n.scalar;
    cur = row[n.feature] <= n.scalar ? n.left : n.right;
  }
}

}  // namespace

double FlatTreeEnsemble::AggregateInit() const {
  return mode_ == Aggregation::kBoostedSum ? base_ : 0.0;
}

double FlatTreeEnsemble::Finish(double acc) const {
  return mode_ == Aggregation::kMean
             ? acc / static_cast<double>(roots_.size())
             : acc;
}

double FlatTreeEnsemble::PredictRow(const double* row) const {
  ADS_CHECK(!empty()) << "predict on an empty flat ensemble";
  const Node* nodes = nodes_.data();
  if (mode_ == Aggregation::kSingle) {
    return TraverseTree(nodes, roots_[0], row);
  }
  double acc = AggregateInit();
  for (int32_t root : roots_) {
    double v = TraverseTree(nodes, root, row);
    acc += mode_ == Aggregation::kBoostedSum ? rate_ * v : v;
  }
  return Finish(acc);
}

void FlatTreeEnsemble::PredictRows(const common::Matrix& rows, size_t begin,
                                   size_t end, double* out) const {
  ADS_CHECK(!empty()) << "predict on an empty flat ensemble";
  ADS_CHECK(end <= rows.rows()) << "flat predict range out of bounds";
  ADS_CHECK(rows.cols() >= min_arity_) << "flat predict arity mismatch";
  const Node* nodes = nodes_.data();

  // A lone tree is small enough to live in L1, where the early-exit walk
  // beats fixed-depth passes; the level-synchronous kernel below earns its
  // keep on ensembles, whose node arenas outgrow L1.
  if (mode_ == Aggregation::kSingle) {
    const int32_t root = roots_[0];
    for (size_t r = begin; r < end; ++r) {
      out[r] = TraverseTree(nodes, root, rows.RowPtr(r));
    }
    return;
  }

  // Row-blocked, level-synchronous: each pass advances every row in the
  // block one tree level through a branchless select, so up to kBlock
  // independent node loads are in flight per level and the naive loop's
  // per-row variable-depth exit mispredict never happens. The block is
  // sized so one streaming pass over a tree's nodes (the dominant cost
  // once queries stop fitting in L1) is shared by 256 rows while the
  // block-local row-pointer/cursor/accumulator arrays still sit in L1.
  // The leaf each row lands on is exactly the one the one-row-at-a-time
  // walk reaches, and per-row accumulation still runs in tree order, so
  // results are bit-identical to the scalar loop.
  constexpr size_t kBlock = 256;
  const double* rp[kBlock];
  int32_t cur[kBlock];
  double acc[kBlock];
  const size_t num_trees = roots_.size();
  const bool boosted = mode_ == Aggregation::kBoostedSum;
  for (size_t block = begin; block < end; block += kBlock) {
    const size_t n = std::min(kBlock, end - block);
    for (size_t i = 0; i < n; ++i) rp[i] = rows.RowPtr(block + i);
    const double init = AggregateInit();
    for (size_t i = 0; i < n; ++i) acc[i] = init;
    for (size_t t = 0; t < num_trees; ++t) {
      const int32_t root = roots_[t];
      const int32_t levels = depths_[t];
      for (size_t i = 0; i < n; ++i) cur[i] = root;
      for (int32_t d = 0; d < levels; ++d) {
        for (size_t i = 0; i < n; ++i) {
          const Node nd = nodes[cur[i]];
          // A leaf reached before the deepest level has feature == -1;
          // clamp the load to column 0 (depth >= 1 implies cols >= 1) and
          // let its self-loop children keep the row parked.
          const int32_t f = nd.feature < 0 ? 0 : nd.feature;
          // Bitwise select, not ?:, so the compiler cannot emit a compare
          // branch — split direction is data-dependent and mispredicts on
          // nearly every visit once query rows stop repeating.
          const int32_t mask = -static_cast<int32_t>(rp[i][f] <= nd.scalar);
          cur[i] = (nd.left & mask) | (nd.right & ~mask);
        }
      }
      for (size_t i = 0; i < n; ++i) {
        const double v = nodes[cur[i]].scalar;
        acc[i] += boosted ? rate_ * v : v;
      }
    }
    for (size_t i = 0; i < n; ++i) out[block + i] = Finish(acc[i]);
  }
}

}  // namespace ads::ml
