#ifndef ADS_ML_FLAT_TREE_H_
#define ADS_ML_FLAT_TREE_H_

#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/aligned.h"
#include "common/matrix.h"

namespace ads::ml {

class RegressionTree;

/// Cache-friendly flattening of one or more regression trees into a
/// contiguous arena of packed 24-byte nodes. Everything a visit needs —
/// split scalar, feature, both child indices — sits in one cache line,
/// where a parallel-array layout touches three or four lines for cold
/// nodes and the source RegressionTree::Node weighs 40 bytes. Ensemble
/// inference is memory-bound once query batches stop fitting in L1, so
/// bytes-per-visit is the throughput lever that matters.
///
/// `scalar` is overloaded per node kind: split threshold for internal
/// nodes (feature >= 0), leaf prediction for leaves (feature < 0). Leaves
/// store `right == self`, so a row parked on a leaf self-loops while the
/// level-synchronous kernel finishes the tree's remaining levels.
///
/// Aggregation across trees is chosen at build time and reproduces the
/// scalar predict arithmetic operation-for-operation, so flattened
/// predictions are bit-identical to RegressionTree / forest / GBT
/// Predict():
///   kSingle     — one tree, the leaf value verbatim.
///   kMean       — sum of tree outputs in tree order, divided at the end
///                 (RandomForestRegressor::Predict).
///   kBoostedSum — base + learning_rate * output per tree in tree order
///                 (GradientBoostedTrees::Predict).
class FlatTreeEnsemble {
 public:
  enum class Aggregation { kSingle, kMean, kBoostedSum };

  /// One flattened tree node, 24 bytes packed. Child indices are absolute
  /// positions in the shared arena; leaves self-loop (left == right ==
  /// self) so the level-synchronous kernel can run a fixed pass count.
  struct Node {
    double scalar;    // threshold (split) or value (leaf)
    int32_t feature;  // split feature, or -1 for leaf
    int32_t left;
    int32_t right;
  };
  static_assert(sizeof(Node) <= 24, "flat node outgrew its packing");

  FlatTreeEnsemble() = default;

  static FlatTreeEnsemble FromTree(const RegressionTree& tree);
  static FlatTreeEnsemble FromForest(const std::vector<RegressionTree>& trees);
  static FlatTreeEnsemble FromBoosted(const std::vector<RegressionTree>& trees,
                                      double base_prediction,
                                      double learning_rate);

  bool empty() const { return roots_.empty(); }
  size_t tree_count() const { return roots_.size(); }
  size_t node_count() const { return nodes_.size(); }
  /// Minimum feature arity a row must have (max split feature + 1).
  size_t min_arity() const { return min_arity_; }

  /// Start of the packed node arena — 64-byte aligned (AlignedBuffer), so
  /// the level-0 nodes of every tree start on a fresh cache line and no
  /// load splits lines that a mid-line base would force. Exposed for the
  /// alignment unit test.
  const Node* arena_data() const { return nodes_.data(); }
  size_t arena_bytes() const { return nodes_.size() * sizeof(Node); }

  /// Row-block width the level-synchronous kernel tiles with, picked from
  /// a compile-time table keyed on arena_bytes(): an arena that fits L2
  /// alongside the per-row block state keeps the PR 5 block; bigger arenas
  /// get wider blocks so each streaming pass over the nodes is amortised
  /// over more rows. Exposed so tests can pin the table's behaviour.
  size_t block_rows() const;

  /// Prediction for one contiguous row of at least min_arity() features.
  double PredictRow(const double* row) const;

  /// Writes predictions for rows [begin, end) of `rows` into
  /// out[begin..end). Rows are processed in fixed-size blocks with a
  /// level-synchronous walk per tree: every row in the block advances one
  /// tree level per pass through a branchless select, so the node loads of
  /// independent rows overlap instead of serialising behind one row's
  /// traversal, and the variable-depth exit branch (one mispredict per
  /// row per tree in the naive loop) disappears. Large blocks also
  /// amortise streaming each tree's nodes over many rows. Rows that reach
  /// a leaf early self-loop until the tree's deepest level. Requires
  /// rows.cols() >= min_arity(). Thread-safe: const and touches no shared
  /// scratch, so disjoint ranges may run on pool workers concurrently.
  void PredictRows(const common::Matrix& rows, size_t begin, size_t end,
                   double* out) const;

 private:
  void Append(const RegressionTree& tree);
  double AggregateInit() const;
  double Finish(double acc) const;

  Aggregation mode_ = Aggregation::kMean;
  double base_ = 0.0;
  double rate_ = 1.0;
  size_t min_arity_ = 0;
  common::AlignedBuffer<Node> nodes_;  // all trees, arena order, tree by tree
  std::vector<int32_t> roots_;   // root node index per tree
  std::vector<int32_t> depths_;  // max root->leaf edge count per tree
};

}  // namespace ads::ml

#endif  // ADS_ML_FLAT_TREE_H_
