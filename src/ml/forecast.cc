#include "ml/forecast.h"

#include <cmath>

#include "common/logging.h"
#include "common/stats.h"

namespace ads::ml {

common::Status SeasonalNaiveForecaster::Fit(
    const std::vector<double>& series) {
  if (period_ == 0) {
    return common::Status::InvalidArgument("seasonal naive needs period >= 1");
  }
  if (series.size() < period_) {
    return common::Status::InvalidArgument(
        "seasonal naive needs at least one full period of history");
  }
  history_ = series;
  return common::Status::Ok();
}

double SeasonalNaiveForecaster::Forecast(size_t steps_ahead) const {
  ADS_CHECK(!history_.empty()) << "forecast before fit";
  ADS_CHECK(steps_ahead >= 1) << "steps_ahead must be >= 1";
  // Value at the same phase in the most recent complete season.
  size_t n = history_.size();
  size_t offset = (steps_ahead - 1) % period_;
  size_t base = n - period_ + offset;
  return history_[base];
}

void SeasonalNaiveForecaster::Update(double value) {
  history_.push_back(value);
}

common::Status EwmaForecaster::Fit(const std::vector<double>& series) {
  if (series.empty()) {
    return common::Status::InvalidArgument("ewma fit on empty series");
  }
  level_ = series[0];
  for (size_t i = 1; i < series.size(); ++i) {
    level_ = alpha_ * series[i] + (1.0 - alpha_) * level_;
  }
  fitted_ = true;
  return common::Status::Ok();
}

double EwmaForecaster::Forecast(size_t) const {
  ADS_CHECK(fitted_) << "forecast before fit";
  return level_;
}

void EwmaForecaster::Update(double value) {
  if (!fitted_) {
    level_ = value;
    fitted_ = true;
    return;
  }
  level_ = alpha_ * value + (1.0 - alpha_) * level_;
}

common::Status HoltWintersForecaster::Fit(const std::vector<double>& series) {
  size_t p = options_.period;
  if (p < 2) {
    return common::Status::InvalidArgument("holt-winters needs period >= 2");
  }
  if (series.size() < 2 * p) {
    return common::Status::InvalidArgument(
        "holt-winters needs at least two full periods");
  }
  // Initialize level/trend from the first two seasons.
  double mean1 = 0.0;
  double mean2 = 0.0;
  for (size_t i = 0; i < p; ++i) {
    mean1 += series[i];
    mean2 += series[p + i];
  }
  mean1 /= static_cast<double>(p);
  mean2 /= static_cast<double>(p);
  level_ = mean1;
  trend_ = (mean2 - mean1) / static_cast<double>(p);
  seasonal_.assign(p, 0.0);
  for (size_t i = 0; i < p; ++i) seasonal_[i] = series[i] - mean1;
  phase_ = 0;
  fitted_ = true;
  // Run the smoothing recursions over the whole series.
  for (double v : series) Update(v);
  return common::Status::Ok();
}

void HoltWintersForecaster::Update(double value) {
  ADS_CHECK(fitted_) << "update before fit";
  size_t p = options_.period;
  double season = seasonal_[phase_];
  double prev_level = level_;
  level_ = options_.alpha * (value - season) +
           (1.0 - options_.alpha) * (level_ + trend_);
  trend_ = options_.beta * (level_ - prev_level) +
           (1.0 - options_.beta) * trend_;
  seasonal_[phase_] = options_.gamma * (value - level_) +
                      (1.0 - options_.gamma) * season;
  phase_ = (phase_ + 1) % p;
}

double HoltWintersForecaster::Forecast(size_t steps_ahead) const {
  ADS_CHECK(fitted_) << "forecast before fit";
  ADS_CHECK(steps_ahead >= 1) << "steps_ahead must be >= 1";
  size_t p = options_.period;
  size_t idx = (phase_ + steps_ahead - 1) % p;
  return level_ + static_cast<double>(steps_ahead) * trend_ + seasonal_[idx];
}

common::Result<BacktestReport> Backtest(Forecaster& forecaster,
                                        const std::vector<double>& series,
                                        size_t min_train, size_t horizon) {
  if (min_train + horizon > series.size()) {
    return common::Status::InvalidArgument(
        "backtest needs min_train + horizon <= series length");
  }
  std::vector<double> prefix(series.begin(),
                             series.begin() + static_cast<long>(min_train));
  ADS_RETURN_IF_ERROR(forecaster.Fit(prefix));
  std::vector<double> truth;
  std::vector<double> pred;
  for (size_t t = min_train; t + horizon <= series.size(); ++t) {
    pred.push_back(forecaster.Forecast(horizon));
    truth.push_back(series[t + horizon - 1]);
    forecaster.Update(series[t]);
  }
  BacktestReport report;
  report.mape = common::MeanAbsolutePercentageError(truth, pred);
  report.rmse = common::RootMeanSquaredError(truth, pred);
  report.mae = common::MeanAbsoluteError(truth, pred);
  double mean_abs = 0.0;
  for (double t : truth) mean_abs += std::abs(t);
  mean_abs /= static_cast<double>(truth.size());
  report.wape = mean_abs > 1e-12 ? report.mae / mean_abs : 0.0;
  report.evaluations = truth.size();
  return report;
}

bool IsPredictable(const std::vector<double>& series, size_t period,
                   double mape_threshold) {
  if (series.size() < 3 * period) return false;
  SeasonalNaiveForecaster f(period);
  auto report = Backtest(f, series, 2 * period);
  if (!report.ok()) return false;
  return report->wape <= mape_threshold;
}

}  // namespace ads::ml
