#ifndef ADS_ML_FORECAST_H_
#define ADS_ML_FORECAST_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace ads::ml {

/// Time-series forecaster over a regularly-sampled series. The service
/// layer (Seagull backup windows, Moneyball pause/resume, proactive
/// provisioning) is built on these.
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Fits on the historical series (oldest first).
  virtual common::Status Fit(const std::vector<double>& series) = 0;
  /// Point forecast `steps_ahead` steps past the end of the fitted series
  /// (1 = next step).
  virtual double Forecast(size_t steps_ahead) const = 0;
  /// Appends a newly observed value (online update).
  virtual void Update(double value) = 0;
  virtual std::string TypeName() const = 0;
};

/// Predicts the value observed one season ago. With a daily period this is
/// exactly the paper's "previous day" heuristic that reached 96% accuracy
/// for stable PostgreSQL/MySQL servers.
class SeasonalNaiveForecaster : public Forecaster {
 public:
  explicit SeasonalNaiveForecaster(size_t period) : period_(period) {}

  common::Status Fit(const std::vector<double>& series) override;
  double Forecast(size_t steps_ahead) const override;
  void Update(double value) override;
  std::string TypeName() const override { return "seasonal_naive"; }

 private:
  size_t period_;
  std::vector<double> history_;
};

/// Exponentially weighted moving average (level-only smoothing).
class EwmaForecaster : public Forecaster {
 public:
  explicit EwmaForecaster(double alpha = 0.3) : alpha_(alpha) {}

  common::Status Fit(const std::vector<double>& series) override;
  double Forecast(size_t steps_ahead) const override;
  void Update(double value) override;
  std::string TypeName() const override { return "ewma"; }

 private:
  double alpha_;
  bool fitted_ = false;
  double level_ = 0.0;
};

struct HoltWintersOptions {
  size_t period = 24;
  double alpha = 0.3;  // level
  double beta = 0.05;  // trend
  double gamma = 0.3;  // seasonality
};

/// Additive Holt-Winters (level + trend + seasonal), the default model for
/// strongly diurnal cloud usage traces.
class HoltWintersForecaster : public Forecaster {
 public:
  using Options = HoltWintersOptions;

  explicit HoltWintersForecaster(Options options = Options()) : options_(options) {}

  common::Status Fit(const std::vector<double>& series) override;
  double Forecast(size_t steps_ahead) const override;
  void Update(double value) override;
  std::string TypeName() const override { return "holt_winters"; }

 private:
  Options options_;
  bool fitted_ = false;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::vector<double> seasonal_;
  size_t phase_ = 0;  // index into seasonal_ of the NEXT step
};

/// Rolling-origin backtest result.
struct BacktestReport {
  double mape = 0.0;
  /// Weighted absolute percentage error: MAE / mean(|truth|). Robust to
  /// near-zero points that blow MAPE up (idle hours in usage traces).
  double wape = 0.0;
  double rmse = 0.0;
  double mae = 0.0;
  size_t evaluations = 0;
};

/// Walks the series forward: fits on a growing prefix (starting at
/// `min_train`), forecasts `horizon` steps, scores against actuals.
/// The forecaster is refit once and then updated online per step.
common::Result<BacktestReport> Backtest(Forecaster& forecaster,
                                        const std::vector<double>& series,
                                        size_t min_train, size_t horizon = 1);

/// The paper's Moneyball observation: a trace is "predictable" if a cheap
/// forecaster backtests under the given MAPE threshold.
bool IsPredictable(const std::vector<double>& series, size_t period,
                   double mape_threshold = 0.25);

}  // namespace ads::ml

#endif  // ADS_ML_FORECAST_H_
