#include "ml/forest.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace ads::ml {

common::Status RandomForestRegressor::Fit(const Dataset& data) {
  if (data.empty()) {
    return common::Status::InvalidArgument("forest fit on empty data");
  }
  trees_.clear();
  size_t d = data.dimensions();
  size_t per_split = options_.features_per_split;
  if (per_split == 0) {
    per_split = std::max<size_t>(
        1, static_cast<size_t>(std::sqrt(static_cast<double>(d))));
  }
  size_t sample_n = std::max<size_t>(
      1, static_cast<size_t>(options_.sample_fraction *
                             static_cast<double>(data.size())));
  // Each tree trains from its own Rng seeded off the run seed, so the
  // result is a pure function of (seed, tree index): training with 0, 1,
  // or N workers produces bit-identical forests.
  common::Rng root(options_.seed);
  std::vector<uint64_t> tree_seeds(options_.num_trees);
  for (auto& s : tree_seeds) s = root.engine()();

  std::vector<RegressionTree> trees(options_.num_trees);
  std::vector<common::Status> statuses(options_.num_trees);
  common::ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : common::ThreadPool::Global();
  pool.ParallelFor(
      0, options_.num_trees, 1, [&](size_t chunk_begin, size_t chunk_end) {
        for (size_t t = chunk_begin; t < chunk_end; ++t) {
          common::Rng rng(tree_seeds[t]);
          std::vector<size_t> bootstrap(sample_n);
          for (auto& i : bootstrap) {
            i = static_cast<size_t>(
                rng.UniformInt(0, static_cast<int64_t>(data.size()) - 1));
          }
          Dataset sample = data.Filter(bootstrap);
          RegressionTree::Options topt;
          topt.max_depth = options_.max_depth;
          topt.min_samples_leaf = options_.min_samples_leaf;
          topt.features_per_split = per_split;
          topt.seed = rng.engine()();
          RegressionTree tree(topt);
          statuses[t] = tree.Fit(sample);
          if (statuses[t].ok()) trees[t] = std::move(tree);
        }
      });
  for (const auto& s : statuses) {
    ADS_RETURN_IF_ERROR(s);
  }
  trees_ = std::move(trees);
  flat_ = FlatTreeEnsemble::FromForest(trees_);
  return common::Status::Ok();
}

void RandomForestRegressor::SetTrees(std::vector<RegressionTree> trees) {
  trees_ = std::move(trees);
  flat_ = trees_.empty() ? FlatTreeEnsemble()
                         : FlatTreeEnsemble::FromForest(trees_);
}

double RandomForestRegressor::Predict(
    const std::vector<double>& features) const {
  ADS_CHECK(fitted()) << "predict on unfitted forest";
  double s = 0.0;
  for (const auto& t : trees_) s += t.Predict(features);
  return s / static_cast<double>(trees_.size());
}

void RandomForestRegressor::PredictBatchRange(const common::Matrix& rows,
                                              size_t begin, size_t end,
                                              double* out) const {
  ADS_CHECK(fitted()) << "predict on unfitted forest";
  flat_.PredictRows(rows, begin, end, out);
}

double RandomForestRegressor::InferenceCost() const {
  double c = 0.0;
  for (const auto& t : trees_) c += t.InferenceCost();
  return c;
}

std::string RandomForestRegressor::Serialize() const {
  std::ostringstream os;
  os << "forest\n" << trees_.size() << "\n";
  for (const auto& t : trees_) os << t.Serialize();
  return os.str();
}

common::Result<RandomForestRegressor> RandomForestRegressor::Deserialize(
    const std::string& body) {
  std::istringstream is(body);
  size_t count = 0;
  if (!(is >> count)) {
    return common::Status::InvalidArgument("bad forest blob");
  }
  std::string rest;
  std::getline(is, rest);  // consume end of count line
  std::vector<RegressionTree> trees;
  for (size_t t = 0; t < count; ++t) {
    std::string tag;
    if (!std::getline(is, tag) || tag != "tree") {
      return common::Status::InvalidArgument("forest blob missing tree tag");
    }
    // Tree body: node count line + that many node lines.
    std::string count_line;
    if (!std::getline(is, count_line)) {
      return common::Status::InvalidArgument("truncated forest blob");
    }
    size_t node_count = std::strtoull(count_line.c_str(), nullptr, 10);
    std::ostringstream tree_body;
    tree_body << count_line << "\n";
    for (size_t i = 0; i < node_count; ++i) {
      std::string line;
      if (!std::getline(is, line)) {
        return common::Status::InvalidArgument("truncated forest blob");
      }
      tree_body << line << "\n";
    }
    auto tree = RegressionTree::Deserialize(tree_body.str());
    if (!tree.ok()) return tree.status();
    trees.push_back(std::move(tree).value());
  }
  RandomForestRegressor forest;
  forest.SetTrees(std::move(trees));
  return forest;
}

common::Status GradientBoostedTrees::Fit(const Dataset& data) {
  if (data.empty()) {
    return common::Status::InvalidArgument("gbt fit on empty data");
  }
  trees_.clear();
  base_prediction_ = 0.0;
  for (size_t i = 0; i < data.size(); ++i) base_prediction_ += data.label(i);
  base_prediction_ /= static_cast<double>(data.size());

  std::vector<double> current(data.size(), base_prediction_);
  common::Rng rng(options_.seed);
  for (size_t round = 0; round < options_.num_rounds; ++round) {
    // Fit a tree to the residuals.
    Dataset residuals(data.feature_names());
    for (size_t i = 0; i < data.size(); ++i) {
      residuals.Add(data.row(i), data.label(i) - current[i]);
    }
    RegressionTree::Options topt;
    topt.max_depth = options_.max_depth;
    topt.min_samples_leaf = options_.min_samples_leaf;
    topt.seed = rng.engine()();
    RegressionTree tree(topt);
    ADS_RETURN_IF_ERROR(tree.Fit(residuals));
    for (size_t i = 0; i < data.size(); ++i) {
      current[i] += options_.learning_rate * tree.Predict(data.row(i));
    }
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
  flat_ = FlatTreeEnsemble::FromBoosted(trees_, base_prediction_,
                                        options_.learning_rate);
  return common::Status::Ok();
}

double GradientBoostedTrees::Predict(
    const std::vector<double>& features) const {
  ADS_CHECK(fitted_) << "predict on unfitted gbt";
  double y = base_prediction_;
  for (const auto& t : trees_) {
    y += options_.learning_rate * t.Predict(features);
  }
  return y;
}

void GradientBoostedTrees::PredictBatchRange(const common::Matrix& rows,
                                             size_t begin, size_t end,
                                             double* out) const {
  ADS_CHECK(fitted_) << "predict on unfitted gbt";
  if (trees_.empty()) {
    // Zero boosting rounds: the model is the constant base prediction.
    for (size_t r = begin; r < end; ++r) out[r] = base_prediction_;
    return;
  }
  flat_.PredictRows(rows, begin, end, out);
}

double GradientBoostedTrees::InferenceCost() const {
  double c = 1.0;
  for (const auto& t : trees_) c += t.InferenceCost();
  return c;
}

void GradientBoostedTrees::SetModel(double base, double learning_rate,
                                    std::vector<RegressionTree> trees) {
  base_prediction_ = base;
  options_.learning_rate = learning_rate;
  trees_ = std::move(trees);
  fitted_ = true;
  flat_ = FlatTreeEnsemble::FromBoosted(trees_, base_prediction_,
                                        options_.learning_rate);
}

std::string GradientBoostedTrees::Serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "gbt\n" << base_prediction_ << " " << options_.learning_rate << " "
     << trees_.size() << "\n";
  for (const auto& t : trees_) os << t.Serialize();
  return os.str();
}

common::Result<GradientBoostedTrees> GradientBoostedTrees::Deserialize(
    const std::string& body) {
  std::istringstream is(body);
  double base = 0.0;
  double lr = 0.0;
  size_t count = 0;
  if (!(is >> base >> lr >> count)) {
    return common::Status::InvalidArgument("bad gbt blob");
  }
  std::string rest;
  std::getline(is, rest);
  std::vector<RegressionTree> trees;
  for (size_t t = 0; t < count; ++t) {
    std::string tag;
    if (!std::getline(is, tag) || tag != "tree") {
      return common::Status::InvalidArgument("gbt blob missing tree tag");
    }
    std::string count_line;
    if (!std::getline(is, count_line)) {
      return common::Status::InvalidArgument("truncated gbt blob");
    }
    size_t node_count = std::strtoull(count_line.c_str(), nullptr, 10);
    std::ostringstream tree_body;
    tree_body << count_line << "\n";
    for (size_t i = 0; i < node_count; ++i) {
      std::string line;
      if (!std::getline(is, line)) {
        return common::Status::InvalidArgument("truncated gbt blob");
      }
      tree_body << line << "\n";
    }
    auto tree = RegressionTree::Deserialize(tree_body.str());
    if (!tree.ok()) return tree.status();
    trees.push_back(std::move(tree).value());
  }
  GradientBoostedTrees gbt;
  gbt.SetModel(base, lr, std::move(trees));
  return gbt;
}

}  // namespace ads::ml
