#ifndef ADS_ML_FOREST_H_
#define ADS_ML_FOREST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/tree.h"

namespace ads::common {
class ThreadPool;
}  // namespace ads::common

namespace ads::ml {

struct RandomForestOptions {
  size_t num_trees = 30;
  int max_depth = 8;
  size_t min_samples_leaf = 3;
  /// Fraction of rows bootstrapped per tree.
  double sample_fraction = 0.8;
  /// Features considered per split; 0 = sqrt(d).
  size_t features_per_split = 0;
  uint64_t seed = 1;
  /// Pool used for per-tree training; null = ThreadPool::Global(). Each
  /// tree trains from a seed derived solely from `seed` and its index, so
  /// the fitted forest is bit-identical for any pool size (tests pass
  /// &ThreadPool::Serial() to force single-threaded execution).
  common::ThreadPool* pool = nullptr;
};

/// Bagged random forest of regression trees.
class RandomForestRegressor : public Regressor {
 public:
  using Options = RandomForestOptions;

  explicit RandomForestRegressor(Options options = Options()) : options_(options) {}

  common::Status Fit(const Dataset& data) override;
  double Predict(const std::vector<double>& features) const override;
  /// Batched kernel over the flattened SoA ensemble; bit-identical to
  /// Predict per row (same tree-order accumulation, same final divide).
  void PredictBatchRange(const common::Matrix& rows, size_t begin, size_t end,
                         double* out) const override;
  std::string TypeName() const override { return "forest"; }
  std::string Serialize() const override;
  double InferenceCost() const override;

  static common::Result<RandomForestRegressor> Deserialize(
      const std::string& body);

  bool fitted() const { return !trees_.empty(); }
  size_t tree_count() const { return trees_.size(); }
  void SetTrees(std::vector<RegressionTree> trees);

 private:
  Options options_;
  std::vector<RegressionTree> trees_;
  FlatTreeEnsemble flat_;
};

struct GradientBoostedTreesOptions {
  size_t num_rounds = 50;
  double learning_rate = 0.1;
  int max_depth = 4;
  size_t min_samples_leaf = 3;
  uint64_t seed = 1;
};

/// Gradient-boosted regression trees with squared loss.
class GradientBoostedTrees : public Regressor {
 public:
  using Options = GradientBoostedTreesOptions;

  explicit GradientBoostedTrees(Options options = Options()) : options_(options) {}

  common::Status Fit(const Dataset& data) override;
  double Predict(const std::vector<double>& features) const override;
  /// Batched kernel over the flattened SoA ensemble; bit-identical to
  /// Predict per row (base + learning_rate * tree output in round order).
  void PredictBatchRange(const common::Matrix& rows, size_t begin, size_t end,
                         double* out) const override;
  std::string TypeName() const override { return "gbt"; }
  std::string Serialize() const override;
  double InferenceCost() const override;

  static common::Result<GradientBoostedTrees> Deserialize(
      const std::string& body);

  bool fitted() const { return fitted_; }
  size_t tree_count() const { return trees_.size(); }
  void SetModel(double base, double learning_rate,
                std::vector<RegressionTree> trees);

 private:
  Options options_;
  bool fitted_ = false;
  double base_prediction_ = 0.0;
  std::vector<RegressionTree> trees_;
  FlatTreeEnsemble flat_;
};

}  // namespace ads::ml

#endif  // ADS_ML_FOREST_H_
