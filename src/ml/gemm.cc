// Register-blocked dense-layer microkernels. This TU is compiled with
// -ffp-contract=off (see src/ml/CMakeLists.txt): the bit-identity contract
// in gemm.h forbids fusing mul+add into FMA, in the reference loop and in
// the intrinsic tiers alike — contraction rounds once where the scalar
// Predict walk rounds twice.

#include "ml/gemm.h"

#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#define ADS_GEMM_X86 1
#include <immintrin.h>
#endif

namespace ads::ml {

namespace {

void PackTileScalar(const common::Matrix& rows, size_t begin, size_t n,
                    size_t i0, double* x_t) {
  const size_t d = rows.cols();
  for (size_t i = i0; i < n; ++i) {
    const double* src = rows.RowPtr(begin + i);
    for (size_t j = 0; j < d; ++j) x_t[j * n + i] = src[j];
  }
}

void PackStandardizedTileScalar(const common::Matrix& rows, size_t begin,
                                size_t n, size_t i0, const double* means,
                                const double* scales, double* x_t) {
  const size_t d = rows.cols();
  for (size_t i = i0; i < n; ++i) {
    const double* src = rows.RowPtr(begin + i);
    for (size_t j = 0; j < d; ++j) {
      x_t[j * n + i] = (src[j] - means[j]) / scales[j];
    }
  }
}

#if defined(ADS_GEMM_X86)

/// 4x4 double block transpose: four row fragments in, four feature-column
/// fragments out. Data movement only — lane order never touches a rounding.
__attribute__((target("avx2"))) inline void Transpose4x4(
    const double* r0, const double* r1, const double* r2, const double* r3,
    __m256d* c0, __m256d* c1, __m256d* c2, __m256d* c3) {
  const __m256d a = _mm256_loadu_pd(r0);
  const __m256d b = _mm256_loadu_pd(r1);
  const __m256d c = _mm256_loadu_pd(r2);
  const __m256d e = _mm256_loadu_pd(r3);
  const __m256d lo_ab = _mm256_unpacklo_pd(a, b);
  const __m256d hi_ab = _mm256_unpackhi_pd(a, b);
  const __m256d lo_ce = _mm256_unpacklo_pd(c, e);
  const __m256d hi_ce = _mm256_unpackhi_pd(c, e);
  *c0 = _mm256_permute2f128_pd(lo_ab, lo_ce, 0x20);
  *c1 = _mm256_permute2f128_pd(hi_ab, hi_ce, 0x20);
  *c2 = _mm256_permute2f128_pd(lo_ab, lo_ce, 0x31);
  *c3 = _mm256_permute2f128_pd(hi_ab, hi_ce, 0x31);
}

__attribute__((target("avx2"))) void PackTileAvx2(const common::Matrix& rows,
                                                  size_t begin, size_t n,
                                                  double* x_t) {
  const size_t d = rows.cols();
  const size_t d4 = d / 4 * 4;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* r0 = rows.RowPtr(begin + i);
    const double* r1 = rows.RowPtr(begin + i + 1);
    const double* r2 = rows.RowPtr(begin + i + 2);
    const double* r3 = rows.RowPtr(begin + i + 3);
    for (size_t j = 0; j < d4; j += 4) {
      __m256d c0, c1, c2, c3;
      Transpose4x4(r0 + j, r1 + j, r2 + j, r3 + j, &c0, &c1, &c2, &c3);
      _mm256_storeu_pd(x_t + (j + 0) * n + i, c0);
      _mm256_storeu_pd(x_t + (j + 1) * n + i, c1);
      _mm256_storeu_pd(x_t + (j + 2) * n + i, c2);
      _mm256_storeu_pd(x_t + (j + 3) * n + i, c3);
    }
    for (size_t j = d4; j < d; ++j) {
      x_t[j * n + i] = r0[j];
      x_t[j * n + i + 1] = r1[j];
      x_t[j * n + i + 2] = r2[j];
      x_t[j * n + i + 3] = r3[j];
    }
  }
  PackTileScalar(rows, begin, n, i, x_t);
}

__attribute__((target("avx2"))) void PackStandardizedTileAvx2(
    const common::Matrix& rows, size_t begin, size_t n, const double* means,
    const double* scales, double* x_t) {
  const size_t d = rows.cols();
  const size_t d4 = d / 4 * 4;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* r0 = rows.RowPtr(begin + i);
    const double* r1 = rows.RowPtr(begin + i + 1);
    const double* r2 = rows.RowPtr(begin + i + 2);
    const double* r3 = rows.RowPtr(begin + i + 3);
    for (size_t j = 0; j < d4; j += 4) {
      __m256d c0, c1, c2, c3;
      Transpose4x4(r0 + j, r1 + j, r2 + j, r3 + j, &c0, &c1, &c2, &c3);
      // After the transpose every lane of ck holds feature j+k of one row:
      // one broadcast sub and one broadcast div per value, the exact
      // Standardizer::Transform arithmetic.
      c0 = _mm256_div_pd(_mm256_sub_pd(c0, _mm256_set1_pd(means[j + 0])),
                         _mm256_set1_pd(scales[j + 0]));
      c1 = _mm256_div_pd(_mm256_sub_pd(c1, _mm256_set1_pd(means[j + 1])),
                         _mm256_set1_pd(scales[j + 1]));
      c2 = _mm256_div_pd(_mm256_sub_pd(c2, _mm256_set1_pd(means[j + 2])),
                         _mm256_set1_pd(scales[j + 2]));
      c3 = _mm256_div_pd(_mm256_sub_pd(c3, _mm256_set1_pd(means[j + 3])),
                         _mm256_set1_pd(scales[j + 3]));
      _mm256_storeu_pd(x_t + (j + 0) * n + i, c0);
      _mm256_storeu_pd(x_t + (j + 1) * n + i, c1);
      _mm256_storeu_pd(x_t + (j + 2) * n + i, c2);
      _mm256_storeu_pd(x_t + (j + 3) * n + i, c3);
    }
    for (size_t j = d4; j < d; ++j) {
      x_t[j * n + i] = (r0[j] - means[j]) / scales[j];
      x_t[j * n + i + 1] = (r1[j] - means[j]) / scales[j];
      x_t[j * n + i + 2] = (r2[j] - means[j]) / scales[j];
      x_t[j * n + i + 3] = (r3[j] - means[j]) / scales[j];
    }
  }
  PackStandardizedTileScalar(rows, begin, n, i, means, scales, x_t);
}

#endif  // ADS_GEMM_X86

}  // namespace

void PackTileT(common::SimdLevel level, const common::Matrix& rows,
               size_t begin, size_t n, double* x_t) {
#if defined(ADS_GEMM_X86)
  if (level == common::SimdLevel::kAvx2) {
    PackTileAvx2(rows, begin, n, x_t);
    return;
  }
#endif
  (void)level;
  PackTileScalar(rows, begin, n, 0, x_t);
}

void PackStandardizedTileT(common::SimdLevel level, const common::Matrix& rows,
                           size_t begin, size_t n, const double* means,
                           const double* scales, double* x_t) {
#if defined(ADS_GEMM_X86)
  if (level == common::SimdLevel::kAvx2) {
    PackStandardizedTileAvx2(rows, begin, n, means, scales, x_t);
    return;
  }
#endif
  (void)level;
  PackStandardizedTileScalar(rows, begin, n, 0, means, scales, x_t);
}

namespace {

/// Reference tier. Rows innermost over contiguous tile panels with a
/// broadcast weight, so -O2's autovectorizer turns the accumulate loop
/// into whatever the build target offers without changing per-row
/// rounding order (lanes are whole rows).
void ForwardScalar(const double* x_t, size_t n, size_t in_dim,
                   const double* w, const double* bias, size_t out_dim,
                   double* out_t) {
  for (size_t o = 0; o < out_dim; ++o) {
    double* z = out_t + o * n;
    const double b = bias[o];
    for (size_t r = 0; r < n; ++r) z[r] = b;
    const double* wo = w + o * in_dim;
    for (size_t in = 0; in < in_dim; ++in) {
      const double wv = wo[in];
      const double* x = x_t + in * n;
      for (size_t r = 0; r < n; ++r) z[r] += wv * x[r];
    }
  }
}

#if defined(ADS_GEMM_X86)

/// One output row, vector-width rows per iteration, scalar row tail.
/// Shared shape for both intrinsic tiers' out_dim % 4 remainder.
template <typename Kernel1>
void ForwardTail(Kernel1 kernel1, const double* x_t, size_t n, size_t in_dim,
                 const double* w, const double* bias, size_t o_begin,
                 size_t out_dim, double* out_t) {
  for (size_t o = o_begin; o < out_dim; ++o) {
    kernel1(x_t, n, in_dim, w + o * in_dim, bias[o], out_t + o * n);
  }
}

/// SSE tier: 2-wide double lanes, blocked 4 outputs x 4 rows (8 xmm
/// accumulators, each x-panel load shared by four weight broadcasts).
/// Baseline x86-64 already carries SSE2, so no target attribute is needed;
/// the kSse dispatch tier is still gated on detected SSE4.2.
void Forward1Sse(const double* x_t, size_t n, size_t in_dim, const double* wo,
                 double b, double* z) {
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    __m128d a0 = _mm_set1_pd(b);
    __m128d a1 = _mm_set1_pd(b);
    for (size_t in = 0; in < in_dim; ++in) {
      const __m128d wv = _mm_set1_pd(wo[in]);
      const double* x = x_t + in * n + r;
      a0 = _mm_add_pd(a0, _mm_mul_pd(wv, _mm_loadu_pd(x)));
      a1 = _mm_add_pd(a1, _mm_mul_pd(wv, _mm_loadu_pd(x + 2)));
    }
    _mm_storeu_pd(z + r, a0);
    _mm_storeu_pd(z + r + 2, a1);
  }
  for (; r < n; ++r) {
    double acc = b;
    for (size_t in = 0; in < in_dim; ++in) acc += wo[in] * x_t[in * n + r];
    z[r] = acc;
  }
}

void ForwardSse(const double* x_t, size_t n, size_t in_dim, const double* w,
                const double* bias, size_t out_dim, double* out_t) {
  size_t o = 0;
  for (; o + 4 <= out_dim; o += 4) {
    const double* w0 = w + (o + 0) * in_dim;
    const double* w1 = w + (o + 1) * in_dim;
    const double* w2 = w + (o + 2) * in_dim;
    const double* w3 = w + (o + 3) * in_dim;
    double* z0 = out_t + (o + 0) * n;
    double* z1 = out_t + (o + 1) * n;
    double* z2 = out_t + (o + 2) * n;
    double* z3 = out_t + (o + 3) * n;
    size_t r = 0;
    for (; r + 2 <= n; r += 2) {
      __m128d a0 = _mm_set1_pd(bias[o + 0]);
      __m128d a1 = _mm_set1_pd(bias[o + 1]);
      __m128d a2 = _mm_set1_pd(bias[o + 2]);
      __m128d a3 = _mm_set1_pd(bias[o + 3]);
      for (size_t in = 0; in < in_dim; ++in) {
        const __m128d xv = _mm_loadu_pd(x_t + in * n + r);
        a0 = _mm_add_pd(a0, _mm_mul_pd(_mm_set1_pd(w0[in]), xv));
        a1 = _mm_add_pd(a1, _mm_mul_pd(_mm_set1_pd(w1[in]), xv));
        a2 = _mm_add_pd(a2, _mm_mul_pd(_mm_set1_pd(w2[in]), xv));
        a3 = _mm_add_pd(a3, _mm_mul_pd(_mm_set1_pd(w3[in]), xv));
      }
      _mm_storeu_pd(z0 + r, a0);
      _mm_storeu_pd(z1 + r, a1);
      _mm_storeu_pd(z2 + r, a2);
      _mm_storeu_pd(z3 + r, a3);
    }
    for (; r < n; ++r) {
      double acc0 = bias[o + 0], acc1 = bias[o + 1];
      double acc2 = bias[o + 2], acc3 = bias[o + 3];
      for (size_t in = 0; in < in_dim; ++in) {
        const double xv = x_t[in * n + r];
        acc0 += w0[in] * xv;
        acc1 += w1[in] * xv;
        acc2 += w2[in] * xv;
        acc3 += w3[in] * xv;
      }
      z0[r] = acc0;
      z1[r] = acc1;
      z2[r] = acc2;
      z3[r] = acc3;
    }
  }
  ForwardTail(Forward1Sse, x_t, n, in_dim, w, bias, o, out_dim, out_t);
}

/// AVX2 tier: 4-wide double lanes, blocked 4 outputs x 8 rows — eight ymm
/// accumulators give eight independent add chains (hiding FP add latency)
/// while each pair of x-panel loads feeds all four output broadcasts.
__attribute__((target("avx2"))) void Forward1Avx2(const double* x_t, size_t n,
                                                  size_t in_dim,
                                                  const double* wo, double b,
                                                  double* z) {
  size_t r = 0;
  for (; r + 8 <= n; r += 8) {
    __m256d a0 = _mm256_set1_pd(b);
    __m256d a1 = _mm256_set1_pd(b);
    for (size_t in = 0; in < in_dim; ++in) {
      const __m256d wv = _mm256_set1_pd(wo[in]);
      const double* x = x_t + in * n + r;
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(wv, _mm256_loadu_pd(x)));
      a1 = _mm256_add_pd(a1, _mm256_mul_pd(wv, _mm256_loadu_pd(x + 4)));
    }
    _mm256_storeu_pd(z + r, a0);
    _mm256_storeu_pd(z + r + 4, a1);
  }
  for (; r < n; ++r) {
    double acc = b;
    for (size_t in = 0; in < in_dim; ++in) acc += wo[in] * x_t[in * n + r];
    z[r] = acc;
  }
}

__attribute__((target("avx2"))) void ForwardAvx2(const double* x_t, size_t n,
                                                 size_t in_dim,
                                                 const double* w,
                                                 const double* bias,
                                                 size_t out_dim,
                                                 double* out_t) {
  size_t o = 0;
  for (; o + 4 <= out_dim; o += 4) {
    const double* w0 = w + (o + 0) * in_dim;
    const double* w1 = w + (o + 1) * in_dim;
    const double* w2 = w + (o + 2) * in_dim;
    const double* w3 = w + (o + 3) * in_dim;
    double* z0 = out_t + (o + 0) * n;
    double* z1 = out_t + (o + 1) * n;
    double* z2 = out_t + (o + 2) * n;
    double* z3 = out_t + (o + 3) * n;
    size_t r = 0;
    for (; r + 8 <= n; r += 8) {
      __m256d a0l = _mm256_set1_pd(bias[o + 0]), a0h = a0l;
      __m256d a1l = _mm256_set1_pd(bias[o + 1]), a1h = a1l;
      __m256d a2l = _mm256_set1_pd(bias[o + 2]), a2h = a2l;
      __m256d a3l = _mm256_set1_pd(bias[o + 3]), a3h = a3l;
      for (size_t in = 0; in < in_dim; ++in) {
        const double* x = x_t + in * n + r;
        const __m256d xl = _mm256_loadu_pd(x);
        const __m256d xh = _mm256_loadu_pd(x + 4);
        __m256d wv = _mm256_set1_pd(w0[in]);
        a0l = _mm256_add_pd(a0l, _mm256_mul_pd(wv, xl));
        a0h = _mm256_add_pd(a0h, _mm256_mul_pd(wv, xh));
        wv = _mm256_set1_pd(w1[in]);
        a1l = _mm256_add_pd(a1l, _mm256_mul_pd(wv, xl));
        a1h = _mm256_add_pd(a1h, _mm256_mul_pd(wv, xh));
        wv = _mm256_set1_pd(w2[in]);
        a2l = _mm256_add_pd(a2l, _mm256_mul_pd(wv, xl));
        a2h = _mm256_add_pd(a2h, _mm256_mul_pd(wv, xh));
        wv = _mm256_set1_pd(w3[in]);
        a3l = _mm256_add_pd(a3l, _mm256_mul_pd(wv, xl));
        a3h = _mm256_add_pd(a3h, _mm256_mul_pd(wv, xh));
      }
      _mm256_storeu_pd(z0 + r, a0l);
      _mm256_storeu_pd(z0 + r + 4, a0h);
      _mm256_storeu_pd(z1 + r, a1l);
      _mm256_storeu_pd(z1 + r + 4, a1h);
      _mm256_storeu_pd(z2 + r, a2l);
      _mm256_storeu_pd(z2 + r + 4, a2h);
      _mm256_storeu_pd(z3 + r, a3l);
      _mm256_storeu_pd(z3 + r + 4, a3h);
    }
    for (; r < n; ++r) {
      double acc0 = bias[o + 0], acc1 = bias[o + 1];
      double acc2 = bias[o + 2], acc3 = bias[o + 3];
      for (size_t in = 0; in < in_dim; ++in) {
        const double xv = x_t[in * n + r];
        acc0 += w0[in] * xv;
        acc1 += w1[in] * xv;
        acc2 += w2[in] * xv;
        acc3 += w3[in] * xv;
      }
      z0[r] = acc0;
      z1[r] = acc1;
      z2[r] = acc2;
      z3[r] = acc3;
    }
  }
  ForwardTail(Forward1Avx2, x_t, n, in_dim, w, bias, o, out_dim, out_t);
}

#endif  // ADS_GEMM_X86

}  // namespace

void DenseLayerForwardT(common::SimdLevel level, const double* x_t, size_t n,
                        size_t in_dim, const double* w, const double* bias,
                        size_t out_dim, double* out_t) {
  if (n == 0 || out_dim == 0) return;
#if defined(ADS_GEMM_X86)
  switch (level) {
    case common::SimdLevel::kAvx2:
      ForwardAvx2(x_t, n, in_dim, w, bias, out_dim, out_t);
      return;
    case common::SimdLevel::kSse:
      ForwardSse(x_t, n, in_dim, w, bias, out_dim, out_t);
      return;
    case common::SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  ForwardScalar(x_t, n, in_dim, w, bias, out_dim, out_t);
}

// --- FastTanh -------------------------------------------------------------
//
// tanh(|x|) = (1 - t) / (1 + t) = 2/(1 + t) - 1 with t = exp(-2|x|), then
// the sign is copied back. exp is computed cephes-style: z = -2|x| is
// range-reduced with the split ln2 so r = z - k*ln2 is exact to the last
// few bits, e^r comes from a degree-10 Taylor Horner (|r| <= ln2/2, so
// truncation is ~2e-13 relative), and 2^k is built by sliding the integer
// exponent into place. Every step is a plain IEEE double op in a fixed
// order, which is what lets the AVX2 panel below replay it lane-for-lane.

namespace {

constexpr double kTanhClamp = 22.0;  // tanh rounds to +/-1 well before this
constexpr double kLog2E = 1.4426950408889634074;
constexpr double kLn2Hi = 6.93145751953125e-1;
constexpr double kLn2Lo = 1.42860682030941723212e-6;
// 1/i! for i = 2..10, Horner order (highest degree first).
constexpr double kExpC[] = {
    2.755731922398589065e-7,   // 1/10!
    2.755731922398589065e-6,   // 1/9!
    2.480158730158730159e-5,   // 1/8!
    1.984126984126984127e-4,   // 1/7!
    1.388888888888888889e-3,   // 1/6!
    8.333333333333333333e-3,   // 1/5!
    4.166666666666666667e-2,   // 1/4!
    1.666666666666666667e-1,   // 1/3!
    5.0e-1,                    // 1/2!
};

inline double Pow2FromInt(int64_t k) {
  const uint64_t bits = static_cast<uint64_t>(k + 1023) << 52;
  double scale;
  std::memcpy(&scale, &bits, sizeof(scale));
  return scale;
}

}  // namespace

double FastTanh(double x) {
  const double ax = std::fabs(x);
  // Mirrors _mm256_min_pd(ax, clamp): NaN compares false and selects the
  // clamp, so the tiers agree even on NaN input.
  const double cx = ax < kTanhClamp ? ax : kTanhClamp;
  const double z = -2.0 * cx;
  const double k = std::nearbyint(z * kLog2E);
  const double r = (z - k * kLn2Hi) - k * kLn2Lo;
  double q = kExpC[0];
  for (size_t i = 1; i < sizeof(kExpC) / sizeof(kExpC[0]); ++i) {
    q = q * r + kExpC[i];
  }
  const double e = (1.0 + (r + (r * r) * q)) * Pow2FromInt(static_cast<int64_t>(k));
  const double y = 2.0 / (e + 1.0) - 1.0;
  return std::copysign(y, x);
}

namespace {

void FastTanhScalarLoop(double* v, size_t n) {
  for (size_t i = 0; i < n; ++i) v[i] = FastTanh(v[i]);
}

#if defined(ADS_GEMM_X86)

__attribute__((target("avx2"))) void FastTanhAvx2(double* v, size_t n) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d clamp = _mm256_set1_pd(kTanhClamp);
  const __m256d log2e = _mm256_set1_pd(kLog2E);
  const __m256d ln2_hi = _mm256_set1_pd(kLn2Hi);
  const __m256d ln2_lo = _mm256_set1_pd(kLn2Lo);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d neg_two = _mm256_set1_pd(-2.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    const __m256d sign = _mm256_and_pd(x, sign_mask);
    const __m256d ax = _mm256_andnot_pd(sign_mask, x);
    const __m256d cx = _mm256_min_pd(ax, clamp);
    const __m256d z = _mm256_mul_pd(neg_two, cx);
    const __m256d k = _mm256_round_pd(
        _mm256_mul_pd(z, log2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    const __m256d r = _mm256_sub_pd(
        _mm256_sub_pd(z, _mm256_mul_pd(k, ln2_hi)), _mm256_mul_pd(k, ln2_lo));
    __m256d q = _mm256_set1_pd(kExpC[0]);
    for (size_t c = 1; c < sizeof(kExpC) / sizeof(kExpC[0]); ++c) {
      q = _mm256_add_pd(_mm256_mul_pd(q, r), _mm256_set1_pd(kExpC[c]));
    }
    const __m256d poly = _mm256_add_pd(
        one,
        _mm256_add_pd(r, _mm256_mul_pd(_mm256_mul_pd(r, r), q)));
    // 2^k: k is integer-valued in [-64, 0]; truncate to int32, widen, and
    // slide the biased exponent into the top bits.
    const __m128i k32 = _mm256_cvttpd_epi32(k);
    const __m256i k64 = _mm256_cvtepi32_epi64(k32);
    const __m256i bits =
        _mm256_slli_epi64(_mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52);
    const __m256d scale = _mm256_castsi256_pd(bits);
    const __m256d e = _mm256_mul_pd(poly, scale);
    const __m256d y =
        _mm256_sub_pd(_mm256_div_pd(two, _mm256_add_pd(e, one)), one);
    _mm256_storeu_pd(v + i, _mm256_or_pd(y, sign));
  }
  FastTanhScalarLoop(v + i, n - i);
}

#endif  // ADS_GEMM_X86

}  // namespace

void FastTanhPanel(common::SimdLevel level, double* v, size_t n) {
#if defined(ADS_GEMM_X86)
  if (level == common::SimdLevel::kAvx2) {
    FastTanhAvx2(v, n);
    return;
  }
#endif
  (void)level;
  FastTanhScalarLoop(v, n);
}

}  // namespace ads::ml
