#ifndef ADS_ML_GEMM_H_
#define ADS_ML_GEMM_H_

#include <cstddef>

#include "common/matrix.h"
#include "common/simd.h"

namespace ads::ml {

/// Batched dense-layer kernels over *transposed row tiles*. A tile holds n
/// query rows column-panel style — x_t[in * n + r] is feature `in` of tile
/// row r — so a SIMD lane sweep over r reads contiguous memory while each
/// row's reduction still runs in plain feature order.
///
/// Bit-identity contract (the PR 5 memcmp property, extended to every
/// SIMD tier): for each tile row r and output o the kernel computes
///
///   z = bias[o];
///   for (in = 0; in < in_dim; ++in) z = z + w[o*in_dim + in] * x_t[in*n + r];
///   out_t[o*n + r] = z;
///
/// with exactly that operation order and rounding. The vector tiers map
/// *whole rows* to lanes — never partial sums within a row — and this
/// translation unit is compiled with -ffp-contract=off so neither the
/// scalar reference loop nor the intrinsics can be fused into FMAs behind
/// our back. Every tier is therefore memcmp-identical to the scalar
/// Predict walk, which stays the golden reference.

/// Packs rows [begin, begin+n) of `rows` into a transposed tile. The AVX2
/// tier runs a 4x4 in-register block transpose — pure data movement (and,
/// for the standardized form, the same elementwise (x-mean)/scale per
/// value), so tiering the pack cannot perturb bit-identity. Packing speed
/// matters: for the single-output linear fold the scalar transpose alone
/// cost more than the microkernel saved.
void PackTileT(common::SimdLevel level, const common::Matrix& rows,
               size_t begin, size_t n, double* x_t);

/// PackTileT fused with standardization: x_t[j*n+i] =
/// (rows(begin+i, j) - means[j]) / scales[j], element-for-element the same
/// arithmetic as Standardizer::Transform.
void PackStandardizedTileT(common::SimdLevel level, const common::Matrix& rows,
                           size_t begin, size_t n, const double* means,
                           const double* scales, double* x_t);

/// out_t[o*n + r] = bias[o] + <row r of the tile, weight row o>, reduced
/// in feature order (see the contract above). `w` is row-major
/// [out_dim x in_dim]; `level` picks the dispatch tier (callers normally
/// pass common::ActiveSimdLevel()).
void DenseLayerForwardT(common::SimdLevel level, const double* x_t, size_t n,
                        size_t in_dim, const double* w, const double* bias,
                        size_t out_dim, double* out_t);

/// The MLP's hidden activation: a deterministic tanh built from plain
/// IEEE mul/add/div/round (range-reduced exp(-2|x|), degree-10 Horner,
/// exponent bit-twiddle), accurate to ~1e-13 absolute against std::tanh
/// but — unlike libm — vectorizable with lane-for-lane identical rounding.
/// glibc's scalar tanh was ~60% of the batched MLP forward pass and has
/// no bit-compatible SIMD form, so the activation itself is defined by
/// this function: training, scalar Predict, and every batch tier all call
/// it (or its panel form below), which is what keeps the memcmp property
/// intact. Monotone, odd, saturates to ±1 beyond |x| ≈ 19.
double FastTanh(double x);

/// Elementwise FastTanh over a panel. The AVX2 tier executes the same
/// operation sequence per lane as the scalar function (no FMA, no
/// reassociation — this TU is built with -ffp-contract=off), so output is
/// memcmp-identical across tiers.
void FastTanhPanel(common::SimdLevel level, double* v, size_t n);

}  // namespace ads::ml

#endif  // ADS_ML_GEMM_H_
