#include "ml/kmeans.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"

namespace ads::ml {
namespace {

double Dist2(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (size_t j = 0; j < a.size(); ++j) {
    double delta = a[j] - b[j];
    d += delta * delta;
  }
  return d;
}

}  // namespace

common::Status KMeans::Fit(const std::vector<std::vector<double>>& points) {
  if (points.size() < options_.k || options_.k == 0) {
    return common::Status::InvalidArgument(
        "kmeans needs at least k points and k >= 1");
  }
  common::Rng rng(options_.seed);
  size_t n = points.size();

  // k-means++ seeding.
  centroids_.clear();
  centroids_.push_back(
      points[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1))]);
  std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());
  while (centroids_.size() < options_.k) {
    for (size_t i = 0; i < n; ++i) {
      min_d2[i] = std::min(min_d2[i], Dist2(points[i], centroids_.back()));
    }
    double total = 0.0;
    for (double d : min_d2) total += d;
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; duplicate one.
      centroids_.push_back(centroids_.back());
      continue;
    }
    double u = rng.Uniform(0.0, total);
    double acc = 0.0;
    size_t chosen = n - 1;
    for (size_t i = 0; i < n; ++i) {
      acc += min_d2[i];
      if (u <= acc) {
        chosen = i;
        break;
      }
    }
    centroids_.push_back(points[chosen]);
  }

  labels_.assign(n, 0);
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      size_t best = Assign(points[i]);
      if (best != labels_[i]) {
        labels_[i] = best;
        changed = true;
      }
    }
    // Recompute centroids.
    std::vector<std::vector<double>> sums(
        options_.k, std::vector<double>(points[0].size(), 0.0));
    std::vector<size_t> counts(options_.k, 0);
    for (size_t i = 0; i < n; ++i) {
      ++counts[labels_[i]];
      for (size_t j = 0; j < points[i].size(); ++j) {
        sums[labels_[i]][j] += points[i][j];
      }
    }
    for (size_t c = 0; c < options_.k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      for (size_t j = 0; j < sums[c].size(); ++j) {
        centroids_[c][j] = sums[c][j] / static_cast<double>(counts[c]);
      }
    }
    if (!changed && iter > 0) break;
  }

  inertia_ = 0.0;
  for (size_t i = 0; i < n; ++i) {
    inertia_ += Dist2(points[i], centroids_[labels_[i]]);
  }
  return common::Status::Ok();
}

size_t KMeans::Assign(const std::vector<double>& point) const {
  ADS_CHECK(fitted()) << "assign on unfitted kmeans";
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids_.size(); ++c) {
    double d = Dist2(point, centroids_[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

}  // namespace ads::ml
