#include "ml/kmeans.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace ads::ml {
namespace {

double Dist2(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (size_t j = 0; j < a.size(); ++j) {
    double delta = a[j] - b[j];
    d += delta * delta;
  }
  return d;
}

/// Points per parallel_for chunk. Chunk boundaries (not worker count)
/// define the floating-point reduction order, so results are identical
/// in serial and parallel runs.
constexpr size_t kGrain = 256;

}  // namespace

common::Status KMeans::Fit(const std::vector<std::vector<double>>& points) {
  if (points.size() < options_.k || options_.k == 0) {
    return common::Status::InvalidArgument(
        "kmeans needs at least k points and k >= 1");
  }
  common::Rng rng(options_.seed);
  size_t n = points.size();

  // k-means++ seeding.
  centroids_.clear();
  centroids_.push_back(
      points[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1))]);
  std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());
  while (centroids_.size() < options_.k) {
    common::parallel_for(0, n, kGrain, [&](size_t cb, size_t ce) {
      for (size_t i = cb; i < ce; ++i) {
        min_d2[i] = std::min(min_d2[i], Dist2(points[i], centroids_.back()));
      }
    });
    double total = 0.0;
    for (double d : min_d2) total += d;
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; duplicate one.
      centroids_.push_back(centroids_.back());
      continue;
    }
    double u = rng.Uniform(0.0, total);
    double acc = 0.0;
    size_t chosen = n - 1;
    for (size_t i = 0; i < n; ++i) {
      acc += min_d2[i];
      if (u <= acc) {
        chosen = i;
        break;
      }
    }
    centroids_.push_back(points[chosen]);
  }

  labels_.assign(n, 0);
  size_t dim = points[0].size();
  size_t num_chunks = (n + kGrain - 1) / kGrain;
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // Assignment step: points are independent; chunk-local change flags
    // avoid a shared write.
    std::vector<char> chunk_changed(num_chunks, 0);
    common::parallel_for(0, n, kGrain, [&](size_t cb, size_t ce) {
      for (size_t i = cb; i < ce; ++i) {
        size_t best = Assign(points[i]);
        if (best != labels_[i]) {
          labels_[i] = best;
          chunk_changed[cb / kGrain] = 1;
        }
      }
    });
    bool changed = false;
    for (char c : chunk_changed) changed = changed || c != 0;
    // Update step: chunk-local partial sums, merged in chunk order so the
    // floating-point accumulation order matches the serial run exactly.
    std::vector<std::vector<std::vector<double>>> chunk_sums(
        num_chunks, std::vector<std::vector<double>>(
                        options_.k, std::vector<double>(dim, 0.0)));
    std::vector<std::vector<size_t>> chunk_counts(
        num_chunks, std::vector<size_t>(options_.k, 0));
    common::parallel_for(0, n, kGrain, [&](size_t cb, size_t ce) {
      auto& sums = chunk_sums[cb / kGrain];
      auto& counts = chunk_counts[cb / kGrain];
      for (size_t i = cb; i < ce; ++i) {
        ++counts[labels_[i]];
        for (size_t j = 0; j < dim; ++j) {
          sums[labels_[i]][j] += points[i][j];
        }
      }
    });
    std::vector<std::vector<double>> sums(options_.k,
                                          std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(options_.k, 0);
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      for (size_t c = 0; c < options_.k; ++c) {
        counts[c] += chunk_counts[chunk][c];
        for (size_t j = 0; j < dim; ++j) {
          sums[c][j] += chunk_sums[chunk][c][j];
        }
      }
    }
    for (size_t c = 0; c < options_.k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      for (size_t j = 0; j < sums[c].size(); ++j) {
        centroids_[c][j] = sums[c][j] / static_cast<double>(counts[c]);
      }
    }
    if (!changed && iter > 0) break;
  }

  std::vector<double> chunk_inertia(num_chunks, 0.0);
  common::parallel_for(0, n, kGrain, [&](size_t cb, size_t ce) {
    double local = 0.0;
    for (size_t i = cb; i < ce; ++i) {
      local += Dist2(points[i], centroids_[labels_[i]]);
    }
    chunk_inertia[cb / kGrain] = local;
  });
  inertia_ = 0.0;
  for (double v : chunk_inertia) inertia_ += v;
  return common::Status::Ok();
}

size_t KMeans::Assign(const std::vector<double>& point) const {
  ADS_CHECK(fitted()) << "assign on unfitted kmeans";
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids_.size(); ++c) {
    double d = Dist2(point, centroids_[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

}  // namespace ads::ml
