#ifndef ADS_ML_KMEANS_H_
#define ADS_ML_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace ads::ml {

struct KMeansOptions {
  size_t k = 4;
  int max_iterations = 100;
  uint64_t seed = 1;
};

/// Lloyd's k-means with k-means++ seeding. Used for the "segment model"
/// granularity in the paper's Insight 2 (stratify customers, model per
/// cluster).
class KMeans {
 public:
  using Options = KMeansOptions;

  explicit KMeans(Options options = Options()) : options_(options) {}

  /// Clusters the points. Fails if fewer points than clusters.
  common::Status Fit(const std::vector<std::vector<double>>& points);

  /// Index of the nearest centroid.
  size_t Assign(const std::vector<double>& point) const;

  bool fitted() const { return !centroids_.empty(); }
  const std::vector<std::vector<double>>& centroids() const {
    return centroids_;
  }
  /// Cluster assignment of each training point.
  const std::vector<size_t>& labels() const { return labels_; }
  /// Total within-cluster sum of squared distances at convergence.
  double inertia() const { return inertia_; }

 private:
  Options options_;
  std::vector<std::vector<double>> centroids_;
  std::vector<size_t> labels_;
  double inertia_ = 0.0;
};

}  // namespace ads::ml

#endif  // ADS_ML_KMEANS_H_
