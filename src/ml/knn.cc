#include "ml/knn.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace ads::ml {

common::Status KnnRegressor::Fit(const Dataset& data) {
  if (data.empty()) {
    return common::Status::InvalidArgument("knn fit on empty data");
  }
  if (k_ == 0) {
    return common::Status::InvalidArgument("knn requires k >= 1");
  }
  data_ = data;
  ADS_RETURN_IF_ERROR(standardizer_.Fit(data));
  standardized_rows_.clear();
  standardized_rows_.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    standardized_rows_.push_back(standardizer_.Transform(data.row(i)));
  }
  return common::Status::Ok();
}

std::vector<size_t> KnnRegressor::Neighbors(
    const std::vector<double>& features) const {
  ADS_CHECK(fitted()) << "neighbors on unfitted knn";
  std::vector<double> q = standardizer_.Transform(features);
  // Each slot is written by exactly one chunk, so the parallel scan is
  // race-free and produces the same distances as the serial loop.
  std::vector<std::pair<double, size_t>> dists(standardized_rows_.size());
  common::parallel_for(
      0, standardized_rows_.size(), 512, [&](size_t cb, size_t ce) {
        for (size_t i = cb; i < ce; ++i) {
          double d = 0.0;
          for (size_t j = 0; j < q.size(); ++j) {
            double delta = standardized_rows_[i][j] - q[j];
            d += delta * delta;
          }
          dists[i] = {d, i};
        }
      });
  size_t k = std::min(k_, dists.size());
  std::partial_sort(dists.begin(), dists.begin() + static_cast<long>(k),
                    dists.end());
  std::vector<size_t> out(k);
  for (size_t i = 0; i < k; ++i) out[i] = dists[i].second;
  return out;
}

double KnnRegressor::Predict(const std::vector<double>& features) const {
  std::vector<size_t> nn = Neighbors(features);
  double s = 0.0;
  for (size_t i : nn) s += data_.label(i);
  return s / static_cast<double>(nn.size());
}

double KnnRegressor::InferenceCost() const {
  return static_cast<double>(data_.size() * data_.dimensions());
}

std::string KnnRegressor::Serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "knn\n" << k_ << " " << data_.size() << " " << data_.dimensions()
     << "\n";
  for (size_t i = 0; i < data_.size(); ++i) {
    for (double v : data_.row(i)) os << v << " ";
    os << data_.label(i) << "\n";
  }
  return os.str();
}

}  // namespace ads::ml
