#ifndef ADS_ML_KNN_H_
#define ADS_ML_KNN_H_

#include <string>
#include <vector>

#include "ml/model.h"

namespace ads::ml {

/// k-nearest-neighbours regressor (Euclidean, standardized features).
/// Used as the "match a new customer to similar existing customers"
/// primitive in the Doppler-style SKU recommender.
class KnnRegressor : public Regressor {
 public:
  explicit KnnRegressor(size_t k = 5) : k_(k) {}

  common::Status Fit(const Dataset& data) override;
  double Predict(const std::vector<double>& features) const override;
  std::string TypeName() const override { return "knn"; }
  std::string Serialize() const override;
  double InferenceCost() const override;

  /// Indices of the k nearest training rows for a query (nearest first).
  std::vector<size_t> Neighbors(const std::vector<double>& features) const;

  bool fitted() const { return !data_.empty(); }

 private:
  size_t k_;
  Dataset data_;
  Standardizer standardizer_;
  std::vector<std::vector<double>> standardized_rows_;
};

}  // namespace ads::ml

#endif  // ADS_ML_KNN_H_
