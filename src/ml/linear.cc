#include "ml/linear.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/aligned.h"
#include "common/logging.h"
#include "common/matrix.h"
#include "common/simd.h"
#include "ml/gemm.h"

namespace ads::ml {

common::Status LinearRegressor::Fit(const Dataset& data) {
  if (data.empty()) {
    return common::Status::InvalidArgument("linear fit on empty data");
  }
  size_t n = data.size();
  size_t d = data.dimensions();
  common::Matrix x(n, d + 1);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = 1.0;
    for (size_t j = 0; j < d; ++j) x.At(i, j + 1) = data.row(i)[j];
  }
  // Note: ridge in SolveLeastSquares also penalizes the intercept column;
  // compensate by solving with per-column penalty via augmented rows is
  // overkill here — the penalty on the intercept is negligible for the
  // telemetry scales involved, and zero-ridge fits are exact.
  auto beta = common::SolveLeastSquares(x, data.labels(), ridge_);
  if (!beta.ok()) return beta.status();
  intercept_ = (*beta)[0];
  weights_.assign(beta->begin() + 1, beta->end());
  return common::Status::Ok();
}

double LinearRegressor::Predict(const std::vector<double>& features) const {
  ADS_CHECK(fitted()) << "predict on unfitted linear model";
  ADS_CHECK(features.size() == weights_.size())
      << "linear predict arity mismatch";
  double y = intercept_;
  for (size_t j = 0; j < weights_.size(); ++j) y += weights_[j] * features[j];
  return y;
}

void LinearRegressor::PredictBatchRange(const common::Matrix& rows,
                                        size_t begin, size_t end,
                                        double* out) const {
  ADS_CHECK(fitted()) << "predict on unfitted linear model";
  ADS_CHECK(rows.cols() == weights_.size())
      << "linear predict arity mismatch";
  if (begin >= end) return;
  // Folded dot products through the shared dense microkernel: rows are
  // packed into transposed tiles so a SIMD lane sweep reads contiguous
  // memory, then the single-output GEMM accumulates each row's dot in
  // feature order — bit-identical to the scalar fold above for every
  // dispatch tier (lanes are whole rows). Tile scratch is thread-local,
  // so steady-state calls allocate nothing and pool workers don't share.
  const double* w = weights_.data();
  const size_t d = weights_.size();
  const common::SimdLevel level = common::ActiveSimdLevel();
  if (level == common::SimdLevel::kScalar) {
    // No lanes to feed: packing a transposed tile would cost as much as
    // the fold itself. Keep the direct row-major fold (same reduction
    // order, so still bit-identical to the tiers below).
    for (size_t r = begin; r < end; ++r) {
      const double* x = rows.RowPtr(r);
      double y = intercept_;
      for (size_t j = 0; j < d; ++j) y += w[j] * x[j];
      out[r] = y;
    }
    return;
  }
  constexpr size_t kTile = 256;
  thread_local common::AlignedBuffer<double> tile;
  tile.EnsureCapacity(kTile * std::max<size_t>(d, 1));
  for (size_t block = begin; block < end; block += kTile) {
    const size_t n = std::min(kTile, end - block);
    PackTileT(level, rows, block, n, tile.data());
    DenseLayerForwardT(level, tile.data(), n, d, w, &intercept_, 1,
                       out + block);
  }
}

double LinearRegressor::InferenceCost() const {
  return static_cast<double>(2 * weights_.size() + 1);
}

void LinearRegressor::SetCoefficients(double intercept,
                                      std::vector<double> weights) {
  intercept_ = intercept;
  weights_ = std::move(weights);
}

std::string LinearRegressor::Serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "linear\n" << intercept_ << "\n" << weights_.size();
  for (double w : weights_) os << " " << w;
  os << "\n";
  return os.str();
}

common::Result<LinearRegressor> LinearRegressor::Deserialize(
    const std::string& body) {
  std::istringstream is(body);
  double intercept = 0.0;
  size_t n = 0;
  if (!(is >> intercept >> n)) {
    return common::Status::InvalidArgument("bad linear model blob");
  }
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    if (!(is >> w[i])) {
      return common::Status::InvalidArgument("truncated linear model blob");
    }
  }
  LinearRegressor model;
  model.SetCoefficients(intercept, std::move(w));
  return model;
}

namespace {
double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

common::Status LogisticRegressor::Fit(const Dataset& data) {
  if (data.empty()) {
    return common::Status::InvalidArgument("logistic fit on empty data");
  }
  for (size_t i = 0; i < data.size(); ++i) {
    double y = data.label(i);
    if (y != 0.0 && y != 1.0) {
      return common::Status::InvalidArgument(
          "logistic labels must be 0 or 1");
    }
  }
  size_t n = data.size();
  size_t d = data.dimensions();
  intercept_ = 0.0;
  weights_.assign(d, 0.0);
  double inv_n = 1.0 / static_cast<double>(n);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    double grad0 = 0.0;
    std::vector<double> grad(d, 0.0);
    for (size_t i = 0; i < n; ++i) {
      double z = intercept_;
      for (size_t j = 0; j < d; ++j) z += weights_[j] * data.row(i)[j];
      double err = Sigmoid(z) - data.label(i);
      grad0 += err;
      for (size_t j = 0; j < d; ++j) grad[j] += err * data.row(i)[j];
    }
    intercept_ -= options_.learning_rate * grad0 * inv_n;
    for (size_t j = 0; j < d; ++j) {
      weights_[j] -= options_.learning_rate *
                     (grad[j] * inv_n + options_.l2 * weights_[j]);
    }
  }
  return common::Status::Ok();
}

double LogisticRegressor::PredictProbability(
    const std::vector<double>& features) const {
  ADS_CHECK(fitted()) << "predict on unfitted logistic model";
  ADS_CHECK(features.size() == weights_.size())
      << "logistic predict arity mismatch";
  double z = intercept_;
  for (size_t j = 0; j < weights_.size(); ++j) z += weights_[j] * features[j];
  return Sigmoid(z);
}

}  // namespace ads::ml
