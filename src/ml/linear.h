#ifndef ADS_ML_LINEAR_H_
#define ADS_ML_LINEAR_H_

#include <string>
#include <vector>

#include "ml/model.h"

namespace ads::ml {

/// Ordinary/ridge least-squares linear regression. The workhorse model of
/// the paper's Insight 1 ("simple ML models tend to overrule complex deep
/// learning models"): interpretable coefficients, closed-form training.
class LinearRegressor : public Regressor {
 public:
  /// ridge: L2 penalty applied to the non-intercept weights.
  explicit LinearRegressor(double ridge = 0.0) : ridge_(ridge) {}

  common::Status Fit(const Dataset& data) override;
  double Predict(const std::vector<double>& features) const override;
  /// Batched dot products over contiguous matrix rows; bit-identical to
  /// Predict per row (same left-to-right accumulation).
  void PredictBatchRange(const common::Matrix& rows, size_t begin, size_t end,
                         double* out) const override;
  std::string TypeName() const override { return "linear"; }
  std::string Serialize() const override;
  double InferenceCost() const override;

  /// Reconstructs from Serialize() output (body after the type tag).
  static common::Result<LinearRegressor> Deserialize(const std::string& body);

  bool fitted() const { return !weights_.empty(); }
  double intercept() const { return intercept_; }
  const std::vector<double>& weights() const { return weights_; }

  /// Directly installs coefficients (used by deserialization and tests).
  void SetCoefficients(double intercept, std::vector<double> weights);

 private:
  double ridge_;
  double intercept_ = 0.0;
  std::vector<double> weights_;
};

struct LogisticOptions {
  double learning_rate = 0.1;
  int epochs = 200;
  double l2 = 1e-4;
};

/// Binary logistic regression trained by gradient descent. Used for
/// validation/guard models (e.g. "will this plan regress?").
class LogisticRegressor : public Classifier {
 public:
  using Options = LogisticOptions;

  explicit LogisticRegressor(Options options = Options()) : options_(options) {}

  common::Status Fit(const Dataset& data) override;
  double PredictProbability(const std::vector<double>& features) const override;
  std::string TypeName() const override { return "logistic"; }

  bool fitted() const { return !weights_.empty(); }
  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  Options options_;
  double intercept_ = 0.0;
  std::vector<double> weights_;
};

}  // namespace ads::ml

#endif  // ADS_ML_LINEAR_H_
