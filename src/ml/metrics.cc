#include "ml/metrics.h"

#include <algorithm>

namespace ads::ml {

double ConfusionMatrix::Accuracy() const {
  size_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(true_positive + true_negative) /
         static_cast<double>(n);
}

double ConfusionMatrix::Precision() const {
  size_t denom = true_positive + false_positive;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_positive) / static_cast<double>(denom);
}

double ConfusionMatrix::Recall() const {
  size_t denom = true_positive + false_negative;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_positive) / static_cast<double>(denom);
}

double ConfusionMatrix::F1() const {
  double p = Precision();
  double r = Recall();
  if (p + r <= 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

common::Result<ConfusionMatrix> Confusion(const std::vector<double>& probs,
                                          const std::vector<double>& labels,
                                          double threshold) {
  if (probs.size() != labels.size()) {
    return common::Status::InvalidArgument("confusion length mismatch");
  }
  ConfusionMatrix cm;
  for (size_t i = 0; i < probs.size(); ++i) {
    bool pred = probs[i] >= threshold;
    bool truth = labels[i] >= 0.5;
    if (pred && truth) ++cm.true_positive;
    if (pred && !truth) ++cm.false_positive;
    if (!pred && truth) ++cm.false_negative;
    if (!pred && !truth) ++cm.true_negative;
  }
  return cm;
}

common::Result<double> AreaUnderRoc(const std::vector<double>& probs,
                                    const std::vector<double>& labels) {
  if (probs.size() != labels.size()) {
    return common::Status::InvalidArgument("auc length mismatch");
  }
  // Rank-sum (Mann-Whitney) formulation with midranks for ties.
  std::vector<size_t> order(probs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return probs[a] < probs[b]; });
  double rank_sum_pos = 0.0;
  size_t n_pos = 0;
  size_t n_neg = 0;
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j < order.size() && probs[order[j]] == probs[order[i]]) ++j;
    double midrank = 0.5 * static_cast<double>(i + 1 + j);  // ranks are 1-based
    for (size_t k = i; k < j; ++k) {
      if (labels[order[k]] >= 0.5) {
        rank_sum_pos += midrank;
        ++n_pos;
      } else {
        ++n_neg;
      }
    }
    i = j;
  }
  if (n_pos == 0 || n_neg == 0) return 0.5;
  double auc = (rank_sum_pos -
                static_cast<double>(n_pos) * (static_cast<double>(n_pos) + 1) / 2.0) /
               (static_cast<double>(n_pos) * static_cast<double>(n_neg));
  return auc;
}

}  // namespace ads::ml
