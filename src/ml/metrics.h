#ifndef ADS_ML_METRICS_H_
#define ADS_ML_METRICS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace ads::ml {

/// Binary-classification confusion counts.
struct ConfusionMatrix {
  size_t true_positive = 0;
  size_t false_positive = 0;
  size_t true_negative = 0;
  size_t false_negative = 0;

  size_t total() const {
    return true_positive + false_positive + true_negative + false_negative;
  }
  double Accuracy() const;
  double Precision() const;
  double Recall() const;
  double F1() const;
};

/// Builds a confusion matrix from probabilities and 0/1 labels at the given
/// threshold. Lengths must match.
common::Result<ConfusionMatrix> Confusion(const std::vector<double>& probs,
                                          const std::vector<double>& labels,
                                          double threshold = 0.5);

/// Area under the ROC curve via the rank statistic. Returns 0.5 when one
/// class is absent.
common::Result<double> AreaUnderRoc(const std::vector<double>& probs,
                                    const std::vector<double>& labels);

}  // namespace ads::ml

#endif  // ADS_ML_METRICS_H_
