#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"

namespace ads::ml {

common::Status MlpRegressor::Fit(const Dataset& data) {
  if (data.empty()) {
    return common::Status::InvalidArgument("mlp fit on empty data");
  }
  ADS_RETURN_IF_ERROR(input_standardizer_.Fit(data));
  common::RunningMoments label_stats;
  for (size_t i = 0; i < data.size(); ++i) label_stats.Add(data.label(i));
  label_mean_ = label_stats.mean();
  label_scale_ = label_stats.stddev() > 1e-12 ? label_stats.stddev() : 1.0;

  // Layer sizes: input -> hidden... -> 1.
  std::vector<size_t> sizes;
  sizes.push_back(data.dimensions());
  for (size_t h : options_.hidden_layers) sizes.push_back(h);
  sizes.push_back(1);

  common::Rng rng(options_.seed);
  layers_.clear();
  for (size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer layer;
    double scale = std::sqrt(2.0 / static_cast<double>(sizes[l]));
    layer.weights.assign(sizes[l + 1], std::vector<double>(sizes[l]));
    layer.biases.assign(sizes[l + 1], 0.0);
    for (auto& row : layer.weights) {
      for (auto& w : row) w = rng.Normal(0.0, scale);
    }
    layers_.push_back(std::move(layer));
  }

  // Velocity buffers for momentum.
  std::vector<Layer> velocity = layers_;
  for (auto& layer : velocity) {
    for (auto& row : layer.weights) std::fill(row.begin(), row.end(), 0.0);
    std::fill(layer.biases.begin(), layer.biases.end(), 0.0);
  }

  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += options_.batch_size) {
      size_t end = std::min(order.size(), start + options_.batch_size);
      // Accumulated gradients.
      std::vector<Layer> grad = velocity;  // same shape
      for (auto& layer : grad) {
        for (auto& row : layer.weights) std::fill(row.begin(), row.end(), 0.0);
        std::fill(layer.biases.begin(), layer.biases.end(), 0.0);
      }
      for (size_t k = start; k < end; ++k) {
        size_t i = order[k];
        std::vector<double> x = input_standardizer_.Transform(data.row(i));
        double y = (data.label(i) - label_mean_) / label_scale_;
        std::vector<std::vector<double>> acts;
        std::vector<double> out = Forward(x, &acts);
        // Backprop: delta at output (squared loss, linear output).
        std::vector<double> delta = {out[0] - y};
        for (size_t l = layers_.size(); l > 0; --l) {
          const Layer& layer = layers_[l - 1];
          const std::vector<double>& input = acts[l - 1];
          Layer& g = grad[l - 1];
          std::vector<double> prev_delta(input.size(), 0.0);
          for (size_t o = 0; o < layer.weights.size(); ++o) {
            g.biases[o] += delta[o];
            for (size_t in = 0; in < input.size(); ++in) {
              g.weights[o][in] += delta[o] * input[in];
              prev_delta[in] += delta[o] * layer.weights[o][in];
            }
          }
          if (l > 1) {
            // tanh derivative on the previous activation.
            for (size_t in = 0; in < prev_delta.size(); ++in) {
              double a = acts[l - 1][in];
              prev_delta[in] *= (1.0 - a * a);
            }
          }
          delta = std::move(prev_delta);
        }
      }
      double inv = 1.0 / static_cast<double>(end - start);
      for (size_t l = 0; l < layers_.size(); ++l) {
        for (size_t o = 0; o < layers_[l].weights.size(); ++o) {
          velocity[l].biases[o] = options_.momentum * velocity[l].biases[o] -
                                  options_.learning_rate *
                                      grad[l].biases[o] * inv;
          layers_[l].biases[o] += velocity[l].biases[o];
          for (size_t in = 0; in < layers_[l].weights[o].size(); ++in) {
            velocity[l].weights[o][in] =
                options_.momentum * velocity[l].weights[o][in] -
                options_.learning_rate * grad[l].weights[o][in] * inv;
            layers_[l].weights[o][in] += velocity[l].weights[o][in];
          }
        }
      }
    }
  }
  fitted_ = true;
  return common::Status::Ok();
}

std::vector<double> MlpRegressor::Forward(
    const std::vector<double>& x,
    std::vector<std::vector<double>>* activations) const {
  std::vector<double> cur = x;
  if (activations != nullptr) activations->push_back(cur);
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> next(layer.weights.size());
    for (size_t o = 0; o < layer.weights.size(); ++o) {
      double z = layer.biases[o];
      for (size_t in = 0; in < cur.size(); ++in) {
        z += layer.weights[o][in] * cur[in];
      }
      next[o] = (l + 1 < layers_.size()) ? std::tanh(z) : z;
    }
    cur = std::move(next);
    if (activations != nullptr && l + 1 < layers_.size()) {
      activations->push_back(cur);
    }
  }
  return cur;
}

double MlpRegressor::Predict(const std::vector<double>& features) const {
  ADS_CHECK(fitted_) << "predict on unfitted mlp";
  std::vector<double> x = input_standardizer_.Transform(features);
  std::vector<double> out = Forward(x, nullptr);
  return out[0] * label_scale_ + label_mean_;
}

void MlpRegressor::PredictBatchRange(const common::Matrix& rows, size_t begin,
                                     size_t end, double* out) const {
  ADS_CHECK(fitted_) << "predict on unfitted mlp";
  const size_t dims = input_standardizer_.means().size();
  ADS_CHECK(rows.cols() == dims) << "mlp predict arity mismatch";
  if (begin >= end) return;

  // Flatten each layer's weights into one contiguous row-major buffer so
  // the per-row forward pass streams memory instead of hopping between
  // nested vectors. The flattening cost is one pass over the parameters,
  // amortized across the whole range.
  struct FlatLayer {
    size_t out_dim = 0;
    size_t in_dim = 0;
    const double* biases = nullptr;
    std::vector<double> weights;  // weights[o * in_dim + in]
  };
  std::vector<FlatLayer> flat(layers_.size());
  size_t max_width = dims;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    FlatLayer& f = flat[l];
    f.out_dim = layer.weights.size();
    f.in_dim = f.out_dim == 0 ? 0 : layer.weights[0].size();
    f.biases = layer.biases.data();
    f.weights.resize(f.out_dim * f.in_dim);
    for (size_t o = 0; o < f.out_dim; ++o) {
      std::copy(layer.weights[o].begin(), layer.weights[o].end(),
                f.weights.begin() + o * f.in_dim);
    }
    max_width = std::max(max_width, f.out_dim);
  }

  const double* means = input_standardizer_.means().data();
  const double* scales = input_standardizer_.scales().data();
  std::vector<double> a(max_width);
  std::vector<double> b(max_width);
  for (size_t r = begin; r < end; ++r) {
    const double* x = rows.RowPtr(r);
    double* cur = a.data();
    for (size_t j = 0; j < dims; ++j) cur[j] = (x[j] - means[j]) / scales[j];
    double* next = b.data();
    for (size_t l = 0; l < flat.size(); ++l) {
      const FlatLayer& f = flat[l];
      const bool hidden = l + 1 < flat.size();
      for (size_t o = 0; o < f.out_dim; ++o) {
        const double* w = f.weights.data() + o * f.in_dim;
        double z = f.biases[o];
        for (size_t in = 0; in < f.in_dim; ++in) z += w[in] * cur[in];
        next[o] = hidden ? std::tanh(z) : z;
      }
      std::swap(cur, next);
    }
    out[r] = cur[0] * label_scale_ + label_mean_;
  }
}

size_t MlpRegressor::parameter_count() const {
  size_t n = 0;
  for (const auto& layer : layers_) {
    n += layer.biases.size();
    for (const auto& row : layer.weights) n += row.size();
  }
  return n;
}

double MlpRegressor::InferenceCost() const {
  return static_cast<double>(2 * parameter_count());
}

common::Result<MlpRegressor> MlpRegressor::Deserialize(
    const std::string& body) {
  std::istringstream is(body);
  size_t layer_count = 0;
  if (!(is >> layer_count)) {
    return common::Status::InvalidArgument("bad mlp blob");
  }
  MlpRegressor model;
  if (!(is >> model.label_mean_ >> model.label_scale_)) {
    return common::Status::InvalidArgument("bad mlp label stats");
  }
  size_t dims = 0;
  if (!(is >> dims)) {
    return common::Status::InvalidArgument("bad mlp standardizer");
  }
  std::vector<double> means(dims);
  std::vector<double> scales(dims);
  for (size_t j = 0; j < dims; ++j) {
    if (!(is >> means[j] >> scales[j])) {
      return common::Status::InvalidArgument("truncated mlp standardizer");
    }
  }
  model.input_standardizer_.SetMoments(std::move(means), std::move(scales));
  for (size_t l = 0; l < layer_count; ++l) {
    size_t out_dim = 0;
    size_t in_dim = 0;
    if (!(is >> out_dim >> in_dim)) {
      return common::Status::InvalidArgument("truncated mlp layer header");
    }
    Layer layer;
    layer.weights.assign(out_dim, std::vector<double>(in_dim));
    layer.biases.assign(out_dim, 0.0);
    for (size_t o = 0; o < out_dim; ++o) {
      if (!(is >> layer.biases[o])) {
        return common::Status::InvalidArgument("truncated mlp biases");
      }
      for (size_t in = 0; in < in_dim; ++in) {
        if (!(is >> layer.weights[o][in])) {
          return common::Status::InvalidArgument("truncated mlp weights");
        }
      }
    }
    model.layers_.push_back(std::move(layer));
  }
  model.fitted_ = true;
  return model;
}

std::string MlpRegressor::Serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "mlp\n" << layers_.size() << "\n";
  os << label_mean_ << " " << label_scale_ << "\n";
  const auto& means = input_standardizer_.means();
  const auto& scales = input_standardizer_.scales();
  os << means.size();
  for (size_t j = 0; j < means.size(); ++j) {
    os << " " << means[j] << " " << scales[j];
  }
  os << "\n";
  for (const auto& layer : layers_) {
    os << layer.weights.size() << " "
       << (layer.weights.empty() ? 0 : layer.weights[0].size()) << "\n";
    for (size_t o = 0; o < layer.weights.size(); ++o) {
      os << layer.biases[o];
      for (double w : layer.weights[o]) os << " " << w;
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace ads::ml
