#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/stats.h"
#include "ml/gemm.h"

namespace ads::ml {

common::Status MlpRegressor::Fit(const Dataset& data) {
  if (data.empty()) {
    return common::Status::InvalidArgument("mlp fit on empty data");
  }
  ADS_RETURN_IF_ERROR(input_standardizer_.Fit(data));
  common::RunningMoments label_stats;
  for (size_t i = 0; i < data.size(); ++i) label_stats.Add(data.label(i));
  label_mean_ = label_stats.mean();
  label_scale_ = label_stats.stddev() > 1e-12 ? label_stats.stddev() : 1.0;

  // Layer sizes: input -> hidden... -> 1.
  std::vector<size_t> sizes;
  sizes.push_back(data.dimensions());
  for (size_t h : options_.hidden_layers) sizes.push_back(h);
  sizes.push_back(1);

  common::Rng rng(options_.seed);
  layers_.clear();
  for (size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer layer;
    double scale = std::sqrt(2.0 / static_cast<double>(sizes[l]));
    layer.weights.assign(sizes[l + 1], std::vector<double>(sizes[l]));
    layer.biases.assign(sizes[l + 1], 0.0);
    for (auto& row : layer.weights) {
      for (auto& w : row) w = rng.Normal(0.0, scale);
    }
    layers_.push_back(std::move(layer));
  }

  // Velocity buffers for momentum.
  std::vector<Layer> velocity = layers_;
  for (auto& layer : velocity) {
    for (auto& row : layer.weights) std::fill(row.begin(), row.end(), 0.0);
    std::fill(layer.biases.begin(), layer.biases.end(), 0.0);
  }

  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += options_.batch_size) {
      size_t end = std::min(order.size(), start + options_.batch_size);
      // Accumulated gradients.
      std::vector<Layer> grad = velocity;  // same shape
      for (auto& layer : grad) {
        for (auto& row : layer.weights) std::fill(row.begin(), row.end(), 0.0);
        std::fill(layer.biases.begin(), layer.biases.end(), 0.0);
      }
      for (size_t k = start; k < end; ++k) {
        size_t i = order[k];
        std::vector<double> x = input_standardizer_.Transform(data.row(i));
        double y = (data.label(i) - label_mean_) / label_scale_;
        std::vector<std::vector<double>> acts;
        std::vector<double> out = Forward(x, &acts);
        // Backprop: delta at output (squared loss, linear output).
        std::vector<double> delta = {out[0] - y};
        for (size_t l = layers_.size(); l > 0; --l) {
          const Layer& layer = layers_[l - 1];
          const std::vector<double>& input = acts[l - 1];
          Layer& g = grad[l - 1];
          std::vector<double> prev_delta(input.size(), 0.0);
          for (size_t o = 0; o < layer.weights.size(); ++o) {
            g.biases[o] += delta[o];
            for (size_t in = 0; in < input.size(); ++in) {
              g.weights[o][in] += delta[o] * input[in];
              prev_delta[in] += delta[o] * layer.weights[o][in];
            }
          }
          if (l > 1) {
            // tanh derivative on the previous activation.
            for (size_t in = 0; in < prev_delta.size(); ++in) {
              double a = acts[l - 1][in];
              prev_delta[in] *= (1.0 - a * a);
            }
          }
          delta = std::move(prev_delta);
        }
      }
      double inv = 1.0 / static_cast<double>(end - start);
      for (size_t l = 0; l < layers_.size(); ++l) {
        for (size_t o = 0; o < layers_[l].weights.size(); ++o) {
          velocity[l].biases[o] = options_.momentum * velocity[l].biases[o] -
                                  options_.learning_rate *
                                      grad[l].biases[o] * inv;
          layers_[l].biases[o] += velocity[l].biases[o];
          for (size_t in = 0; in < layers_[l].weights[o].size(); ++in) {
            velocity[l].weights[o][in] =
                options_.momentum * velocity[l].weights[o][in] -
                options_.learning_rate * grad[l].weights[o][in] * inv;
            layers_[l].weights[o][in] += velocity[l].weights[o][in];
          }
        }
      }
    }
  }
  fitted_ = true;
  PackWeights();
  return common::Status::Ok();
}

void MlpRegressor::PackWeights() {
  packed_layers_.assign(layers_.size(), PackedLayer());
  size_t weight_doubles = 0;
  size_t bias_doubles = 0;
  max_width_ = input_standardizer_.means().size();
  // 64 bytes = 8 doubles: rounding each panel start keeps every layer's
  // weight block on its own cache-line boundary inside one allocation.
  constexpr size_t kPad = 8;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    PackedLayer& p = packed_layers_[l];
    p.out_dim = layer.weights.size();
    p.in_dim = p.out_dim == 0 ? 0 : layer.weights[0].size();
    p.w_offset = weight_doubles;
    p.b_offset = bias_doubles;
    weight_doubles += (p.out_dim * p.in_dim + kPad - 1) / kPad * kPad;
    bias_doubles += (p.out_dim + kPad - 1) / kPad * kPad;
    max_width_ = std::max(max_width_, p.out_dim);
  }
  packed_weights_.resize(weight_doubles);
  packed_biases_.resize(bias_doubles);
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const PackedLayer& p = packed_layers_[l];
    for (size_t o = 0; o < p.out_dim; ++o) {
      std::copy(layer.weights[o].begin(), layer.weights[o].end(),
                packed_weights_.data() + p.w_offset + o * p.in_dim);
      packed_biases_[p.b_offset + o] = layer.biases[o];
    }
  }
}

std::vector<double> MlpRegressor::Forward(
    const std::vector<double>& x,
    std::vector<std::vector<double>>* activations) const {
  std::vector<double> cur = x;
  if (activations != nullptr) activations->push_back(cur);
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> next(layer.weights.size());
    for (size_t o = 0; o < layer.weights.size(); ++o) {
      double z = layer.biases[o];
      for (size_t in = 0; in < cur.size(); ++in) {
        z += layer.weights[o][in] * cur[in];
      }
      next[o] = (l + 1 < layers_.size()) ? FastTanh(z) : z;
    }
    cur = std::move(next);
    if (activations != nullptr && l + 1 < layers_.size()) {
      activations->push_back(cur);
    }
  }
  return cur;
}

double MlpRegressor::Predict(const std::vector<double>& features) const {
  ADS_CHECK(fitted_) << "predict on unfitted mlp";
  std::vector<double> x = input_standardizer_.Transform(features);
  std::vector<double> out = Forward(x, nullptr);
  return out[0] * label_scale_ + label_mean_;
}

void MlpRegressor::PredictBatchRange(const common::Matrix& rows, size_t begin,
                                     size_t end, double* out) const {
  ADS_CHECK(fitted_) << "predict on unfitted mlp";
  const size_t dims = input_standardizer_.means().size();
  ADS_CHECK(rows.cols() == dims) << "mlp predict arity mismatch";
  if (begin >= end) return;

  // Tile width: the widest activation panel (max_width_ x tile) should sit
  // in L1 while the microkernel re-streams it once per 4-output block.
  // Multiple-of-8 so AVX2 row groups tile evenly; clamped so tiny models
  // still amortise packing and huge ones cannot blow the scratch.
  const size_t width = std::max<size_t>(max_width_, 1);
  const size_t tile =
      std::clamp<size_t>((32u << 10) / (8 * width) / 8 * 8, 32, 256);

  // Thread-local scratch: two transposed activation panels, reused across
  // calls (steady-state batch predicts allocate nothing) and private per
  // pool worker so disjoint ranges can run concurrently.
  thread_local common::AlignedBuffer<double> scratch;
  scratch.EnsureCapacity(2 * width * tile);

  const common::SimdLevel level = common::ActiveSimdLevel();
  const double* means = input_standardizer_.means().data();
  const double* scales = input_standardizer_.scales().data();
  const size_t num_layers = packed_layers_.size();
  for (size_t block = begin; block < end; block += tile) {
    const size_t n = std::min(tile, end - block);
    double* cur = scratch.data();
    double* next = scratch.data() + width * tile;
    PackStandardizedTileT(level, rows, block, n, means, scales, cur);
    for (size_t l = 0; l < num_layers; ++l) {
      const PackedLayer& p = packed_layers_[l];
      DenseLayerForwardT(level, cur, n, p.in_dim,
                         packed_weights_.data() + p.w_offset,
                         packed_biases_.data() + p.b_offset, p.out_dim, next);
      if (l + 1 < num_layers) {
        // Hidden activation, elementwise over the whole panel: FastTanh is
        // the activation (see gemm.h), so panel and scalar paths agree
        // bit-for-bit at every dispatch tier.
        FastTanhPanel(level, next, p.out_dim * n);
      }
      std::swap(cur, next);
    }
    for (size_t i = 0; i < n; ++i) {
      out[block + i] = cur[i] * label_scale_ + label_mean_;
    }
  }
}

size_t MlpRegressor::parameter_count() const {
  size_t n = 0;
  for (const auto& layer : layers_) {
    n += layer.biases.size();
    for (const auto& row : layer.weights) n += row.size();
  }
  return n;
}

double MlpRegressor::InferenceCost() const {
  return static_cast<double>(2 * parameter_count());
}

common::Result<MlpRegressor> MlpRegressor::Deserialize(
    const std::string& body) {
  std::istringstream is(body);
  size_t layer_count = 0;
  if (!(is >> layer_count)) {
    return common::Status::InvalidArgument("bad mlp blob");
  }
  MlpRegressor model;
  if (!(is >> model.label_mean_ >> model.label_scale_)) {
    return common::Status::InvalidArgument("bad mlp label stats");
  }
  size_t dims = 0;
  if (!(is >> dims)) {
    return common::Status::InvalidArgument("bad mlp standardizer");
  }
  std::vector<double> means(dims);
  std::vector<double> scales(dims);
  for (size_t j = 0; j < dims; ++j) {
    if (!(is >> means[j] >> scales[j])) {
      return common::Status::InvalidArgument("truncated mlp standardizer");
    }
  }
  model.input_standardizer_.SetMoments(std::move(means), std::move(scales));
  for (size_t l = 0; l < layer_count; ++l) {
    size_t out_dim = 0;
    size_t in_dim = 0;
    if (!(is >> out_dim >> in_dim)) {
      return common::Status::InvalidArgument("truncated mlp layer header");
    }
    Layer layer;
    layer.weights.assign(out_dim, std::vector<double>(in_dim));
    layer.biases.assign(out_dim, 0.0);
    for (size_t o = 0; o < out_dim; ++o) {
      if (!(is >> layer.biases[o])) {
        return common::Status::InvalidArgument("truncated mlp biases");
      }
      for (size_t in = 0; in < in_dim; ++in) {
        if (!(is >> layer.weights[o][in])) {
          return common::Status::InvalidArgument("truncated mlp weights");
        }
      }
    }
    model.layers_.push_back(std::move(layer));
  }
  model.fitted_ = true;
  model.PackWeights();
  return model;
}

std::string MlpRegressor::Serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "mlp\n" << layers_.size() << "\n";
  os << label_mean_ << " " << label_scale_ << "\n";
  const auto& means = input_standardizer_.means();
  const auto& scales = input_standardizer_.scales();
  os << means.size();
  for (size_t j = 0; j < means.size(); ++j) {
    os << " " << means[j] << " " << scales[j];
  }
  os << "\n";
  for (const auto& layer : layers_) {
    os << layer.weights.size() << " "
       << (layer.weights.empty() ? 0 : layer.weights[0].size()) << "\n";
    for (size_t o = 0; o < layer.weights.size(); ++o) {
      os << layer.biases[o];
      for (double w : layer.weights[o]) os << " " << w;
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace ads::ml
