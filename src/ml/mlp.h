#ifndef ADS_ML_MLP_H_
#define ADS_ML_MLP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/model.h"

namespace ads::ml {

struct MlpOptions {
  std::vector<size_t> hidden_layers = {32, 32};
  double learning_rate = 0.01;
  double momentum = 0.9;
  int epochs = 200;
  size_t batch_size = 32;
  uint64_t seed = 1;
};

/// A small fully-connected neural network regressor (tanh hidden layers,
/// linear output, SGD with momentum). This is the "complex deep learning
/// model" counterpart in the paper's Insight 1 ablation: it can fit harder
/// surfaces but costs far more to train and serve, and is harder to debug.
class MlpRegressor : public Regressor {
 public:
  using Options = MlpOptions;

  explicit MlpRegressor(Options options = Options()) : options_(options) {}

  common::Status Fit(const Dataset& data) override;
  double Predict(const std::vector<double>& features) const override;
  /// Batched forward pass: weights are flattened into contiguous row-major
  /// buffers once per range and activation scratch is reused across rows,
  /// replacing per-row nested-vector walks and allocations. Bit-identical
  /// to Predict per row (same per-neuron accumulation order).
  void PredictBatchRange(const common::Matrix& rows, size_t begin, size_t end,
                         double* out) const override;
  std::string TypeName() const override { return "mlp"; }
  std::string Serialize() const override;
  double InferenceCost() const override;

  /// Reconstructs from Serialize() output (body after the type tag).
  static common::Result<MlpRegressor> Deserialize(const std::string& body);

  bool fitted() const { return fitted_; }
  /// Total number of trainable parameters.
  size_t parameter_count() const;

 private:
  struct Layer {
    // weights[out][in], biases[out].
    std::vector<std::vector<double>> weights;
    std::vector<double> biases;
  };

  std::vector<double> Forward(const std::vector<double>& x,
                              std::vector<std::vector<double>>* activations)
      const;

  Options options_;
  bool fitted_ = false;
  std::vector<Layer> layers_;
  Standardizer input_standardizer_;
  double label_mean_ = 0.0;
  double label_scale_ = 1.0;
};

}  // namespace ads::ml

#endif  // ADS_ML_MLP_H_
