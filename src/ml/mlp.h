#ifndef ADS_ML_MLP_H_
#define ADS_ML_MLP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "ml/model.h"

namespace ads::ml {

struct MlpOptions {
  std::vector<size_t> hidden_layers = {32, 32};
  double learning_rate = 0.01;
  double momentum = 0.9;
  int epochs = 200;
  size_t batch_size = 32;
  uint64_t seed = 1;
};

/// A small fully-connected neural network regressor (tanh hidden layers,
/// linear output, SGD with momentum). This is the "complex deep learning
/// model" counterpart in the paper's Insight 1 ablation: it can fit harder
/// surfaces but costs far more to train and serve, and is harder to debug.
class MlpRegressor : public Regressor {
 public:
  using Options = MlpOptions;

  explicit MlpRegressor(Options options = Options()) : options_(options) {}

  common::Status Fit(const Dataset& data) override;
  double Predict(const std::vector<double>& features) const override;
  /// Batched forward pass through the SIMD-dispatched tiled GEMM
  /// (ml/gemm.h): rows are packed into transposed, standardized tiles and
  /// each layer runs the register-blocked microkernel at the active
  /// common::SimdLevel. Weights are packed once at Fit/Deserialize time
  /// into 64-byte-aligned panels; activation scratch is thread-local, so
  /// steady-state calls allocate nothing and disjoint ranges may run on
  /// pool workers concurrently. Bit-identical to Predict per row (SIMD
  /// lanes are whole rows; per-neuron accumulation order unchanged).
  void PredictBatchRange(const common::Matrix& rows, size_t begin, size_t end,
                         double* out) const override;
  std::string TypeName() const override { return "mlp"; }
  std::string Serialize() const override;
  double InferenceCost() const override;

  /// Reconstructs from Serialize() output (body after the type tag).
  static common::Result<MlpRegressor> Deserialize(const std::string& body);

  bool fitted() const { return fitted_; }
  /// Total number of trainable parameters.
  size_t parameter_count() const;

  /// Test hook: start of the packed weight panels (64-byte aligned) and
  /// the widest layer width the batch scratch is sized from.
  const double* packed_weights_data() const { return packed_weights_.data(); }
  size_t max_layer_width() const { return max_width_; }

 private:
  struct Layer {
    // weights[out][in], biases[out].
    std::vector<std::vector<double>> weights;
    std::vector<double> biases;
  };

  /// One layer's view into the packed parameter buffers.
  struct PackedLayer {
    size_t out_dim = 0;
    size_t in_dim = 0;
    size_t w_offset = 0;  // into packed_weights_, 64-byte-aligned start
    size_t b_offset = 0;  // into packed_biases_
  };

  std::vector<double> Forward(const std::vector<double>& x,
                              std::vector<std::vector<double>>* activations)
      const;

  /// Flattens layers_ into the contiguous aligned panels the batch kernel
  /// streams. Called whenever layers_ change (end of Fit / Deserialize).
  void PackWeights();

  Options options_;
  bool fitted_ = false;
  std::vector<Layer> layers_;
  Standardizer input_standardizer_;
  double label_mean_ = 0.0;
  double label_scale_ = 1.0;
  std::vector<PackedLayer> packed_layers_;
  common::AlignedBuffer<double> packed_weights_;
  common::AlignedBuffer<double> packed_biases_;
  size_t max_width_ = 0;
};

}  // namespace ads::ml

#endif  // ADS_ML_MLP_H_
