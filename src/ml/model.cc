#include "ml/model.h"

#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "ml/forest.h"
#include "ml/linear.h"
#include "ml/mlp.h"
#include "ml/tree.h"

namespace ads::ml {

void Regressor::PredictBatch(const common::Matrix& rows,
                             std::vector<double>* out) const {
  ADS_CHECK(out != nullptr) << "PredictBatch needs an output vector";
  out->resize(rows.rows());
  if (rows.rows() == 0) return;
  PredictBatchRange(rows, 0, rows.rows(), out->data());
}

void Regressor::PredictBatchRange(const common::Matrix& rows, size_t begin,
                                  size_t end, double* out) const {
  // Fallback for families without a batched kernel: row-at-a-time through
  // the virtual Predict, which is the equivalence reference by definition.
  std::vector<double> row(rows.cols());
  for (size_t r = begin; r < end; ++r) {
    const double* p = rows.RowPtr(r);
    row.assign(p, p + rows.cols());
    out[r] = Predict(row);
  }
}

std::vector<double> Regressor::PredictBatch(
    const std::vector<std::vector<double>>& rows) const {
  auto matrix = common::Matrix::FromRows(rows);
  ADS_CHECK_OK(matrix.status());
  std::vector<double> out;
  PredictBatch(*matrix, &out);
  return out;
}

void PredictBatchParallel(const Regressor& model, const common::Matrix& rows,
                          common::ThreadPool& pool, std::vector<double>* out,
                          size_t grain) {
  ADS_CHECK(out != nullptr) << "PredictBatchParallel needs an output vector";
  ADS_CHECK(grain > 0) << "grain must be positive";
  out->resize(rows.rows());
  if (rows.rows() == 0) return;
  double* data = out->data();
  pool.ParallelFor(0, rows.rows(), grain,
                   [&model, &rows, data](size_t begin, size_t end) {
                     model.PredictBatchRange(rows, begin, end, data);
                   });
}

common::Result<std::unique_ptr<Regressor>> DeserializeRegressor(
    const std::string& blob) {
  size_t newline = blob.find('\n');
  if (newline == std::string::npos) {
    return common::Status::InvalidArgument("model blob missing type tag");
  }
  std::string tag = blob.substr(0, newline);
  std::string body = blob.substr(newline + 1);
  if (tag == "linear") {
    auto m = LinearRegressor::Deserialize(body);
    if (!m.ok()) return m.status();
    return std::unique_ptr<Regressor>(
        std::make_unique<LinearRegressor>(std::move(m).value()));
  }
  if (tag == "tree") {
    auto m = RegressionTree::Deserialize(body);
    if (!m.ok()) return m.status();
    return std::unique_ptr<Regressor>(
        std::make_unique<RegressionTree>(std::move(m).value()));
  }
  if (tag == "forest") {
    auto m = RandomForestRegressor::Deserialize(body);
    if (!m.ok()) return m.status();
    return std::unique_ptr<Regressor>(
        std::make_unique<RandomForestRegressor>(std::move(m).value()));
  }
  if (tag == "gbt") {
    auto m = GradientBoostedTrees::Deserialize(body);
    if (!m.ok()) return m.status();
    return std::unique_ptr<Regressor>(
        std::make_unique<GradientBoostedTrees>(std::move(m).value()));
  }
  if (tag == "mlp") {
    auto m = MlpRegressor::Deserialize(body);
    if (!m.ok()) return m.status();
    return std::unique_ptr<Regressor>(
        std::make_unique<MlpRegressor>(std::move(m).value()));
  }
  return common::Status::Unimplemented("unsupported model family: " + tag);
}

}  // namespace ads::ml
