#include "ml/model.h"

#include <memory>

#include "ml/forest.h"
#include "ml/linear.h"
#include "ml/mlp.h"
#include "ml/tree.h"

namespace ads::ml {

common::Result<std::unique_ptr<Regressor>> DeserializeRegressor(
    const std::string& blob) {
  size_t newline = blob.find('\n');
  if (newline == std::string::npos) {
    return common::Status::InvalidArgument("model blob missing type tag");
  }
  std::string tag = blob.substr(0, newline);
  std::string body = blob.substr(newline + 1);
  if (tag == "linear") {
    auto m = LinearRegressor::Deserialize(body);
    if (!m.ok()) return m.status();
    return std::unique_ptr<Regressor>(
        std::make_unique<LinearRegressor>(std::move(m).value()));
  }
  if (tag == "tree") {
    auto m = RegressionTree::Deserialize(body);
    if (!m.ok()) return m.status();
    return std::unique_ptr<Regressor>(
        std::make_unique<RegressionTree>(std::move(m).value()));
  }
  if (tag == "forest") {
    auto m = RandomForestRegressor::Deserialize(body);
    if (!m.ok()) return m.status();
    return std::unique_ptr<Regressor>(
        std::make_unique<RandomForestRegressor>(std::move(m).value()));
  }
  if (tag == "gbt") {
    auto m = GradientBoostedTrees::Deserialize(body);
    if (!m.ok()) return m.status();
    return std::unique_ptr<Regressor>(
        std::make_unique<GradientBoostedTrees>(std::move(m).value()));
  }
  if (tag == "mlp") {
    auto m = MlpRegressor::Deserialize(body);
    if (!m.ok()) return m.status();
    return std::unique_ptr<Regressor>(
        std::make_unique<MlpRegressor>(std::move(m).value()));
  }
  return common::Status::Unimplemented("unsupported model family: " + tag);
}

}  // namespace ads::ml
