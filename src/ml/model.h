#ifndef ADS_ML_MODEL_H_
#define ADS_ML_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/dataset.h"

namespace ads::ml {

/// A trainable regression model. This is the "generic container" interface
/// from the paper's standardization direction: every model — regardless of
/// family — trains from a Dataset, predicts from a feature vector, and
/// serializes to a portable text form so it can move between the training
/// and serving sides of the feedback loop.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on the dataset. Returns an error (and leaves the model unfitted)
  /// if the data is unusable (empty, wrong arity, ...).
  virtual common::Status Fit(const Dataset& data) = 0;

  /// Predicts the label for one feature vector. Requires a fitted model.
  virtual double Predict(const std::vector<double>& features) const = 0;

  /// Model family name, e.g. "linear", "tree", "forest".
  virtual std::string TypeName() const = 0;

  /// Portable text serialization (the ONNX stand-in).
  virtual std::string Serialize() const = 0;

  /// Rough cost accounting used by the simplicity ablation: the number of
  /// scalar operations one Predict performs.
  virtual double InferenceCost() const = 0;

  /// Batch helper.
  std::vector<double> PredictBatch(
      const std::vector<std::vector<double>>& rows) const {
    std::vector<double> out;
    out.reserve(rows.size());
    for (const auto& r : rows) out.push_back(Predict(r));
    return out;
  }
};

/// A trainable binary classifier producing P(label == 1).
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the dataset; labels must be 0 or 1.
  virtual common::Status Fit(const Dataset& data) = 0;
  /// Returns P(label == 1 | features).
  virtual double PredictProbability(
      const std::vector<double>& features) const = 0;
  virtual std::string TypeName() const = 0;

  /// Hard decision at the 0.5 threshold.
  bool PredictLabel(const std::vector<double>& features) const {
    return PredictProbability(features) >= 0.5;
  }
};

/// Reconstructs a regressor from the output of Regressor::Serialize().
/// Supports the families that the model registry ships across systems:
/// linear, tree, forest, gbt.
common::Result<std::unique_ptr<Regressor>> DeserializeRegressor(
    const std::string& blob);

}  // namespace ads::ml

#endif  // ADS_ML_MODEL_H_
