#ifndef ADS_ML_MODEL_H_
#define ADS_ML_MODEL_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "ml/dataset.h"

namespace ads::common {
class ThreadPool;
}  // namespace ads::common

namespace ads::ml {

/// A trainable regression model. This is the "generic container" interface
/// from the paper's standardization direction: every model — regardless of
/// family — trains from a Dataset, predicts from a feature vector, and
/// serializes to a portable text form so it can move between the training
/// and serving sides of the feedback loop.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on the dataset. Returns an error (and leaves the model unfitted)
  /// if the data is unusable (empty, wrong arity, ...).
  virtual common::Status Fit(const Dataset& data) = 0;

  /// Predicts the label for one feature vector. Requires a fitted model.
  virtual double Predict(const std::vector<double>& features) const = 0;

  /// Model family name, e.g. "linear", "tree", "forest".
  virtual std::string TypeName() const = 0;

  /// Portable text serialization (the ONNX stand-in).
  virtual std::string Serialize() const = 0;

  /// Rough cost accounting used by the simplicity ablation: the number of
  /// scalar operations one Predict performs.
  virtual double InferenceCost() const = 0;

  /// Batched predict: fills (*out)[i] with the prediction for row i of
  /// `rows`, bit-identical to calling Predict per row but through the
  /// family's cache-friendly kernel (flattened tree arrays, reused MLP
  /// scratch, pointer-walked linear dot). The serving batch path and the
  /// perf harness go through here; per-row results never depend on batch
  /// size or range splits.
  void PredictBatch(const common::Matrix& rows, std::vector<double>* out) const;

  /// Range hook behind PredictBatch: writes predictions for rows
  /// [begin, end) into out[begin..end). Overrides must be bit-identical to
  /// the row-at-a-time default and safe to call concurrently on disjoint
  /// ranges (PredictBatchParallel fans chunks out over a thread pool).
  virtual void PredictBatchRange(const common::Matrix& rows, size_t begin,
                                 size_t end, double* out) const;

  /// Convenience overload for vector-of-rows callers; requires equal-arity
  /// rows.
  std::vector<double> PredictBatch(
      const std::vector<std::vector<double>>& rows) const;
};

/// PredictBatch chunked over `pool`: rows are split into `grain`-sized
/// ranges executed as pool tasks. Chunk boundaries depend only on (rows,
/// grain) and each row is written exactly once, so the result is
/// bit-identical to model.PredictBatch for any worker count (including
/// ThreadPool::Serial()). The win is ~linear for tree ensembles and MLPs
/// once batches reach a few hundred rows; tiny batches stay serial.
void PredictBatchParallel(const Regressor& model, const common::Matrix& rows,
                          common::ThreadPool& pool, std::vector<double>* out,
                          size_t grain = 256);

/// A trainable binary classifier producing P(label == 1).
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the dataset; labels must be 0 or 1.
  virtual common::Status Fit(const Dataset& data) = 0;
  /// Returns P(label == 1 | features).
  virtual double PredictProbability(
      const std::vector<double>& features) const = 0;
  virtual std::string TypeName() const = 0;

  /// Hard decision at the 0.5 threshold.
  bool PredictLabel(const std::vector<double>& features) const {
    return PredictProbability(features) >= 0.5;
  }
};

/// Reconstructs a regressor from the output of Regressor::Serialize().
/// Supports the families that the model registry ships across systems:
/// linear, tree, forest, gbt.
common::Result<std::unique_ptr<Regressor>> DeserializeRegressor(
    const std::string& blob);

}  // namespace ads::ml

#endif  // ADS_ML_MODEL_H_
