#include "ml/registry.h"

namespace ads::ml {

ModelRegistry::ModelRegistry(const ModelRegistry& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  entries_ = other.entries_;
}

ModelRegistry& ModelRegistry::operator=(const ModelRegistry& other) {
  if (this == &other) return *this;
  std::map<std::string, Entry> snapshot;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    snapshot = other.entries_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  entries_ = std::move(snapshot);
  return *this;
}

uint32_t ModelRegistry::Register(const std::string& name, std::string blob,
                                 std::map<std::string, double> metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  Version v;
  v.version = static_cast<uint32_t>(e.versions.size()) + 1;
  v.blob = std::move(blob);
  v.metrics = std::move(metrics);
  e.versions.push_back(std::move(v));
  return e.versions.back().version;
}

common::Status ModelRegistry::Deploy(const std::string& name,
                                     uint32_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return common::Status::NotFound("unknown model: " + name);
  }
  Entry& e = it->second;
  if (version == 0 || version > e.versions.size()) {
    return common::Status::NotFound("unknown version of " + name);
  }
  if (e.deployed != 0) e.deploy_history.push_back(e.deployed);
  e.deployed = version;
  return common::Status::Ok();
}

common::Status ModelRegistry::Rollback(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return common::Status::NotFound("unknown model: " + name);
  }
  Entry& e = it->second;
  if (e.deploy_history.empty()) {
    return common::Status::FailedPrecondition(
        "no previous deployment to roll back to for " + name);
  }
  e.deployed = e.deploy_history.back();
  e.deploy_history.pop_back();
  // A rollback cancels any flight of the now-withdrawn model.
  e.flight_active = false;
  return common::Status::Ok();
}

uint32_t ModelRegistry::DeployedVersion(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.deployed;
}

uint32_t ModelRegistry::PreviousVersion(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.deploy_history.empty()) return 0;
  return it->second.deploy_history.back();
}

common::Result<std::string> ModelRegistry::DeployedBlobLocked(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.deployed == 0) {
    return common::Status::NotFound("no deployed model for " + name);
  }
  return it->second.versions[it->second.deployed - 1].blob;
}

common::Result<std::string> ModelRegistry::DeployedBlob(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return DeployedBlobLocked(name);
}

common::Result<std::unique_ptr<Regressor>> ModelRegistry::DeployedModel(
    const std::string& name) const {
  std::string blob;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto stored = DeployedBlobLocked(name);
    if (!stored.ok()) return stored.status();
    blob = std::move(*stored);
  }
  // Deserialization happens outside the lock: it touches only the copied
  // blob, so slow model materialization never stalls serving readers.
  return DeserializeRegressor(blob);
}

common::Status ModelRegistry::StartFlight(const std::string& name,
                                          uint32_t treatment,
                                          double fraction) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return common::Status::NotFound("unknown model: " + name);
  }
  Entry& e = it->second;
  if (e.deployed == 0) {
    return common::Status::FailedPrecondition(
        "cannot flight without a deployed control model");
  }
  if (treatment == 0 || treatment > e.versions.size()) {
    return common::Status::NotFound("unknown treatment version");
  }
  if (fraction <= 0.0 || fraction >= 1.0) {
    return common::Status::InvalidArgument("flight fraction must be in (0,1)");
  }
  e.flight_active = true;
  e.flight_treatment = treatment;
  e.flight_fraction = fraction;
  return common::Status::Ok();
}

common::Status ModelRegistry::EndFlight(const std::string& name,
                                        bool promote) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || !it->second.flight_active) {
    return common::Status::FailedPrecondition("no active flight for " + name);
  }
  Entry& e = it->second;
  e.flight_active = false;
  if (promote) {
    if (e.deployed != 0) e.deploy_history.push_back(e.deployed);
    e.deployed = e.flight_treatment;
  }
  return common::Status::Ok();
}

bool ModelRegistry::FlightActive(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.flight_active;
}

uint32_t ModelRegistry::ServingVersion(const std::string& name,
                                       common::Rng& rng) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return 0;
  const Entry& e = it->second;
  if (e.flight_active && rng.Bernoulli(e.flight_fraction)) {
    return e.flight_treatment;
  }
  return e.deployed;
}

std::vector<uint32_t> ModelRegistry::Versions(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> out;
  auto it = entries_.find(name);
  if (it == entries_.end()) return out;
  for (const Version& v : it->second.versions) out.push_back(v.version);
  return out;
}

common::Result<ModelRegistry::Version> ModelRegistry::GetVersion(
    const std::string& name, uint32_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || version == 0 ||
      version > it->second.versions.size()) {
    return common::Status::NotFound("unknown model version");
  }
  return it->second.versions[version - 1];
}

}  // namespace ads::ml
