#ifndef ADS_ML_REGISTRY_H_
#define ADS_ML_REGISTRY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/model.h"

namespace ads::ml {

/// Versioned model registry with deploy/rollback and flighting, the MLOps
/// surface the paper's Insight 3 calls indispensable: every ML solution
/// needs tracking/versioning for continuous integration, a monitoring hook,
/// and a rollback mechanism that reacts fast.
///
/// Models are stored in their portable serialized form (the "generic
/// container"), so the registry is independent of model family.
///
/// Thread-safe: every method takes an internal mutex, so serving readers
/// (DeployedVersion / GetVersion / DeployedBlob from concurrent
/// PredictBatch paths) may race promote / rollback / flight transitions
/// from a controller thread. Version swaps are atomic — Register installs
/// the full blob before the version number is ever visible, and Deploy /
/// Rollback / EndFlight flip the deployed pointer in one critical section
/// — so a reader observes either the old or the new version in its
/// entirety, never a half-registered model.
class ModelRegistry {
 public:
  /// One stored model version.
  struct Version {
    uint32_t version = 0;
    std::string blob;
    /// Free-form training metadata (e.g. validation error) for audits.
    std::map<std::string, double> metrics;
  };

  ModelRegistry() = default;
  /// Copying snapshots the registry contents under the source's lock
  /// (the copy gets its own, unlocked mutex) — handy for tests that fork
  /// a baseline registry state.
  ModelRegistry(const ModelRegistry& other);
  ModelRegistry& operator=(const ModelRegistry& other);

  /// Registers a new version of `name`; returns the assigned version
  /// number (starting at 1). Does not change the deployed version.
  uint32_t Register(const std::string& name, std::string blob,
                    std::map<std::string, double> metrics = {});

  /// Marks a version as deployed. Fails if it does not exist.
  common::Status Deploy(const std::string& name, uint32_t version);

  /// Reverts to the previously deployed version. Fails if there is no
  /// deployment history to revert to.
  common::Status Rollback(const std::string& name);

  /// The deployed version number (0 if none deployed).
  uint32_t DeployedVersion(const std::string& name) const;
  /// The version deployed immediately before the current one (0 if the
  /// deploy history is empty) — the fallback target of Rollback().
  uint32_t PreviousVersion(const std::string& name) const;
  /// The deployed model blob.
  common::Result<std::string> DeployedBlob(const std::string& name) const;
  /// Materializes the deployed model.
  common::Result<std::unique_ptr<Regressor>> DeployedModel(
      const std::string& name) const;

  /// Starts a flight (A/B test): fraction of traffic goes to `treatment`.
  common::Status StartFlight(const std::string& name, uint32_t treatment,
                             double fraction);
  /// Ends the flight; if promote, the treatment becomes deployed.
  common::Status EndFlight(const std::string& name, bool promote);
  bool FlightActive(const std::string& name) const;

  /// Version serving one request under the current flight split.
  uint32_t ServingVersion(const std::string& name, common::Rng& rng) const;

  /// All stored versions of a model (empty if unknown).
  std::vector<uint32_t> Versions(const std::string& name) const;
  common::Result<Version> GetVersion(const std::string& name,
                                     uint32_t version) const;

 private:
  struct Entry {
    std::vector<Version> versions;
    uint32_t deployed = 0;
    std::vector<uint32_t> deploy_history;
    // Flight state.
    bool flight_active = false;
    uint32_t flight_treatment = 0;
    double flight_fraction = 0.0;
  };

  /// Locked lookup helper (requires mu_ held).
  common::Result<std::string> DeployedBlobLocked(const std::string& name) const;

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace ads::ml

#endif  // ADS_ML_REGISTRY_H_
