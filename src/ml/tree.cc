#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "common/logging.h"

namespace ads::ml {
namespace {

double MeanOf(const Dataset& data, const std::vector<size_t>& idx) {
  double s = 0.0;
  for (size_t i : idx) s += data.label(i);
  return idx.empty() ? 0.0 : s / static_cast<double>(idx.size());
}

}  // namespace

common::Status RegressionTree::Fit(const Dataset& data) {
  if (data.empty()) {
    return common::Status::InvalidArgument("tree fit on empty data");
  }
  nodes_.clear();
  std::vector<size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0);
  common::Rng rng(options_.seed);
  Build(data, indices, 0, rng);
  flat_ = FlatTreeEnsemble::FromTree(*this);
  return common::Status::Ok();
}

int RegressionTree::Build(const Dataset& data, std::vector<size_t>& indices,
                          int depth, common::Rng& rng) {
  int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_id].value = MeanOf(data, indices);

  if (depth >= options_.max_depth ||
      indices.size() < 2 * options_.min_samples_leaf) {
    return node_id;
  }

  // Pick the candidate feature set.
  size_t d = data.dimensions();
  std::vector<size_t> features(d);
  std::iota(features.begin(), features.end(), 0);
  if (options_.features_per_split > 0 && options_.features_per_split < d) {
    rng.Shuffle(features);
    features.resize(options_.features_per_split);
  }

  // Total sum/sumsq for variance-reduction bookkeeping.
  double total_sum = 0.0;
  for (size_t i : indices) total_sum += data.label(i);
  double n_total = static_cast<double>(indices.size());

  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, double>> vals;  // (feature value, label)
  vals.reserve(indices.size());
  for (size_t f : features) {
    vals.clear();
    for (size_t i : indices) vals.emplace_back(data.row(i)[f], data.label(i));
    std::sort(vals.begin(), vals.end());
    if (vals.front().first == vals.back().first) continue;  // constant

    // Candidate positions: all boundaries, or thinned to quantiles.
    size_t n = vals.size();
    size_t step = 1;
    if (options_.max_candidates_per_feature > 0 &&
        n > options_.max_candidates_per_feature) {
      step = n / options_.max_candidates_per_feature;
    }
    double left_sum = 0.0;
    size_t last_scanned = 0;
    for (size_t pos = options_.min_samples_leaf;
         pos + options_.min_samples_leaf <= n; pos += step) {
      for (size_t k = last_scanned; k < pos; ++k) left_sum += vals[k].second;
      last_scanned = pos;
      if (vals[pos - 1].first == vals[pos].first) continue;  // not a boundary
      double n_left = static_cast<double>(pos);
      double n_right = n_total - n_left;
      double right_sum = total_sum - left_sum;
      // Variance reduction is equivalent to maximizing
      // sum_l^2/n_l + sum_r^2/n_r.
      double score = left_sum * left_sum / n_left +
                     right_sum * right_sum / n_right -
                     total_sum * total_sum / n_total;
      if (score > best_gain) {
        best_gain = score;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (vals[pos - 1].first + vals[pos].first);
      }
    }
  }

  if (best_feature < 0) return node_id;  // no useful split

  std::vector<size_t> left_idx;
  std::vector<size_t> right_idx;
  for (size_t i : indices) {
    if (data.row(i)[static_cast<size_t>(best_feature)] <= best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.size() < options_.min_samples_leaf ||
      right_idx.size() < options_.min_samples_leaf) {
    return node_id;
  }

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  int left = Build(data, left_idx, depth + 1, rng);
  nodes_[node_id].left = left;
  int right = Build(data, right_idx, depth + 1, rng);
  nodes_[node_id].right = right;
  return node_id;
}

double RegressionTree::Predict(const std::vector<double>& features) const {
  ADS_CHECK(fitted()) << "predict on unfitted tree";
  int cur = 0;
  while (nodes_[cur].feature >= 0) {
    size_t f = static_cast<size_t>(nodes_[cur].feature);
    ADS_CHECK(f < features.size()) << "tree predict arity mismatch";
    cur = features[f] <= nodes_[cur].threshold ? nodes_[cur].left
                                               : nodes_[cur].right;
  }
  return nodes_[cur].value;
}

void RegressionTree::PredictBatchRange(const common::Matrix& rows,
                                       size_t begin, size_t end,
                                       double* out) const {
  ADS_CHECK(fitted()) << "predict on unfitted tree";
  flat_.PredictRows(rows, begin, end, out);
}

int RegressionTree::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the arena.
  std::vector<std::pair<int, int>> stack = {{0, 1}};
  int max_depth = 0;
  while (!stack.empty()) {
    auto [id, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    if (nodes_[static_cast<size_t>(id)].feature >= 0) {
      stack.push_back({nodes_[static_cast<size_t>(id)].left, d + 1});
      stack.push_back({nodes_[static_cast<size_t>(id)].right, d + 1});
    }
  }
  return max_depth;
}

double RegressionTree::InferenceCost() const {
  return static_cast<double>(depth());
}

std::string RegressionTree::Serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "tree\n" << nodes_.size() << "\n";
  for (const Node& n : nodes_) {
    os << n.feature << " " << n.threshold << " " << n.value << " " << n.left
       << " " << n.right << "\n";
  }
  return os.str();
}

common::Result<RegressionTree> RegressionTree::Deserialize(
    const std::string& body) {
  std::istringstream is(body);
  size_t count = 0;
  if (!(is >> count)) {
    return common::Status::InvalidArgument("bad tree blob");
  }
  std::vector<Node> nodes(count);
  for (size_t i = 0; i < count; ++i) {
    Node& n = nodes[i];
    if (!(is >> n.feature >> n.threshold >> n.value >> n.left >> n.right)) {
      return common::Status::InvalidArgument("truncated tree blob");
    }
  }
  RegressionTree tree;
  tree.SetNodes(std::move(nodes));
  return tree;
}

}  // namespace ads::ml
