#ifndef ADS_ML_TREE_H_
#define ADS_ML_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/flat_tree.h"
#include "ml/model.h"

namespace ads::ml {

struct RegressionTreeOptions {
  int max_depth = 8;
  size_t min_samples_leaf = 3;
  /// Consider at most this many split candidates per feature (quantile
  /// thinning); 0 means all midpoints.
  size_t max_candidates_per_feature = 32;
  /// If positive, consider only this many random features per split
  /// (for random forests). 0 means all features.
  size_t features_per_split = 0;
  /// Seed for feature subsampling when features_per_split > 0.
  uint64_t seed = 0;
};

/// CART regression tree (variance-reduction splits). Together with
/// LinearRegressor, this is the other "simple model" family the paper
/// reports as covering most production engagements.
class RegressionTree : public Regressor {
 public:
  using Options = RegressionTreeOptions;

  explicit RegressionTree(Options options = Options()) : options_(options) {}

  common::Status Fit(const Dataset& data) override;
  double Predict(const std::vector<double>& features) const override;
  /// Batched kernel over the flattened SoA node arrays; bit-identical to
  /// Predict per row.
  void PredictBatchRange(const common::Matrix& rows, size_t begin, size_t end,
                         double* out) const override;
  std::string TypeName() const override { return "tree"; }
  std::string Serialize() const override;
  double InferenceCost() const override;

  static common::Result<RegressionTree> Deserialize(const std::string& body);

  bool fitted() const { return !nodes_.empty(); }
  size_t node_count() const { return nodes_.size(); }
  int depth() const;

  /// One tree node; leaves have feature == -1.
  struct Node {
    int feature = -1;       // split feature, or -1 for leaf
    double threshold = 0.0; // go left if x[feature] <= threshold
    double value = 0.0;     // leaf prediction (mean of samples)
    int left = -1;
    int right = -1;
  };
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Installs a prebuilt node arena (deserialization).
  void SetNodes(std::vector<Node> nodes) {
    nodes_ = std::move(nodes);
    flat_ = fitted() ? FlatTreeEnsemble::FromTree(*this) : FlatTreeEnsemble();
  }

 private:
  int Build(const Dataset& data, std::vector<size_t>& indices, int depth,
            common::Rng& rng);

  Options options_;
  std::vector<Node> nodes_;
  /// SoA mirror of nodes_, rebuilt whenever the arena changes; the batched
  /// predict path reads only this.
  FlatTreeEnsemble flat_;
};

}  // namespace ads::ml

#endif  // ADS_ML_TREE_H_
