#include "scenario/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace ads::scenario {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The discrete grids the search moves on. Deliberately coarse: each step
// is a change an operator would actually consider, and coarse grids keep
// the eval budget meaningful.
const std::vector<size_t> kShardGrid = {1, 2, 4, 8};
const std::vector<size_t> kReplicaGrid = {1, 2, 3};
const std::vector<size_t> kWorkerGrid = {1, 2, 4};
const std::vector<size_t> kQueueGrid = {32, 128, 512, 2048};
const std::vector<size_t> kBatchGrid = {1, 4, 8, 16};
const std::vector<double> kLingerGrid = {0.0005, 0.002, 0.005};
const std::vector<double> kHedgeQuantileGrid = {0.90, 0.95, 0.99};
const std::vector<double> kHedgeFactorGrid = {1.0, 1.5, 2.0};
const std::vector<double> kTenantRpsGrid = {5.0, 10.0, 25.0};
const std::vector<uint32_t> kBreakerThresholdGrid = {3, 8};
const std::vector<double> kBreakerCooldownGrid = {1.0, 5.0};
// Ordered ascending; infinity (= diverts off) is the top step.
const std::vector<double> kOverloadDepthGrid = {16.0, 64.0, kInf};

/// Grid values adjacent to `current` on a sorted grid: the two flanking
/// steps when `current` sits on the grid, or the two bracketing values
/// (snap moves) when it sits between points.
template <typename T>
std::vector<T> Adjacent(const std::vector<T>& grid, T current) {
  std::vector<T> out;
  size_t i = 0;
  while (i < grid.size() && grid[i] < current) ++i;
  if (i < grid.size() && grid[i] == current) {
    if (i > 0) out.push_back(grid[i - 1]);
    if (i + 1 < grid.size()) out.push_back(grid[i + 1]);
  } else {
    if (i > 0) out.push_back(grid[i - 1]);
    if (i < grid.size()) out.push_back(grid[i]);
  }
  return out;
}

template <typename T>
T Pick(const std::vector<T>& grid, common::Rng& rng) {
  return grid[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(grid.size()) - 1))];
}

/// Deterministic preference order among equal scores: the baseline key
/// first, then lexicographically smaller keys.
bool PreferKey(const std::string& a, const std::string& b,
               const std::string& baseline_key) {
  if ((a == baseline_key) != (b == baseline_key)) return a == baseline_key;
  return a < b;
}

}  // namespace

BlueprintOptimizer::BlueprintOptimizer(OptimizerOptions options)
    : options_(options) {}

std::vector<Blueprint> BlueprintOptimizer::Neighbors(
    const Blueprint& from) const {
  std::vector<Blueprint> out;
  auto push = [&out](Blueprint b) { out.push_back(std::move(b)); };
  for (size_t v : Adjacent(kShardGrid, from.shards)) {
    Blueprint b = from;
    b.shards = v;
    push(b);
  }
  for (size_t v : Adjacent(kReplicaGrid, from.replicas_per_shard)) {
    Blueprint b = from;
    b.replicas_per_shard = v;
    push(b);
  }
  for (size_t v : Adjacent(kWorkerGrid, from.workers_per_replica)) {
    Blueprint b = from;
    b.workers_per_replica = v;
    push(b);
  }
  for (size_t v : Adjacent(kQueueGrid, from.queue_capacity)) {
    Blueprint b = from;
    b.queue_capacity = v;
    push(b);
  }
  for (size_t v : Adjacent(kBatchGrid, from.max_batch_size)) {
    Blueprint b = from;
    b.max_batch_size = v;
    push(b);
  }
  for (double v : Adjacent(kLingerGrid, from.max_linger_seconds)) {
    Blueprint b = from;
    b.max_linger_seconds = v;
    push(b);
  }
  {
    Blueprint b = from;
    b.hedging = !b.hedging;
    push(b);
  }
  if (from.hedging) {
    for (double v : Adjacent(kHedgeQuantileGrid, from.hedge_quantile)) {
      Blueprint b = from;
      b.hedge_quantile = v;
      push(b);
    }
    for (double v : Adjacent(kHedgeFactorGrid, from.hedge_delay_factor)) {
      Blueprint b = from;
      b.hedge_delay_factor = v;
      push(b);
    }
  }
  {
    Blueprint b = from;
    b.rate_limiting = !b.rate_limiting;
    push(b);
  }
  if (from.rate_limiting) {
    for (double v : Adjacent(kTenantRpsGrid, from.tenant_rps)) {
      Blueprint b = from;
      b.tenant_rps = v;
      push(b);
    }
  }
  {
    Blueprint b = from;
    b.priority_shedding = !b.priority_shedding;
    push(b);
  }
  for (uint32_t v :
       Adjacent(kBreakerThresholdGrid, from.breaker_failure_threshold)) {
    Blueprint b = from;
    b.breaker_failure_threshold = v;
    push(b);
  }
  for (double v :
       Adjacent(kBreakerCooldownGrid, from.breaker_cooldown_seconds)) {
    Blueprint b = from;
    b.breaker_cooldown_seconds = v;
    push(b);
  }
  for (double v : Adjacent(kOverloadDepthGrid, from.overload_queue_depth)) {
    Blueprint b = from;
    b.overload_queue_depth = v;
    push(b);
  }
  return out;
}

Blueprint BlueprintOptimizer::RandomBlueprint(uint64_t draw_seed) const {
  common::Rng rng(options_.seed * 7919 + draw_seed + 1);
  Blueprint b;
  b.shards = Pick(kShardGrid, rng);
  b.replicas_per_shard = Pick(kReplicaGrid, rng);
  b.workers_per_replica = Pick(kWorkerGrid, rng);
  b.queue_capacity = Pick(kQueueGrid, rng);
  b.max_batch_size = Pick(kBatchGrid, rng);
  b.max_linger_seconds = Pick(kLingerGrid, rng);
  b.hedging = rng.Bernoulli(0.5);
  b.hedge_quantile = Pick(kHedgeQuantileGrid, rng);
  b.hedge_delay_factor = Pick(kHedgeFactorGrid, rng);
  b.rate_limiting = rng.Bernoulli(0.5);
  b.tenant_rps = Pick(kTenantRpsGrid, rng);
  b.priority_shedding = rng.Bernoulli(0.5);
  b.breaker_failure_threshold = Pick(kBreakerThresholdGrid, rng);
  b.breaker_cooldown_seconds = Pick(kBreakerCooldownGrid, rng);
  b.overload_queue_depth = Pick(kOverloadDepthGrid, rng);
  return b;
}

std::vector<ScenarioReport> BlueprintOptimizer::Evaluate(
    const ScenarioSpec& spec, const std::vector<Blueprint>& candidates) {
  auto& scache = cache_[spec.name];
  // Admit uncached keys in candidate order until the budget runs out;
  // cached keys are always free.
  std::vector<Blueprint> todo;
  std::vector<std::string> todo_keys;
  for (const Blueprint& bp : candidates) {
    std::string key = bp.Key();
    if (scache.count(key) > 0) continue;
    if (std::find(todo_keys.begin(), todo_keys.end(), key) != todo_keys.end())
      continue;
    if (spent_ + todo.size() >= options_.eval_budget) break;
    todo.push_back(bp);
    todo_keys.push_back(std::move(key));
  }
  // Index-slot writes keep the result independent of worker interleaving
  // (and RunScenario itself is a pure function of (spec, blueprint)).
  std::vector<ScenarioReport> slots(todo.size());
  common::parallel_for(0, todo.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      slots[i] = RunScenario(spec, todo[i]);
    }
  });
  for (size_t i = 0; i < todo.size(); ++i) {
    scache[todo_keys[i]] = EvaluatedBlueprint{todo[i], slots[i]};
    ++spent_;
  }
  std::vector<ScenarioReport> out;
  out.reserve(candidates.size());
  for (const Blueprint& bp : candidates) {
    auto it = scache.find(bp.Key());
    if (it == scache.end()) {
      // Budget exhausted before this candidate: report an infinitely bad
      // score so the search never selects an unevaluated point.
      ScenarioReport unevaluated;
      unevaluated.score = kInf;
      unevaluated.cost = kInf;
      unevaluated.qos_loss = kInf;
      out.push_back(unevaluated);
    } else {
      out.push_back(it->second.report);
    }
  }
  return out;
}

OptimizationResult BlueprintOptimizer::Optimize(const ScenarioSpec& spec) {
  spent_ = 0;
  OptimizationResult result;
  result.scenario = spec.name;

  const Blueprint default_bp = DefaultBlueprint();
  const std::string baseline_key = default_bp.Key();
  result.baseline.blueprint = default_bp;
  result.baseline.report = Evaluate(spec, {default_bp})[0];

  // Seeded descent from the default, then from each random restart point.
  std::vector<Blueprint> starts = {default_bp};
  for (size_t r = 0; r < options_.restarts; ++r) {
    starts.push_back(RandomBlueprint(r));
  }
  for (const Blueprint& start : starts) {
    Blueprint current = start;
    double current_score = Evaluate(spec, {current})[0].score;
    if (!std::isfinite(current_score)) break;  // budget gone
    while (spent_ < options_.eval_budget) {
      std::vector<Blueprint> moves = Neighbors(current);
      std::vector<ScenarioReport> reports = Evaluate(spec, moves);
      double best_score = current_score;
      size_t best_i = moves.size();
      for (size_t i = 0; i < reports.size(); ++i) {
        if (reports[i].score < best_score ||
            (best_i < moves.size() && reports[i].score == best_score &&
             moves[i].Key() < moves[best_i].Key())) {
          best_score = reports[i].score;
          best_i = i;
        }
      }
      if (best_i == moves.size()) break;  // local minimum
      current = moves[best_i];
      current_score = best_score;
    }
  }

  // Best point and Pareto frontier over everything the search touched.
  const auto& scache = cache_[spec.name];
  ADS_CHECK(!scache.empty()) << "optimizer evaluated nothing";
  const EvaluatedBlueprint* best = &result.baseline;
  for (const auto& [key, point] : scache) {
    const double s = point.report.score;
    const double bs = best->report.score;
    if (s < bs || (s == bs && PreferKey(key, best->blueprint.Key(),
                                        baseline_key))) {
      best = &point;
    }
  }
  result.best = *best;
  for (const auto& [key, point] : scache) {
    bool dominated = false;
    for (const auto& [other_key, other] : scache) {
      if (Dominates(other.report, point.report)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.frontier.push_back(point);
  }
  std::sort(result.frontier.begin(), result.frontier.end(),
            [](const EvaluatedBlueprint& a, const EvaluatedBlueprint& b) {
              if (a.report.cost != b.report.cost)
                return a.report.cost < b.report.cost;
              return a.blueprint.Key() < b.blueprint.Key();
            });
  result.best_dominates_baseline =
      Dominates(result.best.report, result.baseline.report);
  result.evaluations = spent_;
  return result;
}

EvaluatedBlueprint BlueprintOptimizer::OptimizeRobust(
    const std::vector<ScenarioSpec>& specs,
    const std::vector<OptimizationResult>& results,
    double* worst_case_ratio) {
  ADS_CHECK(specs.size() == results.size() && !specs.empty())
      << "OptimizeRobust needs one Optimize result per spec";
  // Candidate pool: the default plus every per-scenario winner.
  std::vector<Blueprint> candidates = {DefaultBlueprint()};
  for (const OptimizationResult& r : results) {
    candidates.push_back(r.best.blueprint);
  }
  std::vector<std::string> seen;
  std::vector<Blueprint> unique;
  for (const Blueprint& bp : candidates) {
    std::string key = bp.Key();
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
    seen.push_back(std::move(key));
    unique.push_back(bp);
  }

  const std::string baseline_key = DefaultBlueprint().Key();
  double best_ratio = kInf;
  EvaluatedBlueprint winner;
  std::string winner_key;
  for (const Blueprint& bp : unique) {
    // Worst-case score across scenarios, normalized per scenario by the
    // untuned baseline so no single scenario's absolute scale dominates.
    double worst = 0.0;
    EvaluatedBlueprint worst_point;
    for (size_t s = 0; s < specs.size(); ++s) {
      spent_ = 0;  // cross-scenario evaluation is not budget-limited
      ScenarioReport report = Evaluate(specs[s], {bp})[0];
      const double base = results[s].baseline.report.score;
      const double ratio = report.score / std::max(base, 1e-12);
      if (ratio >= worst) {
        worst = ratio;
        worst_point = EvaluatedBlueprint{bp, report};
      }
    }
    const std::string key = bp.Key();
    if (worst < best_ratio ||
        (worst == best_ratio && PreferKey(key, winner_key, baseline_key))) {
      best_ratio = worst;
      winner = worst_point;
      winner_key = key;
    }
  }
  if (worst_case_ratio != nullptr) *worst_case_ratio = best_ratio;
  return winner;
}

}  // namespace ads::scenario
