#ifndef ADS_SCENARIO_OPTIMIZER_H_
#define ADS_SCENARIO_OPTIMIZER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "scenario/scenario.h"

namespace ads::scenario {

struct OptimizerOptions {
  /// Seeds the restart-point draws (NOT the scenario runs — those use the
  /// spec's own seed, so every evaluation of a blueprint is identical).
  uint64_t seed = 7;
  /// Total RunScenario evaluations the search may spend per scenario.
  size_t eval_budget = 48;
  /// Random restart points explored after the default-seeded descent.
  size_t restarts = 2;
};

/// One evaluated point of the search.
struct EvaluatedBlueprint {
  Blueprint blueprint;
  ScenarioReport report;
};

/// Outcome of optimizing one scenario.
struct OptimizationResult {
  std::string scenario;
  /// The baseline every candidate is judged against.
  EvaluatedBlueprint baseline;
  /// Lowest-score blueprint found (ties break toward the baseline, then
  /// lexicographically smaller key — deterministic).
  EvaluatedBlueprint best;
  /// Non-dominated subset of every evaluated point on the (cost, qos_loss)
  /// plane, sorted by ascending cost.
  std::vector<EvaluatedBlueprint> frontier;
  /// True when `best` Pareto-dominates the baseline (not merely a lower
  /// weighted score) — the strong form of "tuning beat the default".
  bool best_dominates_baseline = false;
  size_t evaluations = 0;
};

/// Searches the blueprint knob space against one scenario's cost/QoS
/// objective: seeded hill-climbing over the discrete knob grids from the
/// default blueprint plus a few random restarts, with every neighbor
/// round evaluated in parallel (results land in per-index slots, so the
/// outcome is identical across ADS_THREADS). Evaluations are cached by
/// Blueprint::Key(), and the whole search is a deterministic function of
/// (spec, options).
class BlueprintOptimizer {
 public:
  explicit BlueprintOptimizer(OptimizerOptions options = OptimizerOptions());

  /// Optimizes one scenario from the default blueprint.
  OptimizationResult Optimize(const ScenarioSpec& spec);

  /// Cross-scenario robust blueprint: every per-scenario winner (plus the
  /// default) is re-evaluated on every scenario, and the candidate with
  /// the best worst-case score ratio versus the per-scenario baseline
  /// wins. `results` must come from Optimize over the same specs.
  EvaluatedBlueprint OptimizeRobust(
      const std::vector<ScenarioSpec>& specs,
      const std::vector<OptimizationResult>& results,
      double* worst_case_ratio = nullptr);

 private:
  /// All single-knob moves from `from` that stay on the grids (inactive
  /// knobs — hedge tuning while hedging is off, etc. — yield no moves).
  std::vector<Blueprint> Neighbors(const Blueprint& from) const;
  /// Evaluates candidates in parallel through the cache; returns reports
  /// aligned with `candidates`. Budget-aware: stops admitting new keys
  /// once the budget is spent (cached keys are always free).
  std::vector<ScenarioReport> Evaluate(const ScenarioSpec& spec,
                                       const std::vector<Blueprint>& candidates);
  Blueprint RandomBlueprint(uint64_t draw_seed) const;

  OptimizerOptions options_;
  /// Blueprint::Key() -> evaluated point, per scenario name.
  std::map<std::string, std::map<std::string, EvaluatedBlueprint>> cache_;
  size_t spent_ = 0;
};

}  // namespace ads::scenario

#endif  // ADS_SCENARIO_OPTIMIZER_H_
