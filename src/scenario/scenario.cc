#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <memory>

#include "autonomy/loop.h"
#include "autonomy/serving.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "fleet/virtual_fleet.h"
#include "ml/dataset.h"
#include "ml/linear.h"
#include "ml/registry.h"
#include "serve/types.h"

namespace ads::scenario {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// The bulk tenant every well-behaved tenant shares the fleet with in the
/// noisy-neighbor scenario.
const char kNoisyTenant[] = "bulk";

std::string BlobWithSlope(double slope) {
  ml::LinearRegressor m;
  m.SetCoefficients(0.0, {slope});
  return m.Serialize();
}

/// Retrainer for the drift scenario: fits the most recent quarter of the
/// loop's buffer — by alarm time, mostly post-drift samples.
common::Result<std::string> RecencyTrainer(const ml::Dataset& data) {
  std::vector<size_t> recent;
  for (size_t i = data.size() - data.size() / 4; i < data.size(); ++i) {
    recent.push_back(i);
  }
  ml::LinearRegressor m;
  common::Status fitted = m.Fit(data.Filter(recent));
  if (!fitted.ok()) return fitted;
  return m.Serialize();
}

/// Offered load (requests per second) at virtual time `t`.
double RateAt(const ScenarioSpec& spec, double t) {
  const double horizon = spec.NominalDurationSeconds();
  switch (spec.shape) {
    case ArrivalShape::kSteady:
      return spec.base_rate_rps;
    case ArrivalShape::kDiurnal: {
      // Half-cosine day: base at t=0 and t=T, base*surge at midday.
      const double phase = 0.5 * (1.0 - std::cos(2.0 * kPi * t / horizon));
      return spec.base_rate_rps * (1.0 + (spec.surge_factor - 1.0) * phase);
    }
    case ArrivalShape::kFlashCrowd: {
      const bool in_window = t >= spec.flash_start_frac * horizon &&
                             t < spec.flash_end_frac * horizon;
      return in_window ? spec.base_rate_rps * spec.surge_factor
                       : spec.base_rate_rps;
    }
  }
  return spec.base_rate_rps;
}

/// True label slope at virtual time `t` (the slow burn the loop chases).
double SlopeAt(const ScenarioSpec& spec, double t) {
  if (!spec.drift) return spec.drift_slope_from;
  const double horizon = spec.NominalDurationSeconds();
  const double start = spec.drift_start_frac * horizon;
  const double end = spec.drift_end_frac * horizon;
  if (t <= start) return spec.drift_slope_from;
  if (t >= end) return spec.drift_slope_to;
  const double frac = (t - start) / (end - start);
  return spec.drift_slope_from +
         frac * (spec.drift_slope_to - spec.drift_slope_from);
}

autonomy::AutonomyLoopOptions DriftLoopOptions() {
  autonomy::AutonomyLoopOptions options;
  options.detector.baseline_window = 60;
  options.detector.recent_window = 30;
  options.retrain_buffer_capacity = 400;
  options.min_retrain_samples = 200;
  options.retrain_duration_seconds = 0.25;
  options.shadow_min_samples = 60;
  options.flight.min_samples_per_arm = 40;
  options.canary_tenant_fraction = 0.3;
  options.probation_seconds = 1.0;
  options.cooldown_seconds = 0.5;
  return options;
}

void Append(std::string* out, const char* fmt, ...) {
  char buf[64];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

}  // namespace

std::string Blueprint::Key() const {
  std::string key;
  Append(&key, "s%zu r%zu w%zu q%zu b%zu", shards, replicas_per_shard,
         workers_per_replica, queue_capacity, max_batch_size);
  Append(&key, " lg%.4g", max_linger_seconds);
  if (hedging) {
    Append(&key, " hq%.2f hf%.2f", hedge_quantile, hedge_delay_factor);
  } else {
    key += " h-";
  }
  if (rate_limiting) {
    Append(&key, " rl%.4g", tenant_rps);
  } else {
    key += " rl-";
  }
  key += priority_shedding ? " pr+" : " pr-";
  Append(&key, " bk%u/%.3g", breaker_failure_threshold,
         breaker_cooldown_seconds);
  if (std::isfinite(overload_queue_depth)) {
    Append(&key, " od%.4g", overload_queue_depth);
  } else {
    key += " od-";
  }
  return key;
}

Blueprint DefaultBlueprint() { return Blueprint(); }

std::vector<ScenarioSpec> StandardScenarios(size_t scale) {
  ADS_CHECK(scale > 0) << "scenario scale must be positive";
  std::vector<ScenarioSpec> pack;

  {
    // A smooth daily cycle: load swells to 2.5x base at midday. The
    // default fleet is over-provisioned for the valleys — the optimizer's
    // opening is cutting cores without breaking the midday peak.
    ScenarioSpec spec;
    spec.name = "diurnal_surge";
    spec.seed = 101;
    spec.requests = 3000 * scale;
    spec.shape = ArrivalShape::kDiurnal;
    spec.surge_factor = 2.5;
    pack.push_back(spec);
  }
  {
    // An 8x spike for a tenth of the run: queues, shedding and batch
    // efficiency decide how much of the spike survives the SLO.
    ScenarioSpec spec;
    spec.name = "flash_crowd";
    spec.seed = 202;
    spec.requests = 3000 * scale;
    spec.shape = ArrivalShape::kFlashCrowd;
    spec.surge_factor = 8.0;
    spec.flash_start_frac = 0.45;
    spec.flash_end_frac = 0.55;
    spec.slo.max_shed_rate = 0.02;
    pack.push_back(spec);
  }
  {
    // A region goes dark: chaos faults on the deployed-model tier plus a
    // full shard drained for the middle third. Survivors absorb the
    // reroutes while the breaker decides how long the heuristic answers.
    ScenarioSpec spec;
    spec.name = "regional_outage";
    spec.seed = 303;
    spec.requests = 3000 * scale;
    spec.backend_fault_probability = 0.2;
    spec.outage_shards = 1;
    spec.outage_start_frac = 0.35;
    spec.outage_end_frac = 0.65;
    spec.slow_probability = 0.05;
    spec.objective.accuracy_weight = 0.5;
    spec.objective.mae_scale = 4.0;
    pack.push_back(spec);
  }
  {
    // One bulk tenant bursts to 6x fleet load in a window; consistent-hash
    // homing concentrates the burst on one shard, where the well-behaved
    // tenants who share it live or die by isolation knobs (rate limits,
    // priority shedding, load diverts). QoS is scored on them only.
    ScenarioSpec spec;
    spec.name = "noisy_neighbor";
    spec.seed = 404;
    spec.requests = 3000 * scale;
    spec.tenants = 48;
    spec.shape = ArrivalShape::kFlashCrowd;
    spec.surge_factor = 6.0;
    spec.flash_start_frac = 0.3;
    spec.flash_end_frac = 0.45;
    spec.noisy_in_window = 0.85;
    spec.noisy_off_window = 0.05;
    pack.push_back(spec);
  }
  {
    // The world's slope ramps 2 -> 5 over the middle of the run; the
    // autonomy loop must notice, retrain, flight and promote while the
    // fleet keeps serving. Accuracy is priced into QoS.
    ScenarioSpec spec;
    spec.name = "slow_burn_drift";
    spec.seed = 505;
    spec.requests = 4000 * scale;
    spec.drift = true;
    spec.objective.accuracy_weight = 1.0;
    spec.objective.mae_scale = 5.0;
    pack.push_back(spec);
  }
  return pack;
}

std::vector<std::pair<std::string, double>> ScenarioReport::Metrics() const {
  auto d = [](uint64_t v) { return static_cast<double>(v); };
  return {
      {"submitted", d(fleet.submitted)},
      {"accepted", d(fleet.accepted)},
      {"served", d(fleet.served)},
      {"shed", d(fleet.Shed())},
      {"rejected", d(fleet.Rejected())},
      {"availability", availability},
      {"shed_rate", shed_rate},
      {"slo_attainment", slo_attainment},
      {"latency_p50_seconds", latency.p50},
      {"latency_p95_seconds", latency.p95},
      {"latency_p99_seconds", latency.p99},
      {"tail_over_2x_slo", d(tail_over_2x_slo)},
      {"max_queue_depth", d(max_queue_depth)},
      {"throughput_rps", throughput_rps},
      {"horizon_seconds", horizon_seconds},
      {"hedges_fired", d(fleet.hedges_fired)},
      {"hedge_wins", d(fleet.hedge_wins)},
      {"load_diverts", d(fleet.load_diverts)},
      {"drain_diverts", d(fleet.drain_diverts)},
      {"rerouted", d(fleet.rerouted_in)},
      {"episodes", d(episodes)},
      {"promotes", d(promotes)},
      {"rollbacks", d(rollbacks)},
      {"mean_abs_error", mean_abs_error},
      {"cost_core_seconds", cost},
      {"qos_loss", qos_loss},
      {"slo_met", slo_met ? 1.0 : 0.0},
      {"score", score},
  };
}

bool Dominates(const ScenarioReport& a, const ScenarioReport& b) {
  if (a.cost > b.cost || a.qos_loss > b.qos_loss) return false;
  return a.cost < b.cost || a.qos_loss < b.qos_loss;
}

ScenarioReport RunScenario(const ScenarioSpec& spec, const Blueprint& bp) {
  ADS_CHECK(spec.requests > 0) << "scenario has no traffic";
  const double horizon = spec.NominalDurationSeconds();

  // --- Model plane: registry + resilient backend (+ chaos injector). ---
  ml::ModelRegistry registry;
  registry.Register("m", BlobWithSlope(spec.drift_slope_from));
  ADS_CHECK_OK(registry.Deploy("m", 1));

  common::FaultInjector injector(spec.seed ^ 0xC4A05u);
  if (spec.backend_fault_probability > 0.0) {
    common::FaultSpec fault;
    fault.probability = spec.backend_fault_probability;
    injector.Configure("serving.deployed", fault);
  }
  autonomy::ServingOptions serving_options;
  serving_options.breaker.failure_threshold =
      static_cast<int>(bp.breaker_failure_threshold);
  serving_options.breaker.cooldown_seconds = bp.breaker_cooldown_seconds;
  // A deliberately mediocre rule of thumb: slope 1 against true slopes in
  // [2, 5], so serving from the heuristic tier is visible in the MAE.
  autonomy::ResilientModelServer backend(
      &registry, "m",
      [](const std::vector<double>& features) { return features[0]; },
      serving_options, &injector);

  // --- Autonomy plane (drift scenarios): the loop as version router. ---
  std::unique_ptr<autonomy::AutonomyLoop> loop;
  if (spec.drift) {
    loop = std::make_unique<autonomy::AutonomyLoop>(
        &registry, "m", RecencyTrainer, DriftLoopOptions());
  }

  // --- Serving plane: the fleet, instantiated from the blueprint. ---
  fleet::VirtualFleetOptions fopts;
  fopts.shards = bp.shards;
  fopts.replicas_per_shard = bp.replicas_per_shard;
  fopts.workers_per_replica = bp.workers_per_replica;
  fopts.core.queue_capacity = bp.queue_capacity;
  fopts.core.batcher.max_batch_size = bp.max_batch_size;
  fopts.core.batcher.max_linger_seconds = bp.max_linger_seconds;
  fopts.core.rate_limiting = bp.rate_limiting;
  fopts.core.rate_limit.capacity = 2.0 * bp.tenant_rps;
  fopts.core.rate_limit.refill_per_second = bp.tenant_rps;
  fopts.service.batch_overhead_seconds = spec.service_overhead_seconds;
  fopts.service.per_item_seconds = spec.service_per_item_seconds;
  fopts.slow_probability = spec.slow_probability;
  fopts.slow_multiplier = spec.slow_multiplier;
  fopts.seed = spec.seed;
  fopts.hedge.enabled = bp.hedging;
  fopts.hedge.quantile = bp.hedge_quantile;
  fopts.hedge.delay_factor = bp.hedge_delay_factor;
  fopts.router.overload_queue_depth = bp.overload_queue_depth;
  fopts.router.divert_target_depth =
      std::isfinite(bp.overload_queue_depth) ? bp.overload_queue_depth / 2.0
                                             : bp.overload_queue_depth;
  fleet::VirtualFleet fleet(fopts);
  fleet.RegisterBackend("m", &backend);
  if (loop) fleet.SetRouter(loop.get());

  // --- Workload: one seeded pass precomputes every arrival, so the
  // callback below can index per-request ground truth by id. ---
  const size_t n = spec.requests;
  std::vector<std::string> tenants(n);
  std::vector<double> xs(n, 0.0);
  std::vector<double> arrivals(n, 0.0);
  std::vector<double> truths(n, 0.0);
  std::vector<char> scoped(n, 1);
  common::Rng rng(spec.seed);
  double t = 0.0;
  for (size_t id = 0; id < n; ++id) {
    t += 1.0 / RateAt(spec, t);
    arrivals[id] = t;
    const bool in_window =
        t >= spec.flash_start_frac * horizon && t < spec.flash_end_frac * horizon;
    const double p_noisy = in_window ? spec.noisy_in_window
                                     : spec.noisy_off_window;
    const bool noisy = p_noisy > 0.0 && rng.Bernoulli(p_noisy);
    std::string tenant(noisy ? kNoisyTenant : "t");
    if (!noisy) {
      tenant += std::to_string(
          rng.UniformInt(0, static_cast<int64_t>(spec.tenants) - 1));
    }
    tenants[id] = std::move(tenant);
    scoped[id] = spec.HasNoisyTenant() ? static_cast<char>(!noisy) : 1;
    xs[id] = 1.0 + static_cast<double>(id % 4);
    truths[id] = SlopeAt(spec, t) * xs[id];

    serve::Request request;
    request.id = id;
    request.model = "m";
    request.tenant = tenants[id];
    request.features = {xs[id]};
    request.priority = (bp.priority_shedding && !noisy) ? 1 : 0;
    request.deadline = t + spec.relative_deadline_seconds;
    fleet.SubmitAt(t, std::move(request));
  }

  // --- Failure schedule: the regional outage. ---
  for (size_t s = 0; s < spec.outage_shards && s < bp.shards; ++s) {
    fleet.ScheduleDrain(spec.outage_start_frac * horizon, s);
    fleet.ScheduleRejoin(spec.outage_end_frac * horizon, s);
  }

  // --- Response accounting over the scoped (well-behaved) traffic. ---
  uint64_t scoped_total = 0;
  uint64_t scoped_served = 0;
  uint64_t scoped_shed = 0;
  uint64_t scoped_good = 0;
  double abs_error_sum = 0.0;
  common::Histogram tail(0.0, 2.0 * spec.slo.latency_seconds, 40);
  fleet.SetResponseCallback([&](const serve::Response& response) {
    const uint64_t id = response.id;
    if (response.outcome == serve::Outcome::kServed && loop) {
      autonomy::LoopSample sample;
      sample.tenant = tenants[id];
      sample.features = {xs[id]};
      sample.prediction = response.value;
      sample.served_version = response.model_version;
      sample.truth = truths[id];
      loop->OnSample(sample, arrivals[id] + response.latency_seconds);
    }
    if (!scoped[id]) return;
    ++scoped_total;
    switch (response.outcome) {
      case serve::Outcome::kServed:
        ++scoped_served;
        abs_error_sum += std::abs(response.value - truths[id]);
        tail.Add(response.latency_seconds);
        if (response.latency_seconds <= spec.slo.latency_seconds) {
          ++scoped_good;
        }
        break;
      case serve::Outcome::kShedCapacity:
      case serve::Outcome::kShedDeadline:
        ++scoped_shed;
        break;
      default:
        break;  // rejected at admission
    }
  });

  fleet::VirtualFleetReport fr = fleet.Run();

  // --- Fold into the report + objective. ---
  ScenarioReport report;
  report.scenario = spec.name;
  report.blueprint = bp.Key();
  report.fleet = fr.fleet;
  report.latency = fr.latency;
  report.throughput_rps = fr.throughput_rps;
  report.horizon_seconds = fr.horizon_seconds;
  report.max_queue_depth = fr.max_queue_depth;
  report.scoped_requests = scoped_total;
  report.good_requests = scoped_good;
  const double denom = std::max<uint64_t>(scoped_total, 1);
  report.slo_attainment = static_cast<double>(scoped_good) / denom;
  const uint64_t scoped_finished = scoped_served + scoped_shed;
  report.availability =
      scoped_finished == 0
          ? 1.0
          : static_cast<double>(scoped_served) /
                static_cast<double>(scoped_finished);
  // Refusals of scoped traffic at any stage: queued-then-shed plus
  // admission rejections (everything that was not served).
  report.shed_rate =
      static_cast<double>(scoped_total - scoped_served) / denom;
  report.tail_over_2x_slo = tail.overflow();
  report.mean_abs_error =
      scoped_served == 0 ? 0.0
                         : abs_error_sum / static_cast<double>(scoped_served);
  if (loop) {
    const autonomy::LoopStats stats = loop->stats();
    report.episodes = stats.episodes;
    report.promotes = stats.promotes;
    report.rollbacks = stats.rollbacks;
  }
  report.slo_met = report.latency.p99 <= spec.slo.latency_seconds &&
                   report.availability >= spec.slo.min_availability &&
                   report.shed_rate <= spec.slo.max_shed_rate;
  report.cost = static_cast<double>(bp.Cores()) * horizon +
                static_cast<double>(fr.fleet.hedges_fired) *
                    (spec.service_overhead_seconds + spec.service_per_item_seconds);
  const double bad_fraction = 1.0 - report.slo_attainment;
  report.qos_loss =
      bad_fraction +
      spec.objective.accuracy_weight *
          std::min(1.0, report.mean_abs_error / spec.objective.mae_scale);
  report.score = spec.objective.cost_weight * report.cost +
                 spec.objective.qos_weight * report.qos_loss +
                 (report.slo_met ? 0.0 : spec.objective.slo_penalty);
  return report;
}

}  // namespace ads::scenario
